# Empty dependencies file for ablate_steal_order.
# This may be replaced when dependencies are built.
