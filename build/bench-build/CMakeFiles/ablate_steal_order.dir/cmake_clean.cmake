file(REMOVE_RECURSE
  "../bench/ablate_steal_order"
  "../bench/ablate_steal_order.pdb"
  "CMakeFiles/ablate_steal_order.dir/ablate_steal_order.cpp.o"
  "CMakeFiles/ablate_steal_order.dir/ablate_steal_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_steal_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
