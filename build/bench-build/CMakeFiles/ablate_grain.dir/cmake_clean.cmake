file(REMOVE_RECURSE
  "../bench/ablate_grain"
  "../bench/ablate_grain.pdb"
  "CMakeFiles/ablate_grain.dir/ablate_grain.cpp.o"
  "CMakeFiles/ablate_grain.dir/ablate_grain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_grain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
