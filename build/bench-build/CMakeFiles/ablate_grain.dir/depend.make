# Empty dependencies file for ablate_grain.
# This may be replaced when dependencies are built.
