file(REMOVE_RECURSE
  "../bench/ablate_macro_sharing"
  "../bench/ablate_macro_sharing.pdb"
  "CMakeFiles/ablate_macro_sharing.dir/ablate_macro_sharing.cpp.o"
  "CMakeFiles/ablate_macro_sharing.dir/ablate_macro_sharing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_macro_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
