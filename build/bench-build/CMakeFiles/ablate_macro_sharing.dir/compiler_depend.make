# Empty compiler generated dependencies file for ablate_macro_sharing.
# This may be replaced when dependencies are built.
