file(REMOVE_RECURSE
  "../bench/table2_locality"
  "../bench/table2_locality.pdb"
  "CMakeFiles/table2_locality.dir/table2_locality.cpp.o"
  "CMakeFiles/table2_locality.dir/table2_locality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
