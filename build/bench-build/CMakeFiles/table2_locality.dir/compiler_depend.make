# Empty compiler generated dependencies file for table2_locality.
# This may be replaced when dependencies are built.
