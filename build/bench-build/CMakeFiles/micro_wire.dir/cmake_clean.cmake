file(REMOVE_RECURSE
  "../bench/micro_wire"
  "../bench/micro_wire.pdb"
  "CMakeFiles/micro_wire.dir/micro_wire.cpp.o"
  "CMakeFiles/micro_wire.dir/micro_wire.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
