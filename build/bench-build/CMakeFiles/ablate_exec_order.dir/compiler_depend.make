# Empty compiler generated dependencies file for ablate_exec_order.
# This may be replaced when dependencies are built.
