file(REMOVE_RECURSE
  "../bench/ablate_exec_order"
  "../bench/ablate_exec_order.pdb"
  "CMakeFiles/ablate_exec_order.dir/ablate_exec_order.cpp.o"
  "CMakeFiles/ablate_exec_order.dir/ablate_exec_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_exec_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
