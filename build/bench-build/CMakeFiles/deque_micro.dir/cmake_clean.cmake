file(REMOVE_RECURSE
  "../bench/deque_micro"
  "../bench/deque_micro.pdb"
  "CMakeFiles/deque_micro.dir/deque_micro.cpp.o"
  "CMakeFiles/deque_micro.dir/deque_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deque_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
