# Empty compiler generated dependencies file for deque_micro.
# This may be replaced when dependencies are built.
