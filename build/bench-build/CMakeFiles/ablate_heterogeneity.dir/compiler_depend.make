# Empty compiler generated dependencies file for ablate_heterogeneity.
# This may be replaced when dependencies are built.
