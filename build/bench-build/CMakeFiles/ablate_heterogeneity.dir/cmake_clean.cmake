file(REMOVE_RECURSE
  "../bench/ablate_heterogeneity"
  "../bench/ablate_heterogeneity.pdb"
  "CMakeFiles/ablate_heterogeneity.dir/ablate_heterogeneity.cpp.o"
  "CMakeFiles/ablate_heterogeneity.dir/ablate_heterogeneity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
