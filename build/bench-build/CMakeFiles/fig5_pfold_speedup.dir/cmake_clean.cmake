file(REMOVE_RECURSE
  "../bench/fig5_pfold_speedup"
  "../bench/fig5_pfold_speedup.pdb"
  "CMakeFiles/fig5_pfold_speedup.dir/fig5_pfold_speedup.cpp.o"
  "CMakeFiles/fig5_pfold_speedup.dir/fig5_pfold_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pfold_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
