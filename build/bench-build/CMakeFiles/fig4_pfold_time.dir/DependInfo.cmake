
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_pfold_time.cpp" "bench-build/CMakeFiles/fig4_pfold_time.dir/fig4_pfold_time.cpp.o" "gcc" "bench-build/CMakeFiles/fig4_pfold_time.dir/fig4_pfold_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/phish_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/phish_rt_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/phish_rt_simdist.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/phish_rt_udp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/phish_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/phish_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/phish_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phish_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/phish_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
