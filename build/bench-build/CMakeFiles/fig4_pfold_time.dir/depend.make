# Empty dependencies file for fig4_pfold_time.
# This may be replaced when dependencies are built.
