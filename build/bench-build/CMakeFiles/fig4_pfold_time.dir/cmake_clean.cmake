file(REMOVE_RECURSE
  "../bench/fig4_pfold_time"
  "../bench/fig4_pfold_time.pdb"
  "CMakeFiles/fig4_pfold_time.dir/fig4_pfold_time.cpp.o"
  "CMakeFiles/fig4_pfold_time.dir/fig4_pfold_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pfold_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
