file(REMOVE_RECURSE
  "../bench/ablate_victim_policy"
  "../bench/ablate_victim_policy.pdb"
  "CMakeFiles/ablate_victim_policy.dir/ablate_victim_policy.cpp.o"
  "CMakeFiles/ablate_victim_policy.dir/ablate_victim_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_victim_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
