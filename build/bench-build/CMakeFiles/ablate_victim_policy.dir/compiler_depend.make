# Empty compiler generated dependencies file for ablate_victim_policy.
# This may be replaced when dependencies are built.
