# Empty compiler generated dependencies file for ablate_steal_budget.
# This may be replaced when dependencies are built.
