file(REMOVE_RECURSE
  "../bench/ablate_steal_budget"
  "../bench/ablate_steal_budget.pdb"
  "CMakeFiles/ablate_steal_budget.dir/ablate_steal_budget.cpp.o"
  "CMakeFiles/ablate_steal_budget.dir/ablate_steal_budget.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_steal_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
