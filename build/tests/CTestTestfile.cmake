# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_serial[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_rt_threads[1]_include.cmake")
include("/root/repo/build/tests/test_rt_simdist[1]_include.cmake")
include("/root/repo/build/tests/test_rt_udp[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
