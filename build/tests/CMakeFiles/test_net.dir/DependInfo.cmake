
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/loop_net_test.cpp" "tests/CMakeFiles/test_net.dir/net/loop_net_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/loop_net_test.cpp.o.d"
  "/root/repo/tests/net/rpc_test.cpp" "tests/CMakeFiles/test_net.dir/net/rpc_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/rpc_test.cpp.o.d"
  "/root/repo/tests/net/sim_net_test.cpp" "tests/CMakeFiles/test_net.dir/net/sim_net_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/sim_net_test.cpp.o.d"
  "/root/repo/tests/net/timer_service_test.cpp" "tests/CMakeFiles/test_net.dir/net/timer_service_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/timer_service_test.cpp.o.d"
  "/root/repo/tests/net/udp_net_test.cpp" "tests/CMakeFiles/test_net.dir/net/udp_net_test.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/udp_net_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/phish_util.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/phish_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phish_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/phish_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
