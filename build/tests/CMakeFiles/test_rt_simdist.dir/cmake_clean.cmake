file(REMOVE_RECURSE
  "CMakeFiles/test_rt_simdist.dir/runtime/checkpoint_test.cpp.o"
  "CMakeFiles/test_rt_simdist.dir/runtime/checkpoint_test.cpp.o.d"
  "CMakeFiles/test_rt_simdist.dir/runtime/io_and_policies_test.cpp.o"
  "CMakeFiles/test_rt_simdist.dir/runtime/io_and_policies_test.cpp.o.d"
  "CMakeFiles/test_rt_simdist.dir/runtime/macro_cluster_test.cpp.o"
  "CMakeFiles/test_rt_simdist.dir/runtime/macro_cluster_test.cpp.o.d"
  "CMakeFiles/test_rt_simdist.dir/runtime/owner_trace_test.cpp.o"
  "CMakeFiles/test_rt_simdist.dir/runtime/owner_trace_test.cpp.o.d"
  "CMakeFiles/test_rt_simdist.dir/runtime/runtime_matrix_test.cpp.o"
  "CMakeFiles/test_rt_simdist.dir/runtime/runtime_matrix_test.cpp.o.d"
  "CMakeFiles/test_rt_simdist.dir/runtime/sim_cluster_test.cpp.o"
  "CMakeFiles/test_rt_simdist.dir/runtime/sim_cluster_test.cpp.o.d"
  "CMakeFiles/test_rt_simdist.dir/runtime/topology_test.cpp.o"
  "CMakeFiles/test_rt_simdist.dir/runtime/topology_test.cpp.o.d"
  "test_rt_simdist"
  "test_rt_simdist.pdb"
  "test_rt_simdist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_simdist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
