# Empty compiler generated dependencies file for test_rt_simdist.
# This may be replaced when dependencies are built.
