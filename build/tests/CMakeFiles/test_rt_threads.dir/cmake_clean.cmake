file(REMOVE_RECURSE
  "CMakeFiles/test_rt_threads.dir/runtime/threads_runtime_test.cpp.o"
  "CMakeFiles/test_rt_threads.dir/runtime/threads_runtime_test.cpp.o.d"
  "CMakeFiles/test_rt_threads.dir/runtime/threads_stress_test.cpp.o"
  "CMakeFiles/test_rt_threads.dir/runtime/threads_stress_test.cpp.o.d"
  "test_rt_threads"
  "test_rt_threads.pdb"
  "test_rt_threads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
