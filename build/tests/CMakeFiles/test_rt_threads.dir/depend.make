# Empty dependencies file for test_rt_threads.
# This may be replaced when dependencies are built.
