
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/fib_test.cpp" "tests/CMakeFiles/test_apps.dir/apps/fib_test.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/fib_test.cpp.o.d"
  "/root/repo/tests/apps/nqueens_test.cpp" "tests/CMakeFiles/test_apps.dir/apps/nqueens_test.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/nqueens_test.cpp.o.d"
  "/root/repo/tests/apps/pfold_test.cpp" "tests/CMakeFiles/test_apps.dir/apps/pfold_test.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/pfold_test.cpp.o.d"
  "/root/repo/tests/apps/ray_test.cpp" "tests/CMakeFiles/test_apps.dir/apps/ray_test.cpp.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps/ray_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/phish_util.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/phish_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phish_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/phish_net.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/phish_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/phish_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
