file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/chase_lev_test.cpp.o"
  "CMakeFiles/test_core.dir/core/chase_lev_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/clearinghouse_test.cpp.o"
  "CMakeFiles/test_core.dir/core/clearinghouse_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/dsl_test.cpp.o"
  "CMakeFiles/test_core.dir/core/dsl_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/jobq_test.cpp.o"
  "CMakeFiles/test_core.dir/core/jobq_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ready_deque_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ready_deque_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/value_test.cpp.o"
  "CMakeFiles/test_core.dir/core/value_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/worker_core_test.cpp.o"
  "CMakeFiles/test_core.dir/core/worker_core_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
