# Empty dependencies file for test_rt_udp.
# This may be replaced when dependencies are built.
