file(REMOVE_RECURSE
  "CMakeFiles/test_rt_udp.dir/runtime/udp_runtime_test.cpp.o"
  "CMakeFiles/test_rt_udp.dir/runtime/udp_runtime_test.cpp.o.d"
  "test_rt_udp"
  "test_rt_udp.pdb"
  "test_rt_udp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
