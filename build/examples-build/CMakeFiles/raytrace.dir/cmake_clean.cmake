file(REMOVE_RECURSE
  "../examples/raytrace"
  "../examples/raytrace.pdb"
  "CMakeFiles/raytrace.dir/raytrace.cpp.o"
  "CMakeFiles/raytrace.dir/raytrace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raytrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
