# Empty compiler generated dependencies file for pfold_cluster.
# This may be replaced when dependencies are built.
