file(REMOVE_RECURSE
  "../examples/pfold_cluster"
  "../examples/pfold_cluster.pdb"
  "CMakeFiles/pfold_cluster.dir/pfold_cluster.cpp.o"
  "CMakeFiles/pfold_cluster.dir/pfold_cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfold_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
