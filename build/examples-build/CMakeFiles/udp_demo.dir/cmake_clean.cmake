file(REMOVE_RECURSE
  "../examples/udp_demo"
  "../examples/udp_demo.pdb"
  "CMakeFiles/udp_demo.dir/udp_demo.cpp.o"
  "CMakeFiles/udp_demo.dir/udp_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
