file(REMOVE_RECURSE
  "../examples/adaptive_cluster"
  "../examples/adaptive_cluster.pdb"
  "CMakeFiles/adaptive_cluster.dir/adaptive_cluster.cpp.o"
  "CMakeFiles/adaptive_cluster.dir/adaptive_cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
