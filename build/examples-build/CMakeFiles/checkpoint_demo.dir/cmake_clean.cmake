file(REMOVE_RECURSE
  "../examples/checkpoint_demo"
  "../examples/checkpoint_demo.pdb"
  "CMakeFiles/checkpoint_demo.dir/checkpoint_demo.cpp.o"
  "CMakeFiles/checkpoint_demo.dir/checkpoint_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
