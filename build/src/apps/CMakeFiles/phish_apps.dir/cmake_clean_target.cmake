file(REMOVE_RECURSE
  "libphish_apps.a"
)
