file(REMOVE_RECURSE
  "CMakeFiles/phish_apps.dir/fib/fib.cpp.o"
  "CMakeFiles/phish_apps.dir/fib/fib.cpp.o.d"
  "CMakeFiles/phish_apps.dir/nqueens/nqueens.cpp.o"
  "CMakeFiles/phish_apps.dir/nqueens/nqueens.cpp.o.d"
  "CMakeFiles/phish_apps.dir/pfold/pfold.cpp.o"
  "CMakeFiles/phish_apps.dir/pfold/pfold.cpp.o.d"
  "CMakeFiles/phish_apps.dir/ray/ray.cpp.o"
  "CMakeFiles/phish_apps.dir/ray/ray.cpp.o.d"
  "libphish_apps.a"
  "libphish_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phish_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
