# Empty dependencies file for phish_apps.
# This may be replaced when dependencies are built.
