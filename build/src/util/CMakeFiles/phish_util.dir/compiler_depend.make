# Empty compiler generated dependencies file for phish_util.
# This may be replaced when dependencies are built.
