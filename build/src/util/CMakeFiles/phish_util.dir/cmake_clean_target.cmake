file(REMOVE_RECURSE
  "libphish_util.a"
)
