file(REMOVE_RECURSE
  "CMakeFiles/phish_util.dir/flags.cpp.o"
  "CMakeFiles/phish_util.dir/flags.cpp.o.d"
  "CMakeFiles/phish_util.dir/log.cpp.o"
  "CMakeFiles/phish_util.dir/log.cpp.o.d"
  "CMakeFiles/phish_util.dir/rng.cpp.o"
  "CMakeFiles/phish_util.dir/rng.cpp.o.d"
  "CMakeFiles/phish_util.dir/stats.cpp.o"
  "CMakeFiles/phish_util.dir/stats.cpp.o.d"
  "CMakeFiles/phish_util.dir/table.cpp.o"
  "CMakeFiles/phish_util.dir/table.cpp.o.d"
  "libphish_util.a"
  "libphish_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phish_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
