file(REMOVE_RECURSE
  "libphish_sim.a"
)
