# Empty compiler generated dependencies file for phish_sim.
# This may be replaced when dependencies are built.
