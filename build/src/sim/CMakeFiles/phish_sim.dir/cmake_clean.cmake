file(REMOVE_RECURSE
  "CMakeFiles/phish_sim.dir/simulator.cpp.o"
  "CMakeFiles/phish_sim.dir/simulator.cpp.o.d"
  "libphish_sim.a"
  "libphish_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phish_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
