# Empty dependencies file for phish_core.
# This may be replaced when dependencies are built.
