file(REMOVE_RECURSE
  "libphish_core.a"
)
