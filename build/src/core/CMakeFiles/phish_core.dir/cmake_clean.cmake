file(REMOVE_RECURSE
  "CMakeFiles/phish_core.dir/clearinghouse.cpp.o"
  "CMakeFiles/phish_core.dir/clearinghouse.cpp.o.d"
  "CMakeFiles/phish_core.dir/dsl.cpp.o"
  "CMakeFiles/phish_core.dir/dsl.cpp.o.d"
  "CMakeFiles/phish_core.dir/jobq.cpp.o"
  "CMakeFiles/phish_core.dir/jobq.cpp.o.d"
  "CMakeFiles/phish_core.dir/ready_deque.cpp.o"
  "CMakeFiles/phish_core.dir/ready_deque.cpp.o.d"
  "CMakeFiles/phish_core.dir/task_registry.cpp.o"
  "CMakeFiles/phish_core.dir/task_registry.cpp.o.d"
  "CMakeFiles/phish_core.dir/value.cpp.o"
  "CMakeFiles/phish_core.dir/value.cpp.o.d"
  "CMakeFiles/phish_core.dir/worker_core.cpp.o"
  "CMakeFiles/phish_core.dir/worker_core.cpp.o.d"
  "libphish_core.a"
  "libphish_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phish_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
