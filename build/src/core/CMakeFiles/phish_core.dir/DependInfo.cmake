
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clearinghouse.cpp" "src/core/CMakeFiles/phish_core.dir/clearinghouse.cpp.o" "gcc" "src/core/CMakeFiles/phish_core.dir/clearinghouse.cpp.o.d"
  "/root/repo/src/core/dsl.cpp" "src/core/CMakeFiles/phish_core.dir/dsl.cpp.o" "gcc" "src/core/CMakeFiles/phish_core.dir/dsl.cpp.o.d"
  "/root/repo/src/core/jobq.cpp" "src/core/CMakeFiles/phish_core.dir/jobq.cpp.o" "gcc" "src/core/CMakeFiles/phish_core.dir/jobq.cpp.o.d"
  "/root/repo/src/core/ready_deque.cpp" "src/core/CMakeFiles/phish_core.dir/ready_deque.cpp.o" "gcc" "src/core/CMakeFiles/phish_core.dir/ready_deque.cpp.o.d"
  "/root/repo/src/core/task_registry.cpp" "src/core/CMakeFiles/phish_core.dir/task_registry.cpp.o" "gcc" "src/core/CMakeFiles/phish_core.dir/task_registry.cpp.o.d"
  "/root/repo/src/core/value.cpp" "src/core/CMakeFiles/phish_core.dir/value.cpp.o" "gcc" "src/core/CMakeFiles/phish_core.dir/value.cpp.o.d"
  "/root/repo/src/core/worker_core.cpp" "src/core/CMakeFiles/phish_core.dir/worker_core.cpp.o" "gcc" "src/core/CMakeFiles/phish_core.dir/worker_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/phish_util.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/phish_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phish_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/phish_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
