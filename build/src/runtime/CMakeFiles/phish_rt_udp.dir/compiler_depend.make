# Empty compiler generated dependencies file for phish_rt_udp.
# This may be replaced when dependencies are built.
