file(REMOVE_RECURSE
  "CMakeFiles/phish_rt_udp.dir/udp/udp_runtime.cpp.o"
  "CMakeFiles/phish_rt_udp.dir/udp/udp_runtime.cpp.o.d"
  "libphish_rt_udp.a"
  "libphish_rt_udp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phish_rt_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
