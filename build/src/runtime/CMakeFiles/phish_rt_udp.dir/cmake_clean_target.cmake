file(REMOVE_RECURSE
  "libphish_rt_udp.a"
)
