
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/simdist/job_manager.cpp" "src/runtime/CMakeFiles/phish_rt_simdist.dir/simdist/job_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/phish_rt_simdist.dir/simdist/job_manager.cpp.o.d"
  "/root/repo/src/runtime/simdist/macro_cluster.cpp" "src/runtime/CMakeFiles/phish_rt_simdist.dir/simdist/macro_cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/phish_rt_simdist.dir/simdist/macro_cluster.cpp.o.d"
  "/root/repo/src/runtime/simdist/owner_trace.cpp" "src/runtime/CMakeFiles/phish_rt_simdist.dir/simdist/owner_trace.cpp.o" "gcc" "src/runtime/CMakeFiles/phish_rt_simdist.dir/simdist/owner_trace.cpp.o.d"
  "/root/repo/src/runtime/simdist/sim_cluster.cpp" "src/runtime/CMakeFiles/phish_rt_simdist.dir/simdist/sim_cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/phish_rt_simdist.dir/simdist/sim_cluster.cpp.o.d"
  "/root/repo/src/runtime/simdist/sim_worker.cpp" "src/runtime/CMakeFiles/phish_rt_simdist.dir/simdist/sim_worker.cpp.o" "gcc" "src/runtime/CMakeFiles/phish_rt_simdist.dir/simdist/sim_worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/phish_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/phish_net.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/phish_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phish_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/phish_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
