# Empty compiler generated dependencies file for phish_rt_simdist.
# This may be replaced when dependencies are built.
