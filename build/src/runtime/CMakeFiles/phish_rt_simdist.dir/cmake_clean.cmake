file(REMOVE_RECURSE
  "CMakeFiles/phish_rt_simdist.dir/simdist/job_manager.cpp.o"
  "CMakeFiles/phish_rt_simdist.dir/simdist/job_manager.cpp.o.d"
  "CMakeFiles/phish_rt_simdist.dir/simdist/macro_cluster.cpp.o"
  "CMakeFiles/phish_rt_simdist.dir/simdist/macro_cluster.cpp.o.d"
  "CMakeFiles/phish_rt_simdist.dir/simdist/owner_trace.cpp.o"
  "CMakeFiles/phish_rt_simdist.dir/simdist/owner_trace.cpp.o.d"
  "CMakeFiles/phish_rt_simdist.dir/simdist/sim_cluster.cpp.o"
  "CMakeFiles/phish_rt_simdist.dir/simdist/sim_cluster.cpp.o.d"
  "CMakeFiles/phish_rt_simdist.dir/simdist/sim_worker.cpp.o"
  "CMakeFiles/phish_rt_simdist.dir/simdist/sim_worker.cpp.o.d"
  "libphish_rt_simdist.a"
  "libphish_rt_simdist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phish_rt_simdist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
