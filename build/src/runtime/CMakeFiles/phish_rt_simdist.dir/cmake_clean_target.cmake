file(REMOVE_RECURSE
  "libphish_rt_simdist.a"
)
