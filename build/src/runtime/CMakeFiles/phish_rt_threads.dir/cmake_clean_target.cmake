file(REMOVE_RECURSE
  "libphish_rt_threads.a"
)
