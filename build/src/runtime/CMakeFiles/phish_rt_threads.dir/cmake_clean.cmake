file(REMOVE_RECURSE
  "CMakeFiles/phish_rt_threads.dir/threads/threads_runtime.cpp.o"
  "CMakeFiles/phish_rt_threads.dir/threads/threads_runtime.cpp.o.d"
  "libphish_rt_threads.a"
  "libphish_rt_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phish_rt_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
