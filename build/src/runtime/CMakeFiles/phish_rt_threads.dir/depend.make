# Empty dependencies file for phish_rt_threads.
# This may be replaced when dependencies are built.
