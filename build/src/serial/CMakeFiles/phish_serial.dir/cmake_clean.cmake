file(REMOVE_RECURSE
  "CMakeFiles/phish_serial.dir/buffer.cpp.o"
  "CMakeFiles/phish_serial.dir/buffer.cpp.o.d"
  "libphish_serial.a"
  "libphish_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phish_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
