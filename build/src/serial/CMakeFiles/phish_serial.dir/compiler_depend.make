# Empty compiler generated dependencies file for phish_serial.
# This may be replaced when dependencies are built.
