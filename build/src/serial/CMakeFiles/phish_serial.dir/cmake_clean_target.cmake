file(REMOVE_RECURSE
  "libphish_serial.a"
)
