file(REMOVE_RECURSE
  "CMakeFiles/phish_net.dir/loop_net.cpp.o"
  "CMakeFiles/phish_net.dir/loop_net.cpp.o.d"
  "CMakeFiles/phish_net.dir/rpc.cpp.o"
  "CMakeFiles/phish_net.dir/rpc.cpp.o.d"
  "CMakeFiles/phish_net.dir/sim_net.cpp.o"
  "CMakeFiles/phish_net.dir/sim_net.cpp.o.d"
  "CMakeFiles/phish_net.dir/timer_service.cpp.o"
  "CMakeFiles/phish_net.dir/timer_service.cpp.o.d"
  "CMakeFiles/phish_net.dir/udp_net.cpp.o"
  "CMakeFiles/phish_net.dir/udp_net.cpp.o.d"
  "libphish_net.a"
  "libphish_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phish_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
