# Empty compiler generated dependencies file for phish_net.
# This may be replaced when dependencies are built.
