
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/loop_net.cpp" "src/net/CMakeFiles/phish_net.dir/loop_net.cpp.o" "gcc" "src/net/CMakeFiles/phish_net.dir/loop_net.cpp.o.d"
  "/root/repo/src/net/rpc.cpp" "src/net/CMakeFiles/phish_net.dir/rpc.cpp.o" "gcc" "src/net/CMakeFiles/phish_net.dir/rpc.cpp.o.d"
  "/root/repo/src/net/sim_net.cpp" "src/net/CMakeFiles/phish_net.dir/sim_net.cpp.o" "gcc" "src/net/CMakeFiles/phish_net.dir/sim_net.cpp.o.d"
  "/root/repo/src/net/timer_service.cpp" "src/net/CMakeFiles/phish_net.dir/timer_service.cpp.o" "gcc" "src/net/CMakeFiles/phish_net.dir/timer_service.cpp.o.d"
  "/root/repo/src/net/udp_net.cpp" "src/net/CMakeFiles/phish_net.dir/udp_net.cpp.o" "gcc" "src/net/CMakeFiles/phish_net.dir/udp_net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/phish_util.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/phish_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phish_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
