file(REMOVE_RECURSE
  "libphish_net.a"
)
