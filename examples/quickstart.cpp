// Quickstart: the Phish programming model in one file.
//
// Tasks are continuation-passing closures: a task either sends its result to
// its continuation, or spawns children that feed a join closure which sends
// onward.  This example defines doubly-recursive Fibonacci exactly the way a
// Phish application would have been written in 1994 (minus the C
// preprocessor), then runs it on the shared-memory threads runtime.
//
//   build/examples/quickstart [--n=28] [--workers=4]
#include <cstdio>

#include "core/task_registry.hpp"
#include "core/worker_core.hpp"
#include "runtime/threads/threads_runtime.hpp"
#include "util/flags.hpp"

using namespace phish;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const std::int64_t n = flags.get_int("n", 28);
  const int workers = static_cast<int>(flags.get_int("workers", 4));

  TaskRegistry registry;

  // The join: two slots; when both children have sent their values, add
  // them and pass the sum to our own continuation.
  const TaskId sum = registry.add("sum", [](Context& cx, Closure& c) {
    cx.send(c.cont, c.args[0].as_int() + c.args[1].as_int());
  });

  // The worker task: either answer directly or fork two children joined by
  // `sum`.
  const TaskId fib = registry.add("fib", [sum](Context& cx, Closure& c) {
    const std::int64_t k = c.args[0].as_int();
    if (k < 2) {
      cx.send(c.cont, k);
      return;
    }
    const ClosureId join = cx.make_join(sum, /*nslots=*/2, c.cont);
    cx.spawn(c.task, {Value(k - 1)}, cx.slot(join, 0));
    cx.spawn(c.task, {Value(k - 2)}, cx.slot(join, 1));
  });

  rt::ThreadsConfig config;
  config.workers = workers;
  rt::ThreadsRuntime runtime(registry, config);
  const auto result = runtime.run(fib, {Value(n)});

  std::printf("fib(%lld) = %lld\n", static_cast<long long>(n),
              static_cast<long long>(result.value.as_int()));
  std::printf("workers            %d\n", workers);
  std::printf("elapsed            %.3f s\n", result.elapsed_seconds);
  std::printf("tasks executed     %llu\n",
              static_cast<unsigned long long>(result.aggregate.tasks_executed));
  std::printf("tasks stolen       %llu\n",
              static_cast<unsigned long long>(
                  result.aggregate.tasks_stolen_by_me));
  std::printf("max tasks in use   %llu   (LIFO keeps this ~ recursion depth)\n",
              static_cast<unsigned long long>(
                  result.aggregate.max_tasks_in_use));
  return 0;
}
