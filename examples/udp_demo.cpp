// Phish on real UDP sockets: the 1994 system end-to-end on loopback.
// Starts a Clearinghouse and N workers, each with its own datagram socket;
// the workers register, steal over RPC, exchange argument datagrams, and
// deliver the result reliably.
//
//   build/examples/udp_demo [--workers=3] [--n=11] [--port=36000]
#include <cstdio>

#include "apps/nqueens/nqueens.hpp"
#include "runtime/udp/udp_runtime.hpp"
#include "util/flags.hpp"

using namespace phish;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int workers = static_cast<int>(flags.get_int("workers", 3));
  const std::int64_t n = flags.get_int("n", 11);
  const auto port = static_cast<std::uint16_t>(flags.get_int("port", 36000));

  TaskRegistry registry;
  const TaskId root = apps::register_nqueens(registry,
                                             /*sequential_rows=*/6);

  rt::UdpJobConfig config;
  config.workers = workers;
  config.net.base_port = port;
  config.clearinghouse.detect_failures = false;

  std::printf("starting clearinghouse on udp://127.0.0.1:%u and %d workers "
              "on the following ports\n",
              port, workers);
  for (int i = 1; i <= workers; ++i) std::printf("  worker %d: %u\n", i,
                                                 port + i);

  rt::UdpJob job(registry, config);
  const auto result = job.run(root, {Value(n)});

  std::printf("\nnqueens(%lld) = %lld  (expected %lld)\n",
              static_cast<long long>(n),
              static_cast<long long>(result.value.as_int()),
              static_cast<long long>(
                  apps::nqueens_serial(static_cast<int>(n))));
  std::printf("elapsed         %.3f s\n", result.elapsed_seconds);
  std::printf("tasks executed  %llu\n",
              static_cast<unsigned long long>(result.aggregate.tasks_executed));
  std::printf("tasks stolen    %llu\n",
              static_cast<unsigned long long>(
                  result.aggregate.tasks_stolen_by_me));
  std::printf("datagrams sent  %llu\n",
              static_cast<unsigned long long>(result.messages_sent));
  return result.value.as_int() ==
                 apps::nqueens_serial(static_cast<int>(n))
             ? 0
             : 1;
}
