// Adaptive parallelism under the macro scheduler: workstations with
// synthetic owners join jobs when idle and leave when reclaimed, exactly the
// paper's Figure 2 deployment.  Two pfold jobs are submitted to the
// PhishJobQ; each workstation runs a PhishJobManager over a random
// (Poisson-session) owner trace.
//
//   build/examples/adaptive_cluster [--workstations=8] [--jobs=2]
//                                   [--polymer=16] [--seed=3]
#include <cstdio>

#include "apps/pfold/pfold.hpp"
#include "runtime/simdist/macro_cluster.hpp"
#include "util/flags.hpp"

using namespace phish;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int workstations = static_cast<int>(flags.get_int("workstations", 8));
  const int jobs = static_cast<int>(flags.get_int("jobs", 2));
  const std::int64_t polymer = flags.get_int("polymer", 16);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 3));

  TaskRegistry registry;
  apps::register_pfold(registry, /*sequential_monomers=*/6);

  rt::MacroConfig config;
  config.seed = seed;
  config.clearinghouse.detect_failures = false;
  config.manager.logout_poll = 2 * sim::kSecond;
  config.manager.job_poll = sim::kSecond;
  config.manager.owner_poll = 200 * sim::kMillisecond;
  config.worker.heartbeat_period = 0;
  config.worker.update_period = 2 * sim::kSecond;
  config.worker.max_failed_steals = 200;

  rt::MacroCluster cluster(registry, config);
  for (int i = 0; i < workstations; ++i) {
    // Owners come and go: idle gaps ~20 s, sessions ~8 s (compressed time
    // scale so the demo finishes quickly).
    cluster.add_workstation(rt::OwnerTrace::poisson_sessions(
        seed * 100 + static_cast<std::uint64_t>(i), 20 * sim::kSecond,
        8 * sim::kSecond, 3600 * sim::kSecond));
  }
  for (int j = 0; j < jobs; ++j) {
    cluster.submit_job("pfold-" + std::to_string(j), "pfold.root",
                       {Value(polymer)},
                       static_cast<sim::SimTime>(j) * sim::kSecond);
  }

  const auto records = cluster.run();

  std::printf("%d workstations with random owners, %d pfold(%lld) jobs\n\n",
              workstations, jobs, static_cast<long long>(polymer));
  const Histogram expected = apps::pfold_serial(static_cast<int>(polymer));
  for (const auto& r : records) {
    const bool exact =
        apps::decode_histogram(r.result.as_blob()) == expected;
    std::printf("job %-10s submitted %.1fs completed %.2fs turnaround %.2fs "
                "workstation-joins %llu result %s\n",
                r.name.c_str(), sim::to_seconds(r.submitted_at),
                sim::to_seconds(r.completed_at), r.turnaround_seconds(),
                static_cast<unsigned long long>(r.assignments),
                exact ? "exact" : "WRONG");
  }

  std::printf("\nper-workstation macro activity:\n");
  for (int i = 0; i < workstations; ++i) {
    const auto& s = cluster.manager(i).stats();
    std::printf("  ws%-2d workers started %llu, reclaimed by owner %llu, "
                "self-terminated %llu, harvested %.2f s\n",
                i, static_cast<unsigned long long>(s.workers_started),
                static_cast<unsigned long long>(s.workers_reclaimed),
                static_cast<unsigned long long>(s.workers_self_terminated),
                sim::to_seconds(s.harvested_time));
  }
  const auto q = cluster.jobq().stats();
  std::printf("\nPhishJobQ: %llu requests, %llu assignments, %llu empty "
              "replies\n",
              static_cast<unsigned long long>(q.requests),
              static_cast<unsigned long long>(q.assignments),
              static_cast<unsigned long long>(q.empty_replies));
  return 0;
}
