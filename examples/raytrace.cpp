// Ray tracing, the paper's coarse-grain application: render a scene in
// parallel with work-stealing tiles, verify the frame is byte-identical to
// the serial renderer, and write a PPM you can open.
//
//   build/examples/raytrace [--width=320] [--height=240] [--workers=4]
//                           [--tile=1024] [--out=render.ppm]
#include <cstdio>

#include "apps/ray/ray.hpp"
#include "runtime/threads/threads_runtime.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace phish;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const int width = static_cast<int>(flags.get_int("width", 320));
  const int height = static_cast<int>(flags.get_int("height", 240));
  const int workers = static_cast<int>(flags.get_int("workers", 4));
  const int tile = static_cast<int>(flags.get_int("tile", 1024));
  const std::string out = flags.get_string("out", "render.ppm");

  const apps::Scene scene = apps::make_default_scene();

  Stopwatch serial_watch;
  const apps::Image serial = apps::render_serial(scene, width, height);
  const double serial_s = serial_watch.elapsed_seconds();

  TaskRegistry registry;
  const TaskId root = apps::register_ray(registry, scene, width, height, tile);
  rt::ThreadsConfig config;
  config.workers = workers;
  rt::ThreadsRuntime runtime(registry, config);
  const auto result = runtime.run(root, {});
  const apps::Image parallel = apps::decode_image_blob(result.value.as_blob());

  std::printf("frame              %dx%d, tile <= %d px\n", width, height,
              tile);
  std::printf("serial render      %.3f s\n", serial_s);
  std::printf("parallel render    %.3f s on %d workers\n",
              result.elapsed_seconds, workers);
  std::printf("tiles (tasks)      %llu, stolen %llu\n",
              static_cast<unsigned long long>(result.aggregate.tasks_executed),
              static_cast<unsigned long long>(
                  result.aggregate.tasks_stolen_by_me));
  std::printf("byte-identical     %s\n",
              parallel == serial ? "yes" : "NO (bug!)");

  apps::write_ppm(parallel, out);
  std::printf("wrote              %s\n", out.c_str());
  return parallel == serial ? 0 : 1;
}
