// pfold on a simulated network of workstations: the paper's headline
// experiment as a runnable demo.  Folds a polymer on P simulated
// workstations, prints the energy histogram, the per-participant times, and
// the Table-2 locality statistics, and (optionally) crashes a worker
// mid-run to show the redo-based fault tolerance keeping the histogram
// exact.
//
//   build/examples/pfold_cluster [--polymer=16] [--cutoff=6]
//                                [--participants=8] [--crash] [--seed=1]
#include <cstdio>

#include "apps/pfold/pfold.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "util/flags.hpp"

using namespace phish;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const std::int64_t polymer = flags.get_int("polymer", 16);
  const int cutoff = static_cast<int>(flags.get_int("cutoff", 6));
  const int participants = static_cast<int>(flags.get_int("participants", 8));
  const bool crash = flags.get_bool("crash", false);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));

  TaskRegistry registry;
  const TaskId root = apps::register_pfold(registry, cutoff);

  rt::SimJobConfig config;
  config.participants = participants;
  config.seed = seed;
  config.clearinghouse.detect_failures = crash;
  config.clearinghouse.heartbeat_timeout_ns = 2 * sim::kSecond;
  config.clearinghouse.failure_check_period_ns = 500 * sim::kMillisecond;
  config.worker.heartbeat_period =
      crash ? 200 * sim::kMillisecond : sim::SimTime{0};
  config.worker.update_period = 0;

  rt::SimCluster cluster(registry, config);
  if (crash && participants > 1) {
    std::printf("injecting a crash of worker %d at t=100ms...\n",
                participants - 1);
    cluster.crash_at(participants - 1, 100 * sim::kMillisecond);
  }
  const auto result = cluster.run(root, {Value(polymer)});

  const Histogram histogram =
      apps::decode_histogram(result.value.as_blob());
  const Histogram expected =
      apps::pfold_serial(static_cast<int>(polymer));

  std::printf("\npolymer of %lld monomers on a %d-workstation simulated "
              "network\n",
              static_cast<long long>(polymer), participants);
  std::printf("foldings            %llu%s\n",
              static_cast<unsigned long long>(histogram.total()),
              histogram == expected ? " (matches serial ground truth)"
                                    : " (MISMATCH - bug!)");
  std::printf("energy histogram    %s\n", histogram.to_string().c_str());
  std::printf("simulated makespan  %.3f s\n", result.makespan_seconds);
  std::printf("participant times  ");
  for (double t : result.participant_seconds) std::printf(" %.2f", t);
  std::printf("  (avg %.3f s)\n", result.average_participant_seconds);

  const auto& a = result.aggregate;
  std::printf("\nlocality statistics (cf. paper Table 2):\n");
  std::printf("  tasks executed    %llu\n",
              static_cast<unsigned long long>(a.tasks_executed));
  std::printf("  max tasks in use  %llu\n",
              static_cast<unsigned long long>(a.max_tasks_in_use));
  std::printf("  tasks stolen      %llu\n",
              static_cast<unsigned long long>(a.tasks_stolen_by_me));
  std::printf("  synchronizations  %llu (%llu non-local)\n",
              static_cast<unsigned long long>(a.synchronizations),
              static_cast<unsigned long long>(a.non_local_synchs));
  std::printf("  messages sent     %llu\n",
              static_cast<unsigned long long>(result.messages_sent));
  if (crash) {
    std::printf("  tasks redone      %llu (after the injected crash)\n",
                static_cast<unsigned long long>(a.tasks_redone));
  }
  return histogram == expected ? 0 : 1;
}
