// Checkpointing demo (the paper's §6 future work, implemented): snapshot a
// running pfold job at a quiescent instant, "write it to disk", tear the
// whole cluster down, stand up a brand-new one, and finish the job from the
// snapshot — with the exact same energy histogram.
//
//   build/examples/checkpoint_demo [--polymer=15] [--participants=4]
//                                  [--at_ms=60]
#include <cstdio>

#include "apps/pfold/pfold.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "util/flags.hpp"

using namespace phish;

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const std::int64_t polymer = flags.get_int("polymer", 15);
  const int participants = static_cast<int>(flags.get_int("participants", 4));
  const std::int64_t at_ms = flags.get_int("at_ms", 60);

  TaskRegistry registry;
  const TaskId root = apps::register_pfold(registry,
                                           /*sequential_monomers=*/5);

  auto config = [&](std::uint64_t seed) {
    rt::SimJobConfig cfg;
    cfg.participants = participants;
    cfg.seed = seed;
    cfg.clearinghouse.detect_failures = false;
    cfg.worker.heartbeat_period = 0;
    cfg.worker.update_period = 0;
    return cfg;
  };

  // Phase 1: run with a checkpoint request, to completion.
  rt::SimCluster original(registry, config(1));
  original.request_checkpoint_at(static_cast<sim::SimTime>(at_ms) *
                                 sim::kMillisecond);
  const auto full = original.run(root, {Value(polymer)});
  if (!original.checkpoint()) {
    std::printf("job finished before t=%lld ms; nothing to checkpoint "
                "(try a larger --polymer)\n",
                static_cast<long long>(at_ms));
    return 1;
  }
  const auto& checkpoint = *original.checkpoint();
  const Bytes on_disk = checkpoint.encode();

  std::size_t closures = 0;
  for (const auto& s : checkpoint.worker_states) closures += s.size();
  std::printf("checkpoint taken at t=%.3f s: %zu worker states, %zu bytes "
              "serialized\n",
              sim::to_seconds(checkpoint.taken_at),
              checkpoint.worker_states.size(), on_disk.size());

  // Phase 2: "reboot the lab" — new simulator, network, clearinghouse,
  // workers — and resume from the serialized snapshot.
  const auto loaded = rt::JobCheckpoint::decode(on_disk);
  if (!loaded) {
    std::printf("checkpoint failed to decode!\n");
    return 1;
  }
  rt::SimCluster restored(registry, config(2));
  const auto resumed = restored.resume(*loaded);

  const Histogram expected = apps::pfold_serial(static_cast<int>(polymer));
  const bool full_ok = apps::decode_histogram(full.value.as_blob()) == expected;
  const bool resumed_ok =
      apps::decode_histogram(resumed.value.as_blob()) == expected;

  std::printf("\noriginal run   %.3f sim-s, %llu tasks, result %s\n",
              full.makespan_seconds,
              static_cast<unsigned long long>(full.aggregate.tasks_executed),
              full_ok ? "exact" : "WRONG");
  std::printf("resumed run    %.3f sim-s, %llu tasks (only the remainder), "
              "result %s\n",
              resumed.makespan_seconds,
              static_cast<unsigned long long>(
                  resumed.aggregate.tasks_executed),
              resumed_ok ? "exact" : "WRONG");
  return full_ok && resumed_ok ? 0 : 1;
}
