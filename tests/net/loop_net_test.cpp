#include "net/loop_net.hpp"

#include <gtest/gtest.h>

namespace phish::net {
namespace {

TEST(LoopNet, QueuesUntilDelivered) {
  LoopNetwork net;
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  int received = 0;
  b.set_receiver([&](Message&&) { ++received; });

  a.send(NodeId{1}, 1, {});
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.in_flight(), 1u);
  EXPECT_TRUE(net.deliver_one());
  EXPECT_EQ(received, 1);
  EXPECT_FALSE(net.deliver_one());
}

TEST(LoopNet, DrainDeliversCascades) {
  LoopNetwork net;
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  auto& c = net.channel(NodeId{2});
  int c_received = 0;
  // b forwards to c on receipt: drain must deliver the induced message too.
  b.set_receiver([&](Message&& m) {
    net.channel(NodeId{1}).send(NodeId{2}, m.type, std::move(m.payload));
  });
  c.set_receiver([&](Message&&) { ++c_received; });

  a.send(NodeId{1}, 9, {});
  const std::size_t delivered = net.drain();
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(c_received, 1);
}

TEST(LoopNet, FifoOrder) {
  LoopNetwork net;
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  std::vector<std::uint16_t> types;
  b.set_receiver([&](Message&& m) { types.push_back(m.type); });
  for (std::uint16_t t = 1; t <= 5; ++t) a.send(NodeId{1}, t, {});
  net.drain();
  EXPECT_EQ(types, (std::vector<std::uint16_t>{1, 2, 3, 4, 5}));
}

TEST(LoopNet, MessageToUnattachedNodeDropsSilently) {
  LoopNetwork net;
  auto& a = net.channel(NodeId{0});
  a.send(NodeId{3}, 1, {});
  EXPECT_NO_THROW(net.drain());
}

TEST(LoopNet, DropAllInFlight) {
  LoopNetwork net;
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  int received = 0;
  b.set_receiver([&](Message&&) { ++received; });
  a.send(NodeId{1}, 1, {});
  a.send(NodeId{1}, 2, {});
  net.drop_all_in_flight();
  net.drain();
  EXPECT_EQ(received, 0);
}

TEST(LoopNet, DropProbabilityInjectsLoss) {
  LoopNetwork net(/*seed=*/5);
  net.set_drop_probability(1.0);
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  int received = 0;
  b.set_receiver([&](Message&&) { ++received; });
  for (int i = 0; i < 10; ++i) a.send(NodeId{1}, 1, {});
  net.drain();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(a.stats().messages_dropped, 10u);
  EXPECT_EQ(a.stats().messages_sent, 10u);
}

TEST(LoopNet, StatsTrackTraffic) {
  LoopNetwork net;
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  b.set_receiver([](Message&&) {});
  a.send(NodeId{1}, 1, Bytes(7));
  net.drain();
  EXPECT_EQ(a.stats().messages_sent, 1u);
  EXPECT_EQ(a.stats().bytes_sent, 7u);
  EXPECT_EQ(b.stats().messages_received, 1u);
  EXPECT_EQ(b.stats().bytes_received, 7u);
}

TEST(LoopNet, ChannelIsStablePerId) {
  LoopNetwork net;
  auto& a1 = net.channel(NodeId{4});
  auto& a2 = net.channel(NodeId{4});
  EXPECT_EQ(&a1, &a2);
  EXPECT_EQ(a1.id(), (NodeId{4}));
}

}  // namespace
}  // namespace phish::net
