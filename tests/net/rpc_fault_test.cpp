// RpcNode driven through the FaultyChannel decorator: scripted per-sequence
// drop / duplicate / reorder plans verify the RPC reliability machinery with
// exact counter assertions — retransmissions, duplicate_requests, and
// at-most-once handler execution.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "net/fault.hpp"
#include "net/loop_net.hpp"
#include "net/rpc.hpp"
#include "net/sim_net.hpp"

namespace phish::net {
namespace {

Bytes encode_u64(std::uint64_t v) {
  Writer w;
  w.u64(v);
  return w.take();
}

std::uint64_t decode_u64(const Bytes& b) {
  Reader r(b);
  return r.u64();
}

/// Client RPC node speaking through a FaultyChannel; the server is clean, so
/// every fault in these tests hits the request path with a scripted fate.
struct Rig {
  sim::Simulator sim;
  SimTimerService timers{sim};
  LoopNetwork net;
  LoopChannel& server_ch{net.channel(NodeId{1})};
  LoopChannel& client_ch{net.channel(NodeId{0})};
  FaultyChannel faulty;
  RpcNode server{server_ch, timers};
  RpcNode client;

  explicit Rig(const FaultPlan& plan)
      : faulty(client_ch, plan), client(faulty, timers) {}
};

FaultPlan seq_rule(std::uint64_t first, std::uint64_t last,
                   double drop, double duplicate, double reorder,
                   int depth = 1) {
  FaultPlan plan;
  LinkRule rule;
  rule.first_seq = first;
  rule.last_seq = last;
  rule.drop = drop;
  rule.duplicate = duplicate;
  rule.reorder = reorder;
  rule.reorder_depth = depth;
  plan.links.push_back(rule);
  return plan;
}

TEST(RpcFault, DroppedRequestRetransmitsExactlyOnce) {
  Rig rig(seq_rule(1, 1, /*drop=*/1.0, 0, 0));
  int handler_runs = 0;
  rig.server.serve(1, [&](NodeId, const Bytes&) {
    ++handler_runs;
    return encode_u64(7);
  });
  std::optional<RpcResult> result;
  rig.client.call(NodeId{1}, 1, {},
                  [&](RpcResult r) { result = std::move(r); });
  rig.net.drain();  // first request was swallowed by the injector
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(rig.faulty.fault_stats().dropped, 1u);

  rig.sim.run(1);  // retransmission timer; attempt 2 passes the seq window
  rig.net.drain();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(handler_runs, 1);
  EXPECT_EQ(rig.client.stats().retransmissions, 1u);
  EXPECT_EQ(rig.server.stats().duplicate_requests, 0u);
}

TEST(RpcFault, DuplicatedRequestExecutesAtMostOnce) {
  Rig rig(seq_rule(1, 1, 0, /*duplicate=*/1.0, 0));
  int handler_runs = 0;
  rig.server.serve(1, [&](NodeId, const Bytes& args) {
    ++handler_runs;
    return args;
  });
  std::optional<RpcResult> result;
  rig.client.call(NodeId{1}, 1, encode_u64(11),
                  [&](RpcResult r) { result = std::move(r); });
  rig.net.drain();  // both copies arrive; second must hit the reply cache
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(decode_u64(result->reply), 11u);
  EXPECT_EQ(handler_runs, 1) << "at-most-once execution";
  EXPECT_EQ(rig.server.stats().duplicate_requests, 1u);
  EXPECT_EQ(rig.client.stats().retransmissions, 0u);
  EXPECT_EQ(rig.faulty.fault_stats().duplicated, 1u);
}

TEST(RpcFault, ReorderedRequestsBothCompleteInSwappedOrder) {
  // Hold the first request until one later send overtakes it: the server
  // must see call B before call A, and both must still complete.
  Rig rig(seq_rule(1, 1, 0, 0, /*reorder=*/1.0, /*depth=*/1));
  std::vector<std::uint64_t> server_order;
  rig.server.serve(1, [&](NodeId, const Bytes& args) {
    server_order.push_back(decode_u64(args));
    return args;
  });
  int ok_count = 0;
  rig.client.call(NodeId{1}, 1, encode_u64(100), [&](RpcResult r) {
    if (r.ok) ++ok_count;
  });
  rig.client.call(NodeId{1}, 1, encode_u64(200), [&](RpcResult r) {
    if (r.ok) ++ok_count;
  });
  rig.net.drain();
  EXPECT_EQ(server_order, (std::vector<std::uint64_t>{200, 100}));
  EXPECT_EQ(ok_count, 2);
  EXPECT_EQ(rig.faulty.fault_stats().reordered, 1u);
  EXPECT_EQ(rig.client.stats().retransmissions, 0u);
}

TEST(RpcFault, SeededLossEveryCallCompletesAndCountsMatch) {
  // Statistical plan under a fixed seed: ~30% of requests vanish; replies
  // are clean.  Every timeout therefore corresponds to exactly one injected
  // drop, so retransmissions must equal the injector's drop counter.
  FaultPlan plan;
  plan.seed = 2024;
  LinkRule rule;
  rule.drop = 0.3;
  plan.links.push_back(rule);
  Rig rig(plan);
  rig.server.serve(1, [](NodeId, const Bytes& args) { return args; });

  RetryPolicy policy;
  policy.timeout_ns = 10 * sim::kMillisecond;
  policy.max_attempts = 20;
  constexpr int kCalls = 30;
  int ok_count = 0;
  int done_count = 0;
  for (int i = 0; i < kCalls; ++i) {
    rig.client.call(NodeId{1}, 1, encode_u64(static_cast<std::uint64_t>(i)),
                    [&](RpcResult r) {
                      if (r.ok) ++ok_count;
                      ++done_count;
                    },
                    policy);
  }
  for (int step = 0; step < 5000 && done_count < kCalls; ++step) {
    rig.net.drain();
    rig.sim.run(1);
  }
  rig.net.drain();
  EXPECT_EQ(done_count, kCalls);
  EXPECT_EQ(ok_count, kCalls);
  EXPECT_GT(rig.faulty.fault_stats().dropped, 0u);
  EXPECT_EQ(rig.client.stats().retransmissions,
            rig.faulty.fault_stats().dropped);
  EXPECT_EQ(rig.server.stats().duplicate_requests, 0u);
}

TEST(RpcFault, LossyBothWaysStillCompletesWithReplyCache) {
  // Wrap BOTH directions: requests through one FaultyChannel, replies
  // through another sharing the same plan.  Reply losses force the server
  // to answer retransmissions from its reply cache.
  FaultPlan plan;
  plan.seed = 77;
  LinkRule rule;
  rule.drop = 0.25;
  plan.links.push_back(rule);

  sim::Simulator sim;
  SimTimerService timers(sim);
  LoopNetwork net;
  FaultyChannel client_faulty(net.channel(NodeId{0}), plan);
  FaultyChannel server_faulty(net.channel(NodeId{1}), plan);
  RpcNode client(client_faulty, timers);
  RpcNode server(server_faulty, timers);
  int handler_runs = 0;
  server.serve(1, [&](NodeId, const Bytes& args) {
    ++handler_runs;
    return args;
  });

  RetryPolicy policy;
  policy.timeout_ns = 10 * sim::kMillisecond;
  policy.max_attempts = 20;
  constexpr int kCalls = 20;
  int ok_count = 0;
  for (int i = 0; i < kCalls; ++i) {
    client.call(NodeId{1}, 1, encode_u64(static_cast<std::uint64_t>(i)),
                [&](RpcResult r) {
                  if (r.ok) ++ok_count;
                },
                policy);
  }
  for (int step = 0; step < 5000 && ok_count < kCalls; ++step) {
    net.drain();
    sim.run(1);
  }
  net.drain();
  EXPECT_EQ(ok_count, kCalls);
  // The handler ran exactly once per call even though requests were
  // retransmitted; lost replies were re-served from the cache.
  EXPECT_EQ(handler_runs, kCalls);
  EXPECT_EQ(server.stats().duplicate_requests,
            server_faulty.fault_stats().dropped)
      << "every lost reply makes the retransmitted request a duplicate";
}

}  // namespace
}  // namespace phish::net
