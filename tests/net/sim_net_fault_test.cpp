// SimNetwork fault behaviour: seeded drop determinism, the native
// FaultInjector hook (virtual-time drop / duplicate / delay / reorder), and
// inter-cluster latency routing.
#include "net/sim_net.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace phish::net {
namespace {

struct Arrival {
  std::uint16_t type;
  sim::SimTime at;
};

TEST(SimNetFault, DropProbabilityIsDeterministicUnderFixedSeed) {
  auto run = [] {
    sim::Simulator s;
    SimNetParams params;
    params.jitter = 0;
    params.drop_probability = 0.5;
    params.seed = 1234;
    SimNetwork net(s, params);
    std::vector<std::uint16_t> delivered;
    net.channel(NodeId{1}).set_receiver(
        [&](Message&& m) { delivered.push_back(m.type); });
    auto& sender = net.channel(NodeId{0});
    for (std::uint16_t i = 0; i < 100; ++i) sender.send(NodeId{1}, i, {});
    s.run();
    return delivered;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b) << "same seed must drop the same messages";
  EXPECT_GT(a.size(), 20u);
  EXPECT_LT(a.size(), 80u) << "half the messages should be gone";
}

TEST(SimNetFault, DifferentSeedDropsDifferentMessages) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator s;
    SimNetParams params;
    params.jitter = 0;
    params.drop_probability = 0.5;
    params.seed = seed;
    SimNetwork net(s, params);
    std::vector<std::uint16_t> delivered;
    net.channel(NodeId{1}).set_receiver(
        [&](Message&& m) { delivered.push_back(m.type); });
    auto& sender = net.channel(NodeId{0});
    for (std::uint16_t i = 0; i < 100; ++i) sender.send(NodeId{1}, i, {});
    s.run();
    return delivered;
  };
  EXPECT_NE(run(1), run(2));
}

TEST(SimNetFault, NativeInjectorDropsAndCounts) {
  sim::Simulator s;
  SimNetParams params;
  params.jitter = 0;
  SimNetwork net(s, params);
  FaultPlan plan;
  LinkRule rule;
  rule.drop = 1.0;
  plan.links.push_back(rule);
  FaultInjector injector(plan);
  net.set_fault_injector(&injector);

  int received = 0;
  net.channel(NodeId{1}).set_receiver([&](Message&&) { ++received; });
  auto& sender = net.channel(NodeId{0});
  for (int i = 0; i < 7; ++i) sender.send(NodeId{1}, 0, {});
  s.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.fault_stats().dropped, 7u);
  EXPECT_EQ(sender.stats().messages_dropped, 7u);
}

TEST(SimNetFault, NativeInjectorDuplicatesInVirtualTime) {
  sim::Simulator s;
  SimNetParams params;
  params.jitter = 0;
  SimNetwork net(s, params);
  FaultPlan plan;
  LinkRule rule;
  rule.duplicate = 1.0;
  plan.links.push_back(rule);
  FaultInjector injector(plan);
  net.set_fault_injector(&injector);

  int received = 0;
  net.channel(NodeId{1}).set_receiver([&](Message&&) { ++received; });
  net.channel(NodeId{0}).send(NodeId{1}, 0, {});
  s.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(net.fault_stats().duplicated, 1u);
}

TEST(SimNetFault, NativeInjectorDelayAddsExactVirtualLatency) {
  sim::Simulator s;
  SimNetParams params;
  params.jitter = 0;
  SimNetwork net(s, params);
  FaultPlan plan;
  LinkRule rule;  // delay exactly the first message by 5 ms
  rule.first_seq = 1;
  rule.last_seq = 1;
  rule.delay = 1.0;
  rule.extra_delay_ns = 5 * sim::kMillisecond;
  plan.links.push_back(rule);
  FaultInjector injector(plan);
  net.set_fault_injector(&injector);

  std::vector<Arrival> arrivals;
  net.channel(NodeId{1}).set_receiver(
      [&](Message&& m) { arrivals.push_back({m.type, s.now()}); });
  auto& sender = net.channel(NodeId{0});
  sender.send(NodeId{1}, 1, {});  // delayed
  sender.send(NodeId{1}, 2, {});  // normal
  s.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // The delayed message arrives last, exactly extra_delay_ns after its twin.
  EXPECT_EQ(arrivals[0].type, 2);
  EXPECT_EQ(arrivals[1].type, 1);
  EXPECT_EQ(arrivals[1].at - arrivals[0].at, 5 * sim::kMillisecond);
  EXPECT_EQ(net.fault_stats().delayed, 1u);
}

TEST(SimNetFault, NativeInjectorReorderOvertakesLaterTraffic) {
  sim::Simulator s;
  SimNetParams params;
  params.jitter = 0;
  SimNetwork net(s, params);
  FaultPlan plan;
  LinkRule rule;  // hold the first message long enough for one overtake
  rule.first_seq = 1;
  rule.last_seq = 1;
  rule.reorder = 1.0;
  rule.reorder_depth = 1;
  plan.links.push_back(rule);
  FaultInjector injector(plan);
  net.set_fault_injector(&injector);

  std::vector<std::uint16_t> order;
  net.channel(NodeId{1}).set_receiver(
      [&](Message&& m) { order.push_back(m.type); });
  auto& sender = net.channel(NodeId{0});
  sender.send(NodeId{1}, 1, {});
  sender.send(NodeId{1}, 2, {});
  s.run();
  EXPECT_EQ(order, (std::vector<std::uint16_t>{2, 1}));
  EXPECT_EQ(net.fault_stats().reordered, 1u);
}

TEST(SimNetFault, LosslessTypesPassThroughFullDrop) {
  sim::Simulator s;
  SimNetParams params;
  params.jitter = 0;
  SimNetwork net(s, params);
  FaultPlan plan;
  LinkRule rule;
  rule.drop = 1.0;
  plan.links.push_back(rule);
  plan.lossless_types = {1};  // proto::kArgument
  FaultInjector injector(plan);
  net.set_fault_injector(&injector);

  std::vector<std::uint16_t> delivered;
  net.channel(NodeId{1}).set_receiver(
      [&](Message&& m) { delivered.push_back(m.type); });
  auto& sender = net.channel(NodeId{0});
  sender.send(NodeId{1}, 1, {});  // lossless: must arrive
  sender.send(NodeId{1}, 3, {});  // droppable: must not
  s.run();
  EXPECT_EQ(delivered, (std::vector<std::uint16_t>{1}));
}

TEST(SimNetFault, InterClusterLatencyRoutesByClusterAssignment) {
  sim::Simulator s;
  SimNetParams params;
  params.jitter = 0;
  params.latency = 500 * sim::kMicrosecond;
  params.inter_cluster_latency = 10 * sim::kMillisecond;
  SimNetwork net(s, params);
  net.set_cluster(NodeId{2}, 1);  // nodes 0 and 1 stay in cluster 0

  std::vector<sim::SimTime> local_arrival, remote_arrival;
  net.channel(NodeId{1}).set_receiver(
      [&](Message&&) { local_arrival.push_back(s.now()); });
  net.channel(NodeId{2}).set_receiver(
      [&](Message&&) { remote_arrival.push_back(s.now()); });
  auto& sender = net.channel(NodeId{0});
  sender.send(NodeId{1}, 0, {});  // intra-cluster
  sender.send(NodeId{2}, 0, {});  // crosses the cluster cut
  s.run();
  ASSERT_EQ(local_arrival.size(), 1u);
  ASSERT_EQ(remote_arrival.size(), 1u);
  EXPECT_EQ(remote_arrival[0] - local_arrival[0],
            params.inter_cluster_latency - params.latency);
  EXPECT_EQ(net.inter_cluster_messages(), 1u);
}

TEST(SimNetFault, InjectorAndPartitionCompose) {
  // Partition beats the injector: a cut node receives nothing even when the
  // injector would duplicate, and fault stats only count injector decisions.
  sim::Simulator s;
  SimNetParams params;
  params.jitter = 0;
  SimNetwork net(s, params);
  FaultPlan plan;
  LinkRule rule;
  rule.duplicate = 1.0;
  plan.links.push_back(rule);
  FaultInjector injector(plan);
  net.set_fault_injector(&injector);

  int received = 0;
  net.channel(NodeId{1}).set_receiver([&](Message&&) { ++received; });
  net.partition(NodeId{1});
  net.channel(NodeId{0}).send(NodeId{1}, 0, {});
  s.run();
  EXPECT_EQ(received, 0);
  net.partition(NodeId{1}, false);
  net.channel(NodeId{0}).send(NodeId{1}, 0, {});
  s.run();
  EXPECT_EQ(received, 2) << "healed node gets the duplicate pair";
}

}  // namespace
}  // namespace phish::net
