#include "net/timer_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace phish::net {
namespace {

TEST(SimTimerService, FiresThroughSimulator) {
  sim::Simulator s;
  SimTimerService timers(s);
  bool fired = false;
  timers.schedule(100, [&] { fired = true; });
  EXPECT_EQ(timers.now_ns(), 0u);
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(timers.now_ns(), 100u);
}

TEST(SimTimerService, CancelPreventsFiring) {
  sim::Simulator s;
  SimTimerService timers(s);
  bool fired = false;
  const TimerToken t = timers.schedule(100, [&] { fired = true; });
  timers.cancel(t);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(ThreadTimerService, FiresApproximatelyOnTime) {
  ThreadTimerService timers;
  std::atomic<bool> fired{false};
  const std::uint64_t t0 = timers.now_ns();
  timers.schedule(20'000'000, [&] { fired = true; });  // 20 ms
  for (int i = 0; i < 200 && !fired; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(fired.load());
  EXPECT_GE(timers.now_ns() - t0, 19'000'000u);
}

TEST(ThreadTimerService, CancelBeforeFire) {
  ThreadTimerService timers;
  std::atomic<bool> fired{false};
  const TimerToken t = timers.schedule(50'000'000, [&] { fired = true; });
  timers.cancel(t);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(fired.load());
}

TEST(ThreadTimerService, CancelAfterFireIsSafe) {
  ThreadTimerService timers;
  std::atomic<bool> fired{false};
  const TimerToken t = timers.schedule(1'000'000, [&] { fired = true; });
  for (int i = 0; i < 200 && !fired; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(fired.load());
  EXPECT_NO_THROW(timers.cancel(t));
  EXPECT_NO_THROW(timers.cancel(TimerToken{}));
}

TEST(ThreadTimerService, MultipleTimersFireInOrder) {
  ThreadTimerService timers;
  std::mutex m;
  std::vector<int> order;
  std::atomic<int> fired{0};
  timers.schedule(30'000'000, [&] {
    std::lock_guard<std::mutex> l(m);
    order.push_back(3);
    ++fired;
  });
  timers.schedule(10'000'000, [&] {
    std::lock_guard<std::mutex> l(m);
    order.push_back(1);
    ++fired;
  });
  timers.schedule(20'000'000, [&] {
    std::lock_guard<std::mutex> l(m);
    order.push_back(2);
    ++fired;
  });
  for (int i = 0; i < 400 && fired < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::lock_guard<std::mutex> l(m);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadTimerService, CallbackCanScheduleMore) {
  ThreadTimerService timers;
  std::atomic<int> count{0};
  std::function<void()> tick = [&] {
    if (++count < 3) timers.schedule(2'000'000, tick);
  };
  timers.schedule(2'000'000, tick);
  for (int i = 0; i < 400 && count < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadTimerService, DestructionWithPendingTimersIsClean) {
  std::atomic<bool> fired{false};
  {
    ThreadTimerService timers;
    timers.schedule(10'000'000'000ULL, [&] { fired = true; });  // 10 s
  }  // destructor must not hang or fire
  EXPECT_FALSE(fired.load());
}

}  // namespace
}  // namespace phish::net
