#include "net/sim_net.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace phish::net {
namespace {

SimNetParams quiet_params() {
  SimNetParams p;
  p.jitter = 0;
  p.drop_probability = 0.0;
  return p;
}

TEST(SimNet, DeliversMessage) {
  sim::Simulator s;
  SimNetwork net(s, quiet_params());
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});

  std::vector<Message> received;
  b.set_receiver([&](Message&& m) { received.push_back(std::move(m)); });

  Writer w;
  w.str("steal?");
  a.send(NodeId{1}, 7, w.take());
  s.run();

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].src, (NodeId{0}));
  EXPECT_EQ(received[0].dst, (NodeId{1}));
  EXPECT_EQ(received[0].type, 7);
  Reader r(received[0].payload);
  EXPECT_EQ(r.str(), "steal?");
}

TEST(SimNet, DeliveryTakesLatencyPlusWireTime) {
  sim::Simulator s;
  SimNetParams p = quiet_params();
  p.latency = 1000;
  p.bytes_per_second = 1e9;  // 1 byte per ns
  SimNetwork net(s, p);
  net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});

  sim::SimTime arrival = 0;
  b.set_receiver([&](Message&&) { arrival = s.now(); });

  net.channel(NodeId{0}).send(NodeId{1}, 1, Bytes(500));
  s.run();
  EXPECT_EQ(arrival, 1000u + 500u);
}

TEST(SimNet, JitterIsBoundedAndDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator s;
    SimNetParams p = quiet_params();
    p.latency = 100;
    p.jitter = 50;
    p.seed = seed;
    p.bytes_per_second = 1e18;  // negligible wire time
    SimNetwork net(s, p);
    net.channel(NodeId{0});
    auto& b = net.channel(NodeId{1});
    std::vector<sim::SimTime> arrivals;
    b.set_receiver([&](Message&&) { arrivals.push_back(s.now()); });
    for (int i = 0; i < 20; ++i) net.channel(NodeId{0}).send(NodeId{1}, 1, {});
    s.run();
    return arrivals;
  };
  const auto a1 = run_once(7);
  const auto a2 = run_once(7);
  EXPECT_EQ(a1, a2) << "same seed must give identical delivery times";
  for (auto t : a1) {
    EXPECT_GE(t, 100u);
    EXPECT_LE(t, 150u);
  }
}

TEST(SimNet, SendCpuCostScalesWithSize) {
  sim::Simulator s;
  SimNetParams p = quiet_params();
  p.send_overhead = 1000;
  p.bytes_per_second = 1e9;
  SimNetwork net(s, p);
  EXPECT_EQ(net.send_cpu_cost(0), 1000u);
  EXPECT_EQ(net.send_cpu_cost(500), 1000u + 500u);
  EXPECT_EQ(net.recv_cpu_cost(), p.recv_overhead);
}

TEST(SimNet, StatsCountSendsAndReceives) {
  sim::Simulator s;
  SimNetwork net(s, quiet_params());
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  b.set_receiver([](Message&&) {});
  a.send(NodeId{1}, 1, Bytes(10));
  a.send(NodeId{1}, 1, Bytes(20));
  s.run();
  EXPECT_EQ(a.stats().messages_sent, 2u);
  EXPECT_EQ(a.stats().bytes_sent, 30u);
  EXPECT_EQ(b.stats().messages_received, 2u);
  EXPECT_EQ(b.stats().bytes_received, 30u);
  const ChannelStats total = net.total_stats();
  EXPECT_EQ(total.messages_sent, 2u);
  EXPECT_EQ(total.messages_received, 2u);
}

TEST(SimNet, DropProbabilityOneDropsEverything) {
  sim::Simulator s;
  SimNetParams p = quiet_params();
  p.drop_probability = 1.0;
  SimNetwork net(s, p);
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  int received = 0;
  b.set_receiver([&](Message&&) { ++received; });
  for (int i = 0; i < 10; ++i) a.send(NodeId{1}, 1, {});
  s.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(a.stats().messages_dropped, 10u);
}

TEST(SimNet, DropProbabilityIsApproximatelyHonored) {
  sim::Simulator s;
  SimNetParams p = quiet_params();
  p.drop_probability = 0.3;
  SimNetwork net(s, p);
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  int received = 0;
  b.set_receiver([&](Message&&) { ++received; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) a.send(NodeId{1}, 1, {});
  s.run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.7, 0.05);
}

TEST(SimNet, PartitionSimulatesCrash) {
  sim::Simulator s;
  SimNetwork net(s, quiet_params());
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  int received = 0;
  b.set_receiver([&](Message&&) { ++received; });

  a.send(NodeId{1}, 1, {});
  s.run();
  EXPECT_EQ(received, 1);

  net.partition(NodeId{1});
  EXPECT_TRUE(net.is_partitioned(NodeId{1}));
  a.send(NodeId{1}, 1, {});
  s.run();
  EXPECT_EQ(received, 1);

  net.partition(NodeId{1}, false);
  a.send(NodeId{1}, 1, {});
  s.run();
  EXPECT_EQ(received, 2);
}

TEST(SimNet, PartitionDropsInFlightMessages) {
  sim::Simulator s;
  SimNetwork net(s, quiet_params());
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  int received = 0;
  b.set_receiver([&](Message&&) { ++received; });
  a.send(NodeId{1}, 1, {});
  net.partition(NodeId{1});  // dies while the message is on the wire
  s.run();
  EXPECT_EQ(received, 0);
}

TEST(SimNet, MessageToUnknownNodeIsDropped) {
  sim::Simulator s;
  SimNetwork net(s, quiet_params());
  auto& a = net.channel(NodeId{0});
  a.send(NodeId{55}, 1, {});
  EXPECT_NO_THROW(s.run());
}

TEST(SimNet, NilNodeIdRejected) {
  sim::Simulator s;
  SimNetwork net(s, quiet_params());
  EXPECT_THROW(net.channel(kNilNode), std::invalid_argument);
}

TEST(SimNet, Cm5LikeParamsAreFaster) {
  const SimNetParams ws;  // workstation defaults
  const SimNetParams cm5 = SimNetParams::cm5_like();
  EXPECT_LT(cm5.send_overhead * 50, ws.send_overhead);
  EXPECT_LT(cm5.latency * 50, ws.latency);
  EXPECT_GT(cm5.bytes_per_second, ws.bytes_per_second * 50);
}

TEST(SimNet, SelfSendDelivers) {
  sim::Simulator s;
  SimNetwork net(s, quiet_params());
  auto& a = net.channel(NodeId{0});
  int received = 0;
  a.set_receiver([&](Message&& m) {
    EXPECT_EQ(m.src, m.dst);
    ++received;
  });
  a.send(NodeId{0}, 1, {});
  s.run();
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace phish::net
