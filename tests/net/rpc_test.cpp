// RPC layer tests run over three transports:
//  * LoopNetwork + manual stepping — deterministic protocol state machine
//    tests including loss and retransmission.
//  * SimNetwork + simulator — timeout behaviour in virtual time.
//  * UdpNetwork + ThreadTimerService — end-to-end over real sockets.
#include "net/rpc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/loop_net.hpp"
#include "net/sim_net.hpp"
#include "net/udp_net.hpp"

namespace phish::net {
namespace {

// --- Loop-network fixture: manual clock via SimTimerService + Simulator. ---
// We use the simulator purely as a timer wheel; messages flow through the
// loop network, which we drain explicitly.
class RpcLoopTest : public ::testing::Test {
 protected:
  RpcLoopTest()
      : timers_(sim_),
        server_node_(net_.channel(NodeId{1})),
        client_node_(net_.channel(NodeId{0})),
        server_(server_node_, timers_),
        client_(client_node_, timers_) {}

  sim::Simulator sim_;
  SimTimerService timers_;
  LoopNetwork net_;
  LoopChannel& server_node_;
  LoopChannel& client_node_;
  RpcNode server_;
  RpcNode client_;
};

Bytes encode_u64(std::uint64_t v) {
  Writer w;
  w.u64(v);
  return w.take();
}

std::uint64_t decode_u64(const Bytes& b) {
  Reader r(b);
  return r.u64();
}

TEST_F(RpcLoopTest, BasicCallReply) {
  server_.serve(1, [](NodeId, const Bytes& args) {
    return encode_u64(decode_u64(args) + 1);
  });
  std::optional<RpcResult> result;
  client_.call(NodeId{1}, 1, encode_u64(41),
               [&](RpcResult r) { result = std::move(r); });
  net_.drain();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(decode_u64(result->reply), 42u);
}

TEST_F(RpcLoopTest, MultipleOutstandingCalls) {
  server_.serve(1, [](NodeId, const Bytes& args) {
    return encode_u64(decode_u64(args) * 2);
  });
  std::vector<std::uint64_t> replies;
  for (std::uint64_t i = 0; i < 10; ++i) {
    client_.call(NodeId{1}, 1, encode_u64(i), [&](RpcResult r) {
      ASSERT_TRUE(r.ok);
      replies.push_back(decode_u64(r.reply));
    });
  }
  net_.drain();
  ASSERT_EQ(replies.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(replies[i], i * 2);
}

TEST_F(RpcLoopTest, RetransmitAfterRequestLoss) {
  server_.serve(1, [](NodeId, const Bytes&) { return encode_u64(7); });
  std::optional<RpcResult> result;
  client_.call(NodeId{1}, 1, {}, [&](RpcResult r) { result = std::move(r); });

  // Lose the first request.
  net_.drop_all_in_flight();
  EXPECT_FALSE(result.has_value());

  // Fire exactly the retransmission timer; this time let it through.
  sim_.run(1);  // fires the first timeout -> retransmit
  net_.drain();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(client_.stats().retransmissions, 1u);
}

TEST_F(RpcLoopTest, RetransmitAfterReplyLossUsesReplyCache) {
  int handler_runs = 0;
  server_.serve(1, [&](NodeId, const Bytes&) {
    ++handler_runs;
    return encode_u64(7);
  });
  std::optional<RpcResult> result;
  client_.call(NodeId{1}, 1, {}, [&](RpcResult r) { result = std::move(r); });

  // Deliver the request, then lose the reply.
  ASSERT_TRUE(net_.deliver_one());
  EXPECT_EQ(handler_runs, 1);
  net_.drop_all_in_flight();

  // Retransmit: server must answer from its reply cache, not run the handler
  // again (at-most-once execution).
  sim_.run(1);
  net_.drain();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(handler_runs, 1);
  EXPECT_EQ(server_.stats().duplicate_requests, 1u);
}

TEST_F(RpcLoopTest, FailsAfterRetryBudget) {
  // No handler registered anywhere = every attempt times out.
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.timeout_ns = 1000;
  std::optional<RpcResult> result;
  client_.call(NodeId{5}, 9, {}, [&](RpcResult r) { result = std::move(r); },
               policy);
  // Drive timers to exhaustion.
  sim_.run();
  EXPECT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(client_.stats().calls_failed, 1u);
  EXPECT_EQ(client_.stats().retransmissions, 2u);  // attempts 2 and 3
}

TEST_F(RpcLoopTest, ExponentialBackoffBetweenRetries) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.timeout_ns = 100;
  policy.backoff = 2.0;
  policy.jitter = 0.0;  // exact-timing assertions below
  policy.adaptive = false;
  bool failed = false;
  client_.call(NodeId{5}, 9, {}, [&](RpcResult r) { failed = !r.ok; }, policy);
  // Attempts at t=0, 100, 300, 700; failure at 1500.
  sim_.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(sim_.now(), 100u + 200u + 400u + 800u);
}

TEST_F(RpcLoopTest, UnknownMethodTimesOut) {
  server_.serve(1, [](NodeId, const Bytes&) { return Bytes{}; });
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.timeout_ns = 50;
  std::optional<RpcResult> result;
  client_.call(NodeId{1}, 99, {},  // method 99 not registered
               [&](RpcResult r) { result = std::move(r); }, policy);
  net_.drain();
  sim_.run();
  net_.drain();
  sim_.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
}

TEST_F(RpcLoopTest, OnewayMessagesBypassRpc) {
  std::vector<std::uint16_t> types;
  server_.set_oneway_handler([&](Message&& m) { types.push_back(m.type); });
  client_.send_oneway(NodeId{1}, 17, encode_u64(5));
  client_.send_oneway(NodeId{1}, 18, encode_u64(6));
  net_.drain();
  EXPECT_EQ(types, (std::vector<std::uint16_t>{17, 18}));
}

TEST_F(RpcLoopTest, ServerCanCallBackDuringHandler) {
  // Clearinghouse-style pattern: handling a request triggers a call to a
  // third node.  Must not deadlock.
  auto& third_node = net_.channel(NodeId{2});
  RpcNode third(third_node, timers_);
  third.serve(2, [](NodeId, const Bytes&) { return encode_u64(99); });

  std::optional<std::uint64_t> from_third;
  server_.serve(1, [&](NodeId, const Bytes&) {
    server_.call(NodeId{2}, 2, {}, [&](RpcResult r) {
      if (r.ok) from_third = decode_u64(r.reply);
    });
    return encode_u64(1);
  });

  std::optional<RpcResult> result;
  client_.call(NodeId{1}, 1, {}, [&](RpcResult r) { result = std::move(r); });
  net_.drain();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(from_third.has_value());
  EXPECT_EQ(*from_third, 99u);
}

TEST_F(RpcLoopTest, MalformedFramesAreIgnored) {
  server_.serve(1, [](NodeId, const Bytes&) { return Bytes{}; });
  // Send a truncated "request" directly on the channel.
  client_node_.send(NodeId{1}, kRpcRequest, Bytes{1, 2});
  EXPECT_NO_THROW(net_.drain());
  // Bogus reply to a request id nobody sent.
  Writer w;
  w.u64(0xdeadbeef);
  w.blob(nullptr, 0);
  server_node_.send(NodeId{0}, kRpcReply, w.take());
  EXPECT_NO_THROW(net_.drain());
}

TEST_F(RpcLoopTest, DestructionFailsPendingCalls) {
  bool done = false;
  bool ok = true;
  {
    auto& extra_node = net_.channel(NodeId{3});
    RpcNode extra(extra_node, timers_);
    extra.call(NodeId{1}, 1, {}, [&](RpcResult r) {
      done = true;
      ok = r.ok;
    });
  }  // destroyed with the call outstanding
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
}

TEST_F(RpcLoopTest, KarnRuleIgnoresRetransmittedSamples) {
  server_.serve(1, [](NodeId, const Bytes&) { return Bytes{}; });
  std::optional<RpcResult> result;
  client_.call(NodeId{1}, 1, {}, [&](RpcResult r) { result = std::move(r); });
  net_.drop_all_in_flight();  // lose attempt 1
  sim_.run(1);                // retransmission timer -> attempt 2
  net_.drain();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  // The reply matched a retransmitted request: the RTT sample is ambiguous
  // (Karn's rule) and must not enter the estimator.
  EXPECT_EQ(client_.stats().rtt_samples, 0u);
  EXPECT_FALSE(client_.rtt_estimate(NodeId{1}).valid);

  result.reset();
  client_.call(NodeId{1}, 1, {}, [&](RpcResult r) { result = std::move(r); });
  net_.drain();  // clean first-attempt reply
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(client_.stats().rtt_samples, 1u);
  EXPECT_TRUE(client_.rtt_estimate(NodeId{1}).valid);
}

TEST_F(RpcLoopTest, PausedServerLooksCrashed) {
  int handler_runs = 0;
  server_.serve(1, [&](NodeId, const Bytes&) {
    ++handler_runs;
    return Bytes{};
  });
  server_.set_paused(true);
  RetryPolicy policy;
  policy.timeout_ns = 100;
  policy.max_attempts = 3;
  policy.jitter = 0.0;
  policy.adaptive = false;
  std::optional<RpcResult> result;
  client_.call(NodeId{1}, 1, {}, [&](RpcResult r) { result = std::move(r); },
               policy);
  net_.drain();  // attempt 1 reaches the paused node and is dropped
  sim_.run();    // remaining attempts + final failure
  net_.drain();  // retransmits also dropped while paused
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(handler_runs, 0) << "a paused node must not execute handlers";

  // Unpause: the node serves again with no reconstruction.
  server_.set_paused(false);
  result.reset();
  client_.call(NodeId{1}, 1, {}, [&](RpcResult r) { result = std::move(r); },
               policy);
  net_.drain();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(handler_runs, 1);
}

TEST_F(RpcLoopTest, PausedClientDropsOutbound) {
  int handler_runs = 0;
  server_.serve(1, [&](NodeId, const Bytes&) {
    ++handler_runs;
    return Bytes{};
  });
  client_.set_paused(true);
  RetryPolicy policy;
  policy.timeout_ns = 100;
  policy.max_attempts = 2;
  policy.jitter = 0.0;
  policy.adaptive = false;
  std::optional<RpcResult> result;
  client_.call(NodeId{1}, 1, {}, [&](RpcResult r) { result = std::move(r); },
               policy);
  client_.send_oneway(NodeId{1}, 17, {});
  net_.drain();
  sim_.run();
  net_.drain();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok) << "paused nodes fail calls by retry exhaustion";
  EXPECT_EQ(handler_runs, 0);
}

// Deterministic backoff jitter: the retransmit schedule is a pure function
// of the jitter seed, so chaos replays reproduce byte-for-byte, while
// different seeds decorrelate workers backing off from one loss burst.
TEST(RpcJitter, ScheduleIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim;
    SimTimerService timers(sim);
    LoopNetwork net;
    RpcNode client(net.channel(NodeId{0}), timers);
    client.set_jitter_seed(seed);
    RetryPolicy policy;
    policy.timeout_ns = 1000;
    policy.max_attempts = 4;
    policy.backoff = 2.0;
    policy.jitter = 0.5;
    policy.adaptive = false;
    bool failed = false;
    client.call(NodeId{5}, 9, {}, [&](RpcResult r) { failed = !r.ok; },
                policy);
    sim.run();
    EXPECT_TRUE(failed);
    return sim.now();
  };
  const auto a1 = run_once(111);
  const auto a2 = run_once(111);
  const auto b = run_once(222);
  EXPECT_EQ(a1, a2) << "same seed, same retransmit schedule";
  EXPECT_NE(a1, b) << "different seed, decorrelated schedule";
  // Jitter only stretches timeouts, never shortens them.
  EXPECT_GE(a1, 1000u + 2000u + 4000u + 8000u);
}

// --- Simulated-network end-to-end (timers and transport share the clock). ---

TEST(RpcSim, CallOverSimNetwork) {
  sim::Simulator s;
  SimNetParams params;
  params.jitter = 0;
  SimNetwork net(s, params);
  SimTimerService timers(s);
  RpcNode server(net.channel(NodeId{1}), timers);
  RpcNode client(net.channel(NodeId{0}), timers);
  server.serve(1, [](NodeId src, const Bytes&) {
    EXPECT_EQ(src, (NodeId{0}));
    return encode_u64(123);
  });
  std::optional<RpcResult> result;
  client.call(NodeId{1}, 1, {}, [&](RpcResult r) { result = std::move(r); });
  s.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(decode_u64(result->reply), 123u);
  // Round trip took at least 2x latency.
  EXPECT_GE(s.now(), 2 * params.latency);
}

TEST(RpcSim, AdaptiveRttTracksNetworkLatency) {
  sim::Simulator s;
  SimNetParams params;
  params.jitter = 0;
  SimNetwork net(s, params);
  SimTimerService timers(s);
  RpcNode server(net.channel(NodeId{1}), timers);
  RpcNode client(net.channel(NodeId{0}), timers);
  server.serve(1, [](NodeId, const Bytes& args) { return args; });
  for (int i = 0; i < 8; ++i) {
    client.call(NodeId{1}, 1, {}, [](RpcResult r) { EXPECT_TRUE(r.ok); });
    s.run();
  }
  const RttEstimate est = client.rtt_estimate(NodeId{1});
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.samples, 8u);
  EXPECT_EQ(client.stats().rtt_samples, 8u);
  // RTT = 2x one-way latency on a jitter-free link; srtt converges there.
  const double rtt = 2.0 * static_cast<double>(params.latency);
  EXPECT_NEAR(est.srtt_ns, rtt, 0.1 * rtt);
}

TEST(RpcSim, SurvivesHeavyLoss) {
  sim::Simulator s;
  SimNetParams params;
  params.jitter = 0;
  params.drop_probability = 0.4;
  params.seed = 99;
  SimNetwork net(s, params);
  SimTimerService timers(s);
  RpcNode server(net.channel(NodeId{1}), timers);
  RpcNode client(net.channel(NodeId{0}), timers);
  server.serve(1, [](NodeId, const Bytes& args) { return args; });

  RetryPolicy policy;
  policy.timeout_ns = 10 * sim::kMillisecond;
  policy.max_attempts = 20;
  int ok_count = 0;
  constexpr int kCalls = 50;
  for (int i = 0; i < kCalls; ++i) {
    client.call(NodeId{1}, 1, encode_u64(static_cast<std::uint64_t>(i)),
                [&](RpcResult r) {
                  if (r.ok) ++ok_count;
                },
                policy);
  }
  s.run();
  // With 40% loss each direction and 20 attempts, all calls should complete.
  EXPECT_EQ(ok_count, kCalls);
  EXPECT_GT(client.stats().retransmissions, 0u);
}

// --- Real-socket end-to-end. ---

TEST(RpcUdp, CallOverRealSockets) {
  UdpParams p;
  p.base_port = 0;  // ephemeral: kernel-assigned, collision-free
  UdpNetwork net(p);
  ThreadTimerService timers;
  RpcNode server(net.channel(NodeId{1}), timers);
  RpcNode client(net.channel(NodeId{0}), timers);
  server.serve(1, [](NodeId, const Bytes& args) {
    return encode_u64(decode_u64(args) + 1000);
  });
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answer{0};
  client.call(NodeId{1}, 1, encode_u64(7), [&](RpcResult r) {
    if (r.ok) answer = decode_u64(r.reply);
    done = true;
  });
  for (int i = 0; i < 400 && !done; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(done.load());
  EXPECT_EQ(answer.load(), 1007u);
}

TEST(RpcUdp, RetransmissionOverLossySockets) {
  UdpParams p;
  p.base_port = 0;  // ephemeral: kernel-assigned, collision-free
  p.drop_probability = 0.5;
  p.seed = 4242;
  UdpNetwork net(p);
  ThreadTimerService timers;
  RpcNode server(net.channel(NodeId{1}), timers);
  RpcNode client(net.channel(NodeId{0}), timers);
  server.serve(1, [](NodeId, const Bytes& args) { return args; });

  RetryPolicy policy;
  policy.timeout_ns = 30'000'000;  // 30 ms
  policy.max_attempts = 12;
  std::atomic<int> ok_count{0};
  std::atomic<int> done_count{0};
  constexpr int kCalls = 10;
  for (int i = 0; i < kCalls; ++i) {
    client.call(NodeId{1}, 1, encode_u64(static_cast<std::uint64_t>(i)),
                [&](RpcResult r) {
                  if (r.ok) ++ok_count;
                  ++done_count;
                },
                policy);
  }
  for (int i = 0; i < 1000 && done_count < kCalls; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(done_count.load(), kCalls);
  EXPECT_EQ(ok_count.load(), kCalls);
}

}  // namespace
}  // namespace phish::net
