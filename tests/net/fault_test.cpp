// Unit tests of the deterministic fault-injection layer: FaultPlan matching,
// the pure decide() function, lossless-type filtering, and the FaultyChannel
// decorator over the loopback network.
#include "net/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/loop_net.hpp"

namespace phish::net {
namespace {

TEST(FaultInjector, DecideIsAPureFunctionOfSeedLinkAndSeq) {
  FaultPlan plan;
  plan.seed = 42;
  LinkRule rule;
  rule.drop = 0.3;
  rule.duplicate = 0.2;
  rule.reorder = 0.2;
  plan.links.push_back(rule);
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  for (std::uint64_t seq = 1; seq <= 200; ++seq) {
    const SendDecision da = a.decide(NodeId{1}, NodeId{2}, 0, seq);
    const SendDecision db = b.decide(NodeId{1}, NodeId{2}, 0, seq);
    EXPECT_EQ(da.action, db.action) << "seq " << seq;
  }
  // A different seed gives a different pattern somewhere in 200 draws.
  plan.seed = 43;
  const FaultInjector c(plan);
  bool any_difference = false;
  for (std::uint64_t seq = 1; seq <= 200 && !any_difference; ++seq) {
    any_difference = c.decide(NodeId{1}, NodeId{2}, 0, seq).action !=
                     a.decide(NodeId{1}, NodeId{2}, 0, seq).action;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultInjector, DecisionsAreIndependentPerLink) {
  FaultPlan plan;
  plan.seed = 7;
  LinkRule rule;
  rule.drop = 0.5;
  plan.links.push_back(rule);
  const FaultInjector inj(plan);
  // The decision for (1 -> 2, seq) must not depend on what other links do,
  // which is what makes replay exact under thread interleaving: compare the
  // pattern against itself queried in a different global order.
  std::vector<SendAction> forward;
  for (std::uint64_t seq = 1; seq <= 50; ++seq) {
    forward.push_back(inj.decide(NodeId{1}, NodeId{2}, 0, seq).action);
    (void)inj.decide(NodeId{3}, NodeId{4}, 0, seq);
  }
  for (std::uint64_t seq = 50; seq >= 1; --seq) {
    EXPECT_EQ(inj.decide(NodeId{1}, NodeId{2}, 0, seq).action,
              forward[seq - 1]);
  }
}

TEST(FaultInjector, SequenceWindowAndWildcardsSelectRules) {
  FaultPlan plan;
  LinkRule window;        // drop exactly messages 3..4 from node 1 to anyone
  window.src = NodeId{1};
  window.first_seq = 3;
  window.last_seq = 4;
  window.drop = 1.0;
  plan.links.push_back(window);
  FaultInjector inj(plan);
  for (std::uint64_t seq = 1; seq <= 6; ++seq) {
    const bool in_window = seq == 3 || seq == 4;
    EXPECT_EQ(inj.decide(NodeId{1}, NodeId{2}, 0, seq).action,
              in_window ? SendAction::kDrop : SendAction::kDeliver);
    // Different source: rule does not match at all.
    EXPECT_EQ(inj.decide(NodeId{5}, NodeId{2}, 0, seq).action,
              SendAction::kDeliver);
  }
}

TEST(FaultInjector, FirstMatchingRuleWins) {
  FaultPlan plan;
  LinkRule specific;
  specific.src = NodeId{1};
  specific.drop = 1.0;
  LinkRule blanket;
  blanket.duplicate = 1.0;
  plan.links.push_back(specific);
  plan.links.push_back(blanket);
  FaultInjector inj(plan);
  EXPECT_EQ(inj.decide(NodeId{1}, NodeId{2}, 0, 1).action, SendAction::kDrop);
  EXPECT_EQ(inj.decide(NodeId{3}, NodeId{2}, 0, 1).action,
            SendAction::kDuplicate);
}

TEST(FaultInjector, LosslessTypesAreNeverDroppedButStayFaultable) {
  FaultPlan plan;
  LinkRule rule;
  rule.drop = 1.0;  // every message would be dropped...
  plan.links.push_back(rule);
  plan.lossless_types = {1, 5};
  FaultInjector inj(plan);
  for (std::uint64_t seq = 1; seq <= 20; ++seq) {
    EXPECT_EQ(inj.decide(NodeId{0}, NodeId{1}, 1, seq).action,
              SendAction::kDeliver);
    EXPECT_EQ(inj.decide(NodeId{0}, NodeId{1}, 5, seq).action,
              SendAction::kDeliver);
    EXPECT_EQ(inj.decide(NodeId{0}, NodeId{1}, 3, seq).action,
              SendAction::kDrop);
  }
  // ...but a duplicate band still applies to lossless types.
  FaultPlan dup_plan;
  LinkRule dup;
  dup.duplicate = 1.0;
  dup_plan.links.push_back(dup);
  dup_plan.lossless_types = {1};
  FaultInjector dup_inj(dup_plan);
  EXPECT_EQ(dup_inj.decide(NodeId{0}, NodeId{1}, 1, 1).action,
            SendAction::kDuplicate);
}

TEST(FaultInjector, OnSendCountsPerLinkIndependently) {
  FaultPlan plan;
  LinkRule window;  // second message on any link is dropped
  window.first_seq = 2;
  window.last_seq = 2;
  window.drop = 1.0;
  plan.links.push_back(window);
  FaultInjector inj(plan);
  EXPECT_EQ(inj.on_send(NodeId{0}, NodeId{1}, 0).action, SendAction::kDeliver);
  EXPECT_EQ(inj.on_send(NodeId{0}, NodeId{2}, 0).action, SendAction::kDeliver);
  EXPECT_EQ(inj.on_send(NodeId{0}, NodeId{1}, 0).action, SendAction::kDrop);
  EXPECT_EQ(inj.on_send(NodeId{0}, NodeId{2}, 0).action, SendAction::kDrop);
  EXPECT_EQ(inj.on_send(NodeId{0}, NodeId{1}, 0).action, SendAction::kDeliver);
}

TEST(FaultPlan, DescribePrintsSeedRulesEventsAndLosslessSet) {
  FaultPlan plan;
  plan.seed = 1234;
  LinkRule rule;
  rule.src = NodeId{2};
  rule.drop = 0.25;
  plan.links.push_back(rule);
  plan.events.push_back({50'000'000, NodeFaultKind::kCrash, 3});
  plan.lossless_types = {1, 4, 5};
  const std::string text = plan.describe();
  EXPECT_NE(text.find("seed=1234"), std::string::npos) << text;
  EXPECT_NE(text.find("drop=0.25"), std::string::npos) << text;
  EXPECT_NE(text.find("crash worker 3"), std::string::npos) << text;
  EXPECT_NE(text.find("lossless={1,4,5}"), std::string::npos) << text;
}

// ---- FaultyChannel decorator over the loopback network. ----

struct LoopRig {
  LoopNetwork net;
  std::vector<Message> received;

  LoopRig() {
    net.channel(NodeId{1}).set_receiver(
        [this](Message&& m) { received.push_back(std::move(m)); });
  }

  std::vector<std::uint16_t> received_types() const {
    std::vector<std::uint16_t> types;
    for (const Message& m : received) types.push_back(m.type);
    return types;
  }
};

TEST(FaultyChannel, DropsAndCountsWithoutTouchingTheWire) {
  LoopRig rig;
  FaultPlan plan;
  LinkRule rule;
  rule.drop = 1.0;
  plan.links.push_back(rule);
  FaultyChannel ch(rig.net.channel(NodeId{0}), plan);
  for (std::uint16_t i = 0; i < 5; ++i) ch.send(NodeId{1}, i, {});
  rig.net.drain();
  EXPECT_TRUE(rig.received.empty());
  EXPECT_EQ(ch.fault_stats().dropped, 5u);
  EXPECT_EQ(ch.stats().messages_sent, 0u) << "dropped before the wire";
}

TEST(FaultyChannel, DuplicateDeliversTwice) {
  LoopRig rig;
  FaultPlan plan;
  LinkRule rule;
  rule.duplicate = 1.0;
  plan.links.push_back(rule);
  FaultyChannel ch(rig.net.channel(NodeId{0}), plan);
  ch.send(NodeId{1}, 9, Bytes{1, 2, 3});
  rig.net.drain();
  ASSERT_EQ(rig.received.size(), 2u);
  EXPECT_EQ(rig.received[0].payload, rig.received[1].payload);
  EXPECT_EQ(ch.fault_stats().duplicated, 1u);
}

TEST(FaultyChannel, ReorderHoldsUntilLaterSendsOvertake) {
  LoopRig rig;
  FaultPlan plan;
  LinkRule rule;  // hold exactly the 2nd message; 1 later send overtakes it
  rule.first_seq = 2;
  rule.last_seq = 2;
  rule.reorder = 1.0;
  rule.reorder_depth = 1;
  plan.links.push_back(rule);
  FaultyChannel ch(rig.net.channel(NodeId{0}), plan);
  ch.send(NodeId{1}, 1, {});
  ch.send(NodeId{1}, 2, {});  // held
  ch.send(NodeId{1}, 3, {});  // overtakes; 2 released right after
  ch.send(NodeId{1}, 4, {});
  rig.net.drain();
  EXPECT_EQ(rig.received_types(), (std::vector<std::uint16_t>{1, 3, 2, 4}));
  EXPECT_EQ(ch.fault_stats().reordered, 1u);
}

TEST(FaultyChannel, FlushReleasesStragglers) {
  LoopRig rig;
  FaultPlan plan;
  LinkRule rule;
  rule.first_seq = 1;
  rule.last_seq = 1;
  rule.reorder = 1.0;
  rule.reorder_depth = 100;  // would never age out naturally here
  plan.links.push_back(rule);
  FaultyChannel ch(rig.net.channel(NodeId{0}), plan);
  ch.send(NodeId{1}, 1, {});
  rig.net.drain();
  EXPECT_TRUE(rig.received.empty());
  ch.flush();
  rig.net.drain();
  EXPECT_EQ(rig.received_types(), (std::vector<std::uint16_t>{1}));
}

TEST(FaultyChannel, ReplaySendsSameFatePerSequencePosition) {
  // Two independent channels with the same plan make the same per-position
  // decisions — the property failing chaos seeds rely on.
  FaultPlan plan;
  plan.seed = 555;
  LinkRule rule;
  rule.drop = 0.4;
  rule.duplicate = 0.2;
  plan.links.push_back(rule);

  auto run = [&] {
    LoopRig rig;
    FaultyChannel ch(rig.net.channel(NodeId{0}), plan);
    for (std::uint16_t i = 0; i < 64; ++i) ch.send(NodeId{1}, i, {});
    rig.net.drain();
    return rig.received_types();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace phish::net
