#include "net/udp_net.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace phish::net {
namespace {

struct Collector {
  std::mutex m;
  std::condition_variable cv;
  std::vector<Message> messages;

  void add(Message&& msg) {
    std::lock_guard<std::mutex> l(m);
    messages.push_back(std::move(msg));
    cv.notify_all();
  }
  bool wait_for(std::size_t n, int timeout_ms = 2000) {
    std::unique_lock<std::mutex> l(m);
    return cv.wait_for(l, std::chrono::milliseconds(timeout_ms),
                       [&] { return messages.size() >= n; });
  }
};

TEST(UdpNet, DeliversDatagram) {
  UdpParams p;
  p.base_port = 0;  // ephemeral: kernel-assigned, collision-free
  UdpNetwork net(p);
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});

  Collector got;
  b.set_receiver([&](Message&& m) { got.add(std::move(m)); });

  Writer w;
  w.str("hello over real udp");
  a.send(NodeId{1}, 42, w.take());

  ASSERT_TRUE(got.wait_for(1));
  std::lock_guard<std::mutex> l(got.m);
  EXPECT_EQ(got.messages[0].src, (NodeId{0}));
  EXPECT_EQ(got.messages[0].type, 42);
  Reader r(got.messages[0].payload);
  EXPECT_EQ(r.str(), "hello over real udp");
}

TEST(UdpNet, BidirectionalTraffic) {
  UdpParams p;
  p.base_port = 0;  // ephemeral: kernel-assigned, collision-free
  UdpNetwork net(p);
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});

  Collector got_a, got_b;
  a.set_receiver([&](Message&& m) { got_a.add(std::move(m)); });
  b.set_receiver([&](Message&& m) { got_b.add(std::move(m)); });

  a.send(NodeId{1}, 1, {});
  b.send(NodeId{0}, 2, {});
  ASSERT_TRUE(got_a.wait_for(1));
  ASSERT_TRUE(got_b.wait_for(1));
}

TEST(UdpNet, ManyMessagesAllArriveOnLoopback) {
  UdpParams p;
  p.base_port = 0;  // ephemeral: kernel-assigned, collision-free
  UdpNetwork net(p);
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});

  Collector got;
  b.set_receiver([&](Message&& m) { got.add(std::move(m)); });
  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    a.send(NodeId{1}, 5, w.take());
    // Loopback rarely drops, but pace slightly to avoid socket buffer overrun.
    if (i % 50 == 49) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Loopback UDP is reliable in practice; expect all of them.
  EXPECT_TRUE(got.wait_for(kCount, 5000));
}

TEST(UdpNet, OversizedPayloadThrows) {
  UdpParams p;
  p.base_port = 0;  // ephemeral: kernel-assigned, collision-free
  UdpNetwork net(p);
  auto& a = net.channel(NodeId{0});
  EXPECT_THROW(a.send(NodeId{1}, 1, Bytes(UdpChannel::kMaxPayload + 1)),
               std::length_error);
}

TEST(UdpNet, StatsCountTraffic) {
  UdpParams p;
  p.base_port = 0;  // ephemeral: kernel-assigned, collision-free
  UdpNetwork net(p);
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  Collector got;
  b.set_receiver([&](Message&& m) { got.add(std::move(m)); });
  a.send(NodeId{1}, 1, Bytes(10));
  ASSERT_TRUE(got.wait_for(1));
  EXPECT_EQ(a.stats().messages_sent, 1u);
  EXPECT_EQ(a.stats().bytes_sent, 10u);
  EXPECT_EQ(b.stats().messages_received, 1u);
}

TEST(UdpNet, InjectedDropLosesMessages) {
  UdpParams p;
  p.base_port = 0;  // ephemeral: kernel-assigned, collision-free
  p.drop_probability = 1.0;
  UdpNetwork net(p);
  auto& a = net.channel(NodeId{0});
  auto& b = net.channel(NodeId{1});
  Collector got;
  b.set_receiver([&](Message&& m) { got.add(std::move(m)); });
  for (int i = 0; i < 5; ++i) a.send(NodeId{1}, 1, {});
  EXPECT_FALSE(got.wait_for(1, 200));
  EXPECT_EQ(a.stats().messages_dropped, 5u);
}

TEST(UdpNet, SendToUnboundPortIsSilent) {
  UdpParams p;
  p.base_port = 0;  // ephemeral: kernel-assigned, collision-free
  UdpNetwork net(p);
  auto& a = net.channel(NodeId{0});
  EXPECT_NO_THROW(a.send(NodeId{9}, 1, Bytes(4)));
}

TEST(UdpNet, GarbagePacketsAreIgnored) {
  UdpParams p;
  p.base_port = 0;  // ephemeral: kernel-assigned, collision-free
  UdpNetwork net(p);
  auto& b = net.channel(NodeId{1});
  Collector got;
  b.set_receiver([&](Message&& m) { got.add(std::move(m)); });

  // Throw raw garbage at b's port via a plain socket.
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(net.port_of(NodeId{1}));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const char garbage[] = "not a phish frame";
  ::sendto(fd, garbage, sizeof garbage, 0,
           reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  ::close(fd);

  EXPECT_FALSE(got.wait_for(1, 200));

  // And a valid message still gets through afterwards.
  auto& a = net.channel(NodeId{0});
  a.send(NodeId{1}, 3, {});
  EXPECT_TRUE(got.wait_for(1));
}

TEST(UdpNet, CleanShutdownWithTrafficInFlight) {
  UdpParams p;
  p.base_port = 0;  // ephemeral: kernel-assigned, collision-free
  {
    UdpNetwork net(p);
    auto& a = net.channel(NodeId{0});
    auto& b = net.channel(NodeId{1});
    b.set_receiver([](Message&&) {});
    for (int i = 0; i < 20; ++i) a.send(NodeId{1}, 1, {});
  }  // destructor joins receiver threads; must not hang
  SUCCEED();
}

TEST(UdpNet, PortMapping) {
  UdpParams p;
  p.base_port = 40000;
  UdpNetwork net(p);
  EXPECT_EQ(net.port_of(NodeId{0}), 40000);
  EXPECT_EQ(net.port_of(NodeId{7}), 40007);
}

TEST(UdpNet, EphemeralPortMapping) {
  UdpParams p;
  p.base_port = 0;
  UdpNetwork net(p);
  // No channel yet: the id has no port, and a send there is a silent drop.
  EXPECT_EQ(net.port_of(NodeId{3}), 0);
  auto& c = net.channel(NodeId{3});
  (void)c;
  EXPECT_NE(net.port_of(NodeId{3}), 0) << "bind registered a kernel port";
}

}  // namespace
}  // namespace phish::net
