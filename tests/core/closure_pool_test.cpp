// ClosurePool, WaitingTable, and ArgSlots lifetime tests.
//
// The hot path leans on subtle lifetime contracts: pool storage is never
// freed while the pool lives (stale ContRef hints are dereferenced and then
// validated by id), recycle() clears only the id (everything else is
// overwritten by the next acquire path), and the waiting table maintains
// each resident closure's bucket index through backward-shift deletions so
// erase_entry() can skip the probe.  These tests pin those contracts.
#include "core/closure_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "core/closure.hpp"
#include "core/waiting_table.hpp"

namespace phish {
namespace {

// ---------------------------------------------------------------------------
// ClosurePool
// ---------------------------------------------------------------------------

TEST(ClosurePool, GrowsByDoublingChunks) {
  ClosurePool pool;
  std::vector<Closure*> live;
  const std::size_t want = ClosurePool::kDefaultFirstChunk * 7;  // 448
  for (std::size_t i = 0; i < want; ++i) live.push_back(pool.acquire());
  const auto& s = pool.stats();
  EXPECT_EQ(s.acquires, want);
  EXPECT_EQ(s.live, want);
  EXPECT_EQ(s.freelist_reuses, 0u);
  // Doubling chunks: 64 + 128 + 256 = 448, carved in exactly 3 chunks.
  EXPECT_EQ(s.chunks, 3u);
  EXPECT_GE(s.capacity, want);
  // Every acquired pointer is distinct.
  std::set<Closure*> distinct(live.begin(), live.end());
  EXPECT_EQ(distinct.size(), live.size());
  for (Closure* c : live) pool.release(c);
  EXPECT_EQ(pool.stats().live, 0u);
}

TEST(ClosurePool, FreelistReusesReleasedClosures) {
  ClosurePool pool;
  Closure* a = pool.acquire();
  a->id = ClosureId{net::NodeId{0}, 42};
  a->args = ArgSlots({Value(std::int64_t{7})});
  pool.release(a);
  Closure* b = pool.acquire();
  // LIFO freelist: the most recently released closure comes back first.
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.stats().freelist_reuses, 1u);
  // recycle() cleared the id — a stale valid id would defeat lazy
  // re-materialization on the next life...
  EXPECT_FALSE(b->id.valid());
  // ...but args are intentionally NOT cleared; the next acquire path
  // overwrites them (and assign_filled/reset release stale values in
  // place).  This is a load-bearing part of the hot path's cost budget.
}

TEST(ClosurePool, ChunkStorageSurvivesReleaseForHintValidation) {
  // send_argument dereferences ContRef::local_hint before checking the id;
  // that is only sound because pooled storage is never freed while the pool
  // lives.  Read a released closure's id through the stale pointer: it must
  // be the recycled (invalid) id, not garbage.
  ClosurePool pool;
  Closure* c = pool.acquire();
  c->id = ClosureId{net::NodeId{3}, 99};
  pool.release(c);
  EXPECT_FALSE(c->id.valid());  // safe: storage still owned by the pool
}

TEST(ClosurePool, SteadyStateIsAllocationFree) {
  ClosurePool pool;
  // Warm: one working set's worth of closures.
  std::vector<Closure*> warm;
  for (int i = 0; i < 32; ++i) warm.push_back(pool.acquire());
  for (Closure* c : warm) pool.release(c);
  const std::uint64_t chunks_before = pool.stats().chunks;
  // Steady state: every acquire must now come from the freelist.
  for (int round = 0; round < 1000; ++round) {
    Closure* c = pool.acquire();
    pool.release(c);
  }
  EXPECT_EQ(pool.stats().chunks, chunks_before);
  EXPECT_EQ(pool.stats().freelist_reuses, 1000u);
}

TEST(ClosurePool, HeapModeDeletesPerClosure) {
  ClosurePool pool(/*pooled=*/false);
  EXPECT_FALSE(pool.pooled());
  Closure* c = pool.acquire();
  EXPECT_EQ(pool.stats().live, 1u);
  pool.release(c);  // deletes; ASan would flag a leak or double-free
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_EQ(pool.stats().chunks, 0u);
  EXPECT_EQ(pool.stats().freelist_reuses, 0u);
}

TEST(ClosurePool, ReusedClosureKeepsArgHeapCapacity) {
  // A wide join allocates ArgSlots heap storage; the pool promises that a
  // recycled closure keeps that capacity so warm wide joins stop
  // allocating.
  ClosurePool pool;
  Closure* c = pool.acquire();
  c->args.reset(16);  // beyond kInlineSlots: heap-backed
  for (std::uint16_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(c->args.fill(i, Value(std::int64_t{i})));
  }
  pool.release(c);
  Closure* again = pool.acquire();
  ASSERT_EQ(again, c);
  again->args.reset(16);  // must not need a fresh allocation to hold 16
  EXPECT_EQ(again->args.size(), 16u);
  for (std::uint16_t i = 0; i < 16; ++i) {
    EXPECT_FALSE(again->args.filled(i)) << i;
  }
  pool.release(again);
}

// ---------------------------------------------------------------------------
// WaitingTable
// ---------------------------------------------------------------------------

ClosureId id_of(std::uint64_t seq) { return ClosureId{net::NodeId{0}, seq}; }

TEST(WaitingTable, InsertFindErase) {
  WaitingTable table;
  std::vector<Closure> owned(100);
  for (std::uint64_t i = 0; i < owned.size(); ++i) {
    owned[i].id = id_of(i);
    table.insert(&owned[i]);
  }
  EXPECT_EQ(table.size(), owned.size());
  for (std::uint64_t i = 0; i < owned.size(); ++i) {
    EXPECT_EQ(table.find(id_of(i)), &owned[i]) << i;
  }
  // Erase the evens, then every odd must still be reachable (backward-shift
  // must not strand probe chains).
  for (std::uint64_t i = 0; i < owned.size(); i += 2) {
    EXPECT_EQ(table.erase(id_of(i)), &owned[i]) << i;
  }
  EXPECT_EQ(table.size(), owned.size() / 2);
  for (std::uint64_t i = 0; i < owned.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(table.find(id_of(i)), nullptr) << i;
    } else {
      EXPECT_EQ(table.find(id_of(i)), &owned[i]) << i;
    }
  }
}

TEST(WaitingTable, EraseEntrySkipsTheProbe) {
  WaitingTable table;
  std::vector<Closure> owned(64);
  for (std::uint64_t i = 0; i < owned.size(); ++i) {
    owned[i].id = id_of(i);
    table.insert(&owned[i]);
  }
  // erase_entry uses the bucket index maintained through insert/grow/shift.
  for (std::uint64_t i = 0; i < owned.size(); ++i) {
    Closure* c = table.find(id_of(i));
    ASSERT_NE(c, nullptr) << i;
    table.erase_entry(c);
    EXPECT_EQ(table.find(id_of(i)), nullptr) << i;
  }
  EXPECT_EQ(table.size(), 0u);
}

TEST(WaitingTable, EraseEntryOnNonResidentClosureIsANoOp) {
  WaitingTable table;
  Closure resident;
  resident.id = id_of(1);
  table.insert(&resident);
  Closure stranger;
  stranger.id = id_of(2);
  stranger.wait_slot = resident.wait_slot;  // adversarial stale index
  table.erase_entry(&stranger);             // must not evict the resident
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(id_of(1)), &resident);
  stranger.wait_slot = 0xffffffffu;  // out of range: also a no-op
  table.erase_entry(&stranger);
  EXPECT_EQ(table.size(), 1u);
}

TEST(WaitingTable, BucketIndexSurvivesGrowthAndShifts) {
  // Interleave inserts and erases across several growth boundaries, then
  // verify erase_entry still lands on the right bucket for every survivor.
  WaitingTable table;
  std::vector<Closure> owned(1000);
  for (std::uint64_t i = 0; i < owned.size(); ++i) {
    owned[i].id = id_of(i);
    table.insert(&owned[i]);
    if (i % 3 == 0) table.erase(id_of(i));  // churn: forces backward shifts
  }
  for (std::uint64_t i = 0; i < owned.size(); ++i) {
    Closure* c = table.find(id_of(i));
    if (i % 3 == 0) {
      EXPECT_EQ(c, nullptr) << i;
      continue;
    }
    ASSERT_EQ(c, &owned[i]) << i;
    table.erase_entry(c);
    EXPECT_EQ(table.find(id_of(i)), nullptr) << i;
  }
  EXPECT_EQ(table.size(), 0u);
}

// ---------------------------------------------------------------------------
// ArgSlots lifetime across pool reuse
// ---------------------------------------------------------------------------

TEST(ArgSlotsReuse, AssignFilledReleasesStaleBlobs) {
  // A recycled closure may hold blob values from its previous life;
  // assign_filled overwrites them in place and must free them (ASan
  // enforces this when the suite runs under PHISH_SANITIZE=address).
  ArgSlots slots;
  slots.reset(2);
  EXPECT_TRUE(slots.fill(0, Value(Bytes(1024, 0xab))));
  EXPECT_TRUE(slots.fill(1, Value(Bytes(2048, 0xcd))));
  slots.assign_filled({Value(std::int64_t{1})});
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_TRUE(slots.filled(0));
  EXPECT_EQ(slots[0].as_int(), 1);
}

TEST(ArgSlotsReuse, TailBeyondNewSizeIsNil) {
  // assign_filled keeps reset()'s invariant: slots past size_ stay nil, so
  // a later reset to a wider shape never exposes a stale value (which would
  // otherwise leak onto the wire when a waiting closure is migrated).
  ArgSlots slots;
  slots.reset(3);
  EXPECT_TRUE(slots.fill(0, Value(Bytes(64, 0x11))));
  EXPECT_TRUE(slots.fill(1, Value(std::int64_t{5})));
  EXPECT_TRUE(slots.fill(2, Value(3.5)));
  slots.assign_filled({Value(std::int64_t{9})});
  slots.reset(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(slots.filled(i)) << i;
    EXPECT_EQ(slots[i], Value()) << i;  // nil, not a previous life's value
  }
}

TEST(ArgSlotsReuse, WideFlagArraysResetCleanly) {
  // Beyond kMaskBits the fill flags live in a heap array; a recycled wide
  // join must come back with every flag cleared.
  ArgSlots slots;
  const std::uint32_t wide = ArgSlots::kMaskBits + 8;
  slots.reset(wide);
  for (std::uint32_t i = 0; i < wide; ++i) {
    EXPECT_TRUE(slots.fill(static_cast<std::uint16_t>(i),
                           Value(std::int64_t{i})));
  }
  slots.reset(wide);
  for (std::uint32_t i = 0; i < wide; ++i) {
    EXPECT_FALSE(slots.filled(i)) << i;
  }
  // And duplicate-fill detection still works after the reset.
  EXPECT_TRUE(slots.fill(70, Value(std::int64_t{1})));
  EXPECT_FALSE(slots.fill(70, Value(std::int64_t{2})));
}

}  // namespace
}  // namespace phish
