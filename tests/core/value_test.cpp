#include "core/value.hpp"

#include <gtest/gtest.h>

#include "core/closure.hpp"

namespace phish {
namespace {

TEST(Value, DefaultIsNil) {
  Value v;
  EXPECT_TRUE(v.is_nil());
  EXPECT_EQ(v.kind(), Value::Kind::kNil);
}

TEST(Value, IntAccess) {
  Value v(std::int64_t{-12345});
  EXPECT_EQ(v.kind(), Value::Kind::kInt);
  EXPECT_EQ(v.as_int(), -12345);
  EXPECT_THROW(v.as_double(), std::bad_variant_access);
  EXPECT_THROW(v.as_blob(), std::bad_variant_access);
}

TEST(Value, DoubleAccess) {
  Value v(2.75);
  EXPECT_EQ(v.kind(), Value::Kind::kDouble);
  EXPECT_DOUBLE_EQ(v.as_double(), 2.75);
  EXPECT_THROW(v.as_int(), std::bad_variant_access);
}

TEST(Value, BlobAccess) {
  Value v(Bytes{1, 2, 3});
  EXPECT_EQ(v.kind(), Value::Kind::kBlob);
  EXPECT_EQ(v.as_blob(), (Bytes{1, 2, 3}));
  EXPECT_THROW(v.as_int(), std::bad_variant_access);
}

TEST(Value, Equality) {
  EXPECT_EQ(Value(std::int64_t{1}), Value(std::int64_t{1}));
  EXPECT_FALSE(Value(std::int64_t{1}) == Value(std::int64_t{2}));
  EXPECT_FALSE(Value(std::int64_t{1}) == Value(1.0));
  EXPECT_EQ(Value(), Value());
  EXPECT_EQ(Value(Bytes{9}), Value(Bytes{9}));
}

TEST(Value, EncodeDecodeRoundTrip) {
  const Value values[] = {Value(), Value(std::int64_t{-7}), Value(3.5),
                          Value(Bytes{0, 255, 128})};
  for (const Value& v : values) {
    Writer w;
    v.encode(w);
    Reader r(w.bytes());
    const Value back = Value::decode(r);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(back, v);
  }
}

TEST(Value, ByteSize) {
  EXPECT_EQ(Value().byte_size(), 1u);
  EXPECT_EQ(Value(std::int64_t{1}).byte_size(), 9u);
  EXPECT_EQ(Value(1.0).byte_size(), 9u);
  EXPECT_EQ(Value(Bytes(10)).byte_size(), 15u);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value().to_string(), "nil");
  EXPECT_EQ(Value(std::int64_t{42}).to_string(), "42");
  EXPECT_EQ(Value(Bytes(3)).to_string(), "blob[3]");
}

TEST(Ids, ClosureIdRoundTrip) {
  const ClosureId id{net::NodeId{7}, 123456789ULL};
  Writer w;
  id.encode(w);
  Reader r(w.bytes());
  EXPECT_EQ(ClosureId::decode(r), id);
  EXPECT_TRUE(r.done());
}

TEST(Ids, ContRefRoundTrip) {
  const ContRef c{ClosureId{net::NodeId{3}, 42}, 5, net::NodeId{9}};
  Writer w;
  c.encode(w);
  Reader r(w.bytes());
  EXPECT_EQ(ContRef::decode(r), c);
  EXPECT_TRUE(r.done());
}

TEST(Ids, Validity) {
  EXPECT_FALSE(ClosureId{}.valid());
  EXPECT_TRUE((ClosureId{net::NodeId{0}, 1}).valid());
  EXPECT_FALSE(ContRef{}.valid());
}

TEST(Ids, HashDistinguishes) {
  std::hash<ClosureId> h;
  EXPECT_NE(h(ClosureId{net::NodeId{1}, 1}), h(ClosureId{net::NodeId{1}, 2}));
  EXPECT_NE(h(ClosureId{net::NodeId{1}, 1}), h(ClosureId{net::NodeId{2}, 1}));
}

TEST(Closure, FillTracksMissing) {
  Closure c;
  c.args.reset(3);
  c.missing = 3;
  EXPECT_FALSE(c.ready());
  EXPECT_TRUE(c.fill(0, Value(std::int64_t{1})));
  EXPECT_TRUE(c.fill(2, Value(std::int64_t{3})));
  EXPECT_FALSE(c.ready());
  EXPECT_TRUE(c.fill(1, Value(std::int64_t{2})));
  EXPECT_TRUE(c.ready());
}

TEST(Closure, DuplicateFillIsRejected) {
  Closure c;
  c.args.reset(1);
  c.missing = 1;
  EXPECT_TRUE(c.fill(0, Value(std::int64_t{1})));
  EXPECT_FALSE(c.fill(0, Value(std::int64_t{99})));
  EXPECT_EQ(c.args[0].as_int(), 1) << "first write wins";
  EXPECT_TRUE(c.ready());
}

TEST(Closure, OutOfRangeSlotIsRejected) {
  Closure c;
  c.args.reset(1);
  c.missing = 1;
  EXPECT_FALSE(c.fill(5, Value(std::int64_t{1})));
  EXPECT_FALSE(c.ready());
}

TEST(Closure, EncodeDecodeRoundTrip) {
  Closure c;
  c.id = ClosureId{net::NodeId{4}, 77};
  c.task = 3;
  c.cont = ContRef{ClosureId{net::NodeId{1}, 5}, 2, net::NodeId{1}};
  c.depth = 9;
  // A half-filled join: slots 0 and 2 filled, slot 1 still missing.
  c.args.reset(3);
  c.args.install(0, Value(std::int64_t{10}), true);
  c.args.install(2, Value(Bytes{1, 2}), true);
  c.missing = 1;

  Writer w;
  c.encode(w);
  Reader r(w.bytes());
  const Closure back = Closure::decode(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.id, c.id);
  EXPECT_EQ(back.task, c.task);
  EXPECT_EQ(back.cont, c.cont);
  EXPECT_EQ(back.depth, c.depth);
  EXPECT_EQ(back.missing, c.missing);
  ASSERT_EQ(back.args.size(), 3u);
  EXPECT_EQ(back.args[0], c.args[0]);
  EXPECT_EQ(back.args[2], c.args[2]);
  EXPECT_TRUE(back.args.filled(0));
  EXPECT_FALSE(back.args.filled(1));
  EXPECT_TRUE(back.args.filled(2));
  EXPECT_EQ(back.args, c.args);
  EXPECT_EQ(c.byte_size(), w.bytes().size())
      << "byte_size() must match what encode() actually writes";
}

TEST(Closure, DecodeRejectsAbsurdSlotCount) {
  Writer w;
  ClosureId{net::NodeId{1}, 1}.encode(w);
  w.u32(0);                              // task
  ContRef{}.encode(w);                   // cont
  w.u32(0);                              // depth
  w.u32(0x7fffffff);                     // absurd arg count
  w.u32(0);                              // missing
  Reader r(w.bytes());
  const Closure c = Closure::decode(r);
  EXPECT_TRUE(c.args.empty());
  // The reader is failed, not left "ok with garbage": callers that check
  // r.ok()/r.done() reject the payload outright.
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace phish
