#include "core/chase_lev.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <thread>

#include "testing/scenario.hpp"
#include "util/rng.hpp"

namespace phish {
namespace {

// The concurrent tests draw their owner-side interleaving from a seeded RNG;
// PHISH_TEST_SEED=<n> replays a failure with the exact schedule it printed.
std::uint64_t stress_seed(std::uint64_t fallback) {
  return testing::seed_from_env("PHISH_TEST_SEED", fallback);
}

std::string replay_note(std::uint64_t seed) {
  std::ostringstream os;
  os << "seed " << seed << " (replay with PHISH_TEST_SEED=" << seed << ")";
  return os.str();
}

TEST(ChaseLev, EmptyPopAndSteal) {
  ChaseLevDeque<int> d;
  EXPECT_FALSE(d.pop().has_value());
  EXPECT_FALSE(d.steal().has_value());
  EXPECT_TRUE(d.empty_approx());
}

TEST(ChaseLev, LifoOwnerOrder) {
  ChaseLevDeque<int> d;
  for (int i = 1; i <= 5; ++i) d.push(i);
  for (int i = 5; i >= 1; --i) EXPECT_EQ(d.pop(), i);
  EXPECT_FALSE(d.pop().has_value());
}

TEST(ChaseLev, FifoStealOrder) {
  ChaseLevDeque<int> d;
  for (int i = 1; i <= 5; ++i) d.push(i);
  for (int i = 1; i <= 5; ++i) EXPECT_EQ(d.steal(), i);
  EXPECT_FALSE(d.steal().has_value());
}

TEST(ChaseLev, OwnerAndThiefOppositeEnds) {
  ChaseLevDeque<int> d;
  for (int i = 1; i <= 4; ++i) d.push(i);
  EXPECT_EQ(d.steal(), 1);
  EXPECT_EQ(d.pop(), 4);
  EXPECT_EQ(d.steal(), 2);
  EXPECT_EQ(d.pop(), 3);
  EXPECT_TRUE(d.empty_approx());
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> d(2);
  constexpr int kN = 1000;
  for (int i = 0; i < kN; ++i) d.push(i);
  EXPECT_EQ(d.size_approx(), static_cast<std::size_t>(kN));
  for (int i = kN - 1; i >= 0; --i) EXPECT_EQ(d.pop(), i);
}

TEST(ChaseLev, MoveOnlyPayload) {
  ChaseLevDeque<std::unique_ptr<int>> d;
  d.push(std::make_unique<int>(7));
  auto out = d.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 7);
}

TEST(ChaseLev, DestructorDrainsRemaining) {
  // Leak check (under ASAN) and no crash: drop a non-empty deque.
  auto* d = new ChaseLevDeque<std::string>();
  d->push("a");
  d->push("b");
  delete d;
  SUCCEED();
}

TEST(ChaseLev, ConcurrentStealersReceiveEachItemOnce) {
  // Owner pushes kN items and pops; 3 thieves steal concurrently; every item
  // must be delivered exactly once overall.
  constexpr int kN = 20000;
  const std::uint64_t seed = stress_seed(20000);
  SCOPED_TRACE(replay_note(seed));
  Xoshiro256 rng(mix64(seed));
  ChaseLevDeque<int> d;
  std::atomic<bool> start{false};
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};

  auto thief = [&] {
    while (!start.load()) std::this_thread::yield();
    while (received.load(std::memory_order_relaxed) < kN) {
      if (auto v = d.steal()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> thieves;
  for (int i = 0; i < 3; ++i) thieves.emplace_back(thief);

  start.store(true);
  long long pushed = 0;
  for (int i = 1; i <= kN; ++i) {
    d.push(i);
    pushed += i;
    // Owner occasionally pops too.
    if (rng.chance(1.0 / 7)) {
      if (auto v = d.pop()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    }
  }
  // Owner drains the rest cooperatively with the thieves.
  while (received.load() < kN) {
    if (auto v = d.pop()) {
      sum.fetch_add(*v);
      received.fetch_add(1);
    }
  }
  for (auto& t : thieves) t.join();
  EXPECT_EQ(received.load(), kN);
  EXPECT_EQ(sum.load(), pushed);
  EXPECT_FALSE(d.pop().has_value());
  EXPECT_FALSE(d.steal().has_value());
}

TEST(ChaseLev, StressGrowthUnderConcurrentSteals) {
  const std::uint64_t seed = stress_seed(50000);
  SCOPED_TRACE(replay_note(seed));
  Xoshiro256 rng(mix64(seed));
  ChaseLevDeque<int> d(2);  // force many growths
  std::atomic<bool> done{false};
  std::atomic<int> stolen{0};
  std::thread thief([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (d.steal()) stolen.fetch_add(1);
    }
    while (d.steal()) stolen.fetch_add(1);
  });
  int popped = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    d.push(i);
    if (rng.chance(1.0 / 3) && d.pop()) ++popped;
  }
  while (d.pop()) ++popped;
  done.store(true, std::memory_order_release);
  thief.join();
  EXPECT_EQ(popped + stolen.load(), kN);
}

}  // namespace
}  // namespace phish
