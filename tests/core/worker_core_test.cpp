#include "core/worker_core.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/local_runner.hpp"
#include "core/task_registry.hpp"

namespace phish {
namespace {

/// Fixture with a registry holding fib-like test tasks and a core whose
/// remote sends are captured for inspection.
class WorkerCoreTest : public ::testing::Test {
 protected:
  WorkerCoreTest() {
    sum_id_ = registry_.add("test.sum", [](Context& cx, Closure& c) {
      cx.send(c.cont, c.args[0].as_int() + c.args[1].as_int());
    });
    leaf_id_ = registry_.add("test.leaf", [](Context& cx, Closure& c) {
      cx.send(c.cont, c.args[0].as_int());
    });
    spawner_id_ =
        registry_.add("test.spawner", [this](Context& cx, Closure& c) {
          const ClosureId join = cx.make_join(sum_id_, 2, c.cont);
          cx.spawn(leaf_id_, {Value(std::int64_t{1})}, cx.slot(join, 0));
          cx.spawn(leaf_id_, {Value(std::int64_t{2})}, cx.slot(join, 1));
        });
    charger_id_ = registry_.add("test.charger", [](Context& cx, Closure& c) {
      cx.charge(static_cast<std::uint64_t>(c.args[0].as_int()));
      cx.charge(5);
      cx.send(c.cont, Value());
    });
    core_ = std::make_unique<WorkerCore>(net::NodeId{0}, registry_,
                                         make_hooks());
  }

  WorkerCore::Hooks make_hooks() {
    WorkerCore::Hooks hooks;
    hooks.send_remote = [this](const ContRef& cont, Value value) {
      remote_sends_.emplace_back(cont, std::move(value));
    };
    return hooks;
  }

  /// Run the core's ready queue dry.
  void drain() {
    while (auto c = core_->pop_for_execution()) core_->execute(*c);
  }

  TaskRegistry registry_;
  TaskId sum_id_, leaf_id_, spawner_id_, charger_id_;
  std::unique_ptr<WorkerCore> core_;
  std::vector<std::pair<ContRef, Value>> remote_sends_;
};

ContRef remote_cont(std::uint32_t node = 9) {
  return ContRef{ClosureId{net::NodeId{node}, 1}, 0, net::NodeId{node}};
}

TEST_F(WorkerCoreTest, RequiresSendRemoteHook) {
  EXPECT_THROW(WorkerCore(net::NodeId{0}, registry_, WorkerCore::Hooks{}),
               std::invalid_argument);
}

TEST_F(WorkerCoreTest, SpawnAndExecuteLeaf) {
  core_->spawn(leaf_id_, {Value(std::int64_t{7})}, remote_cont(), 0);
  EXPECT_TRUE(core_->has_ready());
  drain();
  ASSERT_EQ(remote_sends_.size(), 1u);
  EXPECT_EQ(remote_sends_[0].second.as_int(), 7);
  EXPECT_EQ(core_->stats().tasks_executed, 1u);
  EXPECT_EQ(core_->stats().tasks_spawned, 1u);
}

TEST_F(WorkerCoreTest, JoinFiresWhenAllSlotsFill) {
  core_->spawn(spawner_id_, {}, remote_cont(), 0);
  drain();
  // spawner + 2 leaves + sum = 4 executions, result 1+2=3 sent remotely.
  EXPECT_EQ(core_->stats().tasks_executed, 4u);
  ASSERT_EQ(remote_sends_.size(), 1u);
  EXPECT_EQ(remote_sends_[0].second.as_int(), 3);
}

TEST_F(WorkerCoreTest, LocalSynchronizationsAreCounted) {
  core_->spawn(spawner_id_, {}, remote_cont(), 0);
  drain();
  // Sends: leaf->join x2 (local), sum->remote (non-local) = 3 synchs.
  EXPECT_EQ(core_->stats().synchronizations, 3u);
  EXPECT_EQ(core_->stats().non_local_synchs, 1u);
}

TEST_F(WorkerCoreTest, MaxTasksInUseTracksPeak) {
  core_->spawn(spawner_id_, {}, remote_cont(), 0);
  drain();
  // Peak: after spawner ran (it is freed after execute returns... it is
  // freed only after fn body) — spawner + join + 2 leaves = 4 concurrently.
  EXPECT_EQ(core_->stats().max_tasks_in_use, 4u);
  EXPECT_EQ(core_->stats().tasks_in_use, 0u) << "all freed at the end";
}

TEST_F(WorkerCoreTest, DepthPropagates) {
  TaskRegistry reg;
  std::vector<std::uint32_t> depths;
  TaskId rec = reg.add("rec", [&](Context& cx, Closure& c) {
    depths.push_back(c.depth);
    if (c.args[0].as_int() > 0) {
      cx.spawn(c.task, {Value(c.args[0].as_int() - 1)}, c.cont);
    } else {
      cx.send(c.cont, Value());
    }
  });
  LocalRunner runner(reg);
  runner.run(rec, {Value(std::int64_t{3})});
  EXPECT_EQ(depths, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST_F(WorkerCoreTest, StealTakesTail) {
  // Two tasks spawned; steal must take the OLDER one (FIFO).
  core_->spawn(leaf_id_, {Value(std::int64_t{1})}, remote_cont(), 0);
  core_->spawn(leaf_id_, {Value(std::int64_t{2})}, remote_cont(), 0);
  auto stolen = core_->try_steal(net::NodeId{5});
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->args[0].as_int(), 1) << "oldest task is stolen";
  EXPECT_EQ(core_->stats().tasks_stolen_from_me, 1u);
  EXPECT_EQ(core_->stats().steal_requests_received, 1u);
  EXPECT_EQ(core_->ready_count(), 1u);
}

TEST_F(WorkerCoreTest, FailedStealOnEmptyQueue) {
  auto stolen = core_->try_steal(net::NodeId{5});
  EXPECT_FALSE(stolen.has_value());
  EXPECT_EQ(core_->stats().steal_requests_received, 1u);
  EXPECT_EQ(core_->stats().tasks_stolen_from_me, 0u);
}

TEST_F(WorkerCoreTest, InstallStolenMakesTaskRunnable) {
  WorkerCore thief(net::NodeId{1}, registry_, make_hooks());
  core_->spawn(leaf_id_, {Value(std::int64_t{42})}, remote_cont(), 0);
  auto stolen = core_->try_steal(net::NodeId{1});
  ASSERT_TRUE(stolen.has_value());
  thief.install_stolen(std::move(*stolen));
  EXPECT_EQ(thief.stats().tasks_stolen_by_me, 1u);
  while (auto c = thief.pop_for_execution()) thief.execute(*c);
  ASSERT_EQ(remote_sends_.size(), 1u);
  EXPECT_EQ(remote_sends_[0].second.as_int(), 42);
}

TEST_F(WorkerCoreTest, DeliverRemoteFillsWaitingClosure) {
  const ClosureId join =
      core_->create_waiting(sum_id_, 2, remote_cont(), 0);
  EXPECT_EQ(core_->deliver_remote(join, 0, Value(std::int64_t{10})),
            WorkerCore::Deliver::kFilled);
  EXPECT_EQ(core_->deliver_remote(join, 1, Value(std::int64_t{20})),
            WorkerCore::Deliver::kBecameReady);
  drain();
  ASSERT_EQ(remote_sends_.size(), 1u);
  EXPECT_EQ(remote_sends_[0].second.as_int(), 30);
}

TEST_F(WorkerCoreTest, DeliverRemoteDuplicateIsIdempotent) {
  const ClosureId join = core_->create_waiting(sum_id_, 2, remote_cont(), 0);
  EXPECT_EQ(core_->deliver_remote(join, 0, Value(std::int64_t{10})),
            WorkerCore::Deliver::kFilled);
  EXPECT_EQ(core_->deliver_remote(join, 0, Value(std::int64_t{99})),
            WorkerCore::Deliver::kDuplicate);
  EXPECT_EQ(core_->deliver_remote(join, 1, Value(std::int64_t{20})),
            WorkerCore::Deliver::kBecameReady);
  drain();
  ASSERT_EQ(remote_sends_.size(), 1u);
  EXPECT_EQ(remote_sends_[0].second.as_int(), 30) << "duplicate was dropped";
  EXPECT_EQ(core_->stats().args_duplicate, 1u);
}

TEST_F(WorkerCoreTest, DeliverRemoteUnknownClosure) {
  EXPECT_EQ(core_->deliver_remote(ClosureId{net::NodeId{0}, 999}, 0, Value()),
            WorkerCore::Deliver::kUnknown);
  EXPECT_EQ(core_->stats().args_unknown_closure, 1u);
}

TEST_F(WorkerCoreTest, ZeroSlotJoinIsImmediatelyReady) {
  TaskRegistry reg;
  bool ran = false;
  TaskId t = reg.add("t", [&](Context& cx, Closure& c) {
    ran = true;
    cx.send(c.cont, Value());
  });
  WorkerCore core(net::NodeId{0}, reg, make_hooks());
  core.create_waiting(t, 0, remote_cont(), 0);
  while (auto c = core.pop_for_execution()) core.execute(*c);
  EXPECT_TRUE(ran);
}

TEST_F(WorkerCoreTest, ChargeAccumulatesPerExecution) {
  core_->spawn(charger_id_, {Value(std::int64_t{100})}, remote_cont(), 0);
  auto c = core_->pop_for_execution();
  ASSERT_TRUE(c.has_value());
  core_->execute(*c);
  EXPECT_EQ(core_->last_charge(), 105u);
  // Next execution resets the counter.
  core_->spawn(leaf_id_, {Value(std::int64_t{1})}, remote_cont(), 0);
  c = core_->pop_for_execution();
  core_->execute(*c);
  EXPECT_EQ(core_->last_charge(), 0u);
}

TEST_F(WorkerCoreTest, MigrationDrainsReadyAndWaiting) {
  core_->spawn(leaf_id_, {Value(std::int64_t{1})}, remote_cont(), 0);
  core_->create_waiting(sum_id_, 2, remote_cont(), 0);
  auto moved = core_->drain_for_migration();
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(core_->ready_count(), 0u);
  EXPECT_EQ(core_->waiting_count(), 0u);
  EXPECT_EQ(core_->stats().tasks_migrated_out, 2u);
  EXPECT_EQ(core_->stats().tasks_in_use, 0u);
}

TEST_F(WorkerCoreTest, InstallMigratedRestoresState) {
  WorkerCore successor(net::NodeId{1}, registry_, make_hooks());
  core_->spawn(leaf_id_, {Value(std::int64_t{5})}, remote_cont(), 0);
  const ClosureId join = core_->create_waiting(sum_id_, 2, remote_cont(), 0);
  for (auto& c : core_->drain_for_migration()) {
    successor.install_migrated(std::move(c));
  }
  EXPECT_EQ(successor.ready_count(), 1u);
  EXPECT_EQ(successor.waiting_count(), 1u);
  // The migrated waiting closure still accepts argument deliveries.
  EXPECT_EQ(successor.deliver_remote(join, 0, Value(std::int64_t{1})),
            WorkerCore::Deliver::kFilled);
}

TEST_F(WorkerCoreTest, DeathRecoveryReenqueuesStolenTasks) {
  core_->spawn(leaf_id_, {Value(std::int64_t{1})}, remote_cont(), 0);
  auto stolen = core_->try_steal(net::NodeId{7});
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(core_->ready_count(), 0u);

  const std::size_t redone = core_->handle_participant_death(net::NodeId{7});
  EXPECT_EQ(redone, 1u);
  EXPECT_EQ(core_->ready_count(), 1u);
  EXPECT_EQ(core_->stats().tasks_redone, 1u);
  drain();
  ASSERT_EQ(remote_sends_.size(), 1u);
  EXPECT_EQ(remote_sends_[0].second.as_int(), 1);
}

TEST_F(WorkerCoreTest, DeathRecoveryIgnoresOtherThieves) {
  core_->spawn(leaf_id_, {Value(std::int64_t{1})}, remote_cont(), 0);
  core_->try_steal(net::NodeId{7});
  EXPECT_EQ(core_->handle_participant_death(net::NodeId{8}), 0u);
  EXPECT_EQ(core_->ready_count(), 0u);
}

TEST_F(WorkerCoreTest, DeathRecoveryAbortsOrphanedStolenTasks) {
  // We stole a task whose result is claimed by node 9; node 9 dies before we
  // run it: the task must be dropped from our queue.
  WorkerCore victim(net::NodeId{2}, registry_, make_hooks());
  victim.spawn(leaf_id_, {Value(std::int64_t{1})},
               ContRef{ClosureId{net::NodeId{9}, 1}, 0, net::NodeId{9}}, 0);
  auto stolen = victim.try_steal(core_->id());
  ASSERT_TRUE(stolen.has_value());
  core_->install_stolen(std::move(*stolen));
  EXPECT_EQ(core_->ready_count(), 1u);

  core_->handle_participant_death(net::NodeId{9});
  EXPECT_EQ(core_->ready_count(), 0u) << "orphaned task aborted";
}

TEST_F(WorkerCoreTest, RedoneTaskResultIsIdempotentDownstream) {
  // Victim's join receives the result twice (once from the original thief's
  // pre-crash execution, once from the redo): the second is dropped.
  const ClosureId join = core_->create_waiting(sum_id_, 2, remote_cont(), 0);
  core_->spawn(leaf_id_, {Value(std::int64_t{10})},
               core_->slot_ref(join, 0), 0);
  auto stolen = core_->try_steal(net::NodeId{7});
  ASSERT_TRUE(stolen.has_value());

  // Thief executes and its result arrives...
  EXPECT_EQ(core_->deliver_remote(join, 0, Value(std::int64_t{10})),
            WorkerCore::Deliver::kFilled);
  // ...then the thief is declared dead and the task redone locally.
  core_->handle_participant_death(net::NodeId{7});
  drain();
  EXPECT_EQ(core_->stats().args_duplicate, 1u);
  // Join still waits for slot 1; fill it and confirm the sum used the first
  // delivery only.
  EXPECT_EQ(core_->deliver_remote(join, 1, Value(std::int64_t{5})),
            WorkerCore::Deliver::kBecameReady);
  drain();
  ASSERT_EQ(remote_sends_.size(), 1u);
  EXPECT_EQ(remote_sends_[0].second.as_int(), 15);
}

TEST_F(WorkerCoreTest, ClearStealLedger) {
  core_->spawn(leaf_id_, {Value(std::int64_t{1})}, remote_cont(), 0);
  core_->try_steal(net::NodeId{7});
  core_->clear_steal_ledger();
  EXPECT_EQ(core_->handle_participant_death(net::NodeId{7}), 0u);
}

TEST(TaskRegistryTest, RegistersAndLooksUp) {
  TaskRegistry reg;
  const TaskId a = reg.add("a", [](Context&, Closure&) {});
  const TaskId b = reg.add("b", [](Context&, Closure&) {});
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.id_of("a"), a);
  EXPECT_EQ(reg.id_of("b"), b);
  EXPECT_EQ(reg.name_of(a), "a");
  EXPECT_NE(reg.entry(a).fn, nullptr);
  EXPECT_TRUE(reg.has("a"));
  EXPECT_FALSE(reg.has("c"));
  EXPECT_EQ(reg.size(), 2u);
}

TEST(TaskRegistryTest, RejectsDuplicateNames) {
  TaskRegistry reg;
  reg.add("a", [](Context&, Closure&) {});
  EXPECT_THROW(reg.add("a", [](Context&, Closure&) {}),
               std::invalid_argument);
}

TEST(TaskRegistryTest, UnknownLookupsThrow) {
  TaskRegistry reg;
  EXPECT_THROW(reg.id_of("nope"), std::out_of_range);
  EXPECT_THROW(reg.entry(0), std::out_of_range);
  EXPECT_THROW(reg.name_of(0), std::out_of_range);
}

TEST(LocalRunnerTest, RunsTrivialTask) {
  TaskRegistry reg;
  const TaskId t = reg.add("id", [](Context& cx, Closure& c) {
    cx.send(c.cont, c.args[0]);
  });
  LocalRunner runner(reg);
  EXPECT_EQ(runner.run(t, {Value(std::int64_t{5})}).as_int(), 5);
}

TEST(LocalRunnerTest, ThrowsWithoutResult) {
  TaskRegistry reg;
  const TaskId t = reg.add("noop", [](Context&, Closure&) {});
  LocalRunner runner(reg);
  EXPECT_THROW(runner.run(t, {}), std::runtime_error);
}

TEST(LocalRunnerTest, RunByName) {
  TaskRegistry reg;
  reg.add("id", [](Context& cx, Closure& c) { cx.send(c.cont, c.args[0]); });
  LocalRunner runner(reg);
  EXPECT_EQ(runner.run("id", {Value(std::int64_t{11})}).as_int(), 11);
}

TEST(LocalRunnerTest, CanRunTwice) {
  TaskRegistry reg;
  reg.add("id", [](Context& cx, Closure& c) { cx.send(c.cont, c.args[0]); });
  LocalRunner runner(reg);
  EXPECT_EQ(runner.run("id", {Value(std::int64_t{1})}).as_int(), 1);
  EXPECT_EQ(runner.run("id", {Value(std::int64_t{2})}).as_int(), 2);
}

}  // namespace
}  // namespace phish
