#include "core/dsl.hpp"

#include <gtest/gtest.h>

#include "apps/fib/fib.hpp"
#include "core/local_runner.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "runtime/threads/threads_runtime.hpp"

namespace phish::dsl {
namespace {

/// fib in five lines: the DSL generates everything apps/fib wires by hand.
TaskId register_dsl_fib(TaskRegistry& reg) {
  return register_expand_reduce(
      reg, "dsl.fib",
      [](Context&, const std::vector<Value>& args) {
        const std::int64_t n = args[0].as_int();
        if (n < 2) return Expansion::make_leaf(Value(n));
        return Expansion::make_children({{Value(n - 1)}, {Value(n - 2)}});
      },
      [](Context&, std::vector<Value>& kids) {
        return Value(kids[0].as_int() + kids[1].as_int());
      });
}

TEST(Dsl, FibMatchesHandWiredVersion) {
  TaskRegistry reg;
  const TaskId root = register_dsl_fib(reg);
  LocalRunner runner(reg);
  for (std::int64_t n = 0; n <= 14; ++n) {
    EXPECT_EQ(runner.run(root, {Value(n)}).as_int(), apps::fib_serial(n))
        << n;
  }
}

TEST(Dsl, LeafOnlyRoot) {
  TaskRegistry reg;
  const TaskId root = register_expand_reduce(
      reg, "dsl.leafy",
      [](Context&, const std::vector<Value>& args) {
        return Expansion::make_leaf(Value(args[0].as_int() * 2));
      },
      [](Context&, std::vector<Value>&) { return Value(); });
  LocalRunner runner(reg);
  EXPECT_EQ(runner.run(root, {Value(std::int64_t{21})}).as_int(), 42);
}

TEST(Dsl, VariableArityChildren) {
  // Sum of 1..n by splitting into n single-leaf children at the root.
  TaskRegistry reg;
  const TaskId root = register_expand_reduce(
      reg, "dsl.sumn",
      [](Context&, const std::vector<Value>& args) {
        const std::int64_t n = args[0].as_int();
        const std::int64_t depth = args[1].as_int();
        if (depth == 1) return Expansion::make_leaf(Value(n));
        std::vector<std::vector<Value>> kids;
        for (std::int64_t i = 1; i <= n; ++i) {
          kids.push_back({Value(i), Value(std::int64_t{1})});
        }
        return Expansion::make_children(std::move(kids));
      },
      [](Context&, std::vector<Value>& kids) {
        std::int64_t total = 0;
        for (const Value& v : kids) total += v.as_int();
        return Value(total);
      });
  LocalRunner runner(reg);
  EXPECT_EQ(runner
                .run(root, {Value(std::int64_t{100}), Value(std::int64_t{0})})
                .as_int(),
            5050);
}

TEST(Dsl, SingleChildChainWorks) {
  // Degenerate recursion: each level has exactly one child (a countdown).
  TaskRegistry reg;
  const TaskId root = register_expand_reduce(
      reg, "dsl.chain",
      [](Context&, const std::vector<Value>& args) {
        const std::int64_t n = args[0].as_int();
        if (n == 0) return Expansion::make_leaf(Value(std::int64_t{0}));
        return Expansion::make_children({{Value(n - 1)}});
      },
      [](Context&, std::vector<Value>& kids) {
        return Value(kids[0].as_int() + 1);
      });
  LocalRunner runner(reg);
  EXPECT_EQ(runner.run(root, {Value(std::int64_t{50})}).as_int(), 50);
}

TEST(Dsl, ReduceSeesChildrenInSpawnOrder) {
  TaskRegistry reg;
  const TaskId root = register_expand_reduce(
      reg, "dsl.ordered",
      [](Context&, const std::vector<Value>& args) {
        if (args[0].as_int() != 0) {
          return Expansion::make_leaf(args[0]);
        }
        return Expansion::make_children(
            {{Value(std::int64_t{10})},
             {Value(std::int64_t{20})},
             {Value(std::int64_t{30})}});
      },
      [](Context&, std::vector<Value>& kids) {
        // Positional semantics: 10*1 + 20*2 + 30*3 only if order held.
        std::int64_t acc = 0;
        for (std::size_t i = 0; i < kids.size(); ++i) {
          acc += kids[i].as_int() * static_cast<std::int64_t>(i + 1);
        }
        return Value(acc);
      });
  LocalRunner runner(reg);
  EXPECT_EQ(runner.run(root, {Value(std::int64_t{0})}).as_int(),
            10 * 1 + 20 * 2 + 30 * 3);
}

TEST(Dsl, ChargePropagatesFromExpand) {
  TaskRegistry reg;
  const TaskId root = register_expand_reduce(
      reg, "dsl.charged",
      [](Context& cx, const std::vector<Value>&) {
        cx.charge(12345);
        return Expansion::make_leaf(Value(std::int64_t{1}));
      },
      [](Context&, std::vector<Value>&) { return Value(); });
  LocalRunner runner(reg);
  WorkerCore& core = runner.core();
  core.spawn(root, {}, root_continuation(), 0);
  auto c = core.pop_for_execution();
  ASSERT_TRUE(c.has_value());
  core.execute(*c);
  EXPECT_EQ(core.last_charge(), 12345u);
}

TEST(Dsl, RejectsEmptyExpansion) {
  TaskRegistry reg;
  const TaskId root = register_expand_reduce(
      reg, "dsl.broken",
      [](Context&, const std::vector<Value>&) { return Expansion{}; },
      [](Context&, std::vector<Value>&) { return Value(); });
  LocalRunner runner(reg);
  EXPECT_THROW(runner.run(root, {}), std::logic_error);
}

TEST(Dsl, RejectsMissingFunctions) {
  TaskRegistry reg;
  EXPECT_THROW(register_expand_reduce(reg, "x", nullptr,
                                      [](Context&, std::vector<Value>&) {
                                        return Value();
                                      }),
               std::invalid_argument);
  EXPECT_THROW(register_expand_reduce(
                   reg, "y",
                   [](Context&, const std::vector<Value>&) {
                     return Expansion{};
                   },
                   nullptr),
               std::invalid_argument);
}

TEST(Dsl, RunsOnThreadsRuntime) {
  TaskRegistry reg;
  const TaskId root = register_dsl_fib(reg);
  rt::ThreadsConfig cfg;
  cfg.workers = 4;
  rt::ThreadsRuntime runtime(reg, cfg);
  EXPECT_EQ(runtime.run(root, {Value(std::int64_t{17})}).value.as_int(),
            apps::fib_serial(17));
}

TEST(Dsl, RunsOnSimulatedNetworkWithStealing) {
  TaskRegistry reg;
  const TaskId root = register_dsl_fib(reg);
  rt::SimJobConfig cfg;
  cfg.participants = 4;
  cfg.seed = 3;
  cfg.clearinghouse.detect_failures = false;
  cfg.worker.heartbeat_period = 0;
  cfg.worker.update_period = 0;
  const auto result = rt::run_sim_job(reg, root, {Value(std::int64_t{16})},
                                      cfg);
  EXPECT_EQ(result.value.as_int(), apps::fib_serial(16));
  EXPECT_GT(result.aggregate.tasks_stolen_by_me, 0u)
      << "DSL-generated tasks must be stealable like any closure";
}

}  // namespace
}  // namespace phish::dsl
