// Clearinghouse protocol tests over the simulated network (single-threaded,
// deterministic).
#include "core/clearinghouse.hpp"

#include <gtest/gtest.h>

#include "core/recovery.hpp"
#include "net/sim_net.hpp"

namespace phish {
namespace {

class ClearinghouseTest : public ::testing::Test {
 protected:
  static constexpr net::NodeId kCh{0};

  ClearinghouseTest()
      : network_(sim_, quiet_params()),
        timers_(sim_),
        ch_rpc_(network_.channel(kCh), timers_) {}

  static net::SimNetParams quiet_params() {
    net::SimNetParams p;
    p.jitter = 0;
    return p;
  }

  /// Failure detection re-arms its timer forever, which would keep
  /// sim_.run() from draining; tests not about crash detection disable it.
  static ClearinghouseConfig no_failure_detection() {
    ClearinghouseConfig cfg;
    cfg.detect_failures = false;
    return cfg;
  }

  /// A minimal scripted worker node.  Death notices and new-primary
  /// announcements arrive on the acked kRpcControl path.
  struct FakeWorker {
    net::RpcNode rpc;
    std::vector<std::uint16_t> received_types;
    std::vector<net::NodeId> dead_notices;
    std::vector<std::pair<net::NodeId, std::uint64_t>> new_primaries;
    std::vector<std::uint64_t> retired_migrations;

    FakeWorker(net::SimNetwork& network, net::TimerService& timers,
               net::NodeId id)
        : rpc(network.channel(id), timers) {
      rpc.set_oneway_handler([this](net::Message&& m) {
        received_types.push_back(m.type);
      });
      rpc.serve(proto::kRpcControl, [this](net::NodeId, const Bytes& args) {
        if (auto msg = proto::ControlMsg::decode(args)) {
          if (msg->kind == proto::ControlMsg::kDeadNotice) {
            dead_notices.push_back(msg->who);
          } else if (msg->kind == proto::ControlMsg::kNewPrimary) {
            new_primaries.emplace_back(msg->who, msg->view);
          } else if (msg->kind == proto::ControlMsg::kMigrationRetired) {
            retired_migrations.push_back(msg->view);
          }
        }
        return Bytes{};
      });
    }

    /// incarnation 0 = legacy empty registration payload.
    void register_with(net::NodeId ch, proto::Membership* out = nullptr,
                       std::uint32_t incarnation = 0) {
      const Bytes payload =
          incarnation == 0 ? Bytes{}
                           : proto::RegisterMsg{incarnation}.encode();
      rpc.call(ch, proto::kRpcRegister, payload, [out](net::RpcResult r) {
        ASSERT_TRUE(r.ok);
        if (out) {
          auto m = proto::Membership::decode(r.reply);
          ASSERT_TRUE(m.has_value());
          *out = *m;
        }
      });
    }
    void heartbeat(net::NodeId ch) {
      rpc.send_oneway(ch, proto::kHeartbeat, {});
    }
  };

  sim::Simulator sim_;
  net::SimNetwork network_;
  net::SimTimerService timers_;
  net::RpcNode ch_rpc_;
};

TEST_F(ClearinghouseTest, RegistrationBuildsMembership) {
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  FakeWorker w2(network_, timers_, net::NodeId{2});

  proto::Membership m1, m2;
  w1.register_with(kCh, &m1);
  sim_.run();
  w2.register_with(kCh, &m2);
  sim_.run();

  EXPECT_EQ(m1.participants.size(), 1u);
  EXPECT_EQ(m2.participants.size(), 2u);
  EXPECT_GT(m2.epoch, m1.epoch);
  EXPECT_EQ(ch.membership().participants.size(), 2u);
}

TEST_F(ClearinghouseTest, DuplicateRegistrationIsIdempotent) {
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  w1.register_with(kCh);
  sim_.run();
  const std::uint64_t epoch = ch.membership().epoch;
  w1.register_with(kCh);
  sim_.run();
  EXPECT_EQ(ch.membership().participants.size(), 1u);
  EXPECT_EQ(ch.membership().epoch, epoch) << "no change, no epoch bump";
}

TEST_F(ClearinghouseTest, UnregisterRemoves) {
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  w1.register_with(kCh);
  sim_.run();
  w1.rpc.call(kCh, proto::kRpcUnregister, {}, [](net::RpcResult) {});
  sim_.run();
  EXPECT_TRUE(ch.membership().participants.empty());
}

TEST_F(ClearinghouseTest, ResultTriggersShutdownBroadcast) {
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  FakeWorker w2(network_, timers_, net::NodeId{2});
  w1.register_with(kCh);
  w2.register_with(kCh);
  sim_.run();

  std::optional<Value> callback_value;
  ch.set_on_result([&](const Value& v) { callback_value = v; });

  const proto::ArgumentMsg arg{clearinghouse_continuation(kCh),
                               Value(std::int64_t{42})};
  w1.rpc.send_oneway(kCh, proto::kArgument, arg.encode());
  sim_.run();

  ASSERT_TRUE(ch.result().has_value());
  EXPECT_EQ(ch.result()->as_int(), 42);
  ASSERT_TRUE(callback_value.has_value());
  EXPECT_EQ(callback_value->as_int(), 42);
  EXPECT_EQ(std::count(w1.received_types.begin(), w1.received_types.end(),
                       proto::kShutdown),
            1);
  EXPECT_EQ(std::count(w2.received_types.begin(), w2.received_types.end(),
                       proto::kShutdown),
            1);
}

TEST_F(ClearinghouseTest, DuplicateResultIgnored) {
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  w1.register_with(kCh);
  sim_.run();
  const auto cont = clearinghouse_continuation(kCh);
  w1.rpc.send_oneway(kCh, proto::kArgument,
                     proto::ArgumentMsg{cont, Value(std::int64_t{1})}.encode());
  sim_.run();
  w1.rpc.send_oneway(kCh, proto::kArgument,
                     proto::ArgumentMsg{cont, Value(std::int64_t{2})}.encode());
  sim_.run();
  EXPECT_EQ(ch.result()->as_int(), 1) << "redo duplicates must not overwrite";
}

TEST_F(ClearinghouseTest, HeartbeatTimeoutDeclaresDeath) {
  ClearinghouseConfig cfg;
  cfg.heartbeat_timeout_ns = 3 * sim::kSecond;
  cfg.failure_check_period_ns = sim::kSecond;
  Clearinghouse ch(ch_rpc_, timers_, cfg);
  ch.start();

  FakeWorker w1(network_, timers_, net::NodeId{1});
  FakeWorker w2(network_, timers_, net::NodeId{2});
  w1.register_with(kCh);
  w2.register_with(kCh);
  // The failure detector re-arms forever, so drive bounded slices of time
  // rather than draining the queue.
  sim_.run_until(100 * sim::kMillisecond);

  std::vector<net::NodeId> deaths;
  ch.set_on_death([&](net::NodeId n) { deaths.push_back(n); });

  // w2 heartbeats; w1 goes silent.
  for (int t = 1; t <= 10; ++t) {
    sim_.schedule_at(static_cast<sim::SimTime>(t) * sim::kSecond,
                     [&] { w2.heartbeat(kCh); });
  }
  sim_.run_until(8 * sim::kSecond);

  ASSERT_EQ(deaths.size(), 1u);
  EXPECT_EQ(deaths[0], (net::NodeId{1}));
  EXPECT_EQ(ch.membership().participants.size(), 1u);
  EXPECT_EQ(ch.declared_dead().size(), 1u);
  // The survivor was told.
  EXPECT_EQ(w2.dead_notices.size(), 1u);
  EXPECT_EQ(w2.dead_notices[0], (net::NodeId{1}));
  // The dead worker is not told (it is dead).
  EXPECT_TRUE(w1.dead_notices.empty());
}

TEST_F(ClearinghouseTest, FailureDetectionDisabled) {
  ClearinghouseConfig cfg;
  cfg.detect_failures = false;
  Clearinghouse ch(ch_rpc_, timers_, cfg);
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  w1.register_with(kCh);
  sim_.run();
  sim_.run_until(60 * sim::kSecond);
  EXPECT_EQ(ch.membership().participants.size(), 1u) << "never declared dead";
}

TEST_F(ClearinghouseTest, CollectsStatsReports) {
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  proto::StatsMsg msg;
  msg.who = net::NodeId{1};
  msg.stats.tasks_executed = 12345;
  msg.start_ns = 10;
  msg.end_ns = 99;
  w1.rpc.send_oneway(kCh, proto::kStatsReport, msg.encode());
  sim_.run();
  const auto reports = ch.stats_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].who, (net::NodeId{1}));
  EXPECT_EQ(reports[0].stats.tasks_executed, 12345u);
  EXPECT_EQ(reports[0].end_ns, 99u);
}

TEST_F(ClearinghouseTest, CollectsIo) {
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  w1.rpc.send_oneway(kCh, proto::kIo,
                     proto::IoMsg{net::NodeId{1}, "hello"}.encode());
  w1.rpc.send_oneway(kCh, proto::kIo,
                     proto::IoMsg{net::NodeId{1}, "world"}.encode());
  sim_.run();
  const auto log = ch.io_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].text, "hello");
  EXPECT_EQ(log[1].text, "world");
}

TEST_F(ClearinghouseTest, MalformedMessagesIgnored) {
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  w1.rpc.send_oneway(kCh, proto::kArgument, Bytes{1, 2, 3});
  w1.rpc.send_oneway(kCh, proto::kStatsReport, Bytes{});
  w1.rpc.send_oneway(kCh, proto::kIo, Bytes{0xff});
  EXPECT_NO_THROW(sim_.run());
  EXPECT_FALSE(ch.result().has_value());
  EXPECT_TRUE(ch.stats_reports().empty());
}

TEST_F(ClearinghouseTest, ReplicationMirrorsStateToStandby) {
  ClearinghouseConfig cfg;
  cfg.detect_failures = false;
  cfg.replicate_period_ns = 100 * sim::kMillisecond;
  Clearinghouse primary(ch_rpc_, timers_, cfg);
  net::RpcNode backup_rpc(network_.channel(net::NodeId{9}), timers_);
  Clearinghouse backup(backup_rpc, timers_, cfg);
  primary.start();
  backup.start_standby(kCh);
  primary.set_standby(net::NodeId{9});

  FakeWorker w1(network_, timers_, net::NodeId{1});
  FakeWorker w2(network_, timers_, net::NodeId{2});
  w1.register_with(kCh);
  w2.register_with(kCh);
  sim_.run_until(50 * sim::kMillisecond);
  w1.rpc.send_oneway(kCh, proto::kIo,
                     proto::IoMsg{net::NodeId{1}, "hello"}.encode());
  // The replicate timer re-arms forever; drive a bounded slice.
  sim_.run_until(sim::kSecond);

  EXPECT_EQ(backup.role(), Clearinghouse::Role::kStandby);
  EXPECT_EQ(backup.membership().participants.size(), 2u);
  EXPECT_EQ(backup.membership().epoch, primary.membership().epoch);
  const auto log = backup.io_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].text, "hello");
  primary.stop();
  backup.stop();
}

TEST_F(ClearinghouseTest, StandbyPromotesWhenPrimaryHalts) {
  ClearinghouseConfig cfg;
  cfg.detect_failures = false;
  cfg.replicate_period_ns = 100 * sim::kMillisecond;
  cfg.lease_timeout_ns = 500 * sim::kMillisecond;
  cfg.lease_check_period_ns = 100 * sim::kMillisecond;
  Clearinghouse primary(ch_rpc_, timers_, cfg);
  net::RpcNode backup_rpc(network_.channel(net::NodeId{9}), timers_);
  Clearinghouse backup(backup_rpc, timers_, cfg);
  RecoveryTracker tracker;
  backup.set_recovery_tracker(&tracker);
  primary.start();
  backup.start_standby(kCh);
  primary.set_standby(net::NodeId{9});

  FakeWorker w1(network_, timers_, net::NodeId{1});
  w1.register_with(kCh);
  sim_.run_until(sim::kSecond);
  ASSERT_EQ(backup.membership().participants.size(), 1u);

  sim_.schedule_at(2 * sim::kSecond, [&] { primary.halt(); });
  sim_.run_until(5 * sim::kSecond);

  EXPECT_TRUE(backup.acting_primary());
  EXPECT_EQ(backup.view(), 2u);
  // Participants were told who the new coordinator is, reliably.
  ASSERT_FALSE(w1.new_primaries.empty());
  EXPECT_EQ(w1.new_primaries.back().first, (net::NodeId{9}));
  EXPECT_EQ(w1.new_primaries.back().second, 2u);
  const auto snap = tracker.snapshot();
  EXPECT_GE(snap.detects, 1u);
  EXPECT_EQ(snap.promotions, 1u);
  backup.stop();
}

TEST_F(ClearinghouseTest, RejoinWithHigherIncarnationImpliesDeath) {
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  RecoveryTracker tracker;
  ch.set_recovery_tracker(&tracker);
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  FakeWorker w2(network_, timers_, net::NodeId{2});
  w1.register_with(kCh, nullptr, 1);
  w2.register_with(kCh, nullptr, 1);
  sim_.run();
  const std::uint64_t epoch_before = ch.membership().epoch;

  // w1 crashes and comes back before the failure detector would notice.
  proto::Membership m;
  w1.register_with(kCh, &m, 2);
  sim_.run();

  // The old incarnation is implicitly dead: survivors are told (so they
  // redo its stolen work), then the replacement is admitted.
  ASSERT_EQ(w2.dead_notices.size(), 1u);
  EXPECT_EQ(w2.dead_notices[0], (net::NodeId{1}));
  EXPECT_EQ(ch.membership().participants.size(), 2u);
  EXPECT_GT(ch.membership().epoch, epoch_before);
  EXPECT_EQ(ch.declared_dead().size(), 1u);
  EXPECT_GE(tracker.snapshot().rejoins, 1u);
  EXPECT_EQ(m.participants.size(), 2u);
}

TEST_F(ClearinghouseTest, StaleIncarnationRegisterDoesNotResurrect) {
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  FakeWorker w2(network_, timers_, net::NodeId{2});
  w1.register_with(kCh, nullptr, 2);
  w2.register_with(kCh, nullptr, 1);
  sim_.run();
  const std::uint64_t epoch = ch.membership().epoch;

  // A delayed register from incarnation 1 must not disturb incarnation 2.
  w1.register_with(kCh, nullptr, 1);
  sim_.run();
  EXPECT_EQ(ch.membership().participants.size(), 2u);
  EXPECT_EQ(ch.membership().epoch, epoch);
  EXPECT_TRUE(w2.dead_notices.empty());
}

/// A minimal migratable closure: id-addressable, no pending arguments.
Closure make_cargo(std::uint32_t origin, std::uint64_t seq) {
  Closure c;
  c.id = ClosureId{net::NodeId{origin}, seq};
  c.task = TaskId{1};
  return c;
}

TEST_F(ClearinghouseTest, MigrationLedgerRedeliversWhenHolderDies) {
  // The tentpole guarantee, end to end at the protocol level: a departing
  // worker registers its cargo, hands it to a successor, confirms the
  // holder, and unregisters.  When the successor later dies, the
  // Clearinghouse must redeliver the registered cargo to a surviving
  // worker — the inherited closures appear in no steal ledger, so nothing
  // else can redo them.
  ClearinghouseConfig cfg;
  cfg.heartbeat_timeout_ns = 3 * sim::kSecond;
  cfg.failure_check_period_ns = sim::kSecond;
  Clearinghouse ch(ch_rpc_, timers_, cfg);
  RecoveryTracker tracker;
  ch.set_recovery_tracker(&tracker);
  ch.start();

  FakeWorker w1(network_, timers_, net::NodeId{1});  // departing origin
  FakeWorker w2(network_, timers_, net::NodeId{2});  // successor, will die
  FakeWorker w3(network_, timers_, net::NodeId{3});  // survivor
  std::vector<proto::MigrateMsg> at_w3;
  w3.rpc.serve(proto::kRpcMigrate, [&](net::NodeId, const Bytes& args) {
    auto m = proto::MigrateMsg::decode(args);
    if (m) at_w3.push_back(*m);
    Writer accept;
    accept.boolean(true);
    return accept.take();
  });
  std::size_t at_w2 = 0;
  w2.rpc.serve(proto::kRpcMigrate, [&](net::NodeId, const Bytes&) {
    ++at_w2;
    Writer accept;
    accept.boolean(true);
    return accept.take();
  });
  w1.register_with(kCh, nullptr, 1);
  w2.register_with(kCh, nullptr, 1);
  w3.register_with(kCh, nullptr, 1);
  sim_.run_until(100 * sim::kMillisecond);

  // w1's durability handshake: register (holder = self), then confirm the
  // successor, then retire.
  const std::uint64_t mid = (1ull << 32) | 1;
  proto::MigrationLedgerMsg reg;
  reg.migration_id = mid;
  reg.from = net::NodeId{1};
  reg.holder = net::NodeId{1};
  reg.closures = {make_cargo(1, 7), make_cargo(1, 8)};
  w1.rpc.call(kCh, proto::kRpcMigrateLedger, reg.encode(),
              [](net::RpcResult r) { ASSERT_TRUE(r.ok); });
  sim_.run_until(200 * sim::kMillisecond);
  proto::MigrationLedgerMsg upd;
  upd.migration_id = mid;
  upd.from = net::NodeId{1};
  upd.holder = net::NodeId{2};
  w1.rpc.call(kCh, proto::kRpcMigrateLedger, upd.encode(),
              [](net::RpcResult r) { ASSERT_TRUE(r.ok); });
  sim_.run_until(300 * sim::kMillisecond);
  w1.rpc.call(kCh, proto::kRpcUnregister, {}, [](net::RpcResult) {});
  sim_.run_until(400 * sim::kMillisecond);
  ASSERT_EQ(ch.migration_ledger_size(), 1u)
      << "the origin's graceful unregister must not retire an entry it "
         "already handed to a successor";

  // w3 stays alive; w2 (the holder) goes silent and is declared dead.
  for (int t = 1; t <= 10; ++t) {
    sim_.schedule_at(static_cast<sim::SimTime>(t) * sim::kSecond,
                     [&] { w3.heartbeat(kCh); });
  }
  sim_.run_until(8 * sim::kSecond);

  ASSERT_EQ(at_w3.size(), 1u) << "cargo must be redelivered to the survivor";
  EXPECT_EQ(at_w2, 0u);
  EXPECT_TRUE(at_w3[0].redelivery);
  EXPECT_EQ(at_w3[0].migration_id, mid);
  EXPECT_EQ(at_w3[0].from, (net::NodeId{1}));
  EXPECT_EQ(at_w3[0].closures.size(), 2u);
  EXPECT_EQ(at_w3[0].closures[0].id.seq, 7u);
  EXPECT_EQ(tracker.snapshot().migration_redo, 2u);
  EXPECT_EQ(ch.migration_ledger_size(), 1u)
      << "the entry survives with the new holder: if the survivor dies "
         "too, the cargo is redelivered again";
}

TEST_F(ClearinghouseTest, MigrationLedgerDropsEntriesWhoseOriginDied) {
  // Mid-handshake crash of the migrating worker itself (holder == origin):
  // the victims' incarnation-blind death-redo already re-executes everything
  // the origin held, and redelivered fills routed through its forwarding
  // stub could never complete — the entry must be dropped, not redelivered.
  ClearinghouseConfig cfg;
  cfg.heartbeat_timeout_ns = 3 * sim::kSecond;
  cfg.failure_check_period_ns = sim::kSecond;
  Clearinghouse ch(ch_rpc_, timers_, cfg);
  RecoveryTracker tracker;
  ch.set_recovery_tracker(&tracker);
  ch.start();

  FakeWorker w1(network_, timers_, net::NodeId{1});  // dies mid-handshake
  FakeWorker w2(network_, timers_, net::NodeId{2});  // survivor
  std::size_t at_w2 = 0;
  w2.rpc.serve(proto::kRpcMigrate, [&](net::NodeId, const Bytes&) {
    ++at_w2;
    Writer accept;
    accept.boolean(true);
    return accept.take();
  });
  w1.register_with(kCh, nullptr, 1);
  w2.register_with(kCh, nullptr, 1);
  sim_.run_until(100 * sim::kMillisecond);

  proto::MigrationLedgerMsg reg;
  reg.migration_id = (1ull << 32) | 1;
  reg.from = net::NodeId{1};
  reg.holder = net::NodeId{1};
  reg.closures = {make_cargo(1, 7)};
  w1.rpc.call(kCh, proto::kRpcMigrateLedger, reg.encode(),
              [](net::RpcResult r) { ASSERT_TRUE(r.ok); });
  sim_.run_until(200 * sim::kMillisecond);
  ASSERT_EQ(ch.migration_ledger_size(), 1u);

  // w1 goes silent before confirming any successor.
  for (int t = 1; t <= 10; ++t) {
    sim_.schedule_at(static_cast<sim::SimTime>(t) * sim::kSecond,
                     [&] { w2.heartbeat(kCh); });
  }
  sim_.run_until(8 * sim::kSecond);

  EXPECT_EQ(ch.migration_ledger_size(), 0u);
  EXPECT_EQ(at_w2, 0u) << "dead-origin cargo must not be redelivered";
  EXPECT_EQ(tracker.snapshot().migration_redo, 0u);
}

TEST_F(ClearinghouseTest, MigrationLedgerRetiredByHolderUnregister) {
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  FakeWorker w2(network_, timers_, net::NodeId{2});
  w1.register_with(kCh, nullptr, 1);
  w2.register_with(kCh, nullptr, 1);
  sim_.run();

  proto::MigrationLedgerMsg reg;
  reg.migration_id = (1ull << 32) | 1;
  reg.from = net::NodeId{1};
  reg.holder = net::NodeId{1};
  reg.closures = {make_cargo(1, 7)};
  w1.rpc.call(kCh, proto::kRpcMigrateLedger, reg.encode(),
              [](net::RpcResult r) { ASSERT_TRUE(r.ok); });
  sim_.run();
  proto::MigrationLedgerMsg upd;
  upd.migration_id = reg.migration_id;
  upd.from = net::NodeId{1};
  upd.holder = net::NodeId{2};
  w1.rpc.call(kCh, proto::kRpcMigrateLedger, upd.encode(),
              [](net::RpcResult r) { ASSERT_TRUE(r.ok); });
  sim_.run();
  ASSERT_EQ(ch.migration_ledger_size(), 1u);

  // The holder finishing the inherited cargo and leaving gracefully is the
  // normal end of the entry's life.
  w2.rpc.call(kCh, proto::kRpcUnregister, {}, [](net::RpcResult) {});
  sim_.run();
  EXPECT_EQ(ch.migration_ledger_size(), 0u);
  // The origin's forwarding stub hears about the retirement, so it can stop
  // retaining the fill log it kept for a possible kReroute replay.
  ASSERT_EQ(w1.retired_migrations.size(), 1u);
  EXPECT_EQ(w1.retired_migrations[0], reg.migration_id);
}

TEST_F(ClearinghouseTest, MigrationLedgerIgnoresStaleRegistrationReplay) {
  // A reordered or duplicated frame of the ORIGINAL registration
  // (holder == from) arriving after the step-3 confirm must not re-point
  // the holder back to the origin: the origin's subsequent graceful
  // unregister would then retire the entry and strand the successor's
  // inherited cargo — the exact window the ledger exists to close.
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  FakeWorker w2(network_, timers_, net::NodeId{2});
  w1.register_with(kCh, nullptr, 1);
  w2.register_with(kCh, nullptr, 1);
  sim_.run();

  const std::uint64_t mid = (1ull << 32) | 1;
  proto::MigrationLedgerMsg reg;
  reg.migration_id = mid;
  reg.from = net::NodeId{1};
  reg.holder = net::NodeId{1};
  reg.closures = {make_cargo(1, 7)};
  w1.rpc.call(kCh, proto::kRpcMigrateLedger, reg.encode(),
              [](net::RpcResult r) { ASSERT_TRUE(r.ok); });
  sim_.run();
  proto::MigrationLedgerMsg upd;
  upd.migration_id = mid;
  upd.from = net::NodeId{1};
  upd.holder = net::NodeId{2};
  w1.rpc.call(kCh, proto::kRpcMigrateLedger, upd.encode(),
              [](net::RpcResult r) { ASSERT_TRUE(r.ok); });
  sim_.run();

  // The late duplicate of the registration (e.g. a retransmit that missed
  // the RPC reply cache).  It must be acked — the caller only needs the
  // original's outcome — but applied as a no-op.
  w1.rpc.call(kCh, proto::kRpcMigrateLedger, reg.encode(),
              [](net::RpcResult r) { ASSERT_TRUE(r.ok); });
  sim_.run();
  ASSERT_EQ(ch.migration_ledger_size(), 1u);

  w1.rpc.call(kCh, proto::kRpcUnregister, {}, [](net::RpcResult) {});
  sim_.run();
  EXPECT_EQ(ch.migration_ledger_size(), 1u)
      << "a stale registration replay re-pointed the holder to the origin, "
         "and the origin's unregister retired the successor's cargo";
}

TEST_F(ClearinghouseTest, SupersedingRegistrationNotifiesRetiredOrigin) {
  // When a holder drains everything it owns (including adopted cargo) into
  // a new registration, the subsumed entries' origins must hear a
  // retirement notice so their stubs can release the replay fill logs.
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  FakeWorker w1(network_, timers_, net::NodeId{1});
  FakeWorker w2(network_, timers_, net::NodeId{2});
  FakeWorker w3(network_, timers_, net::NodeId{3});
  w1.register_with(kCh, nullptr, 1);
  w2.register_with(kCh, nullptr, 1);
  w3.register_with(kCh, nullptr, 1);
  sim_.run();

  // w1 migrates to w2 (register + confirm).
  const std::uint64_t mid1 = (1ull << 32) | 1;
  proto::MigrationLedgerMsg reg;
  reg.migration_id = mid1;
  reg.from = net::NodeId{1};
  reg.holder = net::NodeId{1};
  reg.closures = {make_cargo(1, 7)};
  w1.rpc.call(kCh, proto::kRpcMigrateLedger, reg.encode(),
              [](net::RpcResult r) { ASSERT_TRUE(r.ok); });
  sim_.run();
  proto::MigrationLedgerMsg upd;
  upd.migration_id = mid1;
  upd.from = net::NodeId{1};
  upd.holder = net::NodeId{2};
  w1.rpc.call(kCh, proto::kRpcMigrateLedger, upd.encode(),
              [](net::RpcResult r) { ASSERT_TRUE(r.ok); });
  sim_.run();

  // w2 now departs too: its registration drains everything it holds —
  // including w1's adopted cargo, re-snapshotted with all fills applied —
  // which supersedes and retires mid1.
  proto::MigrationLedgerMsg reg2;
  reg2.migration_id = (2ull << 32) | 1;
  reg2.from = net::NodeId{2};
  reg2.holder = net::NodeId{2};
  reg2.closures = {make_cargo(1, 7), make_cargo(2, 3)};
  w2.rpc.call(kCh, proto::kRpcMigrateLedger, reg2.encode(),
              [](net::RpcResult r) { ASSERT_TRUE(r.ok); });
  sim_.run();

  ASSERT_EQ(ch.migration_ledger_size(), 1u) << "mid1 subsumed by w2's drain";
  ASSERT_EQ(w1.retired_migrations.size(), 1u);
  EXPECT_EQ(w1.retired_migrations[0], mid1);
}

TEST_F(ClearinghouseTest, MigrationLedgerReplicatedToStandby) {
  // Redo ownership must survive a coordinator failover: the standby
  // receives the migration ledger in every replication delta and keeps it
  // across promotion.
  ClearinghouseConfig cfg;
  cfg.detect_failures = false;
  cfg.replicate_period_ns = 100 * sim::kMillisecond;
  cfg.lease_timeout_ns = 500 * sim::kMillisecond;
  cfg.lease_check_period_ns = 100 * sim::kMillisecond;
  Clearinghouse primary(ch_rpc_, timers_, cfg);
  net::RpcNode backup_rpc(network_.channel(net::NodeId{9}), timers_);
  Clearinghouse backup(backup_rpc, timers_, cfg);
  primary.start();
  backup.start_standby(kCh);
  primary.set_standby(net::NodeId{9});

  FakeWorker w1(network_, timers_, net::NodeId{1});
  FakeWorker w2(network_, timers_, net::NodeId{2});
  w1.register_with(kCh, nullptr, 1);
  w2.register_with(kCh, nullptr, 1);
  sim_.run_until(50 * sim::kMillisecond);
  proto::MigrationLedgerMsg reg;
  reg.migration_id = (1ull << 32) | 1;
  reg.from = net::NodeId{1};
  reg.holder = net::NodeId{2};
  reg.closures = {make_cargo(1, 7)};
  w1.rpc.call(kCh, proto::kRpcMigrateLedger, reg.encode(),
              [](net::RpcResult r) { ASSERT_TRUE(r.ok); });
  sim_.run_until(sim::kSecond);
  EXPECT_EQ(backup.migration_ledger_size(), 1u);

  sim_.schedule_at(2 * sim::kSecond, [&] { primary.halt(); });
  sim_.run_until(5 * sim::kSecond);
  ASSERT_TRUE(backup.acting_primary());
  EXPECT_EQ(backup.migration_ledger_size(), 1u)
      << "a live holder's entry must survive promotion";
  backup.stop();
}

TEST_F(ClearinghouseTest, MembershipChangeCallback) {
  Clearinghouse ch(ch_rpc_, timers_, no_failure_detection());
  ch.start();
  std::vector<std::size_t> sizes;
  ch.set_on_membership_change([&](std::size_t n) { sizes.push_back(n); });
  FakeWorker w1(network_, timers_, net::NodeId{1});
  FakeWorker w2(network_, timers_, net::NodeId{2});
  w1.register_with(kCh);
  sim_.run();
  w2.register_with(kCh);
  sim_.run();
  w1.rpc.call(kCh, proto::kRpcUnregister, {}, [](net::RpcResult) {});
  sim_.run();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 1}));
}

}  // namespace
}  // namespace phish
