#include "core/jobq.hpp"

#include <gtest/gtest.h>

#include "net/sim_net.hpp"

namespace phish {
namespace {

JobSpec make_spec(const std::string& name, std::uint32_t ch_node = 100) {
  JobSpec s;
  s.name = name;
  s.root_task = name + ".root";
  s.clearinghouse = net::NodeId{ch_node};
  return s;
}

TEST(JobSpecCodec, RoundTrip) {
  JobSpec s = make_spec("ray");
  s.job_id = 7;
  const auto back = JobSpec::decode(s.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->job_id, 7u);
  EXPECT_EQ(back->name, "ray");
  EXPECT_EQ(back->root_task, "ray.root");
  EXPECT_EQ(back->clearinghouse, (net::NodeId{100}));
}

TEST(JobAssignmentCodec, RoundTripEmptyAndFull) {
  JobAssignment empty;
  const auto back_empty = JobAssignment::decode(empty.encode());
  ASSERT_TRUE(back_empty.has_value());
  EXPECT_FALSE(back_empty->job.has_value());

  JobAssignment full;
  full.job = make_spec("pfold");
  full.job->job_id = 3;
  const auto back_full = JobAssignment::decode(full.encode());
  ASSERT_TRUE(back_full.has_value());
  ASSERT_TRUE(back_full->job.has_value());
  EXPECT_EQ(back_full->job->name, "pfold");
  EXPECT_EQ(back_full->job->job_id, 3u);
}

class JobQTest : public ::testing::Test {
 protected:
  JobQTest()
      : network_(sim_), timers_(sim_), rpc_(network_.channel(net::NodeId{0}),
                                            timers_) {}

  sim::Simulator sim_;
  net::SimNetwork network_;
  net::SimTimerService timers_;
  net::RpcNode rpc_;
};

TEST_F(JobQTest, SubmitAssignsIds) {
  PhishJobQ q(rpc_);
  const auto a = q.submit(make_spec("a"));
  const auto b = q.submit(make_spec("b"));
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(q.pool_size(), 2u);
}

TEST_F(JobQTest, EmptyPoolGivesNothing) {
  PhishJobQ q(rpc_);
  EXPECT_FALSE(q.request(net::NodeId{1}).has_value());
  EXPECT_EQ(q.stats().empty_replies, 1u);
}

TEST_F(JobQTest, RoundRobinCyclesThroughJobs) {
  PhishJobQ q(rpc_);
  q.submit(make_spec("a"));
  q.submit(make_spec("b"));
  q.submit(make_spec("c"));
  std::vector<std::string> order;
  for (int i = 0; i < 6; ++i) {
    order.push_back(q.request(net::NodeId{1})->name);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c", "a", "b", "c"}));
}

TEST_F(JobQTest, AssignmentKeepsJobInPool) {
  // The paper's crucial semantics: assignment does not consume the job.
  PhishJobQ q(rpc_);
  q.submit(make_spec("a"));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.request(net::NodeId{1}));
  EXPECT_EQ(q.pool_size(), 1u);
}

TEST_F(JobQTest, CompleteRemovesJob) {
  PhishJobQ q(rpc_);
  const auto a = q.submit(make_spec("a"));
  const auto b = q.submit(make_spec("b"));
  EXPECT_TRUE(q.complete(a));
  EXPECT_FALSE(q.complete(a)) << "second completion is unknown";
  EXPECT_EQ(q.pool_size(), 1u);
  EXPECT_EQ(q.request(net::NodeId{1})->job_id, b);
}

TEST_F(JobQTest, RoundRobinStaysConsistentAfterCompletion) {
  PhishJobQ q(rpc_);
  const auto a = q.submit(make_spec("a"));
  q.submit(make_spec("b"));
  q.submit(make_spec("c"));
  EXPECT_EQ(q.request(net::NodeId{1})->name, "a");
  EXPECT_EQ(q.request(net::NodeId{1})->name, "b");
  q.complete(a);
  // Pool is now [b, c]; cursor should continue without skipping or crashing.
  EXPECT_EQ(q.request(net::NodeId{1})->name, "c");
  EXPECT_EQ(q.request(net::NodeId{1})->name, "b");
  EXPECT_EQ(q.request(net::NodeId{1})->name, "c");
}

TEST_F(JobQTest, FirstJobPolicy) {
  PhishJobQ q(rpc_, JobAssignPolicy::kFirstJob);
  q.submit(make_spec("a"));
  q.submit(make_spec("b"));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q.request(net::NodeId{1})->name, "a");
  }
}

TEST_F(JobQTest, LeastServedPolicyBalances) {
  PhishJobQ q(rpc_, JobAssignPolicy::kLeastServed);
  q.submit(make_spec("a"));
  q.submit(make_spec("b"));
  q.submit(make_spec("c"));
  for (int i = 0; i < 9; ++i) q.request(net::NodeId{1});
  const auto by_job = q.assignments_by_job();
  for (const auto& [id, n] : by_job) {
    EXPECT_EQ(n, 3u) << "job " << id;
  }
}

TEST_F(JobQTest, StatsTrackEverything) {
  PhishJobQ q(rpc_);
  const auto a = q.submit(make_spec("a"));
  q.request(net::NodeId{1});
  q.request(net::NodeId{2});
  q.complete(a);
  q.request(net::NodeId{3});
  const auto s = q.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.assignments, 2u);
  EXPECT_EQ(s.empty_replies, 1u);
}

TEST_F(JobQTest, OnAssignCallback) {
  PhishJobQ q(rpc_);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> seen;
  q.set_on_assign([&](std::uint64_t job, net::NodeId who) {
    seen.emplace_back(job, who.value);
  });
  const auto a = q.submit(make_spec("a"));
  q.request(net::NodeId{9});
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, a);
  EXPECT_EQ(seen[0].second, 9u);
}

TEST_F(JobQTest, RpcInterface) {
  PhishJobQ q(rpc_);
  q.start();
  net::RpcNode client(network_.channel(net::NodeId{1}), timers_);

  // Submit over RPC.
  std::uint64_t job_id = 0;
  client.call(net::NodeId{0}, proto::kRpcSubmitJob, make_spec("rpc").encode(),
              [&](net::RpcResult r) {
                ASSERT_TRUE(r.ok);
                Reader reader(r.reply);
                job_id = reader.u64();
              });
  sim_.run();
  EXPECT_NE(job_id, 0u);
  EXPECT_EQ(q.pool_size(), 1u);

  // Request over RPC.
  std::optional<JobSpec> got;
  client.call(net::NodeId{0}, proto::kRpcRequestJob, {},
              [&](net::RpcResult r) {
                ASSERT_TRUE(r.ok);
                auto a = JobAssignment::decode(r.reply);
                ASSERT_TRUE(a.has_value());
                got = a->job;
              });
  sim_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->name, "rpc");

  // Complete over RPC.
  bool done_ok = false;
  Writer w;
  w.u64(job_id);
  client.call(net::NodeId{0}, proto::kRpcJobDone, w.take(),
              [&](net::RpcResult r) {
                ASSERT_TRUE(r.ok);
                Reader reader(r.reply);
                done_ok = reader.boolean();
              });
  sim_.run();
  EXPECT_TRUE(done_ok);
  EXPECT_EQ(q.pool_size(), 0u);
}

}  // namespace
}  // namespace phish
