#include "core/jobq.hpp"

#include <gtest/gtest.h>

#include "net/sim_net.hpp"

namespace phish {
namespace {

JobSpec make_spec(const std::string& name, std::uint32_t ch_node = 100) {
  JobSpec s;
  s.name = name;
  s.root_task = name + ".root";
  s.clearinghouse = net::NodeId{ch_node};
  return s;
}

TEST(JobSpecCodec, RoundTrip) {
  JobSpec s = make_spec("ray");
  s.job_id = 7;
  const auto back = JobSpec::decode(s.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->job_id, 7u);
  EXPECT_EQ(back->name, "ray");
  EXPECT_EQ(back->root_task, "ray.root");
  EXPECT_EQ(back->clearinghouse, (net::NodeId{100}));
}

TEST(JobAssignmentCodec, RoundTripEmptyAndFull) {
  JobAssignment empty;
  const auto back_empty = JobAssignment::decode(empty.encode());
  ASSERT_TRUE(back_empty.has_value());
  EXPECT_FALSE(back_empty->job.has_value());

  JobAssignment full;
  full.job = make_spec("pfold");
  full.job->job_id = 3;
  const auto back_full = JobAssignment::decode(full.encode());
  ASSERT_TRUE(back_full.has_value());
  ASSERT_TRUE(back_full->job.has_value());
  EXPECT_EQ(back_full->job->name, "pfold");
  EXPECT_EQ(back_full->job->job_id, 3u);
}

class JobQTest : public ::testing::Test {
 protected:
  JobQTest()
      : network_(sim_), timers_(sim_), rpc_(network_.channel(net::NodeId{0}),
                                            timers_) {}

  sim::Simulator sim_;
  net::SimNetwork network_;
  net::SimTimerService timers_;
  net::RpcNode rpc_;
};

TEST_F(JobQTest, SubmitAssignsIds) {
  PhishJobQ q(rpc_);
  const auto a = q.submit(make_spec("a"));
  const auto b = q.submit(make_spec("b"));
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(q.pool_size(), 2u);
}

TEST_F(JobQTest, EmptyPoolGivesNothing) {
  PhishJobQ q(rpc_);
  EXPECT_FALSE(q.request(net::NodeId{1}).has_value());
  EXPECT_EQ(q.stats().empty_replies, 1u);
}

TEST_F(JobQTest, RoundRobinCyclesThroughJobs) {
  PhishJobQ q(rpc_);
  q.submit(make_spec("a"));
  q.submit(make_spec("b"));
  q.submit(make_spec("c"));
  std::vector<std::string> order;
  for (int i = 0; i < 6; ++i) {
    order.push_back(q.request(net::NodeId{1})->name);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c", "a", "b", "c"}));
}

TEST_F(JobQTest, AssignmentKeepsJobInPool) {
  // The paper's crucial semantics: assignment does not consume the job.
  PhishJobQ q(rpc_);
  q.submit(make_spec("a"));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.request(net::NodeId{1}));
  EXPECT_EQ(q.pool_size(), 1u);
}

TEST_F(JobQTest, CompleteRemovesJob) {
  PhishJobQ q(rpc_);
  const auto a = q.submit(make_spec("a"));
  const auto b = q.submit(make_spec("b"));
  EXPECT_TRUE(q.complete(a));
  EXPECT_FALSE(q.complete(a)) << "second completion is unknown";
  EXPECT_EQ(q.pool_size(), 1u);
  EXPECT_EQ(q.request(net::NodeId{1})->job_id, b);
}

TEST_F(JobQTest, RoundRobinStaysConsistentAfterCompletion) {
  PhishJobQ q(rpc_);
  const auto a = q.submit(make_spec("a"));
  q.submit(make_spec("b"));
  q.submit(make_spec("c"));
  EXPECT_EQ(q.request(net::NodeId{1})->name, "a");
  EXPECT_EQ(q.request(net::NodeId{1})->name, "b");
  q.complete(a);
  // Pool is now [b, c]; cursor should continue without skipping or crashing.
  EXPECT_EQ(q.request(net::NodeId{1})->name, "c");
  EXPECT_EQ(q.request(net::NodeId{1})->name, "b");
  EXPECT_EQ(q.request(net::NodeId{1})->name, "c");
}

TEST_F(JobQTest, FirstJobPolicy) {
  PhishJobQ q(rpc_, JobAssignPolicy::kFirstJob);
  q.submit(make_spec("a"));
  q.submit(make_spec("b"));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q.request(net::NodeId{1})->name, "a");
  }
}

TEST_F(JobQTest, LeastServedPolicyBalances) {
  PhishJobQ q(rpc_, JobAssignPolicy::kLeastServed);
  q.submit(make_spec("a"));
  q.submit(make_spec("b"));
  q.submit(make_spec("c"));
  for (int i = 0; i < 9; ++i) q.request(net::NodeId{1});
  const auto by_job = q.assignments_by_job();
  for (const auto& [id, n] : by_job) {
    EXPECT_EQ(n, 3u) << "job " << id;
  }
}

TEST_F(JobQTest, StatsTrackEverything) {
  PhishJobQ q(rpc_);
  const auto a = q.submit(make_spec("a"));
  q.request(net::NodeId{1});
  q.request(net::NodeId{2});
  q.complete(a);
  q.request(net::NodeId{3});
  const auto s = q.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.assignments, 2u);
  EXPECT_EQ(s.empty_replies, 1u);
}

TEST_F(JobQTest, OnAssignCallback) {
  PhishJobQ q(rpc_);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> seen;
  q.set_on_assign([&](std::uint64_t job, net::NodeId who) {
    seen.emplace_back(job, who.value);
  });
  const auto a = q.submit(make_spec("a"));
  q.request(net::NodeId{9});
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, a);
  EXPECT_EQ(seen[0].second, 9u);
}

TEST_F(JobQTest, RpcInterface) {
  PhishJobQ q(rpc_);
  q.start();
  net::RpcNode client(network_.channel(net::NodeId{1}), timers_);

  // Submit over RPC.
  std::uint64_t job_id = 0;
  client.call(net::NodeId{0}, proto::kRpcSubmitJob, make_spec("rpc").encode(),
              [&](net::RpcResult r) {
                ASSERT_TRUE(r.ok);
                Reader reader(r.reply);
                job_id = reader.u64();
              });
  sim_.run();
  EXPECT_NE(job_id, 0u);
  EXPECT_EQ(q.pool_size(), 1u);

  // Request over RPC.
  std::optional<JobSpec> got;
  client.call(net::NodeId{0}, proto::kRpcRequestJob, {},
              [&](net::RpcResult r) {
                ASSERT_TRUE(r.ok);
                auto a = JobAssignment::decode(r.reply);
                ASSERT_TRUE(a.has_value());
                got = a->job;
              });
  sim_.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->name, "rpc");

  // Complete over RPC.
  bool done_ok = false;
  Writer w;
  w.u64(job_id);
  client.call(net::NodeId{0}, proto::kRpcJobDone, w.take(),
              [&](net::RpcResult r) {
                ASSERT_TRUE(r.ok);
                Reader reader(r.reply);
                done_ok = reader.boolean();
              });
  sim_.run();
  EXPECT_TRUE(done_ok);
  EXPECT_EQ(q.pool_size(), 0u);
}

// ---- Codec: tenant/priority extension + legacy compatibility. ----

TEST(JobSpecCodec, TenantAndPriorityRoundTrip) {
  JobSpec s = make_spec("ray");
  s.tenant = "alice";
  s.priority = kPriorityHigh;
  const auto back = JobSpec::decode(s.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->tenant, "alice");
  EXPECT_EQ(back->priority, kPriorityHigh);
}

TEST(JobSpecCodec, LegacySpecWithoutTenantStillDecodes) {
  // A pre-§11 peer encodes only (id, name, root, clearinghouse); the new
  // decoder must accept it with defaults, like RegisterMsg's compat rule.
  Writer w;
  w.u64(9);
  w.str("old-job");
  w.str("old.root");
  w.u32(42);
  const auto back = JobSpec::decode(w.take());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->job_id, 9u);
  EXPECT_EQ(back->tenant, kDefaultTenant);
  EXPECT_EQ(back->priority, kPriorityNormal);
}

TEST(JobSpecCodec, RejectsBadPriorityAndEmptyTenant) {
  JobSpec s = make_spec("x");
  s.priority = kPriorityClasses;  // out of range
  EXPECT_FALSE(JobSpec::decode(s.encode()).has_value());
  s.priority = kPriorityNormal;
  s.tenant = "";
  EXPECT_FALSE(JobSpec::decode(s.encode()).has_value());
}

// ---- Round-robin cursor vs completion (regression coverage). ----

TEST_F(JobQTest, CompletingJobAtCursorDoesNotSkip) {
  PhishJobQ q(rpc_);
  q.submit(make_spec("a"));
  const auto b = q.submit(make_spec("b"));
  q.submit(make_spec("c"));
  EXPECT_EQ(q.request(net::NodeId{1})->name, "a");  // cursor now at b
  q.complete(b);
  // Pool is [a, c]; cursor must land on c, not wrap past it.
  EXPECT_EQ(q.request(net::NodeId{1})->name, "c");
  EXPECT_EQ(q.request(net::NodeId{1})->name, "a");
}

TEST_F(JobQTest, CompletingLastJobWrapsCursor) {
  PhishJobQ q(rpc_);
  q.submit(make_spec("a"));
  q.submit(make_spec("b"));
  const auto c = q.submit(make_spec("c"));
  q.request(net::NodeId{1});  // a
  q.request(net::NodeId{1});  // b; cursor now at c
  q.complete(c);
  // Cursor pointed past the shrunken pool; next request must wrap to a.
  EXPECT_EQ(q.request(net::NodeId{1})->name, "a");
  EXPECT_EQ(q.request(net::NodeId{1})->name, "b");
}

TEST_F(JobQTest, DrainToEmptyThenRequestCountsEmptyReply) {
  PhishJobQ q(rpc_);
  const auto a = q.submit(make_spec("a"));
  q.request(net::NodeId{1});
  q.complete(a);
  EXPECT_EQ(q.pool_size(), 0u);
  EXPECT_FALSE(q.request(net::NodeId{1}).has_value());
  EXPECT_FALSE(q.request(net::NodeId{2}).has_value());
  const auto s = q.stats();
  EXPECT_EQ(s.empty_replies, 2u);
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.assignments, 1u);
}

// ---- Fair share: grants, weights, quotas, priorities, preemption. ----

JobSpec tenant_spec(const std::string& name, const std::string& tenant,
                    std::uint8_t priority = kPriorityNormal) {
  JobSpec s;
  s.name = name;
  s.root_task = name + ".root";
  s.clearinghouse = net::NodeId{100};
  s.tenant = tenant;
  s.priority = priority;
  return s;
}

TEST_F(JobQTest, GrantLedgerTracksRequestAndRelease) {
  PhishJobQ q(rpc_, JobAssignPolicy::kFairShare);
  const auto a = q.submit(tenant_spec("a", "t1"));
  ASSERT_TRUE(q.request(net::NodeId{1}).has_value());
  ASSERT_TRUE(q.request(net::NodeId{2}).has_value());
  EXPECT_EQ(q.held_by_job()[a], 2u);
  EXPECT_EQ(q.held_by_tenant()["t1"], 2u);
  EXPECT_TRUE(q.release(net::NodeId{1}));
  EXPECT_FALSE(q.release(net::NodeId{1})) << "double release is a no-op";
  EXPECT_EQ(q.held_by_job()[a], 1u);
  EXPECT_EQ(q.stats().releases, 1u);
}

TEST_F(JobQTest, ReRequestFromSameWorkstationReleasesOldGrant) {
  // One worker per workstation: a new request implies the old worker died.
  PhishJobQ q(rpc_, JobAssignPolicy::kFairShare);
  const auto a = q.submit(tenant_spec("a", "t1"));
  q.request(net::NodeId{1});
  q.request(net::NodeId{1});
  EXPECT_EQ(q.held_by_job()[a], 1u) << "workstation 1 holds one grant";
}

TEST_F(JobQTest, FairShareFollowsWeights) {
  PhishJobQ q(rpc_, JobAssignPolicy::kFairShare);
  q.configure_tenant("heavy", TenantConfig{2.0});
  q.configure_tenant("light", TenantConfig{1.0});
  q.submit(tenant_spec("h", "heavy"));
  q.submit(tenant_spec("l", "light"));
  for (std::uint32_t ws = 1; ws <= 6; ++ws) {
    ASSERT_TRUE(q.request(net::NodeId{ws}).has_value());
  }
  const auto held = q.held_by_tenant();
  EXPECT_EQ(held.at("heavy"), 4u) << "weight-2 tenant gets 2x workstations";
  EXPECT_EQ(held.at("light"), 2u);
}

TEST_F(JobQTest, FairShareSpreadsWithinTenant) {
  PhishJobQ q(rpc_, JobAssignPolicy::kFairShare);
  const auto a = q.submit(tenant_spec("a", "t"));
  const auto b = q.submit(tenant_spec("b", "t"));
  for (std::uint32_t ws = 1; ws <= 4; ++ws) q.request(net::NodeId{ws});
  EXPECT_EQ(q.held_by_job()[a], 2u);
  EXPECT_EQ(q.held_by_job()[b], 2u);
}

TEST_F(JobQTest, QuotaCapsATenant) {
  PhishJobQ q(rpc_, JobAssignPolicy::kFairShare);
  q.configure_tenant("capped", TenantConfig{1.0, 2});
  q.submit(tenant_spec("c", "capped"));
  EXPECT_TRUE(q.request(net::NodeId{1}).has_value());
  EXPECT_TRUE(q.request(net::NodeId{2}).has_value());
  EXPECT_FALSE(q.request(net::NodeId{3}).has_value())
      << "tenant at max_workstations; pool non-empty but nothing eligible";
  EXPECT_EQ(q.stats().empty_replies, 1u);
  // A release opens the quota again.
  q.release(net::NodeId{1});
  EXPECT_TRUE(q.request(net::NodeId{3}).has_value());
}

TEST_F(JobQTest, HigherPriorityClassWinsAssignment) {
  PhishJobQ q(rpc_, JobAssignPolicy::kFairShare);
  q.submit(tenant_spec("bg", "t1", kPriorityLow));
  const auto hi = q.submit(tenant_spec("fg", "t2", kPriorityHigh));
  EXPECT_EQ(q.request(net::NodeId{1})->job_id, hi)
      << "highest nonempty class is served first";
}

TEST_F(JobQTest, HighPrioritySubmitPlansPreemption) {
  PhishJobQ q(rpc_, JobAssignPolicy::kFairShare);
  std::vector<PreemptRequest> evictions;
  q.set_preempt_fn([&](const PreemptRequest& r) { evictions.push_back(r); });
  const auto low = q.submit(tenant_spec("bg", "batch", kPriorityLow));
  q.request(net::NodeId{1});
  q.request(net::NodeId{2});
  const auto hi = q.submit(tenant_spec("fg", "urgent", kPriorityHigh));
  ASSERT_EQ(evictions.size(), 1u) << "default preempt batch is one";
  EXPECT_EQ(evictions[0].victim_job, low);
  EXPECT_EQ(evictions[0].for_job, hi);
  EXPECT_EQ(evictions[0].workstation, (net::NodeId{1}))
      << "deterministic victim: smallest workstation id";
  EXPECT_EQ(q.stats().preemptions, 1u);
  // The evicted workstation's next request goes to the high-priority job.
  EXPECT_EQ(q.request(net::NodeId{1})->job_id, hi);
}

TEST_F(JobQTest, EqualPrioritySubmitDoesNotPreempt) {
  PhishJobQ q(rpc_, JobAssignPolicy::kFairShare);
  std::vector<PreemptRequest> evictions;
  q.set_preempt_fn([&](const PreemptRequest& r) { evictions.push_back(r); });
  q.submit(tenant_spec("a", "t1", kPriorityNormal));
  q.request(net::NodeId{1});
  q.submit(tenant_spec("b", "t2", kPriorityNormal));
  EXPECT_TRUE(evictions.empty()) << "same class never evicts";
}

TEST_F(JobQTest, PreemptBatchEvictsSeveral) {
  PhishJobQ q(rpc_, JobAssignPolicy::kFairShare);
  q.set_preempt_batch(2);
  std::vector<PreemptRequest> evictions;
  q.set_preempt_fn([&](const PreemptRequest& r) { evictions.push_back(r); });
  q.submit(tenant_spec("bg", "batch", kPriorityLow));
  for (std::uint32_t ws = 1; ws <= 3; ++ws) q.request(net::NodeId{ws});
  q.submit(tenant_spec("fg", "urgent", kPriorityHigh));
  EXPECT_EQ(evictions.size(), 2u);
}

TEST_F(JobQTest, CompleteDropsGrantsOfFinishedJob) {
  PhishJobQ q(rpc_, JobAssignPolicy::kFairShare);
  const auto a = q.submit(tenant_spec("a", "t1"));
  q.request(net::NodeId{1});
  q.request(net::NodeId{2});
  q.complete(a);
  EXPECT_TRUE(q.held_by_job().empty());
  EXPECT_FALSE(q.release(net::NodeId{1}))
      << "grants died with the job; the late release is a no-op";
}

}  // namespace
}  // namespace phish
