// RecoveryTracker edge cases the churn engine produces: rejoin racing the
// death notice, double-death of one incarnation, and a failover whose first
// post-rejoin steal never happens.
#include "core/recovery.hpp"

#include <gtest/gtest.h>

namespace phish {
namespace {

TEST(RecoveryTracker, FailoverMttrIsDetectToFirstSteal) {
  RecoveryTracker t;
  t.note_detect(1'000);
  t.note_promote(3'000);
  t.note_steal(10'000);
  const auto s = t.snapshot();
  EXPECT_EQ(s.detects, 1u);
  EXPECT_EQ(s.promotions, 1u);
  EXPECT_EQ(s.mttr_count, 1u);
  EXPECT_EQ(s.last_mttr_ns, 9'000u);
  EXPECT_FALSE(s.awaiting_first_steal);
}

TEST(RecoveryTracker, StealsOutsideFailoverWindowAreFree) {
  RecoveryTracker t;
  t.note_steal(5'000);  // no window open: must not record anything
  const auto s = t.snapshot();
  EXPECT_EQ(s.mttr_count, 0u);
  EXPECT_EQ(s.last_mttr_ns, 0u);
}

TEST(RecoveryTracker, RejoinBeforeDeathNoticeIsACountedNoOp) {
  // The fresh incarnation registers before the heartbeat detector fires:
  // there is no outage window, so no MTTR sample may be recorded.
  RecoveryTracker t;
  t.note_up(/*node_key=*/7, /*now_ns=*/1'000);
  const auto s = t.snapshot();
  EXPECT_EQ(s.rejoins_before_death, 1u);
  EXPECT_EQ(s.node_ups, 0u);
  EXPECT_EQ(s.open_outages, 0u);
  EXPECT_TRUE(t.node_mttr_samples().empty());
}

TEST(RecoveryTracker, DoubleDeathKeepsFirstTimestamp) {
  // Heartbeat expiry racing an implicit death on register declares the same
  // incarnation dead twice; the outage began at FIRST detection.
  RecoveryTracker t;
  t.note_down(7, 1'000);
  t.note_down(7, 5'000);  // duplicate: must not move the window start
  {
    const auto s = t.snapshot();
    EXPECT_EQ(s.node_downs, 1u);
    EXPECT_EQ(s.duplicate_deaths, 1u);
    EXPECT_EQ(s.open_outages, 1u);
  }
  t.note_up(7, 11'000);
  const auto samples = t.node_mttr_samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0], 10'000u) << "MTTR measured from the first down";
  EXPECT_EQ(t.snapshot().open_outages, 0u);
}

TEST(RecoveryTracker, MttrAbsentWhenFirstStealNeverHappens) {
  // A promotion whose first post-failover steal never arrives: the window
  // stays open and no MTTR is recorded — it must not silently read as zero.
  RecoveryTracker t;
  t.note_detect(1'000);
  t.note_promote(2'000);
  const auto s = t.snapshot();
  EXPECT_TRUE(s.awaiting_first_steal);
  EXPECT_EQ(s.mttr_count, 0u);
  EXPECT_EQ(s.last_mttr_ns, 0u);
}

TEST(RecoveryTracker, OutageWindowsArePerNode) {
  RecoveryTracker t;
  t.note_down(1, 1'000);
  t.note_down(2, 2'000);
  t.note_up(2, 4'000);
  t.note_up(1, 9'000);
  const auto samples = t.node_mttr_samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0], 2'000u);  // node 2 closed first
  EXPECT_EQ(samples[1], 8'000u);
  const auto s = t.snapshot();
  EXPECT_EQ(s.node_downs, 2u);
  EXPECT_EQ(s.node_ups, 2u);
  EXPECT_EQ(s.open_outages, 0u);
}

TEST(RecoveryTracker, PercentileIsExactOnSamples) {
  std::vector<std::uint64_t> samples{50, 10, 40, 20, 30};
  EXPECT_EQ(RecoveryTracker::percentile_ns(samples, 0.0), 10u);
  EXPECT_EQ(RecoveryTracker::percentile_ns(samples, 0.5), 30u);
  EXPECT_EQ(RecoveryTracker::percentile_ns(samples, 1.0), 50u);
  EXPECT_EQ(RecoveryTracker::percentile_ns({}, 0.5), 0u);
}

}  // namespace
}  // namespace phish
