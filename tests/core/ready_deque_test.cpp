#include "core/ready_deque.hpp"

#include <gtest/gtest.h>

#include <deque>

namespace phish {
namespace {

// The deque stores Closure*; the closures themselves outlive it here (in
// production they live in the worker's ClosurePool).
class ReadyDequeTest : public ::testing::Test {
 protected:
  Closure* make_task(std::uint64_t seq) {
    Closure& c = storage_.emplace_back();
    c.id = ClosureId{net::NodeId{0}, seq};
    c.task = 0;
    return &c;
  }

  std::deque<Closure> storage_;  // stable addresses
};

std::uint64_t seq_of(const Closure* c) { return c->id.seq; }

TEST_F(ReadyDequeTest, StartsEmpty) {
  ReadyDeque d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.pop_for_execution(), nullptr);
  EXPECT_EQ(d.pop_for_steal(), nullptr);
}

TEST_F(ReadyDequeTest, LifoExecutionOrder) {
  // Paper Figure 1(b): spawns go to the head; the owner works the head.
  ReadyDeque d;
  for (std::uint64_t i = 1; i <= 4; ++i) d.push(make_task(i));
  EXPECT_EQ(seq_of(d.pop_for_execution()), 4u);
  EXPECT_EQ(seq_of(d.pop_for_execution()), 3u);
  d.push(make_task(5));
  EXPECT_EQ(seq_of(d.pop_for_execution()), 5u);
  EXPECT_EQ(seq_of(d.pop_for_execution()), 2u);
  EXPECT_EQ(seq_of(d.pop_for_execution()), 1u);
  EXPECT_TRUE(d.empty());
}

TEST_F(ReadyDequeTest, FifoStealOrder) {
  // Paper Figure 1(c): thieves take the tail — the oldest task.
  ReadyDeque d;
  for (std::uint64_t i = 1; i <= 4; ++i) d.push(make_task(i));
  EXPECT_EQ(seq_of(d.pop_for_steal()), 1u);
  EXPECT_EQ(seq_of(d.pop_for_steal()), 2u);
  // Owner and thief interleave on opposite ends.
  EXPECT_EQ(seq_of(d.pop_for_execution()), 4u);
  EXPECT_EQ(seq_of(d.pop_for_steal()), 3u);
  EXPECT_TRUE(d.empty());
}

TEST_F(ReadyDequeTest, AblationFifoExecution) {
  ReadyDeque d(ExecOrder::kFifo, StealOrder::kFifo);
  for (std::uint64_t i = 1; i <= 3; ++i) d.push(make_task(i));
  EXPECT_EQ(seq_of(d.pop_for_execution()), 1u);
  EXPECT_EQ(seq_of(d.pop_for_execution()), 2u);
  EXPECT_EQ(seq_of(d.pop_for_execution()), 3u);
}

TEST_F(ReadyDequeTest, AblationLifoSteal) {
  ReadyDeque d(ExecOrder::kLifo, StealOrder::kLifo);
  for (std::uint64_t i = 1; i <= 3; ++i) d.push(make_task(i));
  EXPECT_EQ(seq_of(d.pop_for_steal()), 3u);
  EXPECT_EQ(seq_of(d.pop_for_steal()), 2u);
}

TEST_F(ReadyDequeTest, StealBatchTakesHalfFromTheTail) {
  ReadyDeque d;
  for (std::uint64_t i = 1; i <= 8; ++i) d.push(make_task(i));
  Closure* out[8];
  // Half of 8 = 4, in pop_for_steal order (oldest first).
  EXPECT_EQ(d.pop_for_steal_batch(out, 8), 4u);
  EXPECT_EQ(seq_of(out[0]), 1u);
  EXPECT_EQ(seq_of(out[1]), 2u);
  EXPECT_EQ(seq_of(out[2]), 3u);
  EXPECT_EQ(seq_of(out[3]), 4u);
  EXPECT_EQ(d.size(), 4u);
  // The owner's LIFO end is untouched.
  EXPECT_EQ(seq_of(d.pop_for_execution()), 8u);
}

TEST_F(ReadyDequeTest, StealBatchRespectsMaxAndTakesAtLeastOne) {
  ReadyDeque d;
  for (std::uint64_t i = 1; i <= 8; ++i) d.push(make_task(i));
  Closure* out[8];
  EXPECT_EQ(d.pop_for_steal_batch(out, 2), 2u);  // capped by max
  EXPECT_EQ(d.size(), 6u);
  // A single queued task is still stealable (count/2 rounds up to 1).
  ReadyDeque single;
  single.push(make_task(99));
  EXPECT_EQ(single.pop_for_steal_batch(out, 8), 1u);
  EXPECT_EQ(seq_of(out[0]), 99u);
  EXPECT_TRUE(single.empty());
  EXPECT_EQ(single.pop_for_steal_batch(out, 8), 0u);
}

TEST_F(ReadyDequeTest, GrowsPastInitialCapacityAndKeepsOrder) {
  ReadyDeque d;
  // Exercise ring wrap + growth: interleave pushes with pops so head moves.
  for (std::uint64_t i = 1; i <= 40; ++i) d.push(make_task(i));
  for (int i = 0; i < 30; ++i) d.pop_for_steal();
  for (std::uint64_t i = 41; i <= 200; ++i) d.push(make_task(i));
  EXPECT_EQ(d.size(), 170u);
  EXPECT_EQ(seq_of(d.pop_for_execution()), 200u);
  EXPECT_EQ(seq_of(d.pop_for_steal()), 31u);
}

TEST_F(ReadyDequeTest, DrainReturnsEverythingHeadFirst) {
  ReadyDeque d;
  for (std::uint64_t i = 1; i <= 5; ++i) d.push(make_task(i));
  auto all = d.drain();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(seq_of(all.front()), 5u);
  EXPECT_EQ(seq_of(all.back()), 1u);
  EXPECT_TRUE(d.empty());
}

TEST_F(ReadyDequeTest, RemoveByIdReturnsTheClosure) {
  ReadyDeque d;
  for (std::uint64_t i = 1; i <= 3; ++i) d.push(make_task(i));
  Closure* removed = d.remove(ClosureId{net::NodeId{0}, 2});
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->id.seq, 2u);
  EXPECT_EQ(d.remove(ClosureId{net::NodeId{0}, 2}), nullptr);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(seq_of(d.pop_for_execution()), 3u);
  EXPECT_EQ(seq_of(d.pop_for_execution()), 1u);
}

TEST_F(ReadyDequeTest, AtInspectsHeadRelative) {
  ReadyDeque d;
  for (std::uint64_t i = 1; i <= 3; ++i) d.push(make_task(i));
  EXPECT_EQ(d.at(0)->id.seq, 3u);  // head = next LIFO pop
  EXPECT_EQ(d.at(1)->id.seq, 2u);
  EXPECT_EQ(d.at(2)->id.seq, 1u);
}

TEST_F(ReadyDequeTest, PoliciesAreReported) {
  ReadyDeque d(ExecOrder::kFifo, StealOrder::kLifo);
  EXPECT_EQ(d.exec_order(), ExecOrder::kFifo);
  EXPECT_EQ(d.steal_order(), StealOrder::kLifo);
}

}  // namespace
}  // namespace phish
