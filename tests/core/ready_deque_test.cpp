#include "core/ready_deque.hpp"

#include <gtest/gtest.h>

namespace phish {
namespace {

Closure make_task(std::uint64_t seq) {
  Closure c;
  c.id = ClosureId{net::NodeId{0}, seq};
  c.task = 0;
  return c;
}

std::uint64_t seq_of(const Closure& c) { return c.id.seq; }

TEST(ReadyDeque, StartsEmpty) {
  ReadyDeque d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_FALSE(d.pop_for_execution().has_value());
  EXPECT_FALSE(d.pop_for_steal().has_value());
}

TEST(ReadyDeque, LifoExecutionOrder) {
  // Paper Figure 1(b): spawns go to the head; the owner works the head.
  ReadyDeque d;
  for (std::uint64_t i = 1; i <= 4; ++i) d.push(make_task(i));
  EXPECT_EQ(seq_of(*d.pop_for_execution()), 4u);
  EXPECT_EQ(seq_of(*d.pop_for_execution()), 3u);
  d.push(make_task(5));
  EXPECT_EQ(seq_of(*d.pop_for_execution()), 5u);
  EXPECT_EQ(seq_of(*d.pop_for_execution()), 2u);
  EXPECT_EQ(seq_of(*d.pop_for_execution()), 1u);
  EXPECT_TRUE(d.empty());
}

TEST(ReadyDeque, FifoStealOrder) {
  // Paper Figure 1(c): thieves take the tail — the oldest task.
  ReadyDeque d;
  for (std::uint64_t i = 1; i <= 4; ++i) d.push(make_task(i));
  EXPECT_EQ(seq_of(*d.pop_for_steal()), 1u);
  EXPECT_EQ(seq_of(*d.pop_for_steal()), 2u);
  // Owner and thief interleave on opposite ends.
  EXPECT_EQ(seq_of(*d.pop_for_execution()), 4u);
  EXPECT_EQ(seq_of(*d.pop_for_steal()), 3u);
  EXPECT_TRUE(d.empty());
}

TEST(ReadyDeque, AblationFifoExecution) {
  ReadyDeque d(ExecOrder::kFifo, StealOrder::kFifo);
  for (std::uint64_t i = 1; i <= 3; ++i) d.push(make_task(i));
  EXPECT_EQ(seq_of(*d.pop_for_execution()), 1u);
  EXPECT_EQ(seq_of(*d.pop_for_execution()), 2u);
  EXPECT_EQ(seq_of(*d.pop_for_execution()), 3u);
}

TEST(ReadyDeque, AblationLifoSteal) {
  ReadyDeque d(ExecOrder::kLifo, StealOrder::kLifo);
  for (std::uint64_t i = 1; i <= 3; ++i) d.push(make_task(i));
  EXPECT_EQ(seq_of(*d.pop_for_steal()), 3u);
  EXPECT_EQ(seq_of(*d.pop_for_steal()), 2u);
}

TEST(ReadyDeque, DrainReturnsEverything) {
  ReadyDeque d;
  for (std::uint64_t i = 1; i <= 5; ++i) d.push(make_task(i));
  auto all = d.drain();
  EXPECT_EQ(all.size(), 5u);
  EXPECT_TRUE(d.empty());
}

TEST(ReadyDeque, RemoveById) {
  ReadyDeque d;
  for (std::uint64_t i = 1; i <= 3; ++i) d.push(make_task(i));
  EXPECT_TRUE(d.remove(ClosureId{net::NodeId{0}, 2}));
  EXPECT_FALSE(d.remove(ClosureId{net::NodeId{0}, 2}));
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(seq_of(*d.pop_for_execution()), 3u);
  EXPECT_EQ(seq_of(*d.pop_for_execution()), 1u);
}

TEST(ReadyDeque, PoliciesAreReported) {
  ReadyDeque d(ExecOrder::kFifo, StealOrder::kLifo);
  EXPECT_EQ(d.exec_order(), ExecOrder::kFifo);
  EXPECT_EQ(d.steal_order(), StealOrder::kLifo);
}

}  // namespace
}  // namespace phish
