#include "runtime/threads/threads_runtime.hpp"

#include <gtest/gtest.h>

#include "apps/apps.hpp"

namespace phish::rt {
namespace {

using apps::fib_serial;

ThreadsConfig config_for(int workers) {
  ThreadsConfig c;
  c.workers = workers;
  return c;
}

TEST(ThreadsRuntime, SingleWorkerFib) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg);
  ThreadsRuntime rt(reg, config_for(1));
  const auto result = rt.run(root, {Value(std::int64_t{15})});
  EXPECT_EQ(result.value.as_int(), fib_serial(15));
  EXPECT_GT(result.elapsed_seconds, 0.0);
  EXPECT_EQ(result.aggregate.tasks_stolen_from_me, 0u) << "no one to steal";
}

TEST(ThreadsRuntime, MultiWorkerFibCorrect) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg);
  for (int workers : {2, 3, 4, 8}) {
    ThreadsRuntime rt(reg, config_for(workers));
    const auto result = rt.run(root, {Value(std::int64_t{17})});
    EXPECT_EQ(result.value.as_int(), fib_serial(17)) << workers << " workers";
    EXPECT_EQ(result.per_worker.size(), static_cast<std::size_t>(workers));
  }
}

TEST(ThreadsRuntime, RunByName) {
  TaskRegistry reg;
  apps::register_fib(reg);
  ThreadsRuntime rt(reg, config_for(2));
  EXPECT_EQ(rt.run("fib.task", {Value(std::int64_t{12})}).value.as_int(),
            fib_serial(12));
}

TEST(ThreadsRuntime, ReusableAcrossJobs) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg);
  ThreadsRuntime rt(reg, config_for(2));
  for (std::int64_t n = 5; n <= 12; ++n) {
    EXPECT_EQ(rt.run(root, {Value(n)}).value.as_int(), fib_serial(n));
  }
}

TEST(ThreadsRuntime, NQueensAcrossWorkerCounts) {
  TaskRegistry reg;
  const TaskId root = apps::register_nqueens(reg, /*sequential_rows=*/4);
  for (int workers : {1, 2, 4}) {
    ThreadsRuntime rt(reg, config_for(workers));
    EXPECT_EQ(rt.run(root, {Value(std::int64_t{9})}).value.as_int(), 352)
        << workers << " workers";
  }
}

TEST(ThreadsRuntime, PfoldHistogramMatchesSerial) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  const Histogram expected = apps::pfold_serial(12);
  ThreadsRuntime rt(reg, config_for(4));
  const auto result = rt.run(root, {Value(std::int64_t{12})});
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()), expected);
}

TEST(ThreadsRuntime, RayImageMatchesSerial) {
  TaskRegistry reg;
  const apps::Scene scene = apps::make_default_scene();
  const TaskId root = apps::register_ray(reg, scene, 40, 30, 64);
  const apps::Image expected = apps::render_serial(scene, 40, 30);
  ThreadsRuntime rt(reg, config_for(3));
  const auto result = rt.run(root, {});
  EXPECT_EQ(apps::decode_image_blob(result.value.as_blob()), expected);
}

TEST(ThreadsRuntime, StatsConserveTaskCounts) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg);
  ThreadsRuntime rt(reg, config_for(4));
  const auto result = rt.run(root, {Value(std::int64_t{16})});
  // Every closure created is executed exactly once, globally.  A stolen
  // closure is allocation-counted on both its victim and its thief, so
  // subtract the steals.
  EXPECT_EQ(result.aggregate.tasks_executed,
            result.aggregate.closures_created -
                result.aggregate.tasks_stolen_by_me);
  // Steals balance.
  EXPECT_EQ(result.aggregate.tasks_stolen_by_me,
            result.aggregate.tasks_stolen_from_me);
  // Exactly one non-local send per remote dependency; at minimum the result.
  EXPECT_GE(result.aggregate.non_local_synchs, 1u);
}

TEST(ThreadsRuntime, WorkIsActuallyDistributed) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg);
  ThreadsRuntime rt(reg, config_for(4));
  // Deep enough (~150k closures) that the job outlives thread wake-up
  // latency; a shallower tree can drain entirely on worker 0 before any
  // thief's first steal attempt lands.
  const auto result = rt.run(root, {Value(std::int64_t{24})});
  int workers_that_executed = 0;
  for (const auto& s : result.per_worker) {
    if (s.tasks_executed > 0) ++workers_that_executed;
  }
  EXPECT_GE(workers_that_executed, 2)
      << "stealing must spread a 24-deep fib tree across workers";
  EXPECT_GT(result.aggregate.tasks_stolen_by_me, 0u);
}

TEST(ThreadsRuntime, MaxTasksInUseStaysSmallWithManyWorkers) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg);
  ThreadsRuntime rt(reg, config_for(4));
  const auto result = rt.run(root, {Value(std::int64_t{18})});
  EXPECT_GT(result.aggregate.tasks_executed, 10000u);
  EXPECT_LT(result.aggregate.max_tasks_in_use, 120u)
      << "the paper's memory-locality claim: working set ~ depth, not size";
}

TEST(ThreadsRuntime, PhishOverheadModeStillCorrect) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg);
  ThreadsConfig cfg = config_for(2);
  cfg.phish_overheads = true;
  ThreadsRuntime rt(reg, cfg);
  EXPECT_EQ(rt.run(root, {Value(std::int64_t{14})}).value.as_int(),
            fib_serial(14));
}

TEST(ThreadsRuntime, MalformedGraphThrowsInsteadOfHanging) {
  TaskRegistry reg;
  const TaskId bad = reg.add("bad.noop", [](Context&, Closure&) {
    // Never sends to its continuation.
  });
  ThreadsRuntime rt(reg, config_for(2));
  EXPECT_THROW(rt.run(bad, {}), std::runtime_error);
  // The runtime must remain usable afterwards.
  const TaskId good = reg.add("good.id", [](Context& cx, Closure& c) {
    cx.send(c.cont, c.args[0]);
  });
  EXPECT_EQ(rt.run(good, {Value(std::int64_t{3})}).value.as_int(), 3);
}

TEST(ThreadsRuntime, RejectsZeroWorkers) {
  TaskRegistry reg;
  EXPECT_THROW(ThreadsRuntime(reg, config_for(0)), std::invalid_argument);
}

TEST(ThreadsRuntime, AblationPoliciesStillCorrect) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg);
  for (ExecOrder eo : {ExecOrder::kLifo, ExecOrder::kFifo}) {
    for (StealOrder so : {StealOrder::kFifo, StealOrder::kLifo}) {
      ThreadsConfig cfg = config_for(2);
      cfg.exec_order = eo;
      cfg.steal_order = so;
      ThreadsRuntime rt(reg, cfg);
      EXPECT_EQ(rt.run(root, {Value(std::int64_t{13})}).value.as_int(),
                fib_serial(13));
    }
  }
}

TEST(ThreadsRuntime, DeterministicSingleWorkerStats) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, 4);
  ThreadsRuntime rt(reg, config_for(1));
  const auto r1 = rt.run(root, {Value(std::int64_t{10})});
  const auto r2 = rt.run(root, {Value(std::int64_t{10})});
  EXPECT_EQ(r1.aggregate.tasks_executed, r2.aggregate.tasks_executed);
  EXPECT_EQ(r1.aggregate.synchronizations, r2.aggregate.synchronizations);
  EXPECT_EQ(r1.aggregate.max_tasks_in_use, r2.aggregate.max_tasks_in_use);
}

}  // namespace
}  // namespace phish::rt
