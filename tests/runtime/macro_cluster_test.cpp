// Macro-level scheduling end-to-end: PhishJobQ + PhishJobManager +
// Clearinghouse + workers on the simulated network.
#include "runtime/simdist/macro_cluster.hpp"

#include <gtest/gtest.h>

#include "apps/apps.hpp"

namespace phish::rt {
namespace {

using sim::kMillisecond;
using sim::kSecond;

MacroConfig fast_macro_config(std::uint64_t seed = 1) {
  MacroConfig cfg;
  cfg.seed = seed;
  cfg.clearinghouse.detect_failures = false;
  // Scale the daemon polling down so tests run quickly in simulated time.
  cfg.manager.logout_poll = 2 * kSecond;
  cfg.manager.job_poll = kSecond;
  cfg.manager.owner_poll = 200 * kMillisecond;
  cfg.worker.heartbeat_period = kSecond;
  // Modest steal patience so workers leave finished jobs promptly.
  cfg.worker.max_failed_steals = 50;
  cfg.worker.steal_retry_delay = 5 * kMillisecond;
  cfg.max_sim_time = 3600 * kSecond;
  return cfg;
}

TaskRegistry& shared_registry() {
  static TaskRegistry* reg = [] {
    auto* r = new TaskRegistry();
    apps::register_fib(*r, /*sequential_cutoff=*/12);
    apps::register_pfold(*r, /*sequential_monomers=*/5);
    apps::register_nqueens(*r, /*sequential_rows=*/4);
    return r;
  }();
  return *reg;
}

TEST(MacroCluster, SingleJobIdleNetworkCompletes) {
  MacroCluster cluster(shared_registry(), fast_macro_config(3));
  for (int i = 0; i < 4; ++i) {
    cluster.add_workstation(OwnerTrace::always_idle());
  }
  cluster.submit_job("pfold-13", "pfold.root", {Value(std::int64_t{13})}, 0);
  const auto records = cluster.run();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].completed);
  EXPECT_EQ(apps::decode_histogram(records[0].result.as_blob()),
            apps::pfold_serial(13));
  // Idle workstations joined the job via the JobQ.
  EXPECT_GT(records[0].assignments, 0u);
}

TEST(MacroCluster, BusyWorkstationsNeverJoin) {
  MacroCluster cluster(shared_registry(), fast_macro_config(5));
  cluster.add_workstation(OwnerTrace::always_busy());
  cluster.add_workstation(OwnerTrace::always_busy());
  cluster.submit_job("fib-20", "fib.task", {Value(std::int64_t{20})}, 0);
  const auto records = cluster.run();
  EXPECT_TRUE(records[0].completed);  // the first worker alone finishes it
  EXPECT_EQ(records[0].assignments, 0u) << "owners kept their machines";
  EXPECT_EQ(cluster.manager(0).stats().workers_started, 0u);
}

TEST(MacroCluster, TwoJobsSpaceShare) {
  MacroCluster cluster(shared_registry(), fast_macro_config(7));
  for (int i = 0; i < 6; ++i) {
    cluster.add_workstation(OwnerTrace::always_idle());
  }
  cluster.submit_job("pfold-a", "pfold.root", {Value(std::int64_t{13})}, 0);
  cluster.submit_job("pfold-b", "pfold.root", {Value(std::int64_t{13})},
                     10 * kMillisecond);
  const auto records = cluster.run();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].completed);
  EXPECT_TRUE(records[1].completed);
  // Round-robin spread the workstations over both jobs.
  EXPECT_GT(records[0].assignments, 0u);
  EXPECT_GT(records[1].assignments, 0u);
}

TEST(MacroCluster, OwnerReturnEvictsWorkerAndJobStillCompletes) {
  MacroCluster cluster(shared_registry(), fast_macro_config(11));
  // Workstation 0 idle at first, owner returns at t=1s and stays.
  cluster.add_workstation(
      OwnerTrace::intervals({{1 * kSecond, 100000 * kSecond}}));
  cluster.add_workstation(OwnerTrace::always_idle());
  cluster.submit_job("pfold", "pfold.root", {Value(std::int64_t{14})}, 0);
  const auto records = cluster.run();
  EXPECT_TRUE(records[0].completed);
  EXPECT_EQ(apps::decode_histogram(records[0].result.as_blob()),
            apps::pfold_serial(14));
  // Workstation 0's manager must have reclaimed its worker when the owner
  // returned (if it had received one by then).
  const auto& stats0 = cluster.manager(0).stats();
  if (stats0.workers_started > 0) {
    EXPECT_GE(stats0.workers_reclaimed + stats0.workers_self_terminated,
              stats0.workers_started);
  }
}

TEST(MacroCluster, WorkstationMovesOnAfterJobCompletes) {
  MacroCluster cluster(shared_registry(), fast_macro_config(13));
  for (int i = 0; i < 3; ++i) {
    cluster.add_workstation(OwnerTrace::always_idle());
  }
  cluster.submit_job("first", "pfold.root", {Value(std::int64_t{13})}, 0);
  cluster.submit_job("second", "pfold.root", {Value(std::int64_t{13})},
                     20 * kMillisecond);
  const auto records = cluster.run();
  EXPECT_TRUE(records[0].completed && records[1].completed);
  // At least one workstation served both jobs over its lifetime.
  std::uint64_t total_workers = 0;
  for (int i = 0; i < 3; ++i) {
    total_workers += cluster.manager(i).stats().workers_started;
  }
  EXPECT_GT(total_workers, 2u);
}

TEST(MacroCluster, JobQStatsConsistent) {
  MacroCluster cluster(shared_registry(), fast_macro_config(17));
  cluster.add_workstation(OwnerTrace::always_idle());
  cluster.submit_job("fib", "fib.task", {Value(std::int64_t{22})}, 0);
  cluster.run();
  const auto stats = cluster.jobq().stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.assignments + stats.empty_replies, stats.requests);
}

TEST(MacroCluster, RejectsLateConfiguration) {
  MacroCluster cluster(shared_registry(), fast_macro_config(19));
  cluster.add_workstation(OwnerTrace::always_idle());
  cluster.submit_job("fib", "fib.task", {Value(std::int64_t{15})}, 0);
  cluster.run();
  EXPECT_THROW(cluster.add_workstation(OwnerTrace::always_idle()),
               std::logic_error);
  EXPECT_THROW(cluster.submit_job("x", "fib.task", {}, 0), std::logic_error);
}

TEST(MacroCluster, RunUntilWithoutCompletion) {
  MacroCluster cluster(shared_registry(), fast_macro_config(23));
  cluster.add_workstation(OwnerTrace::always_busy());
  // Submit a job whose only first-worker must do everything; run_until a
  // short deadline and observe it incomplete.
  cluster.submit_job("pfold-15", "pfold.root", {Value(std::int64_t{15})}, 0);
  const auto records = cluster.run_until(5 * kMillisecond);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].completed);
}

}  // namespace
}  // namespace phish::rt
