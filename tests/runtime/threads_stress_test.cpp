// Concurrency stress for the threads runtime: many back-to-back multi-worker
// jobs with mixed workloads, hunting for races in the inbox/steal/quiescence
// machinery.  Single-core hosts interleave aggressively under contention, so
// repetition is an effective race probe here.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "runtime/threads/threads_runtime.hpp"

namespace phish::rt {
namespace {

TEST(ThreadsStress, RepeatedJobsManyWorkers) {
  TaskRegistry reg;
  const TaskId fib_root = apps::register_fib(reg, /*sequential_cutoff=*/10);
  const TaskId pfold_root = apps::register_pfold(reg, 5);
  ThreadsConfig cfg;
  cfg.workers = 6;
  ThreadsRuntime rt(reg, cfg);
  const Histogram pfold_expected = apps::pfold_serial(11);
  for (int round = 0; round < 15; ++round) {
    const auto fib = rt.run(fib_root, {Value(std::int64_t{18})});
    ASSERT_EQ(fib.value.as_int(), apps::fib_serial(18)) << round;
    const auto pf = rt.run(pfold_root, {Value(std::int64_t{11})});
    ASSERT_EQ(apps::decode_histogram(pf.value.as_blob()), pfold_expected)
        << round;
    // Clean termination every round.
    ASSERT_EQ(fib.aggregate.tasks_in_use, 0u);
    ASSERT_EQ(pf.aggregate.tasks_in_use, 0u);
  }
}

TEST(ThreadsStress, AlternatingRuntimesShareNothing) {
  // Two independent runtimes over the same registry must not interfere.
  TaskRegistry reg;
  const TaskId root = apps::register_nqueens(reg, 4);
  ThreadsConfig a_cfg, b_cfg;
  a_cfg.workers = 2;
  b_cfg.workers = 5;
  ThreadsRuntime a(reg, a_cfg), b(reg, b_cfg);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.run(root, {Value(std::int64_t{8})}).value.as_int(), 92);
    EXPECT_EQ(b.run(root, {Value(std::int64_t{8})}).value.as_int(), 92);
  }
}

TEST(ThreadsStress, FineGrainManyWorkersNoLostWakeups) {
  // Fully fine-grained fib floods the inboxes with cross-worker argument
  // sends; quiescence must never be declared spuriously and no argument may
  // be dropped.
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, 0);
  ThreadsConfig cfg;
  cfg.workers = 8;
  ThreadsRuntime rt(reg, cfg);
  for (int round = 0; round < 5; ++round) {
    const auto r = rt.run(root, {Value(std::int64_t{16})});
    ASSERT_EQ(r.value.as_int(), apps::fib_serial(16)) << round;
    ASSERT_EQ(r.aggregate.args_unknown_closure, 0u);
    ASSERT_EQ(r.aggregate.args_duplicate, 0u);
  }
}

}  // namespace
}  // namespace phish::rt
