// Concurrency stress for the threads runtime: many back-to-back multi-worker
// jobs with mixed workloads, hunting for races in the inbox/steal/quiescence
// machinery.  Single-core hosts interleave aggressively under contention, so
// repetition is an effective race probe here.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "runtime/threads/threads_runtime.hpp"

namespace phish::rt {
namespace {

TEST(ThreadsStress, RepeatedJobsManyWorkers) {
  TaskRegistry reg;
  const TaskId fib_root = apps::register_fib(reg, /*sequential_cutoff=*/10);
  const TaskId pfold_root = apps::register_pfold(reg, 5);
  ThreadsConfig cfg;
  cfg.workers = 6;
  ThreadsRuntime rt(reg, cfg);
  const Histogram pfold_expected = apps::pfold_serial(11);
  for (int round = 0; round < 15; ++round) {
    const auto fib = rt.run(fib_root, {Value(std::int64_t{18})});
    ASSERT_EQ(fib.value.as_int(), apps::fib_serial(18)) << round;
    const auto pf = rt.run(pfold_root, {Value(std::int64_t{11})});
    ASSERT_EQ(apps::decode_histogram(pf.value.as_blob()), pfold_expected)
        << round;
    // Clean termination every round.
    ASSERT_EQ(fib.aggregate.tasks_in_use, 0u);
    ASSERT_EQ(pf.aggregate.tasks_in_use, 0u);
  }
}

TEST(ThreadsStress, AlternatingRuntimesShareNothing) {
  // Two independent runtimes over the same registry must not interfere.
  TaskRegistry reg;
  const TaskId root = apps::register_nqueens(reg, 4);
  ThreadsConfig a_cfg, b_cfg;
  a_cfg.workers = 2;
  b_cfg.workers = 5;
  ThreadsRuntime a(reg, a_cfg), b(reg, b_cfg);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.run(root, {Value(std::int64_t{8})}).value.as_int(), 92);
    EXPECT_EQ(b.run(root, {Value(std::int64_t{8})}).value.as_int(), 92);
  }
}

TEST(ThreadsStress, FineGrainManyWorkersNoLostWakeups) {
  // Fully fine-grained fib floods the inboxes with cross-worker argument
  // sends; quiescence must never be declared spuriously and no argument may
  // be dropped.
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, 0);
  ThreadsConfig cfg;
  cfg.workers = 8;
  ThreadsRuntime rt(reg, cfg);
  for (int round = 0; round < 5; ++round) {
    const auto r = rt.run(root, {Value(std::int64_t{16})});
    ASSERT_EQ(r.value.as_int(), apps::fib_serial(16)) << round;
    ASSERT_EQ(r.aggregate.args_unknown_closure, 0u);
    ASSERT_EQ(r.aggregate.args_duplicate, 0u);
  }
}

TEST(ThreadsStress, StealHeavyPoolChurnStaysConserved) {
  // Hammer the per-worker closure pools from the steal side: fine-grained
  // fib with many workers makes every core serve batched steals (lazy
  // materialization + pool release on the victim, adopt + pool acquire on
  // the thief) while its own spawn/execute cycle recycles the same arenas.
  // Under TSan this is the concurrent spawn/steal lifetime check; in any
  // build the conservation laws below catch a closure lost or double-freed
  // by the churn.
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/0);
  ThreadsConfig cfg;
  cfg.workers = 6;
  cfg.steal_batch = WorkerCore::kMaxStealBatch;
  ThreadsRuntime rt(reg, cfg);
  std::uint64_t total_stolen = 0;
  for (int round = 0; round < 4; ++round) {
    const auto r = rt.run(root, {Value(std::int64_t{17})});
    ASSERT_EQ(r.value.as_int(), apps::fib_serial(17)) << round;
    // Conservation: every closure created was executed exactly once.  A
    // stolen closure is counted by note_alloc twice (victim spawn + thief
    // install), so the aggregate ledger is executed + stolen == created.
    ASSERT_EQ(r.aggregate.tasks_executed + r.aggregate.tasks_stolen_by_me,
              r.aggregate.closures_created)
        << round;
    ASSERT_EQ(r.aggregate.tasks_in_use, 0u) << round;
    ASSERT_EQ(r.aggregate.args_unknown_closure, 0u) << round;
    ASSERT_EQ(r.aggregate.args_duplicate, 0u) << round;
    total_stolen += r.aggregate.tasks_stolen_from_me;
  }
  // Guard against vacuousness across the whole run, not per round: on a
  // single-CPU host a short round can finish before any thief gets a
  // timeslice, and that is not a scheduler bug.
  EXPECT_GT(total_stolen, 0u);
}

}  // namespace
}  // namespace phish::rt
