// Concurrency stress for the threads runtime: many back-to-back multi-worker
// jobs with mixed workloads, hunting for races in the inbox/steal/quiescence
// machinery.  Single-core hosts interleave aggressively under contention, so
// repetition is an effective race probe here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "apps/apps.hpp"
#include "core/worker_core.hpp"
#include "runtime/threads/threads_runtime.hpp"

namespace phish::rt {
namespace {

TEST(ThreadsStress, RepeatedJobsManyWorkers) {
  TaskRegistry reg;
  const TaskId fib_root = apps::register_fib(reg, /*sequential_cutoff=*/10);
  const TaskId pfold_root = apps::register_pfold(reg, 5);
  ThreadsConfig cfg;
  cfg.workers = 6;
  ThreadsRuntime rt(reg, cfg);
  const Histogram pfold_expected = apps::pfold_serial(11);
  for (int round = 0; round < 15; ++round) {
    const auto fib = rt.run(fib_root, {Value(std::int64_t{18})});
    ASSERT_EQ(fib.value.as_int(), apps::fib_serial(18)) << round;
    const auto pf = rt.run(pfold_root, {Value(std::int64_t{11})});
    ASSERT_EQ(apps::decode_histogram(pf.value.as_blob()), pfold_expected)
        << round;
    // Clean termination every round.
    ASSERT_EQ(fib.aggregate.tasks_in_use, 0u);
    ASSERT_EQ(pf.aggregate.tasks_in_use, 0u);
  }
}

TEST(ThreadsStress, AlternatingRuntimesShareNothing) {
  // Two independent runtimes over the same registry must not interfere.
  TaskRegistry reg;
  const TaskId root = apps::register_nqueens(reg, 4);
  ThreadsConfig a_cfg, b_cfg;
  a_cfg.workers = 2;
  b_cfg.workers = 5;
  ThreadsRuntime a(reg, a_cfg), b(reg, b_cfg);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.run(root, {Value(std::int64_t{8})}).value.as_int(), 92);
    EXPECT_EQ(b.run(root, {Value(std::int64_t{8})}).value.as_int(), 92);
  }
}

TEST(ThreadsStress, FineGrainManyWorkersNoLostWakeups) {
  // Fully fine-grained fib floods the inboxes with cross-worker argument
  // sends; quiescence must never be declared spuriously and no argument may
  // be dropped.
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, 0);
  ThreadsConfig cfg;
  cfg.workers = 8;
  ThreadsRuntime rt(reg, cfg);
  for (int round = 0; round < 5; ++round) {
    const auto r = rt.run(root, {Value(std::int64_t{16})});
    ASSERT_EQ(r.value.as_int(), apps::fib_serial(16)) << round;
    ASSERT_EQ(r.aggregate.args_unknown_closure, 0u);
    ASSERT_EQ(r.aggregate.args_duplicate, 0u);
  }
}

TEST(ThreadsStress, StealHeavyPoolChurnStaysConserved) {
  // Hammer the per-worker closure pools from the steal side: fine-grained
  // fib with many workers makes every core serve batched steals (lazy
  // materialization + pool release on the victim, adopt + pool acquire on
  // the thief) while its own spawn/execute cycle recycles the same arenas.
  // Under TSan this is the concurrent spawn/steal lifetime check; in any
  // build the conservation laws below catch a closure lost or double-freed
  // by the churn.
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/0);
  ThreadsConfig cfg;
  cfg.workers = 6;
  cfg.steal_batch = WorkerCore::kMaxStealBatch;
  ThreadsRuntime rt(reg, cfg);
  std::uint64_t total_stolen = 0;
  for (int round = 0; round < 4; ++round) {
    const auto r = rt.run(root, {Value(std::int64_t{17})});
    ASSERT_EQ(r.value.as_int(), apps::fib_serial(17)) << round;
    // Conservation: every closure created was executed exactly once.  A
    // stolen closure is counted by note_alloc twice (victim spawn + thief
    // install), so the aggregate ledger is executed + stolen == created.
    ASSERT_EQ(r.aggregate.tasks_executed + r.aggregate.tasks_stolen_by_me,
              r.aggregate.closures_created)
        << round;
    ASSERT_EQ(r.aggregate.tasks_in_use, 0u) << round;
    ASSERT_EQ(r.aggregate.args_unknown_closure, 0u) << round;
    ASSERT_EQ(r.aggregate.args_duplicate, 0u) << round;
    total_stolen += r.aggregate.tasks_stolen_from_me;
  }
  // Guard against vacuousness across the whole run, not per round: on a
  // single-CPU host a short round can finish before any thief gets a
  // timeslice, and that is not a scheduler bug.  Under heavy external load
  // (parallel ctest) even four rounds can all starve, so keep running —
  // bounded — until a steal is observed; only a genuinely steal-free
  // scheduler fails here.
  for (int extra = 0; extra < 32 && total_stolen == 0; ++extra) {
    const auto r = rt.run(root, {Value(std::int64_t{17})});
    ASSERT_EQ(r.value.as_int(), apps::fib_serial(17)) << "extra " << extra;
    total_stolen += r.aggregate.tasks_stolen_from_me;
  }
  EXPECT_GT(total_stolen, 0u);
}

// Direct hammer on the no-victim-lock steal protocol: one owner core runs a
// fully fine-grained fib tree on its lock-free Chase–Lev deque while several
// thief threads call steal_concurrent against it with NO victim lock — the
// exact concurrency the threads runtime creates, but with every thief aimed
// at a single victim so the owner's pop races the thieves' CAS steals as
// hard as the host allows.  Under TSan this exercises the push/steal fence
// pairing, the stash hand-back, and the victim-side atomic accounting; in
// any build the conservation ledger below catches a closure lost, duplicated
// or double-freed by the churn.
TEST(ThreadsStress, ConcurrentStealChurnManyThievesOneVictim) {
  constexpr int kThieves = 4;
  constexpr int kRounds = 4;
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/0);

  std::uint64_t total_stolen = 0;
  for (int round = 0; round < kRounds; ++round) {
    CoreOptions options;  // paper orders + full fast path ...
    options.lockfree_deque = true;  // ... on the Chase–Lev backend

    std::mutex result_mutex;
    std::optional<Value> result;
    std::atomic<bool> stop{false};
    // Set by a thief on its first successful steal of the round.  On a
    // single-CPU host a fast build can otherwise drain the whole fib tree
    // before any thief thread is ever scheduled; the owner sleeps between
    // batches until this flips, guaranteeing the thieves a window while the
    // deque is still populated.
    std::atomic<bool> any_steal{false};

    // Per-node wire queues: arguments crossing cores are queued here and
    // delivered by the receiving core's own thread (cores are externally
    // synchronized; only steal_concurrent may touch a foreign core).
    struct Inbox {
      std::mutex mutex;
      std::deque<std::pair<ContRef, Value>> wires;
    };
    std::vector<Inbox> inboxes(kThieves + 1);

    WorkerCore::Hooks hooks;
    hooks.send_remote = [&](const ContRef& cont, Value value) {
      if (cont.home == kResultNode) {
        {
          std::lock_guard<std::mutex> lock(result_mutex);
          result = std::move(value);
        }
        stop.store(true, std::memory_order_release);
        return;
      }
      Inbox& in = inboxes[cont.home.value];
      std::lock_guard<std::mutex> lock(in.mutex);
      in.wires.emplace_back(cont, std::move(value));
    };

    auto drain_inbox = [&inboxes](WorkerCore& core, std::size_t idx) {
      std::deque<std::pair<ContRef, Value>> taken;
      {
        std::lock_guard<std::mutex> lock(inboxes[idx].mutex);
        taken.swap(inboxes[idx].wires);
      }
      for (auto& [cont, value] : taken) {
        core.deliver_remote(cont.target, cont.slot, std::move(value));
      }
      return !taken.empty();
    };

    WorkerCore owner(net::NodeId{0}, reg, hooks, options);
    std::vector<std::unique_ptr<WorkerCore>> thieves;
    for (int i = 0; i < kThieves; ++i) {
      thieves.push_back(std::make_unique<WorkerCore>(
          net::NodeId{static_cast<std::uint32_t>(i + 1)}, reg, hooks,
          options));
    }

    owner.spawn(root, {Value(std::int64_t{18})}, root_continuation(), 0);

    std::vector<std::thread> threads;
    threads.reserve(kThieves);
    for (int i = 0; i < kThieves; ++i) {
      threads.emplace_back([&, i] {
        WorkerCore& mine = *thieves[static_cast<std::size_t>(i)];
        std::vector<Closure> loot;
        while (true) {
          bool did = false;
          while (auto task = mine.pop_for_execution()) {
            mine.execute(*task);
            did = true;
          }
          did |= drain_inbox(mine, static_cast<std::size_t>(i + 1));
          if (!mine.has_ready()) {
            loot.clear();
            mine.note_steal_request_sent();
            if (owner.steal_concurrent(loot, 8) == 0) {
              mine.note_steal_failed();
            }
            for (Closure& c : loot) {
              mine.install_stolen(std::move(c));
              did = true;
            }
            if (!loot.empty()) any_steal.store(true, std::memory_order_relaxed);
          }
          if (!did) {
            if (stop.load(std::memory_order_acquire)) break;
            std::this_thread::yield();
          }
        }
      });
    }

    // Owner loop: execute in small batches so inbox draining and stash
    // reclamation interleave with the thieves' CAS traffic.
    while (!stop.load(std::memory_order_acquire)) {
      bool did = false;
      int executed = 0;
      while (auto task = owner.pop_for_execution()) {
        owner.execute(*task);
        did = true;
        if (++executed >= 64) break;
      }
      did |= drain_inbox(owner, 0);
      if (owner.has_parked_slots()) owner.reclaim_stolen_slots();
      if (!any_steal.load(std::memory_order_relaxed)) {
        // Hand the CPU to the thieves until the first steal lands.  Bounded:
        // fib(18) is ~130 batches of 64, so even a steal-free round (a real
        // protocol bug, caught below) only adds ~10 ms.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      } else if (!did) {
        std::this_thread::yield();
      }
    }
    for (std::thread& t : threads) t.join();
    owner.reclaim_stolen_slots();

    {
      std::lock_guard<std::mutex> lock(result_mutex);
      ASSERT_TRUE(result.has_value()) << round;
      ASSERT_EQ(result->as_int(), apps::fib_serial(18)) << round;
    }

    WorkerStats agg = owner.stats();
    for (const auto& thief : thieves) agg.merge(thief->stats());
    // Same ledger as the runtime-level test: a stolen closure is created
    // twice (victim spawn + thief install) and executed once, so
    // executed + stolen == created, and every pool slot came home.
    ASSERT_EQ(agg.tasks_executed + agg.tasks_stolen_by_me,
              agg.closures_created)
        << round;
    ASSERT_EQ(agg.tasks_in_use, 0u) << round;
    ASSERT_EQ(agg.args_unknown_closure, 0u) << round;
    ASSERT_EQ(agg.args_duplicate, 0u) << round;
    ASSERT_EQ(agg.tasks_stolen_by_me, agg.tasks_stolen_from_me) << round;
    total_stolen += agg.tasks_stolen_from_me;
  }
  // Across all rounds something must actually have been stolen (per-round
  // would be flaky on single-CPU hosts where thieves can starve).
  EXPECT_GT(total_stolen, 0u);
}

}  // namespace
}  // namespace phish::rt
