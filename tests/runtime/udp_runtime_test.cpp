// End-to-end tests of Phish over real UDP sockets on loopback: the actual
// protocol (registration, heartbeats, steal RPCs, argument datagrams,
// reliable result delivery, shutdown broadcast) with real threads.
#include "runtime/udp/udp_runtime.hpp"

#include <gtest/gtest.h>

#include "apps/apps.hpp"

namespace phish::rt {
namespace {

UdpJobConfig config_for(int workers) {
  UdpJobConfig cfg;
  cfg.workers = workers;
  // Ephemeral ports: the kernel hands every node a free one, so concurrent
  // ctest processes can never collide no matter how many run at once.
  cfg.net.base_port = 0;
  cfg.clearinghouse.detect_failures = false;
  cfg.timeout_seconds = 60.0;
  return cfg;
}

TEST(UdpRuntime, SingleWorkerFib) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/10);
  UdpJob job(reg, config_for(1));
  const auto result = job.run(root, {Value(std::int64_t{20})});
  EXPECT_EQ(result.value.as_int(), apps::fib_serial(20));
  EXPECT_GT(result.elapsed_seconds, 0.0);
  EXPECT_GT(result.messages_sent, 0u) << "register/result/unregister";
}

TEST(UdpRuntime, TwoWorkersStealOverRealSockets) {
  // The job must run long enough (hundreds of ms) for the second worker to
  // register and steal on a single-core host: fib(37) with coarse leaves.
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/27);
  UdpJob job(reg, config_for(2));
  const auto result = job.run(root, {Value(std::int64_t{37})});
  EXPECT_EQ(result.value.as_int(), apps::fib_serial(37));
  // With two workers the second can only get work by stealing.
  EXPECT_GT(result.aggregate.tasks_stolen_by_me, 0u);
  EXPECT_EQ(result.aggregate.tasks_stolen_by_me,
            result.aggregate.tasks_stolen_from_me);
}

TEST(UdpRuntime, PfoldHistogramExactOverSockets) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/6);
  UdpJob job(reg, config_for(3));
  const auto result = job.run(root, {Value(std::int64_t{12})});
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(12));
}

TEST(UdpRuntime, RunByName) {
  TaskRegistry reg;
  apps::register_nqueens(reg, /*sequential_rows=*/4);
  UdpJob job(reg, config_for(2));
  EXPECT_EQ(job.run("nqueens.root", {Value(std::int64_t{8})}).value.as_int(),
            92);
}

TEST(UdpRuntime, SurvivesControlMessageLoss) {
  // Injected loss on every channel: steal RPCs, registration, and the result
  // retransmit; argument datagrams stay local because there is one worker.
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/30);
  UdpJobConfig cfg = config_for(1);
  cfg.net.drop_probability = 0.25;
  cfg.net.seed = 99;
  UdpJob job(reg, cfg);
  const auto result = job.run(root, {Value(std::int64_t{24})});
  EXPECT_EQ(result.value.as_int(), apps::fib_serial(24));
}

TEST(UdpRuntime, ThievesExitWhenParallelismShrinks) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/40);
  UdpJobConfig cfg = config_for(3);
  cfg.max_failed_steals = 6;
  cfg.steal_retry_ns = 2'000'000;
  UdpJob job(reg, cfg);
  // One big serial task: the other two workers must give up.
  const auto result = job.run(root, {Value(std::int64_t{31})});
  EXPECT_EQ(result.value.as_int(), apps::fib_serial(31));
}

TEST(UdpRuntime, StatsShapeMatchesPaper) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/6);
  UdpJob job(reg, config_for(2));
  const auto result = job.run(root, {Value(std::int64_t{13})});
  const auto& a = result.aggregate;
  EXPECT_GT(a.tasks_executed, 100u);
  EXPECT_EQ(a.synchronizations,
            a.non_local_synchs + (a.synchronizations - a.non_local_synchs));
  EXPECT_LT(a.non_local_synchs, a.synchronizations)
      << "most synchronizations stay local";
  EXPECT_LT(a.max_tasks_in_use, 500u);
}

TEST(UdpRuntime, RejectsZeroWorkers) {
  TaskRegistry reg;
  EXPECT_THROW(UdpJob(reg, [] {
                 UdpJobConfig c;
                 c.workers = 0;
                 return c;
               }()),
               std::invalid_argument);
}

TEST(UdpRuntime, SequentialJobsReuseNothing) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/10);
  for (int i = 0; i < 2; ++i) {
    UdpJob job(reg, config_for(2));
    EXPECT_EQ(job.run(root, {Value(std::int64_t{18})}).value.as_int(),
              apps::fib_serial(18));
  }
}

}  // namespace
}  // namespace phish::rt
