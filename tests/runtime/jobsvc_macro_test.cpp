// Multi-tenant macro scheduling end-to-end: weighted fair share over the
// grant ledger, preemption via the worker-migration path (the paper's case
// (d) repurposed: the scheduler, not the owner, reclaims the workstation),
// and PhishJobD driving the simulated cluster through MacroServiceBackend.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "jobsvc/service.hpp"
#include "obs/clock.hpp"
#include "runtime/simdist/macro_cluster.hpp"
#include "runtime/simdist/macro_service.hpp"

namespace phish::rt {
namespace {

using sim::kMillisecond;
using sim::kSecond;

MacroConfig tenant_config(std::uint64_t seed) {
  MacroConfig cfg;
  cfg.seed = seed;
  cfg.assign_policy = JobAssignPolicy::kFairShare;
  cfg.clearinghouse.detect_failures = false;
  cfg.manager.logout_poll = 2 * kSecond;
  cfg.manager.job_poll = kSecond;
  cfg.manager.owner_poll = 200 * kMillisecond;
  cfg.worker.heartbeat_period = kSecond;
  cfg.worker.max_failed_steals = 50;
  cfg.worker.steal_retry_delay = 5 * kMillisecond;
  cfg.max_sim_time = 3600 * kSecond;
  return cfg;
}

TaskRegistry& tenant_registry() {
  static TaskRegistry* reg = [] {
    auto* r = new TaskRegistry();
    apps::register_fib(*r, /*sequential_cutoff=*/12);
    apps::register_pfold(*r, /*sequential_monomers=*/5);
    return r;
  }();
  return *reg;
}

std::uint64_t held_or_zero(const std::map<std::string, std::uint64_t>& held,
                           const std::string& tenant) {
  const auto it = held.find(tenant);
  return it == held.end() ? 0 : it->second;
}

TEST(JobsvcMacro, FairShareGivesWeightedSliceOfThePool) {
  // Two tenants, weights 2:1, one long job each, nine idle workstations.
  // The JobQ's grant ledger must converge on a 6:3 split.
  MacroConfig cfg = tenant_config(31);
  cfg.tenants["heavy"] = TenantConfig{2.0};
  cfg.tenants["light"] = TenantConfig{1.0};
  MacroCluster cluster(tenant_registry(), cfg);
  for (int i = 0; i < 9; ++i) {
    cluster.add_workstation(OwnerTrace::always_idle());
  }
  // Big enough that neither job finishes within the sampling window.
  cluster.submit_job("heavy-job", "pfold.root", {Value(std::int64_t{20})}, 0,
                     "heavy", kPriorityNormal);
  cluster.submit_job("light-job", "pfold.root", {Value(std::int64_t{20})}, 0,
                     "light", kPriorityNormal);

  // Sample the ledger as the simulation advances and keep the snapshot with
  // the fullest pool (workers occasionally churn between steal droughts).
  std::uint64_t best_heavy = 0, best_light = 0;
  for (int slice = 0; slice < 16; ++slice) {
    cluster.run_until(cluster.simulator().now() + 500 * kMillisecond);
    const auto held = cluster.jobq().held_by_tenant();
    const std::uint64_t h = held_or_zero(held, "heavy");
    const std::uint64_t l = held_or_zero(held, "light");
    if (h + l >= best_heavy + best_light) {
      best_heavy = h;
      best_light = l;
    }
  }
  EXPECT_EQ(best_heavy + best_light, 9u) << "pool fully assigned";
  // Weighted fair share is exact at full occupancy: argmin held/weight
  // hands heavy two grants for every one of light's.
  EXPECT_EQ(best_heavy, 6u);
  EXPECT_EQ(best_light, 3u);
}

TEST(JobsvcMacro, HighPrioritySubmitPreemptsWithoutLosingWork) {
  // A low-priority job soaks all four workstations; a high-priority job
  // arrives while they are all held.  The JobQ must evict a workstation
  // (worker migrates, the paper's departure path) and re-grant it to the new
  // job — and both jobs must still produce exactly their serial results.
  MacroConfig cfg = tenant_config(37);
  cfg.tenants["batch"] = TenantConfig{1.0};
  cfg.tenants["interactive"] = TenantConfig{2.0};
  cfg.preempt_batch = 1;
  MacroCluster cluster(tenant_registry(), cfg);
  for (int i = 0; i < 4; ++i) {
    cluster.add_workstation(OwnerTrace::always_idle());
  }
  const std::uint64_t low_id = cluster.submit_job(
      "low", "pfold.root", {Value(std::int64_t{18})}, 0, "batch",
      kPriorityLow);

  // Advance until the low job holds every workstation, so the high-priority
  // submit finds no free machine and must preempt.
  for (int slice = 0;; ++slice) {
    ASSERT_LT(slice, 100) << "low job never acquired the full pool";
    cluster.run_until(cluster.simulator().now() + 200 * kMillisecond);
    const auto held = cluster.jobq().held_by_job();
    const auto it = held.find(low_id);
    if (it != held.end() && it->second == 4) break;
  }
  cluster.submit_job_dynamic("high", "pfold.root", {Value(std::int64_t{16})},
                             "interactive", kPriorityHigh);
  const auto records = cluster.run();
  ASSERT_EQ(records.size(), 2u);

  // Differential check: nothing the eviction migrated away went missing.
  EXPECT_TRUE(records[0].completed);
  EXPECT_EQ(apps::decode_histogram(records[0].result.as_blob()),
            apps::pfold_serial(18));
  EXPECT_TRUE(records[1].completed);
  EXPECT_EQ(apps::decode_histogram(records[1].result.as_blob()),
            apps::pfold_serial(16));

  // The preemption actually happened, end to end: the JobQ issued it and
  // some manager evicted a running worker for it.
  EXPECT_GE(cluster.jobq().stats().preemptions, 1u);
  std::uint64_t evicted = 0;
  for (int i = 0; i < cluster.workstations(); ++i) {
    evicted += cluster.manager(i).stats().workers_preempted;
  }
  EXPECT_GE(evicted, 1u);
  EXPECT_GT(records[1].assignments, 0u)
      << "the high-priority job received the reclaimed workstation";
}

TEST(JobsvcMacro, PreemptedWorkerCrashMidHandshakeIsReaped) {
  // The composition hazard: a worker evicted over kRpcPreempt crashes
  // BETWEEN the eviction and its manager's kRpcReleaseJob — mid departure
  // handshake, with its closures half-migrated.  The same ledger paths that
  // cover owner reclaims must reap it: the job's Clearinghouse detects the
  // death (dropping or redelivering the in-flight migration cargo, and
  // triggering steal-ledger redo), the manager still settles the grant, and
  // both jobs finish with their exact serial answers.
  MacroConfig cfg = tenant_config(43);
  cfg.tenants["batch"] = TenantConfig{1.0};
  cfg.tenants["interactive"] = TenantConfig{2.0};
  cfg.preempt_batch = 1;
  // The reap needs a failure detector: the crashed worker must be declared
  // dead, not waited for.
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 1500 * kMillisecond;
  cfg.clearinghouse.failure_check_period_ns = 300 * kMillisecond;
  cfg.worker.heartbeat_period = 150 * kMillisecond;
  MacroCluster cluster(tenant_registry(), cfg);
  for (int i = 0; i < 3; ++i) {
    cluster.add_workstation(OwnerTrace::always_idle());
  }
  const std::uint64_t low_id = cluster.submit_job(
      "low", "pfold.root", {Value(std::int64_t{18})}, 0, "batch",
      kPriorityLow);

  for (int slice = 0;; ++slice) {
    ASSERT_LT(slice, 100) << "low job never acquired the full pool";
    cluster.run_until(cluster.simulator().now() + 200 * kMillisecond);
    const auto held = cluster.jobq().held_by_job();
    const auto it = held.find(low_id);
    if (it != held.end() && it->second == 3) break;
  }

  // In-simulation watcher (fires at event granularity, so it cannot miss the
  // handshake window): the instant a manager reports a preemption and its
  // worker is still kDeparting, the whole workstation goes dark.
  int crashed = -1;
  std::function<void()> watch = [&] {
    if (crashed < 0) {
      for (int i = 0; i < cluster.workstations(); ++i) {
        auto& m = cluster.manager(i);
        SimWorker* w = m.current_worker();
        if (m.stats().workers_preempted > 0 && w != nullptr &&
            w->state() == SimWorker::State::kDeparting) {
          crashed = i;
          cluster.set_workstation_offline(i, true);
          return;  // caught it; stop watching
        }
      }
      cluster.simulator().schedule(20'000, watch);  // 20 us
    }
  };
  cluster.simulator().schedule(0, watch);
  cluster.submit_job_dynamic("high", "pfold.root", {Value(std::int64_t{16})},
                             "interactive", kPriorityHigh);
  const auto records = cluster.run();
  ASSERT_EQ(records.size(), 2u);
  ASSERT_GE(crashed, 0)
      << "vacuous: never caught the preempted worker mid-handshake";

  // No lost work: the half-migrated closures were either redelivered from
  // the migration ledger or re-executed via steal-ledger redo — both jobs
  // are exact.
  EXPECT_TRUE(records[0].completed);
  EXPECT_EQ(apps::decode_histogram(records[0].result.as_blob()),
            apps::pfold_serial(18));
  EXPECT_TRUE(records[1].completed);
  EXPECT_EQ(apps::decode_histogram(records[1].result.as_blob()),
            apps::pfold_serial(16));

  // No stuck grant-ledger entry: every grant (including the crashed
  // workstation's) was settled.
  for (const auto& [job_id, held] : cluster.jobq().held_by_job()) {
    EXPECT_EQ(held, 0u) << "job " << job_id << " still holds a workstation";
  }
  EXPECT_EQ(cluster.manager(crashed).stats().workers_lost_offline, 1u);
  EXPECT_GE(cluster.jobq().stats().preemptions, 1u);
}

TEST(JobsvcMacro, ServiceDrivesSimulatedClusterEndToEnd) {
  // PhishJobD over the simulation: submissions admitted by JobService in
  // virtual time flow through MacroServiceBackend into the JobQ under the
  // same job ids, and completion/assignment feeds come back.
  MacroConfig cfg = tenant_config(41);
  cfg.tenants["alice"] = TenantConfig{1.0};
  MacroCluster cluster(tenant_registry(), cfg);
  for (int i = 0; i < 4; ++i) {
    cluster.add_workstation(OwnerTrace::always_idle());
  }

  const obs::VirtualClock<sim::Simulator> clock(cluster.simulator());
  MacroServiceBackend backend(cluster);
  jobsvc::ServiceConfig svc_cfg;
  svc_cfg.max_active = 1;  // the second submit must queue, then promote
  jobsvc::JobService service(clock, backend, svc_cfg);
  backend.bind(service);

  std::vector<std::uint64_t> ids;
  cluster.simulator().schedule_at(kSecond, [&] {
    for (int i = 0; i < 2; ++i) {
      jobsvc::SubmitRequest req;
      req.tenant = "alice";
      req.root_task = "fib.task";
      req.args.emplace_back(std::int64_t{18});
      const auto result = service.submit(std::move(req));
      ASSERT_TRUE(result.accepted());
      ids.push_back(result.job_id);
    }
    EXPECT_EQ(service.pending_jobs(), 1u) << "max_active=1 queues the second";
  });

  for (;;) {
    cluster.run_until(cluster.simulator().now() + kSecond);
    ASSERT_LT(cluster.simulator().now(), cfg.max_sim_time) << "did not drain";
    if (cluster.simulator().now() > kSecond && service.pending_jobs() == 0 &&
        service.active_jobs() == 0) {
      break;
    }
  }

  ASSERT_EQ(ids.size(), 2u);
  for (const std::uint64_t id : ids) {
    const auto status = service.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, jobsvc::JobState::kDone);
    ASSERT_TRUE(status->has_result);
    EXPECT_EQ(status->result.as_int(), 2584) << "fib(18)";
    EXPECT_GT(status->first_task_ns, 0u);
    EXPECT_GE(status->finished_ns, status->first_task_ns);
  }
  EXPECT_EQ(service.counters().completed, 2u);
  // Service ids and JobQ ids are the same namespace: the cluster's record
  // of each job carries the id the service handed out.
  const auto jq = cluster.jobq().stats();
  EXPECT_EQ(jq.submitted, 2u);
  EXPECT_EQ(jq.completed, 2u);
}

}  // namespace
}  // namespace phish::rt
