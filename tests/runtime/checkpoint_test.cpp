// Checkpointing (paper §6 future work): snapshot a running job at a
// quiescent simulated instant, restore it into a brand-new cluster, and
// finish with exactly the right answer.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "runtime/simdist/sim_cluster.hpp"

namespace phish::rt {
namespace {

SimJobConfig checkpoint_config(int participants, std::uint64_t seed) {
  SimJobConfig cfg;
  cfg.participants = participants;
  cfg.seed = seed;
  cfg.clearinghouse.detect_failures = false;
  cfg.worker.heartbeat_period = 0;
  cfg.worker.update_period = 0;
  return cfg;
}

TEST(WorkerCoreState, ExportImportRoundTrip) {
  TaskRegistry reg;
  const TaskId leaf = reg.add("leaf", [](Context& cx, Closure& c) {
    cx.send(c.cont, c.args[0]);
  });
  const TaskId sum = reg.add("sum", [](Context& cx, Closure& c) {
    cx.send(c.cont, c.args[0].as_int() + c.args[1].as_int());
  });

  WorkerCore::Hooks hooks;
  std::vector<Value> sent;
  hooks.send_remote = [&](const ContRef&, Value v) {
    sent.push_back(std::move(v));
  };
  const ContRef out{ClosureId{net::NodeId{9}, 1}, 0, net::NodeId{9}};

  WorkerCore original(net::NodeId{0}, reg, hooks);
  const ClosureId join = original.create_waiting(sum, 2, out, 0);
  original.deliver_remote(join, 0, Value(std::int64_t{10}));
  original.spawn(leaf, {Value(std::int64_t{1})}, original.slot_ref(join, 1),
                 0);
  original.spawn(leaf, {Value(std::int64_t{7})}, out, 0);

  const Bytes state = original.export_state();

  WorkerCore restored(net::NodeId{0}, reg, hooks);
  restored.import_state(state);
  EXPECT_EQ(restored.ready_count(), 2u);
  EXPECT_EQ(restored.waiting_count(), 1u);

  // Execution after restore completes the graph exactly as the original
  // would have: leaf(7) -> out, leaf(1) fills the join, sum -> out.
  while (auto c = restored.pop_for_execution()) restored.execute(*c);
  ASSERT_EQ(sent.size(), 2u);
  // LIFO: head task is leaf(7) (pushed last).
  EXPECT_EQ(sent[0].as_int(), 7);
  EXPECT_EQ(sent[1].as_int(), 11);
}

TEST(WorkerCoreState, ImportRequiresFreshCore) {
  TaskRegistry reg;
  const TaskId leaf = reg.add("leaf", [](Context&, Closure&) {});
  WorkerCore::Hooks hooks;
  hooks.send_remote = [](const ContRef&, Value) {};
  WorkerCore a(net::NodeId{0}, reg, hooks);
  a.spawn(leaf, {}, ContRef{ClosureId{net::NodeId{9}, 1}, 0, net::NodeId{9}},
          0);
  const Bytes state = a.export_state();
  EXPECT_THROW(a.import_state(state), std::logic_error);
}

TEST(WorkerCoreState, ImportRejectsForeignState) {
  TaskRegistry reg;
  WorkerCore::Hooks hooks;
  hooks.send_remote = [](const ContRef&, Value) {};
  WorkerCore a(net::NodeId{0}, reg, hooks);
  WorkerCore b(net::NodeId{1}, reg, hooks);
  EXPECT_THROW(b.import_state(a.export_state()), std::invalid_argument);
}

TEST(WorkerCoreState, ImportPreservesIdAllocator) {
  // Closures created after a restore must not collide with checkpointed ids.
  TaskRegistry reg;
  const TaskId leaf = reg.add("leaf", [](Context&, Closure&) {});
  WorkerCore::Hooks hooks;
  hooks.send_remote = [](const ContRef&, Value) {};
  WorkerCore a(net::NodeId{0}, reg, hooks);
  const ContRef out{ClosureId{net::NodeId{9}, 1}, 0, net::NodeId{9}};
  for (int i = 0; i < 5; ++i) a.spawn(leaf, {}, out, 0);
  WorkerCore b(net::NodeId{0}, reg, hooks);
  b.import_state(a.export_state());
  const ClosureId fresh = b.create_waiting(leaf, 1, out, 0);
  EXPECT_GT(fresh.seq, 5u);
}

TEST(JobCheckpointCodec, RoundTrip) {
  JobCheckpoint c;
  c.taken_at = 12345;
  c.worker_states = {Bytes{1, 2, 3}, Bytes{}, Bytes{9}};
  const auto back = JobCheckpoint::decode(c.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->taken_at, 12345u);
  EXPECT_EQ(back->worker_states, c.worker_states);
}

TEST(JobCheckpointCodec, RejectsCorrupt) {
  JobCheckpoint c;
  c.worker_states = {Bytes{1}};
  Bytes b = c.encode();
  b.pop_back();
  EXPECT_FALSE(JobCheckpoint::decode(b).has_value());
}

TEST(Checkpoint, SnapshotAndResumeYieldsExactResult) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  const Histogram expected = apps::pfold_serial(14);

  // Phase 1: run with a checkpoint request mid-job, to completion (the
  // original cluster finishing proves the snapshot is non-destructive).
  SimCluster original(reg, checkpoint_config(4, 71));
  original.request_checkpoint_at(100 * sim::kMillisecond);
  const auto full = original.run(root, {Value(std::int64_t{14})});
  EXPECT_EQ(apps::decode_histogram(full.value.as_blob()), expected);
  ASSERT_TRUE(original.checkpoint().has_value())
      << "job too short for the checkpoint? increase polymer";

  // The snapshot must hold real mid-job state.
  std::size_t total_state_bytes = 0;
  for (const auto& s : original.checkpoint()->worker_states) {
    total_state_bytes += s.size();
  }
  EXPECT_GT(total_state_bytes, 100u);

  // Phase 2: restore into a brand-new cluster (fresh simulator, network,
  // clearinghouse) and run only the remainder.
  SimCluster restored(reg, checkpoint_config(4, 72));
  const auto resumed = restored.resume(*original.checkpoint());
  EXPECT_EQ(apps::decode_histogram(resumed.value.as_blob()), expected);
  // The remainder is strictly less work than the whole job.
  EXPECT_LT(resumed.aggregate.tasks_executed, full.aggregate.tasks_executed);
}

TEST(Checkpoint, SerializedCheckpointSurvivesEncodeDecode) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, 5);
  const Histogram expected = apps::pfold_serial(13);

  SimCluster original(reg, checkpoint_config(3, 81));
  original.request_checkpoint_at(50 * sim::kMillisecond);
  original.run(root, {Value(std::int64_t{13})});
  ASSERT_TRUE(original.checkpoint().has_value());

  // Simulate writing to disk and reading back.
  const Bytes on_disk = original.checkpoint()->encode();
  const auto loaded = JobCheckpoint::decode(on_disk);
  ASSERT_TRUE(loaded.has_value());

  SimCluster restored(reg, checkpoint_config(3, 82));
  const auto resumed = restored.resume(*loaded);
  EXPECT_EQ(apps::decode_histogram(resumed.value.as_blob()), expected);
}

TEST(Checkpoint, ResumeRejectsWrongParticipantCount) {
  TaskRegistry reg;
  apps::register_pfold(reg, 5);
  JobCheckpoint c;
  c.worker_states = {Bytes{}, Bytes{}};
  SimCluster cluster(reg, checkpoint_config(3, 91));
  EXPECT_THROW(cluster.resume(c), std::invalid_argument);
}

TEST(Checkpoint, NoCheckpointAfterJobCompletes) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/10);
  SimCluster cluster(reg, checkpoint_config(2, 95));
  // Request far beyond the job's end.
  cluster.request_checkpoint_at(3'000 * sim::kSecond);
  cluster.run(root, {Value(std::int64_t{12})});
  EXPECT_FALSE(cluster.checkpoint().has_value());
}

TEST(Checkpoint, RestoredRunIsDeterministic) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, 5);
  SimCluster original(reg, checkpoint_config(4, 101));
  original.request_checkpoint_at(80 * sim::kMillisecond);
  original.run(root, {Value(std::int64_t{14})});
  ASSERT_TRUE(original.checkpoint().has_value());

  auto resume_once = [&](std::uint64_t seed) {
    SimCluster c(reg, checkpoint_config(4, seed));
    return c.resume(*original.checkpoint());
  };
  const auto a = resume_once(500);
  const auto b = resume_once(500);
  EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.aggregate.tasks_executed, b.aggregate.tasks_executed);
}

}  // namespace
}  // namespace phish::rt
