// Heterogeneous network topology + cluster-local stealing (paper §6).
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "runtime/simdist/sim_cluster.hpp"

namespace phish::rt {
namespace {

TEST(Topology, ClusterAssignmentDefaultsToZero) {
  sim::Simulator s;
  net::SimNetwork net(s, {});
  EXPECT_EQ(net.cluster_of(net::NodeId{5}), 0);
  net.set_cluster(net::NodeId{5}, 2);
  EXPECT_EQ(net.cluster_of(net::NodeId{5}), 2);
  EXPECT_EQ(net.cluster_of(net::NodeId{4}), 0);
}

TEST(Topology, InterClusterMessagesUseSlowLink) {
  sim::Simulator s;
  net::SimNetParams p;
  p.jitter = 0;
  p.latency = 1000;
  p.inter_cluster_latency = 50'000;
  p.bytes_per_second = 1e9;
  p.inter_cluster_bytes_per_second = 1e6;
  net::SimNetwork net(s, p);
  net.set_cluster(net::NodeId{1}, 1);

  sim::SimTime local_arrival = 0, remote_arrival = 0;
  auto& n0 = net.channel(net::NodeId{0});
  auto& n1 = net.channel(net::NodeId{1});
  auto& n2 = net.channel(net::NodeId{2});
  n1.set_receiver([&](net::Message&&) { remote_arrival = s.now(); });
  n2.set_receiver([&](net::Message&&) { local_arrival = s.now(); });

  n0.send(net::NodeId{2}, 1, Bytes(1000));  // same cluster (0)
  n0.send(net::NodeId{1}, 1, Bytes(1000));  // crosses the cut
  s.run();

  EXPECT_EQ(local_arrival, 1000u + 1000u);          // 1 us wire at 1 GB/s
  EXPECT_EQ(remote_arrival, 50'000u + 1'000'000u);  // 1 ms wire at 1 MB/s
  EXPECT_EQ(net.inter_cluster_messages(), 1u);
}

TEST(Topology, InFlightCounterTracksWire) {
  sim::Simulator s;
  net::SimNetParams p;
  p.jitter = 0;
  net::SimNetwork net(s, p);
  auto& n0 = net.channel(net::NodeId{0});
  auto& n1 = net.channel(net::NodeId{1});
  n1.set_receiver([](net::Message&&) {});
  EXPECT_EQ(net.messages_in_flight(), 0u);
  n0.send(net::NodeId{1}, 1, {});
  n0.send(net::NodeId{1}, 1, {});
  EXPECT_EQ(net.messages_in_flight(), 2u);
  s.run();
  EXPECT_EQ(net.messages_in_flight(), 0u);
}

TEST(Topology, DroppedMessagesDoNotLeakInFlight) {
  sim::Simulator s;
  net::SimNetParams p;
  p.jitter = 0;
  p.drop_probability = 1.0;
  net::SimNetwork net(s, p);
  auto& n0 = net.channel(net::NodeId{0});
  net.channel(net::NodeId{1}).set_receiver([](net::Message&&) {});
  n0.send(net::NodeId{1}, 1, {});
  s.run();
  EXPECT_EQ(net.messages_in_flight(), 0u);
}

TEST(Topology, ClusterLocalJobStillExact) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/6);
  SimJobConfig cfg;
  cfg.participants = 6;
  cfg.seed = 5;
  cfg.clearinghouse.detect_failures = false;
  cfg.worker.heartbeat_period = 0;
  cfg.worker.update_period = 0;
  cfg.worker.victim_policy = VictimPolicy::kClusterLocal;
  cfg.worker_clusters = {0, 0, 0, 1, 1, 1};
  cfg.net.inter_cluster_latency = 20 * sim::kMillisecond;
  cfg.net.inter_cluster_bytes_per_second = 1e5;
  const auto result = rt::run_sim_job(reg, root, {Value(std::int64_t{13})},
                                      cfg);
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(13));
  EXPECT_GT(result.inter_cluster_messages, 0u)
      << "work must still cross the cut at least once (root in cluster 0)";
}

TEST(Topology, ClusterLocalReducesCutTraffic) {
  auto run_with = [&](VictimPolicy policy) {
    TaskRegistry reg;
    const TaskId root = apps::register_pfold(reg, 5);
    SimJobConfig cfg;
    cfg.participants = 8;
    cfg.seed = 9;
    cfg.clearinghouse.detect_failures = false;
    cfg.worker.heartbeat_period = 0;
    cfg.worker.update_period = 0;
    cfg.worker.victim_policy = policy;
    cfg.worker_clusters = {0, 0, 0, 0, 1, 1, 1, 1};
    cfg.net.inter_cluster_latency = 20 * sim::kMillisecond;
    cfg.net.inter_cluster_bytes_per_second = 1.25e5;
    return rt::run_sim_job(reg, root, {Value(std::int64_t{15})}, cfg);
  };
  const auto flat = run_with(VictimPolicy::kUniformRandom);
  const auto local = run_with(VictimPolicy::kClusterLocal);
  EXPECT_EQ(flat.value.as_blob(), local.value.as_blob());
  EXPECT_LT(local.inter_cluster_messages, flat.inter_cluster_messages);
}

}  // namespace
}  // namespace phish::rt
