#include "runtime/simdist/owner_trace.hpp"

#include <gtest/gtest.h>

namespace phish::rt {
namespace {

using sim::kSecond;

TEST(OwnerTrace, AlwaysIdle) {
  const OwnerTrace t = OwnerTrace::always_idle();
  EXPECT_FALSE(t.busy_at(0));
  EXPECT_FALSE(t.busy_at(1000 * kSecond));
  EXPECT_FALSE(t.next_transition_after(0).has_value());
  EXPECT_EQ(t.busy_time(100 * kSecond), 0u);
}

TEST(OwnerTrace, AlwaysBusy) {
  const OwnerTrace t = OwnerTrace::always_busy();
  EXPECT_TRUE(t.busy_at(0));
  EXPECT_TRUE(t.busy_at(1000 * kSecond));
  EXPECT_EQ(t.busy_time(100 * kSecond), 100 * kSecond);
}

TEST(OwnerTrace, IntervalsBoundaries) {
  const OwnerTrace t =
      OwnerTrace::intervals({{10 * kSecond, 20 * kSecond}});
  EXPECT_FALSE(t.busy_at(10 * kSecond - 1));
  EXPECT_TRUE(t.busy_at(10 * kSecond));  // closed start
  EXPECT_TRUE(t.busy_at(20 * kSecond - 1));
  EXPECT_FALSE(t.busy_at(20 * kSecond));  // open end
}

TEST(OwnerTrace, IntervalsSortAndMerge) {
  const OwnerTrace t = OwnerTrace::intervals({
      {30 * kSecond, 40 * kSecond},
      {10 * kSecond, 20 * kSecond},
      {15 * kSecond, 25 * kSecond},  // overlaps the second
      {50 * kSecond, 50 * kSecond},  // empty: dropped
  });
  ASSERT_EQ(t.busy_intervals().size(), 2u);
  EXPECT_EQ(t.busy_intervals()[0].first, 10 * kSecond);
  EXPECT_EQ(t.busy_intervals()[0].second, 25 * kSecond);
  EXPECT_EQ(t.busy_intervals()[1].first, 30 * kSecond);
}

TEST(OwnerTrace, NextTransition) {
  const OwnerTrace t = OwnerTrace::intervals({{10 * kSecond, 20 * kSecond}});
  EXPECT_EQ(t.next_transition_after(0), 10 * kSecond);
  EXPECT_EQ(t.next_transition_after(10 * kSecond), 20 * kSecond);
  EXPECT_EQ(t.next_transition_after(15 * kSecond), 20 * kSecond);
  EXPECT_FALSE(t.next_transition_after(20 * kSecond).has_value());
}

TEST(OwnerTrace, BusyTime) {
  const OwnerTrace t = OwnerTrace::intervals(
      {{10 * kSecond, 20 * kSecond}, {30 * kSecond, 50 * kSecond}});
  EXPECT_EQ(t.busy_time(15 * kSecond), 5 * kSecond);
  EXPECT_EQ(t.busy_time(25 * kSecond), 10 * kSecond);
  EXPECT_EQ(t.busy_time(40 * kSecond), 20 * kSecond);
  EXPECT_EQ(t.busy_time(100 * kSecond), 30 * kSecond);
}

TEST(OwnerTrace, NineToFive) {
  const sim::SimTime day = 24 * 3600 * kSecond;
  const OwnerTrace t = OwnerTrace::nine_to_five(
      day, 9 * 3600 * kSecond, 17 * 3600 * kSecond, 2);
  EXPECT_FALSE(t.busy_at(8 * 3600 * kSecond));
  EXPECT_TRUE(t.busy_at(12 * 3600 * kSecond));
  EXPECT_FALSE(t.busy_at(18 * 3600 * kSecond));
  EXPECT_TRUE(t.busy_at(day + 12 * 3600 * kSecond));
  EXPECT_EQ(t.busy_time(2 * day), 2 * 8 * 3600 * kSecond);
}

TEST(OwnerTrace, PoissonSessionsDeterministic) {
  const auto a = OwnerTrace::poisson_sessions(42, 600 * kSecond,
                                              1200 * kSecond,
                                              24 * 3600 * kSecond);
  const auto b = OwnerTrace::poisson_sessions(42, 600 * kSecond,
                                              1200 * kSecond,
                                              24 * 3600 * kSecond);
  EXPECT_EQ(a.busy_intervals(), b.busy_intervals());
  EXPECT_FALSE(a.busy_intervals().empty());
}

TEST(OwnerTrace, PoissonSessionsRoughDutyCycle) {
  // mean gap 10 min, mean session 20 min -> ~2/3 busy on average.
  const sim::SimTime horizon = 14 * 24 * 3600 * kSecond;
  const auto t = OwnerTrace::poisson_sessions(7, 600 * kSecond,
                                              1200 * kSecond, horizon);
  const double duty = static_cast<double>(t.busy_time(horizon)) /
                      static_cast<double>(horizon);
  EXPECT_GT(duty, 0.5);
  EXPECT_LT(duty, 0.8);
}

TEST(IdlenessPolicies, NobodyLoggedIn) {
  const NobodyLoggedIn policy;
  const OwnerTrace t = OwnerTrace::intervals({{10 * kSecond, 20 * kSecond}});
  EXPECT_TRUE(policy.idle(t, 0));
  EXPECT_FALSE(policy.idle(t, 15 * kSecond));
  EXPECT_TRUE(policy.idle(t, 25 * kSecond));
  EXPECT_STREQ(policy.name(), "nobody-logged-in");
}

TEST(IdlenessPolicies, LoadBelowThresholdRespectsOwner) {
  // Whatever the background load, an owner at the machine means busy.
  const LoadBelowThreshold policy(0.99, 0.0, 1);
  const OwnerTrace t = OwnerTrace::always_busy();
  EXPECT_FALSE(policy.idle(t, 5 * kSecond));
}

TEST(IdlenessPolicies, LoadBelowThresholdFiltersBackgroundLoad) {
  // Background load uniform in [0, 1.0]; threshold 0.5 -> idle about half
  // the time; threshold 2.0 -> always idle.
  const OwnerTrace t = OwnerTrace::always_idle();
  const LoadBelowThreshold strict(0.5, 0.5, 99);
  const LoadBelowThreshold lax(2.0, 0.5, 99);
  int idle_strict = 0;
  for (int s = 0; s < 1000; ++s) {
    if (strict.idle(t, static_cast<sim::SimTime>(s) * kSecond)) ++idle_strict;
    EXPECT_TRUE(lax.idle(t, static_cast<sim::SimTime>(s) * kSecond));
  }
  EXPECT_GT(idle_strict, 300);
  EXPECT_LT(idle_strict, 700);
}

}  // namespace
}  // namespace phish::rt
