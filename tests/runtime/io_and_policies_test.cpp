// Application I/O through the Clearinghouse (Context::print) and macro
// scheduling under the load-threshold idleness policy.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/apps.hpp"
#include "core/local_runner.hpp"
#include "runtime/simdist/macro_cluster.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "runtime/threads/threads_runtime.hpp"

namespace phish::rt {
namespace {

TEST(TaskIo, PrintReachesClearinghouseIoLog) {
  // A task announces progress with ctx.print; the line must arrive in the
  // Clearinghouse's I/O log ("a user need only watch the Clearinghouse to
  // see job output").
  TaskRegistry reg;
  const TaskId chatty = reg.add("chatty", [](Context& cx, Closure& c) {
    cx.print("working on it");
    cx.print("done");
    cx.send(c.cont, Value(std::int64_t{1}));
  });
  SimJobConfig cfg;
  cfg.participants = 1;
  cfg.clearinghouse.detect_failures = false;
  cfg.worker.heartbeat_period = 0;
  cfg.worker.update_period = 0;
  cfg.net.jitter = 0;
  const auto result = run_sim_job(reg, chatty, {}, cfg);
  // Datagram arrival order depends on wire time (payload size), so assert
  // contents, not order — like real UDP, like real Phish.
  ASSERT_EQ(result.io_log.size(), 2u);
  std::vector<std::string> texts{result.io_log[0].text,
                                 result.io_log[1].text};
  std::sort(texts.begin(), texts.end());
  EXPECT_EQ(texts, (std::vector<std::string>{"done", "working on it"}));
  // I/O is attributed to the emitting worker.
  EXPECT_EQ(result.io_log[0].who, (net::NodeId{1}));
}

TEST(TaskIo, PrintTimingFollowsTaskCost) {
  // Output buffered during a task leaves when the task's simulated cost
  // elapses, like every other send.
  TaskRegistry reg;
  const TaskId slow = reg.add("slow", [](Context& cx, Closure& c) {
    cx.charge(1'000'000);  // 2 simulated seconds at 2 us/unit
    cx.print("finished the slow part");
    cx.send(c.cont, Value());
  });
  SimJobConfig cfg;
  cfg.participants = 1;
  cfg.clearinghouse.detect_failures = false;
  cfg.worker.heartbeat_period = 0;
  cfg.worker.update_period = 0;
  const auto result = run_sim_job(reg, slow, {}, cfg);
  ASSERT_EQ(result.io_log.size(), 1u);
  EXPECT_GT(result.makespan_seconds, 1.9);
}

TEST(TaskIo, LocalRunnerPrintsToStdoutWithoutCrashing) {
  TaskRegistry reg;
  const TaskId t = reg.add("t", [](Context& cx, Closure& c) {
    cx.print("local runner output path");
    cx.send(c.cont, Value(std::int64_t{7}));
  });
  LocalRunner runner(reg);
  EXPECT_EQ(runner.run(t, {}).as_int(), 7);
}

TEST(TaskIo, ThreadsRuntimePrintGoesToStdout) {
  TaskRegistry reg;
  const TaskId t = reg.add("t", [](Context& cx, Closure& c) {
    cx.print("threads runtime output path");
    cx.send(c.cont, Value(std::int64_t{7}));
  });
  ThreadsConfig cfg;
  cfg.workers = 2;
  ThreadsRuntime rt(reg, cfg);
  EXPECT_EQ(rt.run(t, {}).value.as_int(), 7);
}

TEST(MacroPolicies, LoadThresholdPolicyHarvestsIdleMachines) {
  TaskRegistry reg;
  apps::register_pfold(reg, /*sequential_monomers=*/6);
  MacroConfig cfg;
  cfg.seed = 7;
  cfg.clearinghouse.detect_failures = false;
  cfg.manager.logout_poll = 2 * sim::kSecond;
  cfg.manager.job_poll = sim::kSecond;
  cfg.manager.owner_poll = 200 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 0;
  cfg.worker.update_period = 2 * sim::kSecond;
  cfg.worker.max_failed_steals = 100;
  MacroCluster cluster(reg, cfg);
  // Permissive threshold: background load never blocks harvesting.
  cluster.add_workstation(
      OwnerTrace::always_idle(),
      std::make_unique<LoadBelowThreshold>(/*threshold=*/0.9,
                                           /*background_load=*/0.1,
                                           /*seed=*/1));
  cluster.add_workstation(
      OwnerTrace::always_idle(),
      std::make_unique<LoadBelowThreshold>(0.9, 0.1, 2));
  cluster.submit_job("pfold", "pfold.root", {Value(std::int64_t{13})}, 0);
  const auto records = cluster.run();
  EXPECT_TRUE(records[0].completed);
  EXPECT_EQ(apps::decode_histogram(records[0].result.as_blob()),
            apps::pfold_serial(13));
  EXPECT_GT(records[0].assignments, 0u);
}

TEST(MacroPolicies, StrictLoadThresholdKeepsMachinesOut) {
  TaskRegistry reg;
  apps::register_fib(reg, /*sequential_cutoff=*/12);
  MacroConfig cfg;
  cfg.seed = 11;
  cfg.clearinghouse.detect_failures = false;
  cfg.manager.logout_poll = 2 * sim::kSecond;
  cfg.manager.job_poll = sim::kSecond;
  cfg.manager.owner_poll = 200 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 0;
  MacroCluster cluster(reg, cfg);
  // Impossible threshold: machine is never deemed idle.
  cluster.add_workstation(
      OwnerTrace::always_idle(),
      std::make_unique<LoadBelowThreshold>(/*threshold=*/0.0,
                                           /*background_load=*/0.5, 1));
  cluster.submit_job("fib", "fib.task", {Value(std::int64_t{20})}, 0);
  const auto records = cluster.run();
  EXPECT_TRUE(records[0].completed);  // first worker finishes alone
  EXPECT_EQ(cluster.manager(0).stats().workers_started, 0u);
}

TEST(MacroPolicies, LateJobGetsPickedUpByWaitingManagers) {
  // Managers idle before any job exists must keep polling (the 30-second
  // loop) and pick the job up when it appears.
  TaskRegistry reg;
  apps::register_pfold(reg, 6);
  MacroConfig cfg;
  cfg.seed = 13;
  cfg.clearinghouse.detect_failures = false;
  cfg.manager.logout_poll = 2 * sim::kSecond;
  cfg.manager.job_poll = sim::kSecond;
  cfg.manager.owner_poll = 200 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 0;
  cfg.worker.max_failed_steals = 100;
  MacroCluster cluster(reg, cfg);
  cluster.add_workstation(OwnerTrace::always_idle());
  cluster.add_workstation(OwnerTrace::always_idle());
  // Job appears 10 simulated seconds in.
  cluster.submit_job("late", "pfold.root", {Value(std::int64_t{13})},
                     10 * sim::kSecond);
  const auto records = cluster.run();
  EXPECT_TRUE(records[0].completed);
  EXPECT_GE(sim::to_seconds(records[0].completed_at), 10.0);
  const auto q = cluster.jobq().stats();
  EXPECT_GT(q.empty_replies, 5u) << "managers polled an empty pool first";
}

}  // namespace
}  // namespace phish::rt
