// End-to-end tests of the simulated-distributed runtime: correctness of
// results across participant counts, locality statistics, determinism,
// adaptive parallelism (thief termination, owner reclaim with migration),
// and crash recovery.
#include "runtime/simdist/sim_cluster.hpp"

#include <gtest/gtest.h>

#include "apps/apps.hpp"

namespace phish::rt {
namespace {

SimJobConfig small_config(int participants, std::uint64_t seed = 1) {
  SimJobConfig cfg;
  cfg.participants = participants;
  cfg.seed = seed;
  cfg.clearinghouse.detect_failures = false;  // no crashes in these tests
  cfg.worker.heartbeat_period = 500 * sim::kMillisecond;
  return cfg;
}

TEST(SimCluster, SingleParticipantFib) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/8);
  const auto result = run_sim_job(reg, root, {Value(std::int64_t{18})},
                                  small_config(1));
  EXPECT_EQ(result.value.as_int(), apps::fib_serial(18));
  EXPECT_EQ(result.aggregate.tasks_stolen_by_me, 0u);
  EXPECT_GT(result.makespan_seconds, 0.0);
}

TEST(SimCluster, MultiParticipantFibCorrect) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/8);
  for (int p : {2, 4, 8}) {
    const auto result = run_sim_job(reg, root, {Value(std::int64_t{18})},
                                    small_config(p, 7));
    EXPECT_EQ(result.value.as_int(), apps::fib_serial(18)) << p;
    EXPECT_EQ(result.per_worker.size(), static_cast<std::size_t>(p));
  }
}

TEST(SimCluster, PfoldHistogramExact) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/6);
  const Histogram expected = apps::pfold_serial(12);
  const auto result = run_sim_job(reg, root, {Value(std::int64_t{12})},
                                  small_config(4, 3));
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()), expected);
}

TEST(SimCluster, NQueensAcrossParticipants) {
  TaskRegistry reg;
  const TaskId root = apps::register_nqueens(reg, /*sequential_rows=*/4);
  for (int p : {1, 3, 6}) {
    const auto result = run_sim_job(reg, root, {Value(std::int64_t{8})},
                                    small_config(p, 11));
    EXPECT_EQ(result.value.as_int(), 92) << p;
  }
}

TEST(SimCluster, SpeedupIsRealAndNearLinear) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  const auto r1 = run_sim_job(reg, root, {Value(std::int64_t{13})},
                              small_config(1, 5));
  const auto r4 = run_sim_job(reg, root, {Value(std::int64_t{13})},
                              small_config(4, 5));
  const double t1 = r1.participant_seconds[0];
  double sum4 = 0.0;
  for (double t : r4.participant_seconds) sum4 += t;
  const double s4 = 4.0 * t1 / sum4;
  EXPECT_GT(s4, 3.0) << "4 participants must give near-4x speedup";
  EXPECT_LE(s4, 4.3) << "and not more than ~4x";
}

TEST(SimCluster, LocalityStatsMatchPaperShape) {
  // Table 2's qualitative content: steals, non-local synchs, and messages
  // are orders of magnitude below tasks and synchronizations; the working
  // set stays small.  Heartbeats/updates off, as in the paper's prototype.
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/4);
  SimJobConfig cfg = small_config(8, 13);
  cfg.worker.heartbeat_period = 0;
  cfg.worker.update_period = 0;
  const auto r = run_sim_job(reg, root, {Value(std::int64_t{14})}, cfg);
  const auto& a = r.aggregate;
  EXPECT_GT(a.tasks_executed, 5'000u);
  EXPECT_LT(a.tasks_stolen_by_me * 20, a.tasks_executed);
  EXPECT_LT(a.non_local_synchs * 20, a.synchronizations);
  EXPECT_LT(a.max_tasks_in_use, 400u);
  EXPECT_LT(r.messages_sent * 5, a.tasks_executed);
}

TEST(SimCluster, FifoStealsTakeTasksNearTheBase) {
  // The communication-locality mechanism itself: under FIFO stealing the
  // average spawn-tree depth of stolen tasks sits well below the average
  // depth of executed tasks ("the task at the tail of the ready list is
  // often a task near the base of the tree").
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  const auto r = run_sim_job(reg, root, {Value(std::int64_t{14})},
                             small_config(8, 77));
  ASSERT_GT(r.aggregate.tasks_stolen_by_me, 5u);
  // pfold's tree is shallow (depth ~11), so require stolen tasks to sit a
  // solid level closer to the base than the executed average.
  EXPECT_LT(r.aggregate.avg_stolen_depth(),
            r.aggregate.avg_executed_depth() - 1.0);
}

TEST(SimCluster, DeterministicGivenSeed) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/6);
  auto run_once = [&] {
    TaskRegistry local;
    const TaskId r = apps::register_pfold(local, 6);
    return run_sim_job(local, r, {Value(std::int64_t{11})},
                       small_config(4, 99));
  };
  (void)root;
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.aggregate.tasks_stolen_by_me, b.aggregate.tasks_stolen_by_me);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.events_fired, b.events_fired);
}

TEST(SimCluster, DifferentSeedsDifferentSchedules) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, 6);
  const auto a = run_sim_job(reg, root, {Value(std::int64_t{11})},
                             small_config(4, 1));
  TaskRegistry reg2;
  const TaskId root2 = apps::register_pfold(reg2, 6);
  const auto b = run_sim_job(reg2, root2, {Value(std::int64_t{11})},
                             small_config(4, 2));
  // Same answer...
  EXPECT_EQ(a.value.as_blob(), b.value.as_blob());
  // ...but (almost surely) a different schedule.
  EXPECT_NE(a.events_fired, b.events_fired);
}

TEST(SimCluster, ThiefTerminationWhenParallelismShrinks) {
  // A nearly serial workload: extra participants fail their steals and must
  // terminate, returning their workstations (adaptive parallelism).
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/30);
  SimJobConfig cfg = small_config(4, 17);
  cfg.worker.max_failed_steals = 5;
  cfg.worker.steal_retry_delay = 5 * sim::kMillisecond;
  SimCluster cluster(reg, cfg);
  const auto result = cluster.run(root, {Value(std::int64_t{30})});
  EXPECT_EQ(result.value.as_int(), apps::fib_serial(30));
  int departed = 0;
  for (int i = 0; i < 4; ++i) {
    if (cluster.worker(i).depart_reason() ==
        SimWorker::DepartReason::kParallelismShrank) {
      ++departed;
    }
  }
  EXPECT_GE(departed, 2) << "idle thieves must give up and leave";
}

TEST(SimCluster, OwnerReclaimMigratesAndJobCompletes) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  const Histogram expected = apps::pfold_serial(13);
  SimJobConfig cfg = small_config(4, 23);
  SimCluster cluster(reg, cfg);
  // Reclaim worker 2 early, mid-computation.
  cluster.reclaim_at(2, 40 * sim::kMillisecond);
  const auto result = cluster.run(root, {Value(std::int64_t{13})});
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()), expected);
  EXPECT_EQ(cluster.worker(2).depart_reason(),
            SimWorker::DepartReason::kOwnerReclaimed);
  EXPECT_LT(cluster.worker(2).lifetime(), sim::from_seconds(2.0));
}

TEST(SimCluster, CrashRecoveryRedoesStolenWork) {
  // Worker 3 crashes mid-job.  The steal ledger on its victims must redo the
  // lost tasks; slot fill-flags make any duplicate results harmless; the
  // final histogram must still be exact.
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  const Histogram expected = apps::pfold_serial(13);
  SimJobConfig cfg = small_config(4, 31);
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 2 * sim::kSecond;
  cfg.clearinghouse.failure_check_period_ns = 500 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 200 * sim::kMillisecond;
  cfg.max_sim_time = 600 * sim::kSecond;
  SimCluster cluster(reg, cfg);
  // Crash worker 3 the moment it actually holds closures (everything it owns
  // descends from tasks it stole, so the steal ledgers cover all of it).
  std::function<void()> crash_when_loaded = [&] {
    SimWorker& w = cluster.worker(3);
    if (w.terminated()) return;
    if (w.state() == SimWorker::State::kActive && w.stats().tasks_in_use > 0) {
      w.crash();
      return;
    }
    cluster.simulator().schedule(sim::kMillisecond, crash_when_loaded);
  };
  cluster.simulator().schedule(25 * sim::kMillisecond, crash_when_loaded);
  const auto result = cluster.run(root, {Value(std::int64_t{13})});
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()), expected);
  ASSERT_EQ(cluster.worker(3).state(), SimWorker::State::kDead)
      << "the crash condition never triggered; workload too small?";
  // The clearinghouse must have declared the death, and the lost work must
  // have been redone from the steal ledgers.
  EXPECT_EQ(cluster.clearinghouse().declared_dead().size(), 1u);
  EXPECT_GE(result.aggregate.tasks_redone, 1u);
}

TEST(SimCluster, ParticipantLifetimesAreConsistent) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, 6);
  const auto r = run_sim_job(reg, root, {Value(std::int64_t{12})},
                             small_config(4, 41));
  ASSERT_EQ(r.participant_seconds.size(), 4u);
  for (double t : r.participant_seconds) {
    EXPECT_GT(t, 0.0);
    EXPECT_LE(t, r.makespan_seconds + 1.0);
  }
  EXPECT_GT(r.average_participant_seconds, 0.0);
}

TEST(SimCluster, IoReachesClearinghouse) {
  TaskRegistry reg;
  bool registered = false;
  // A task that emits output through the worker's I/O channel cannot easily
  // reach SimWorker::emit_io from Context, so exercise emit_io directly.
  const TaskId root = apps::register_fib(reg, 10);
  (void)registered;
  SimJobConfig cfg = small_config(2, 43);
  SimCluster cluster(reg, cfg);
  cluster.simulator().schedule(50 * sim::kMillisecond, [&] {
    cluster.worker(0).emit_io("progress: started");
  });
  const auto result = cluster.run(root, {Value(std::int64_t{12})});
  ASSERT_EQ(result.io_log.size(), 1u);
  EXPECT_EQ(result.io_log[0].text, "progress: started");
}

TEST(SimCluster, RejectsZeroParticipants) {
  TaskRegistry reg;
  EXPECT_THROW(SimCluster(reg, small_config(0)), std::invalid_argument);
}

TEST(SimCluster, RunIsSingleShot) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, 10);
  SimCluster cluster(reg, small_config(1));
  cluster.run(root, {Value(std::int64_t{10})});
  EXPECT_THROW(cluster.run(root, {Value(std::int64_t{10})}),
               std::logic_error);
}

TEST(SimCluster, TimeoutThrows) {
  TaskRegistry reg;
  // A task that never completes (waits on a join nobody fills).
  const TaskId stuck = reg.add("stuck", [](Context& cx, Closure& c) {
    cx.make_join(c.task, 1, c.cont);  // never filled
  });
  SimJobConfig cfg = small_config(1);
  cfg.max_sim_time = 2 * sim::kSecond;
  SimCluster cluster(reg, cfg);
  EXPECT_THROW(cluster.run(stuck, {}), std::runtime_error);
}

TEST(SimCluster, SlowNetworkStillCorrect) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, 6);
  SimJobConfig cfg = small_config(3, 51);
  cfg.net.latency = 20 * sim::kMillisecond;
  cfg.net.send_overhead = 2 * sim::kMillisecond;
  cfg.net.recv_overhead = 2 * sim::kMillisecond;
  const auto result = run_sim_job(reg, root, {Value(std::int64_t{11})}, cfg);
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(11));
}

TEST(SimCluster, LossyNetworkStillCorrect) {
  // Steal RPCs retransmit; argument sends ride the same sim network but with
  // drop_probability only applied to... all messages, so dataflow must
  // survive via RPC where used.  Argument messages are one-way; with loss
  // they can vanish, so this test keeps loss moderate and the job small: the
  // RPC layer's retransmission plus redo machinery must still converge when
  // only control traffic is lost.
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/30);
  SimJobConfig cfg = small_config(1, 61);
  cfg.net.drop_probability = 0.2;
  cfg.net.seed = 777;
  // Single participant: all dataflow is local; only RPC control traffic
  // (registration) crosses the lossy network.
  const auto result = run_sim_job(reg, root, {Value(std::int64_t{25})}, cfg);
  EXPECT_EQ(result.value.as_int(), apps::fib_serial(25));
}

}  // namespace
}  // namespace phish::rt
