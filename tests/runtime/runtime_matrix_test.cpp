// Runtime x application x worker-count matrix (TEST_P): every application
// produces its serial ground truth on every runtime at every parallelism.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "runtime/threads/threads_runtime.hpp"

namespace phish::rt {
namespace {

struct MatrixParams {
  const char* app;
  int workers;
};

void PrintTo(const MatrixParams& p, std::ostream* os) {
  *os << p.app << "/w" << p.workers;
}

class ThreadsMatrix : public ::testing::TestWithParam<MatrixParams> {};

TEST_P(ThreadsMatrix, AppProducesGroundTruth) {
  const MatrixParams p = GetParam();
  TaskRegistry reg;
  ThreadsConfig cfg;
  cfg.workers = p.workers;
  const std::string app = p.app;
  if (app == "fib") {
    const TaskId root = apps::register_fib(reg, 8);
    ThreadsRuntime rt(reg, cfg);
    EXPECT_EQ(rt.run(root, {Value(std::int64_t{19})}).value.as_int(),
              apps::fib_serial(19));
  } else if (app == "nqueens") {
    const TaskId root = apps::register_nqueens(reg, 4);
    ThreadsRuntime rt(reg, cfg);
    EXPECT_EQ(rt.run(root, {Value(std::int64_t{8})}).value.as_int(), 92);
  } else if (app == "pfold") {
    const TaskId root = apps::register_pfold(reg, 5);
    ThreadsRuntime rt(reg, cfg);
    EXPECT_EQ(apps::decode_histogram(
                  rt.run(root, {Value(std::int64_t{11})}).value.as_blob()),
              apps::pfold_serial(11));
  } else {  // ray
    const apps::Scene scene = apps::make_default_scene();
    const TaskId root = apps::register_ray(reg, scene, 32, 24, 64);
    ThreadsRuntime rt(reg, cfg);
    EXPECT_EQ(apps::decode_image_blob(rt.run(root, {}).value.as_blob()),
              apps::render_serial(scene, 32, 24));
  }
}

class SimdistMatrix : public ::testing::TestWithParam<MatrixParams> {};

TEST_P(SimdistMatrix, AppProducesGroundTruth) {
  const MatrixParams p = GetParam();
  TaskRegistry reg;
  SimJobConfig cfg;
  cfg.participants = p.workers;
  cfg.seed = 1234;
  cfg.clearinghouse.detect_failures = false;
  cfg.worker.heartbeat_period = 0;
  cfg.worker.update_period = 0;
  const std::string app = p.app;
  if (app == "fib") {
    const TaskId root = apps::register_fib(reg, 8);
    const auto r = run_sim_job(reg, root, {Value(std::int64_t{19})}, cfg);
    EXPECT_EQ(r.value.as_int(), apps::fib_serial(19));
  } else if (app == "nqueens") {
    const TaskId root = apps::register_nqueens(reg, 4);
    const auto r = run_sim_job(reg, root, {Value(std::int64_t{8})}, cfg);
    EXPECT_EQ(r.value.as_int(), 92);
  } else if (app == "pfold") {
    const TaskId root = apps::register_pfold(reg, 5);
    const auto r = run_sim_job(reg, root, {Value(std::int64_t{11})}, cfg);
    EXPECT_EQ(apps::decode_histogram(r.value.as_blob()),
              apps::pfold_serial(11));
  } else {  // ray: pixel blobs as dataflow over the simulated network
    const apps::Scene scene = apps::make_default_scene();
    const TaskId root = apps::register_ray(reg, scene, 32, 24, 64);
    const auto r = run_sim_job(reg, root, {}, cfg);
    EXPECT_EQ(apps::decode_image_blob(r.value.as_blob()),
              apps::render_serial(scene, 32, 24));
  }
}

constexpr MatrixParams kMatrix[] = {
    {"fib", 1},     {"fib", 3},     {"fib", 6},
    {"nqueens", 1}, {"nqueens", 3}, {"nqueens", 6},
    {"pfold", 1},   {"pfold", 3},   {"pfold", 6},
    {"ray", 1},     {"ray", 3},     {"ray", 6},
};

INSTANTIATE_TEST_SUITE_P(Sweep, ThreadsMatrix, ::testing::ValuesIn(kMatrix));
INSTANTIATE_TEST_SUITE_P(Sweep, SimdistMatrix, ::testing::ValuesIn(kMatrix));

}  // namespace
}  // namespace phish::rt
