// SpscRing: wraparound correctness, overflow drop-counting, non-consuming
// snapshots, and a live producer/consumer pair (the TSan build of this test
// is what certifies the release/acquire publication protocol).
#include "obs/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace phish::obs {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, PushDrainPreservesFifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 5u);
  std::vector<int> out;
  EXPECT_EQ(ring.drain(out), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapsAroundManyTimes) {
  // Cycle a tiny ring far past its capacity; the index mask must keep
  // mapping logical positions onto the same 4 slots without corruption.
  SpscRing<std::uint64_t> ring(4);
  std::vector<std::uint64_t> out;
  std::uint64_t next = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(ring.try_push(next++));
    ring.drain(out);
  }
  ASSERT_EQ(out.size(), 300u);
  for (std::uint64_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.pushed(), 300u);
}

TEST(SpscRing, OverflowDropsNewestAndCounts) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  // Ring full: pushes fail, are counted, and never overwrite old records.
  EXPECT_FALSE(ring.try_push(100));
  EXPECT_FALSE(ring.try_push(101));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.pushed(), 4u);
  std::vector<int> out;
  ring.drain(out);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  // Space freed: pushes succeed again, drop counter is cumulative.
  EXPECT_TRUE(ring.try_push(200));
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(SpscRing, SnapshotDoesNotConsume) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) ring.try_push(i);
  const std::vector<int> snap = ring.snapshot();
  EXPECT_EQ(snap, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(ring.size(), 3u);  // still there
  std::vector<int> out;
  EXPECT_EQ(ring.drain(out), 3u);
  EXPECT_EQ(out, snap);
}

TEST(SpscRing, ConcurrentProducerConsumerLosesNothing) {
  // One producer, one consumer, live.  Every accepted record must come out
  // exactly once and in order; drops are only ever the counted kind.
  constexpr std::uint64_t kTotal = 200'000;
  SpscRing<std::uint64_t> ring(1024);
  std::vector<std::uint64_t> got;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i) {
      while (!ring.try_push(i)) {
        // Full: spin until the consumer catches up (the tracer would drop
        // here instead; the test wants every record so it retries).
      }
    }
  });
  while (got.size() < kTotal) ring.drain(got);
  producer.join();
  ASSERT_EQ(got.size(), kTotal);
  for (std::uint64_t i = 0; i < kTotal; ++i) ASSERT_EQ(got[i], i);
}

TEST(SpscRing, ConcurrentSnapshotSeesOnlyPublishedRecords) {
  // Snapshot while the producer runs: under TSan this certifies that the
  // consumer only ever reads fully-written slots (release store of head,
  // acquire load before copying).
  constexpr std::uint64_t kTotal = 100'000;
  SpscRing<std::uint64_t> ring(1u << 17);  // big enough: no drops
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i) ring.try_push(i);
  });
  for (int i = 0; i < 50; ++i) {
    const std::vector<std::uint64_t> snap = ring.snapshot();
    for (std::uint64_t j = 0; j < snap.size(); ++j) ASSERT_EQ(snap[j], j);
  }
  producer.join();
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<std::uint64_t> all = ring.snapshot();
  ASSERT_EQ(all.size(), kTotal);
}

}  // namespace
}  // namespace phish::obs
