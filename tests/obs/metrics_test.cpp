// Metrics registry: striped counters under contention, log2 histogram
// bucketing and quantiles, snapshot/merge, and reset keeping cached handles
// valid (benches resolve once and reuse across reps).
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace phish::obs {
namespace {

TEST(Counter, CountsAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

TEST(Histogram, BucketOfIsFloorLog2) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Histogram::bucket_of(3), 1u);
  EXPECT_EQ(Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Histogram::bucket_of(1023), 9u);
  EXPECT_EQ(Histogram::bucket_of(1024), 10u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 63u);
}

TEST(Histogram, SummarizeAndQuantiles) {
  Histogram h;
  // 90 small samples and 10 large ones: p50 must land in the small bucket,
  // p99 in the large one.
  for (int i = 0; i < 90; ++i) h.observe(100);    // bucket 6, bound 127
  for (int i = 0; i < 10; ++i) h.observe(10'000);  // bucket 13
  const HistogramSummary s = h.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 90u * 100 + 10u * 10'000);
  EXPECT_DOUBLE_EQ(s.mean(), (90.0 * 100 + 10.0 * 10'000) / 100.0);
  EXPECT_LT(s.quantile(0.50), 256u);
  EXPECT_GE(s.quantile(0.99), 8192u);
  EXPECT_GE(s.quantile(1.0), s.quantile(0.5));
}

TEST(Histogram, SummaryMergeAddsCounts) {
  Histogram a, b;
  a.observe(10);
  b.observe(10);
  b.observe(1000);
  HistogramSummary sa = a.summarize();
  sa.merge(b.summarize());
  EXPECT_EQ(sa.count, 3u);
  EXPECT_EQ(sa.sum, 1020u);
  EXPECT_EQ(sa.buckets[Histogram::bucket_of(10)], 2u);
  EXPECT_EQ(sa.buckets[Histogram::bucket_of(1000)], 1u);
}

TEST(Histogram, ObserveFromManyThreads) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.observe(64);
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSummary s = h.summarize();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.sum, kThreads * kPerThread * 64);
}

TEST(Registry, HandlesAreStableAcrossLookupsAndReset) {
  Registry reg;
  Counter& c1 = reg.counter("steals");
  Counter& c2 = reg.counter("steals");
  EXPECT_EQ(&c1, &c2);  // same metric, not a copy
  c1.inc(5);
  reg.reset();
  EXPECT_EQ(c2.value(), 0u);
  c1.inc(3);  // the pre-reset handle still works
  EXPECT_EQ(reg.counter("steals").value(), 3u);
}

TEST(Registry, SnapshotMergesEverything) {
  Registry reg;
  reg.counter("a").inc(7);
  reg.gauge("depth").set(-2);
  reg.histogram("lat").observe(100);
  reg.histogram("lat").observe(200);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a"), 7u);
  EXPECT_EQ(snap.gauges.at("depth"), -2);
  EXPECT_EQ(snap.histograms.at("lat").count, 2u);
  EXPECT_EQ(snap.histograms.at("lat").sum, 300u);
}

TEST(Registry, GlobalIsASingleton) {
  Registry& a = Registry::global();
  Registry& b = Registry::global();
  EXPECT_EQ(&a, &b);
  // The runtimes resolve this handle; creating it here must be idempotent.
  Histogram& h = a.histogram("steal.latency_ns");
  EXPECT_EQ(&h, &b.histogram("steal.latency_ns"));
}

TEST(Registry, ConcurrentLookupAndUpdate) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.counter("shared").inc();
        reg.histogram("h").observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared").value(), kThreads * 1000u);
  EXPECT_EQ(reg.histogram("h").summarize().count, kThreads * 1000u);
}

}  // namespace
}  // namespace phish::obs
