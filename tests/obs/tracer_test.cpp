// Tracer: shard identity, deterministic collect() ordering, the runtime
// enable switch, drop accounting, and a live multi-producer collect (the
// TSan build certifies producers + the collecting consumer race-free).
#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace phish::obs {
namespace {

// Tests below assert on emitted events; a PHISH_OBS_TRACING=0 build
// compiles every emit away, so they skip themselves there.
#define SKIP_WITHOUT_COMPILED_TRACING() \
  do {                                  \
    if (!PHISH_OBS_TRACING) GTEST_SKIP() << "built with PHISH_OBS_TRACING=0"; \
  } while (0)

TEST(Tracer, ShardIsStablePerTid) {
  Tracer tracer;
  TraceShard* a = tracer.shard(3);
  TraceShard* b = tracer.shard(3);
  TraceShard* c = tracer.shard(7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a->tid(), 3);
  EXPECT_EQ(c->tid(), 7);
  EXPECT_EQ(tracer.shard_count(), 2u);
}

TEST(Tracer, CollectSortsAcrossShards) {
  SKIP_WITHOUT_COMPILED_TRACING();
  Tracer tracer;
  TraceShard* w0 = tracer.shard(0);
  TraceShard* w1 = tracer.shard(1);
  // Interleave timestamps across two shards; collect() must return global
  // time order regardless of which ring a record sits in.
  w1->emit(make_event(EventType::kSpawn, 1, 200));
  w0->emit(make_event(EventType::kSpawn, 0, 100));
  w0->emit(make_event(EventType::kExecute, 0, 300));
  w1->emit(make_event(EventType::kStealRequest, 1, 150));
  const std::vector<TraceEvent> events = tracer.collect();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].t_start, 100u);
  EXPECT_EQ(events[1].t_start, 150u);
  EXPECT_EQ(events[2].t_start, 200u);
  EXPECT_EQ(events[3].t_start, 300u);
  // collect() drains: a second collect sees only newer events.
  EXPECT_TRUE(tracer.collect().empty());
}

TEST(Tracer, TiesBreakDeterministically) {
  SKIP_WITHOUT_COMPILED_TRACING();
  Tracer tracer;
  tracer.shard(2)->emit(make_event(EventType::kSpawn, 2, 50));
  tracer.shard(1)->emit(make_event(EventType::kSpawn, 1, 50));
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].worker, 1);  // same t_start: worker breaks the tie
  EXPECT_EQ(events[1].worker, 2);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  SKIP_WITHOUT_COMPILED_TRACING();
  Tracer tracer;
  TraceShard* shard = tracer.shard(0);
  tracer.set_enabled(false);
  EXPECT_FALSE(shard->enabled());
  shard->emit(make_event(EventType::kSpawn, 0, 1));
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.total_dropped(), 0u);  // suppressed, not dropped
  tracer.set_enabled(true);
  EXPECT_TRUE(shard->enabled());
  shard->emit(make_event(EventType::kSpawn, 0, 2));
  EXPECT_EQ(tracer.collect().size(), 1u);
}

TEST(Tracer, OverflowCountsAcrossShards) {
  SKIP_WITHOUT_COMPILED_TRACING();
  Tracer tracer(/*shard_capacity=*/4);
  TraceShard* a = tracer.shard(0);
  TraceShard* b = tracer.shard(1);
  for (int i = 0; i < 6; ++i) {
    a->emit(make_event(EventType::kSpawn, 0, static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < 5; ++i) {
    b->emit(make_event(EventType::kSpawn, 1, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(a->dropped(), 2u);
  EXPECT_EQ(b->dropped(), 1u);
  EXPECT_EQ(tracer.total_dropped(), 3u);
  // What survived is the oldest (drop-newest policy), still in order.
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events[0].t_start, 0u);
}

TEST(Tracer, ConcurrentProducersAndLiveCollect) {
  SKIP_WITHOUT_COMPILED_TRACING();
  // Each producer thread owns one shard (the SPSC contract); the main
  // thread collects while they run.  Nothing may be lost or duplicated.
  constexpr int kWorkers = 4;
  constexpr std::uint64_t kPerWorker = 50'000;
  Tracer tracer(/*shard_capacity=*/1u << 17);  // no drops wanted
  std::vector<TraceShard*> shards;
  shards.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    shards.push_back(tracer.shard(static_cast<std::uint16_t>(w)));
  }
  std::atomic<int> live{kWorkers};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWorker; ++i) {
        shards[w]->emit(make_event(
            EventType::kSpawn, static_cast<std::uint16_t>(w), i));
      }
      live.fetch_sub(1);
    });
  }
  std::vector<TraceEvent> all;
  while (live.load() > 0) {
    const auto batch = tracer.collect();
    all.insert(all.end(), batch.begin(), batch.end());
  }
  for (auto& t : threads) t.join();
  const auto tail = tracer.collect();
  all.insert(all.end(), tail.begin(), tail.end());
  EXPECT_EQ(tracer.total_dropped(), 0u);
  ASSERT_EQ(all.size(), kWorkers * kPerWorker);
  // Per worker, events must arrive exactly once and in emission order.
  std::vector<std::uint64_t> next(kWorkers, 0);
  for (const TraceEvent& e : all) {
    ASSERT_LT(e.worker, kWorkers);
    ASSERT_EQ(e.t_start, next[e.worker]) << "worker " << e.worker;
    ++next[e.worker];
  }
}

}  // namespace
}  // namespace phish::obs
