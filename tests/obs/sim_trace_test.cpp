// End-to-end observability on the simulated-distributed runtime:
//
//   * the trace's steal/migrate/redo/execute events must agree EXACTLY with
//     the WorkerStats counters the job reports (the trace is evidence, not
//     an estimate);
//   * two replays of the same seed must export byte-identical Chrome JSON
//     (simdist is deterministic, collect() orders deterministically, and the
//     JSON writer is format-stable — any diff is a real regression);
//   * the exported file must have the Perfetto trace-event shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "obs/trace_file.hpp"
#include "runtime/simdist/sim_cluster.hpp"

namespace phish::rt {
namespace {

// Tests below assert on emitted events; a PHISH_OBS_TRACING=0 build
// compiles every emit away, so they skip themselves there.
#define SKIP_WITHOUT_COMPILED_TRACING() \
  do {                                  \
    if (!PHISH_OBS_TRACING) GTEST_SKIP() << "built with PHISH_OBS_TRACING=0"; \
  } while (0)

SimJobConfig traced_config(int participants, std::uint64_t seed,
                           obs::Tracer* tracer) {
  SimJobConfig cfg;
  cfg.participants = participants;
  cfg.seed = seed;
  cfg.clearinghouse.detect_failures = false;
  cfg.worker.heartbeat_period = 500 * sim::kMillisecond;
  cfg.tracer = tracer;
  return cfg;
}

std::map<obs::EventType, std::uint64_t> count_by_type(
    const std::vector<obs::TraceEvent>& events) {
  std::map<obs::EventType, std::uint64_t> counts;
  for (const obs::TraceEvent& e : events) {
    ++counts[static_cast<obs::EventType>(e.type)];
  }
  return counts;
}

TEST(SimTrace, EventCountsMatchWorkerStatsExactly) {
  SKIP_WITHOUT_COMPILED_TRACING();
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  obs::Tracer tracer;
  const auto result =
      run_sim_job(reg, root, {Value(std::int64_t{13})},
                  traced_config(4, /*seed=*/17, &tracer));
  ASSERT_EQ(tracer.total_dropped(), 0u)
      << "ring overflow would make the cross-check approximate";
  const auto events = tracer.collect();
  ASSERT_FALSE(events.empty());
  auto counts = count_by_type(events);
  const WorkerStats& agg = result.aggregate;
  EXPECT_EQ(counts[obs::EventType::kExecute], agg.tasks_executed);
  EXPECT_EQ(counts[obs::EventType::kSpawn], agg.tasks_spawned);
  EXPECT_EQ(counts[obs::EventType::kStealSuccess], agg.tasks_stolen_by_me);
  EXPECT_EQ(counts[obs::EventType::kStealServed], agg.tasks_stolen_from_me);
  EXPECT_EQ(counts[obs::EventType::kStealRequest], agg.steal_requests_sent);
  EXPECT_EQ(counts[obs::EventType::kStealFail], agg.failed_steals);
  EXPECT_EQ(counts[obs::EventType::kArgSend], agg.synchronizations);
  // A 4-participant pfold job must actually exercise the steal path for the
  // cross-check to mean anything.
  EXPECT_GT(agg.tasks_stolen_by_me, 0u);
  // The RPC layer traced real traffic on both clearinghouse and workers.
  EXPECT_GT(counts[obs::EventType::kRpcSend], 0u);
  EXPECT_GT(counts[obs::EventType::kRpcRecv], 0u);
}

TEST(SimTrace, ExecuteSpansCarryVirtualDurations) {
  SKIP_WITHOUT_COMPILED_TRACING();
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/8);
  obs::Tracer tracer;
  const auto result = run_sim_job(reg, root, {Value(std::int64_t{16})},
                                  traced_config(2, 5, &tracer));
  (void)result;
  const auto events = tracer.collect();
  std::uint64_t spans = 0;
  for (const obs::TraceEvent& e : events) {
    if (static_cast<obs::EventType>(e.type) != obs::EventType::kExecute) {
      continue;
    }
    ++spans;
    // Virtual-clock domain: every execution takes simulated time, and the
    // span end is the simulated completion instant, not a wall-clock read.
    EXPECT_GT(e.t_end, e.t_start);
  }
  EXPECT_GT(spans, 0u);
}

TEST(SimTrace, ReclaimTraceMatchesMigrationCounters) {
  SKIP_WITHOUT_COMPILED_TRACING();
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  obs::Tracer tracer;
  SimJobConfig cfg = traced_config(4, 23, &tracer);
  SimCluster cluster(reg, cfg);
  cluster.reclaim_at(2, 40 * sim::kMillisecond);
  const auto result = cluster.run(root, {Value(std::int64_t{13})});
  ASSERT_EQ(cluster.worker(2).depart_reason(),
            SimWorker::DepartReason::kOwnerReclaimed);
  ASSERT_EQ(tracer.total_dropped(), 0u);
  const auto events = tracer.collect();
  auto counts = count_by_type(events);
  EXPECT_GE(counts[obs::EventType::kReclaim], 1u);
  // Each departure logs one kMigrateOut whose arg is the drained closure
  // count; the sum must equal the stats counter, and every drained closure
  // is installed somewhere as a kMigrateIn.
  std::uint64_t drained = 0;
  for (const obs::TraceEvent& e : events) {
    if (static_cast<obs::EventType>(e.type) == obs::EventType::kMigrateOut) {
      drained += e.arg;
    }
  }
  EXPECT_EQ(drained, result.aggregate.tasks_migrated_out);
  EXPECT_EQ(counts[obs::EventType::kMigrateIn],
            result.aggregate.tasks_migrated_out);
}

TEST(SimTrace, CrashTraceRecordsRedo) {
  SKIP_WITHOUT_COMPILED_TRACING();
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  obs::Tracer tracer;
  SimJobConfig cfg = traced_config(4, 31, &tracer);
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 2 * sim::kSecond;
  cfg.clearinghouse.failure_check_period_ns = 500 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 200 * sim::kMillisecond;
  cfg.max_sim_time = 600 * sim::kSecond;
  SimCluster cluster(reg, cfg);
  std::function<void()> crash_when_loaded = [&] {
    SimWorker& w = cluster.worker(3);
    if (w.terminated()) return;
    if (w.state() == SimWorker::State::kActive && w.stats().tasks_in_use > 0) {
      w.crash();
      return;
    }
    cluster.simulator().schedule(sim::kMillisecond, crash_when_loaded);
  };
  cluster.simulator().schedule(25 * sim::kMillisecond, crash_when_loaded);
  const auto result = cluster.run(root, {Value(std::int64_t{13})});
  ASSERT_EQ(cluster.worker(3).state(), SimWorker::State::kDead);
  ASSERT_EQ(tracer.total_dropped(), 0u);
  auto counts = count_by_type(tracer.collect());
  EXPECT_EQ(counts[obs::EventType::kCrash], 1u);
  EXPECT_EQ(counts[obs::EventType::kRedo], result.aggregate.tasks_redone);
  EXPECT_GE(result.aggregate.tasks_redone, 1u);
}

/// Reclaim worker 2 early (its cargo migrates to a seeded successor and the
/// Clearinghouse keeps the durability-ledger entry), then crash every other
/// non-root worker mid-job: whoever the successor was, the entry orphans and
/// the coordinator redelivers the cargo snapshot — the kMigrationRedo /
/// kMigrateRereg composition.
obs::TraceData traced_migration_redo_replay(std::uint64_t seed,
                                            WorkerStats* agg_out) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  obs::Tracer tracer;
  SimJobConfig cfg = traced_config(4, seed, &tracer);
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 1'500 * sim::kMillisecond;
  cfg.clearinghouse.failure_check_period_ns = 300 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 150 * sim::kMillisecond;
  cfg.worker.charge_unit = 2 * sim::kMillisecond;  // outlast the crashes
  cfg.max_sim_time = 3'600 * sim::kSecond;
  SimCluster cluster(reg, cfg);
  cluster.reclaim_at(2, 40 * sim::kMillisecond);
  cluster.simulator().schedule_at(2 * sim::kSecond, [&cluster] {
    for (int w : {1, 3}) {
      SimWorker& s = cluster.worker(w);
      if (!s.terminated() && s.state() == SimWorker::State::kActive) {
        s.crash();
      }
    }
  });
  const auto result = cluster.run(root, {Value(std::int64_t{13})});
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(13));
  if (agg_out != nullptr) *agg_out = result.aggregate;
  obs::TraceData data;
  data.runtime = "simdist";
  data.clock = obs::ClockDomain::kVirtual;
  data.seed = seed;
  data.participants = 4;
  data.take_from(tracer);
  return data;
}

TEST(SimTrace, MigrationRedoEventsAreTracedAndReplayByteStable) {
  SKIP_WITHOUT_COMPILED_TRACING();
  // Seed 26's steal pattern hands the reclaimed cargo to a worker that the
  // 2 s crash wave kills (a seed whose successor is worker 0 would make the
  // redelivery assertions vacuous).
  WorkerStats agg;
  const obs::TraceData first = traced_migration_redo_replay(26, &agg);
  auto counts = count_by_type(first.events);
  // The handshake left a ledger entry; the holder's crash must have
  // redelivered it (kMigrationRedo at the new holder, kMigrateRereg when the
  // ledgered cargo installed).
  EXPECT_GE(counts[obs::EventType::kMigrateRereg], 1u)
      << "no successor ever re-registered ledgered cargo";
  EXPECT_GE(counts[obs::EventType::kMigrationRedo], 1u)
      << "the coordinator never redelivered the orphaned ledger entry";
  // tasks_migration_redone also counts thief-dead ledger adoptions (traced
  // as kRedo), so the event count bounds the stat from below.
  EXPECT_LE(counts[obs::EventType::kMigrationRedo],
            agg.tasks_migration_redone);
  // Golden-replay property: the same seed re-runs to a byte-identical
  // export, migration-durability events included.
  const obs::TraceData second = traced_migration_redo_replay(26, nullptr);
  EXPECT_EQ(obs::chrome_trace_json(first), obs::chrome_trace_json(second))
      << "simdist replay or exporter nondeterminism";
}

obs::TraceData traced_replay(std::uint64_t seed) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  obs::Tracer tracer;
  const auto result = run_sim_job(reg, root, {Value(std::int64_t{12})},
                                  traced_config(4, seed, &tracer));
  (void)result;
  obs::TraceData data;
  data.runtime = "simdist";
  data.clock = obs::ClockDomain::kVirtual;
  data.seed = seed;
  data.participants = 4;
  data.take_from(tracer);
  return data;
}

TEST(SimTrace, ChromeExportIsByteStableAcrossReplays) {
  // The golden-file property: same seed, two independent clusters, the
  // exported trace.json must match byte for byte.
  const std::string first = obs::chrome_trace_json(traced_replay(99));
  const std::string second = obs::chrome_trace_json(traced_replay(99));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "simdist replay or exporter nondeterminism";
  // And a different seed must actually change the trace (the comparison
  // above is not vacuous).
  EXPECT_NE(first, obs::chrome_trace_json(traced_replay(100)));
  // Perfetto shape.
  EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(first.find("\"clock_domain\":\"virtual\""), std::string::npos);
}

TEST(SimTrace, TraceFileRoundTripsThroughDisk) {
  const obs::TraceData data = traced_replay(7);
  const std::string path = ::testing::TempDir() + "/phish_sim_trace.phtrace";
  ASSERT_TRUE(obs::write_trace_file(path, data));
  const auto read = obs::read_trace_file(path);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->events.size(), data.events.size());
  EXPECT_EQ(read->seed, 7u);
  EXPECT_EQ(read->clock, obs::ClockDomain::kVirtual);
  std::remove(path.c_str());
}

TEST(SimTrace, DisabledTracerLeavesJobUntouched) {
  // Runtime kill-switch: attach a tracer but disable it; the job must run
  // identically and the trace must stay empty.
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  obs::Tracer tracer;
  tracer.set_enabled(false);
  const auto result = run_sim_job(reg, root, {Value(std::int64_t{12})},
                                  traced_config(4, 3, &tracer));
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(12));
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.total_dropped(), 0u);
}

}  // namespace
}  // namespace phish::rt
