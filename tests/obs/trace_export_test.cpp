// Trace container + exporters: binary round-trip, Chrome JSON determinism
// and shape, and the BENCH_*.json report format.
#include "obs/trace_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/bench_report.hpp"

namespace phish::obs {
namespace {

TraceData sample_trace() {
  TraceData data;
  data.runtime = "simdist";
  data.clock = ClockDomain::kVirtual;
  data.seed = 0xfeed;
  data.participants = 2;
  data.dropped = 1;
  TraceEvent spawn = make_event(EventType::kSpawn, 1, 100);
  spawn.closure_origin = 2;
  spawn.closure_seq = 7;
  spawn.arg = 3;
  TraceEvent exec = make_event(EventType::kExecute, 1, 200);
  exec.t_end = 450;
  data.events = {spawn, exec};
  return data;
}

TEST(TraceFile, EncodeDecodeRoundTrip) {
  const TraceData data = sample_trace();
  const auto decoded = decode_trace(encode_trace(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->runtime, "simdist");
  EXPECT_EQ(decoded->clock, ClockDomain::kVirtual);
  EXPECT_EQ(decoded->seed, 0xfeedu);
  EXPECT_EQ(decoded->participants, 2u);
  EXPECT_EQ(decoded->dropped, 1u);
  ASSERT_EQ(decoded->events.size(), 2u);
  EXPECT_EQ(decoded->events[0].closure_seq, 7u);
  EXPECT_EQ(decoded->events[0].closure_origin, 2u);
  EXPECT_EQ(decoded->events[0].arg, 3u);
  EXPECT_EQ(decoded->events[1].t_end, 450u);
  EXPECT_EQ(decoded->events[1].type,
            static_cast<std::uint16_t>(EventType::kExecute));
}

TEST(TraceFile, RejectsGarbage) {
  Bytes junk;
  for (int i = 0; i < 64; ++i) junk.push_back(static_cast<std::uint8_t>(i));
  EXPECT_FALSE(decode_trace(junk).has_value());
  EXPECT_FALSE(decode_trace(Bytes{}).has_value());
}

TEST(TraceFile, FileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/phish_obs_roundtrip.phtrace";
  const TraceData data = sample_trace();
  ASSERT_TRUE(write_trace_file(path, data));
  const auto read = read_trace_file(path);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->runtime, data.runtime);
  EXPECT_EQ(read->events.size(), data.events.size());
  std::remove(path.c_str());
  EXPECT_FALSE(read_trace_file(path).has_value());
}

TEST(ChromeTrace, HasTraceEventShape) {
  const std::string json = chrome_trace_json(sample_trace());
  // Loadable by Perfetto/chrome://tracing: a traceEvents array with "ph"
  // phases, complete ("X") spans for kExecute, instants ("i") otherwise.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("execute"), std::string::npos);
  EXPECT_NE(json.find("spawn"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ChromeTrace, ByteDeterministicForSameData) {
  EXPECT_EQ(chrome_trace_json(sample_trace()),
            chrome_trace_json(sample_trace()));
}

TEST(BenchReport, JsonCarriesProvenanceAndFields) {
  BenchReport report("unit_test");
  report.set("runtime", "simdist");
  report.set("participants", 4);
  report.set("seconds", 1.5);
  report.set("ok", true);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"runtime\":\"simdist\""), std::string::npos);
  EXPECT_NE(json.find("\"participants\":4"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(std::string(BenchReport::git_sha()), "");
}

TEST(BenchReport, HistogramAndMetricsSections) {
  Registry reg;
  reg.counter("tasks").inc(9);
  reg.histogram("lat").observe(1000);
  BenchReport report("unit_test2");
  report.set_histogram("steal_latency", reg.histogram("lat").summarize());
  report.set_metrics(reg.snapshot());
  const std::string json = report.json();
  EXPECT_NE(json.find("steal_latency"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"tasks\":9"), std::string::npos);
}

TEST(BenchReport, PathHonorsBenchDirEnv) {
  BenchReport report("envtest");
  ASSERT_EQ(setenv("PHISH_BENCH_DIR", "/tmp/phish-bench", 1), 0);
  EXPECT_EQ(report.path(), "/tmp/phish-bench/BENCH_envtest.json");
  unsetenv("PHISH_BENCH_DIR");
  EXPECT_EQ(report.path(), "BENCH_envtest.json");
}

}  // namespace
}  // namespace phish::obs
