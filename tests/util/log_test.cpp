#include "util/log.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace phish {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogTest() : saved_(log_threshold()) {}
  ~LogTest() override { set_log_threshold(saved_); }
  LogLevel saved_;
};

TEST_F(LogTest, ThresholdRoundTrip) {
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  set_log_threshold(LogLevel::kTrace);
  EXPECT_EQ(log_threshold(), LogLevel::kTrace);
}

TEST_F(LogTest, SuppressedMessagesDoNotFormat) {
  set_log_threshold(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  PHISH_LOG(kDebug) << "value=" << expensive();
  // The stream argument IS evaluated (C++ semantics), but nothing is
  // emitted; what we can assert is that logging below threshold is safe.
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, EmittingAboveThresholdDoesNotCrash) {
  set_log_threshold(LogLevel::kTrace);
  PHISH_LOG(kTrace) << "trace line " << 1;
  PHISH_LOG(kError) << "error line " << 2.5 << " mixed " << "types";
  SUCCEED();
}

TEST_F(LogTest, ConcurrentEmissionIsSafe) {
  set_log_threshold(LogLevel::kOff);  // keep stderr clean; path still runs
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        PHISH_LOG(kError) << "thread " << t << " iteration " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
  SUCCEED();
}

}  // namespace
}  // namespace phish
