#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace phish {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownSequence) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  Xoshiro256 rng(42);
  StreamingStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100.0 - 50.0;
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StreamingStats, MergeWithEmptyIsIdentity) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);

  StreamingStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Histogram, CountsAndTotal) {
  Histogram h;
  h.add(3);
  h.add(3);
  h.add(-1);
  h.add(7, 10);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(-1), 1u);
  EXPECT_EQ(h.count(7), 10u);
  EXPECT_EQ(h.count(999), 0u);
  EXPECT_EQ(h.total(), 13u);
  EXPECT_EQ(h.distinct(), 3u);
}

TEST(Histogram, MergePreservesTotals) {
  Histogram a, b;
  a.add(1, 5);
  a.add(2, 2);
  b.add(2, 3);
  b.add(9, 1);
  a.merge(b);
  EXPECT_EQ(a.count(1), 5u);
  EXPECT_EQ(a.count(2), 5u);
  EXPECT_EQ(a.count(9), 1u);
  EXPECT_EQ(a.total(), 11u);
}

TEST(Histogram, EqualityIsStructural) {
  Histogram a, b;
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(1);
  EXPECT_EQ(a, b);
  b.add(1);
  EXPECT_FALSE(a == b);
}

TEST(Histogram, ToStringIsSortedByKey) {
  Histogram h;
  h.add(5);
  h.add(-3, 2);
  h.add(0);
  EXPECT_EQ(h.to_string(), "-3:2 0:1 5:1");
}

TEST(Log2Histogram, BucketOf) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3);
  EXPECT_EQ(Log2Histogram::bucket_of(1024), 11);
  EXPECT_EQ(Log2Histogram::bucket_of(1ULL << 63), 64);
  EXPECT_LT(Log2Histogram::bucket_of(~0ULL), Log2Histogram::kBuckets);
}

TEST(Log2Histogram, TotalAndQuantile) {
  Log2Histogram h;
  for (std::uint64_t i = 0; i < 100; ++i) h.add(i);
  EXPECT_EQ(h.total(), 100u);
  // Median of 0..99 is <= 63 (bucket upper bound for bucket of ~50).
  EXPECT_LE(h.quantile_upper_bound(0.5), 127u);
  EXPECT_GE(h.quantile_upper_bound(0.99), 63u);
}

}  // namespace
}  // namespace phish
