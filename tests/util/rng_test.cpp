#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace phish {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownVector) {
  // Reference values for splitmix64 with seed 0 (widely published).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Mix64, IsPureFunction) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound) << "bound=" << bound;
    }
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, RangeIsInclusive) {
  Xoshiro256 rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all five values should appear";
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Xoshiro256, ChanceFrequencyMatchesP) {
  Xoshiro256 rng(29);
  const int n = 50000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Xoshiro256, ExponentialHasRequestedMean) {
  Xoshiro256 rng(31);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(3.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Xoshiro256, ForkIsIndependentAndReproducible) {
  Xoshiro256 parent(99);
  Xoshiro256 child1 = parent.fork(1);
  Xoshiro256 child1_again = Xoshiro256(99).fork(1);
  Xoshiro256 child2 = parent.fork(2);
  EXPECT_EQ(child1.next(), child1_again.next());
  EXPECT_NE(child1.next(), child2.next());
}

TEST(Xoshiro256, UniformVictimSelectionIsRoughlyUniform) {
  // Mirrors how the micro scheduler picks steal victims.
  Xoshiro256 rng(1234);
  constexpr int kVictims = 8;
  std::vector<int> counts(kVictims, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(kVictims)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / kVictims, 0.01);
  }
}

}  // namespace
}  // namespace phish
