#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace phish {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  Flags f = make({"--workers=8", "--name=pfold"});
  EXPECT_EQ(f.get_int("workers", 1), 8);
  EXPECT_EQ(f.get_string("name", ""), "pfold");
}

TEST(Flags, SpaceSyntax) {
  Flags f = make({"--workers", "16"});
  EXPECT_EQ(f.get_int("workers", 1), 16);
}

TEST(Flags, BareBooleanFlag) {
  Flags f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=off"}).get_bool("x", true));
  EXPECT_THROW(make({"--x=maybe"}).get_bool("x", true), std::invalid_argument);
}

TEST(Flags, Defaults) {
  Flags f = make({});
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_EQ(f.get_string("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, DoubleParsing) {
  Flags f = make({"--p=0.125"});
  EXPECT_DOUBLE_EQ(f.get_double("p", 0.0), 0.125);
  EXPECT_THROW(make({"--p=abc"}).get_double("p", 0.0), std::invalid_argument);
}

TEST(Flags, IntRejectsGarbage) {
  EXPECT_THROW(make({"--n=12x"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make({"--n="}).get_int("n", 0), std::invalid_argument);
}

TEST(Flags, NegativeIntegers) {
  // "--n -5": -5 does not start with "--" so it is consumed as the value.
  Flags f = make({"--n", "-5"});
  EXPECT_EQ(f.get_int("n", 0), -5);
}

TEST(Flags, IntList) {
  Flags f = make({"--workers=1,2,4,8,16"});
  const std::vector<std::int64_t> expected{1, 2, 4, 8, 16};
  EXPECT_EQ(f.get_int_list("workers", {}), expected);
}

TEST(Flags, IntListDefault) {
  Flags f = make({});
  const std::vector<std::int64_t> dflt{3, 5};
  EXPECT_EQ(f.get_int_list("workers", dflt), dflt);
}

TEST(Flags, Positional) {
  Flags f = make({"input.txt", "--n=1", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(Flags, UnusedDetectsTypos) {
  Flags f = make({"--workrs=8", "--seed=1"});
  (void)f.get_int("seed", 0);
  const auto unused = f.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "workrs");
}

TEST(Flags, LastValueWins) {
  Flags f = make({"--n=1", "--n=2"});
  EXPECT_EQ(f.get_int("n", 0), 2);
}

}  // namespace
}  // namespace phish
