#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace phish {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"app", "slowdown"});
  t.add_row({"fib", "5.90"});
  t.add_row({"ray", "1.04"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("app"), std::string::npos);
  EXPECT_NE(s.find("slowdown"), std::string::npos);
  EXPECT_NE(s.find("fib"), std::string::npos);
  EXPECT_NE(s.find("5.90"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t({"x", "y"});
  t.add_row({"long-value", "1"});
  t.add_row({"s", "2"});
  const std::string s = t.to_string();
  // Every line should place column 2 at the same offset.
  const auto first_line_end = s.find('\n');
  const std::string header = s.substr(0, first_line_end);
  EXPECT_GE(header.size(), std::string("long-value  y").size() - 1);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.5, 2), "1.50");
  EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
  EXPECT_EQ(TextTable::num(std::int64_t{-7}), "-7");
}

TEST(TextTable, EmptyTableStillRendersHeader) {
  TextTable t({"col"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("col"), std::string::npos);
}

}  // namespace
}  // namespace phish
