#include "apps/ray/ray.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/local_runner.hpp"

namespace phish::apps {
namespace {

TEST(Vec3Test, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  const Vec3 sum = a + b;
  EXPECT_DOUBLE_EQ(sum.x, 5);
  EXPECT_DOUBLE_EQ(sum.y, 7);
  EXPECT_DOUBLE_EQ(sum.z, 9);
  EXPECT_DOUBLE_EQ(a.dot(b), 32);
  EXPECT_DOUBLE_EQ((a * 2.0).y, 4);
  EXPECT_DOUBLE_EQ((a * b).z, 18);
}

TEST(Vec3Test, Normalized) {
  const Vec3 v{3, 0, 4};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  const Vec3 n = v.normalized();
  EXPECT_DOUBLE_EQ(n.norm(), 1.0);
  EXPECT_DOUBLE_EQ(n.x, 0.6);
  // Zero vector stays zero rather than dividing by zero.
  EXPECT_DOUBLE_EQ(Vec3{}.normalized().norm(), 0.0);
}

TEST(RaySerial, ProducesPlausibleImage) {
  const Scene scene = make_default_scene();
  std::uint64_t rays = 0;
  const Image img = render_serial(scene, 64, 48, &rays);
  EXPECT_EQ(img.width, 64);
  EXPECT_EQ(img.height, 48);
  EXPECT_EQ(img.rgb.size(), 3u * 64 * 48);
  EXPECT_GT(rays, 3000u) << "at least one ray per pixel";
  // Image is not a constant field (scene has structure).
  bool varied = false;
  for (std::size_t i = 3; i < img.rgb.size(); ++i) {
    if (img.rgb[i] != img.rgb[i % 3]) {
      varied = true;
      break;
    }
  }
  EXPECT_TRUE(varied);
}

TEST(RaySerial, DeterministicAcrossCalls) {
  const Scene scene = make_default_scene();
  EXPECT_EQ(render_serial(scene, 32, 32), render_serial(scene, 32, 32));
}

TEST(RaySerial, ReflectionDepthChangesImage) {
  Scene flat = make_default_scene();
  flat.max_depth = 0;
  Scene shiny = make_default_scene();
  shiny.max_depth = 4;
  EXPECT_FALSE(render_serial(flat, 32, 32) == render_serial(shiny, 32, 32));
}

TEST(RayParallel, ByteIdenticalToSerial) {
  const Scene scene = make_default_scene();
  const Image expected = render_serial(scene, 48, 32);

  TaskRegistry reg;
  const TaskId root = register_ray(reg, scene, 48, 32, /*tile_pixels=*/128);
  LocalRunner runner(reg);
  const Image actual = decode_image_blob(runner.run(root, {}).as_blob());
  EXPECT_EQ(actual, expected);
}

TEST(RayParallel, TileSizeDoesNotChangeOutput) {
  const Scene scene = make_default_scene();
  const Image expected = render_serial(scene, 40, 40);
  for (int tile : {16, 100, 399, 1600, 10000}) {
    TaskRegistry reg;
    const TaskId root = register_ray(reg, scene, 40, 40, tile);
    LocalRunner runner(reg);
    const Image actual = decode_image_blob(runner.run(root, {}).as_blob());
    EXPECT_EQ(actual, expected) << "tile=" << tile;
  }
}

TEST(RayParallel, OddDimensionsSplitCorrectly) {
  const Scene scene = make_default_scene();
  const Image expected = render_serial(scene, 37, 23);
  TaskRegistry reg;
  const TaskId root = register_ray(reg, scene, 37, 23, 64);
  LocalRunner runner(reg);
  EXPECT_EQ(decode_image_blob(runner.run(root, {}).as_blob()), expected);
}

TEST(RayParallel, CoarseGrainMeansFewTasks) {
  const Scene scene = make_default_scene();
  TaskRegistry reg;
  const TaskId root = register_ray(reg, scene, 64, 64, 1024);
  LocalRunner runner(reg);
  runner.run(root, {});
  // 64*64/1024 = 4 leaf tiles (plus splits and merges): single digits.
  EXPECT_LT(runner.stats().tasks_executed, 20u);
}

TEST(RayPpm, WritesValidHeader) {
  const Scene scene = make_default_scene();
  const Image img = render_serial(scene, 8, 4);
  const std::string path = "/tmp/phish_ray_test.ppm";
  write_ppm(img, path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 8);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> data(3 * 8 * 4);
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(data.size()));
  std::remove(path.c_str());
}

TEST(RayPpm, ThrowsOnBadPath) {
  const Image img;
  EXPECT_THROW(write_ppm(img, "/nonexistent-dir/x.ppm"), std::runtime_error);
}

}  // namespace
}  // namespace phish::apps
