#include "apps/pfold/pfold.hpp"

#include <gtest/gtest.h>

#include "core/local_runner.hpp"

namespace phish::apps {
namespace {

TEST(PfoldSerial, TrivialPolymers) {
  EXPECT_EQ(pfold_count(1), 1u);
  // Two monomers: first step fixed to +x, exactly one folding.
  EXPECT_EQ(pfold_count(2), 1u);
  // Three monomers: second step can go +x, +y, or -y (not back) = 3.
  EXPECT_EQ(pfold_count(3), 3u);
}

TEST(PfoldSerial, CountsAreSelfAvoidingWalks) {
  // With the first step fixed, the folding count of an n-monomer polymer is
  // the number of (n-1)-step self-avoiding walks divided by 4 (symmetry):
  // SAW counts on Z^2 (OEIS A001411): 4, 12, 36, 100, 284, 780, 2172, 5916.
  EXPECT_EQ(pfold_count(2), 4u / 4);
  EXPECT_EQ(pfold_count(3), 12u / 4);
  EXPECT_EQ(pfold_count(4), 36u / 4);
  EXPECT_EQ(pfold_count(5), 100u / 4);
  EXPECT_EQ(pfold_count(6), 284u / 4);
  EXPECT_EQ(pfold_count(7), 780u / 4);
  EXPECT_EQ(pfold_count(8), 2172u / 4);
  EXPECT_EQ(pfold_count(9), 5916u / 4);
}

TEST(PfoldSerial, EnergyHistogramSmallCases) {
  // 4 monomers: 9 foldings; exactly two (the U shapes x,+y,-x and x,-y,-x)
  // have one contact (monomer 4 touching monomer 1); the rest have zero.
  const Histogram h = pfold_serial(4);
  EXPECT_EQ(h.total(), 9u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(0), 7u);
}

TEST(PfoldSerial, EnergyConservedAcrossSizes) {
  // Total foldings grows with n; contact energies are non-negative and at
  // most ~n; spot-check structure for n = 6.
  const Histogram h = pfold_serial(6);
  EXPECT_EQ(h.total(), 71u);
  std::uint64_t weighted = 0;
  for (const auto& [energy, count] : h.bins()) {
    EXPECT_GE(energy, 0);
    EXPECT_LE(energy, 6);
    weighted += count;
  }
  EXPECT_EQ(weighted, 71u);
}

TEST(PfoldSerial, NodeCountReported) {
  std::uint64_t nodes = 0;
  pfold_serial(6, &nodes);
  EXPECT_GT(nodes, pfold_count(6)) << "internal nodes exist";
}

TEST(PfoldHistogramCodec, RoundTrip) {
  Histogram h;
  h.add(-3, 7);
  h.add(0, 1000000);
  h.add(12, 1);
  EXPECT_EQ(decode_histogram(encode_histogram(h)), h);
}

TEST(PfoldHistogramCodec, EmptyHistogram) {
  EXPECT_EQ(decode_histogram(encode_histogram(Histogram{})), Histogram{});
}

TEST(PfoldHistogramCodec, CorruptBlobThrows) {
  Bytes b = encode_histogram([] {
    Histogram h;
    h.add(1);
    return h;
  }());
  b.push_back(0xff);
  EXPECT_THROW(decode_histogram(b), std::invalid_argument);
}

TEST(PfoldParallel, MatchesSerialExactly) {
  TaskRegistry reg;
  const TaskId root = register_pfold(reg, /*sequential_monomers=*/3);
  LocalRunner runner(reg);
  for (std::int64_t n = 1; n <= 10; ++n) {
    const Histogram expected = pfold_serial(static_cast<int>(n));
    const Histogram actual =
        decode_histogram(runner.run(root, {Value(n)}).as_blob());
    EXPECT_EQ(actual, expected) << "n=" << n;
  }
}

TEST(PfoldParallel, CutoffsPreserveHistogram) {
  const Histogram expected = pfold_serial(9);
  for (int cutoff : {0, 1, 4, 9, 50}) {
    TaskRegistry reg;
    const TaskId root = register_pfold(reg, cutoff);
    LocalRunner runner(reg);
    const Histogram actual =
        decode_histogram(runner.run(root, {Value(std::int64_t{9})}).as_blob());
    EXPECT_EQ(actual, expected) << "cutoff=" << cutoff;
  }
}

TEST(PfoldParallel, WorkingSetStaysSmall) {
  TaskRegistry reg;
  const TaskId root = register_pfold(reg, 4);
  LocalRunner runner(reg);
  runner.run(root, {Value(std::int64_t{12})});
  EXPECT_GT(runner.stats().tasks_executed, 1000u);
  EXPECT_LT(runner.stats().max_tasks_in_use, 100u);
}

TEST(PfoldParallel, MostSynchronizationsAreLocal) {
  TaskRegistry reg;
  const TaskId root = register_pfold(reg, 4);
  LocalRunner runner(reg);
  runner.run(root, {Value(std::int64_t{11})});
  EXPECT_EQ(runner.stats().non_local_synchs, 1u);
}

}  // namespace
}  // namespace phish::apps
