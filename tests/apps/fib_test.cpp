#include "apps/fib/fib.hpp"

#include <gtest/gtest.h>

#include "core/local_runner.hpp"

namespace phish::apps {
namespace {

TEST(FibSerial, BaseCases) {
  EXPECT_EQ(fib_serial(0), 0);
  EXPECT_EQ(fib_serial(1), 1);
  EXPECT_EQ(fib_serial(2), 1);
}

TEST(FibSerial, KnownValues) {
  EXPECT_EQ(fib_serial(10), 55);
  EXPECT_EQ(fib_serial(20), 6765);
  EXPECT_EQ(fib_serial(25), 75025);
}

TEST(FibParallel, MatchesSerialSmall) {
  TaskRegistry reg;
  const TaskId root = register_fib(reg);
  LocalRunner runner(reg);
  for (std::int64_t n = 0; n <= 15; ++n) {
    EXPECT_EQ(runner.run(root, {Value(n)}).as_int(), fib_serial(n))
        << "n=" << n;
  }
}

TEST(FibParallel, SequentialCutoffPreservesResult) {
  for (std::int64_t cutoff : {0, 2, 5, 10, 100}) {
    TaskRegistry reg;
    const TaskId root = register_fib(reg, cutoff);
    LocalRunner runner(reg);
    EXPECT_EQ(runner.run(root, {Value(std::int64_t{18})}).as_int(),
              fib_serial(18))
        << "cutoff=" << cutoff;
  }
}

TEST(FibParallel, TaskCountMatchesTheory) {
  // Fully fine-grained fib(n) executes one fib.task per call node
  // (2*fib(n+1) - 1 of them) plus one fib.sum per internal node.
  TaskRegistry reg;
  const TaskId root = register_fib(reg);
  LocalRunner runner(reg);
  const std::int64_t n = 12;
  runner.run(root, {Value(n)});
  const std::uint64_t call_nodes =
      static_cast<std::uint64_t>(2 * fib_serial(n + 1) - 1);
  const std::uint64_t internal = (call_nodes - 1) / 2;
  EXPECT_EQ(runner.stats().tasks_executed, call_nodes + internal);
}

TEST(FibParallel, EverySynchronizationIsLocalOnOneWorker) {
  TaskRegistry reg;
  const TaskId root = register_fib(reg);
  LocalRunner runner(reg);
  runner.run(root, {Value(std::int64_t{10})});
  // Only the final result leaves the worker.
  EXPECT_EQ(runner.stats().non_local_synchs, 1u);
  EXPECT_GT(runner.stats().synchronizations, 100u);
}

TEST(FibParallel, LifoWorkingSetIsLogarithmic) {
  // The paper's central memory claim: LIFO execution keeps "max tasks in
  // use" small — O(depth), not O(total tasks).
  TaskRegistry reg;
  const TaskId root = register_fib(reg);
  LocalRunner runner(reg);
  runner.run(root, {Value(std::int64_t{18})});
  EXPECT_GT(runner.stats().tasks_executed, 10000u);
  EXPECT_LT(runner.stats().max_tasks_in_use, 60u);
}

TEST(FibParallel, FifoWorkingSetExplodes) {
  // Ablation A1 in miniature: FIFO (breadth-first) execution makes the
  // working set proportional to the tree width.
  TaskRegistry reg;
  const TaskId root = register_fib(reg);
  LocalRunner lifo(reg, ExecOrder::kLifo, StealOrder::kFifo);
  LocalRunner fifo(reg, ExecOrder::kFifo, StealOrder::kFifo);
  lifo.run(root, {Value(std::int64_t{16})});
  fifo.run(root, {Value(std::int64_t{16})});
  EXPECT_GT(fifo.stats().max_tasks_in_use,
            20 * lifo.stats().max_tasks_in_use);
}

TEST(FibParallel, ChargeScalesWithWork) {
  TaskRegistry reg;
  const TaskId root = register_fib(reg, /*sequential_cutoff=*/30);
  LocalRunner runner(reg);
  // With cutoff >= n the whole computation is one serial task; its charge
  // must equal the exact node count 2*fib(n+1) - 1.
  runner.run(root, {Value(std::int64_t{20})});
  // LocalRunner does not accumulate charges itself; use core().last_charge()
  // via a fresh single-task execution instead.
  WorkerCore& core = runner.core();
  core.spawn(root, {Value(std::int64_t{20})}, root_continuation(), 0);
  auto c = core.pop_for_execution();
  ASSERT_TRUE(c.has_value());
  core.execute(*c);
  EXPECT_EQ(core.last_charge(),
            static_cast<std::uint64_t>(2 * fib_serial(21) - 1));
}

}  // namespace
}  // namespace phish::apps
