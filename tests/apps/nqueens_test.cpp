#include "apps/nqueens/nqueens.hpp"

#include <gtest/gtest.h>

#include "core/local_runner.hpp"

namespace phish::apps {
namespace {

// OEIS A000170: number of n-queens solutions.
constexpr std::int64_t kKnown[] = {1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724};

TEST(NQueensSerial, KnownValues) {
  for (int n = 1; n <= 10; ++n) {
    EXPECT_EQ(nqueens_serial(n), kKnown[n]) << "n=" << n;
  }
}

TEST(NQueensSerial, Eleven) { EXPECT_EQ(nqueens_serial(11), 2680); }

TEST(NQueensParallel, MatchesSerial) {
  TaskRegistry reg;
  const TaskId root = register_nqueens(reg);
  LocalRunner runner(reg);
  for (std::int64_t n = 1; n <= 9; ++n) {
    EXPECT_EQ(runner.run(root, {Value(n)}).as_int(),
              kKnown[static_cast<int>(n)])
        << "n=" << n;
  }
}

TEST(NQueensParallel, GrainCutoffsPreserveResult) {
  for (int cutoff : {0, 1, 3, 5, 8, 100}) {
    TaskRegistry reg;
    const TaskId root = register_nqueens(reg, cutoff);
    LocalRunner runner(reg);
    EXPECT_EQ(runner.run(root, {Value(std::int64_t{8})}).as_int(), 92)
        << "cutoff=" << cutoff;
  }
}

TEST(NQueensParallel, UnsolvableBoardsReturnZero) {
  TaskRegistry reg;
  const TaskId root = register_nqueens(reg, /*sequential_rows=*/0);
  LocalRunner runner(reg);
  EXPECT_EQ(runner.run(root, {Value(std::int64_t{2})}).as_int(), 0);
  EXPECT_EQ(runner.run(root, {Value(std::int64_t{3})}).as_int(), 0);
}

TEST(NQueensParallel, CoarserGrainExecutesFewerTasks) {
  TaskRegistry fine_reg, coarse_reg;
  const TaskId fine_root = register_nqueens(fine_reg, 1);
  const TaskId coarse_root = register_nqueens(coarse_reg, 5);
  LocalRunner fine(fine_reg), coarse(coarse_reg);
  fine.run(fine_root, {Value(std::int64_t{9})});
  coarse.run(coarse_root, {Value(std::int64_t{9})});
  EXPECT_GT(fine.stats().tasks_executed,
            4 * coarse.stats().tasks_executed);
}

TEST(NQueensParallel, WorkingSetStaysSmall) {
  TaskRegistry reg;
  const TaskId root = register_nqueens(reg, 2);
  LocalRunner runner(reg);
  runner.run(root, {Value(std::int64_t{9})});
  EXPECT_GT(runner.stats().tasks_executed, 1000u);
  EXPECT_LT(runner.stats().max_tasks_in_use, 120u);
}

}  // namespace
}  // namespace phish::apps
