#include "serial/buffer.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"

namespace phish {
namespace {

TEST(Buffer, RoundTripPrimitives) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Buffer, RoundTripStringsAndBlobs) {
  Writer w;
  w.str("hello");
  w.str("");
  const Bytes blob{1, 2, 3, 255};
  w.blob(blob.data(), blob.size());

  Reader r(w.bytes());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.blob(), blob);
  EXPECT_TRUE(r.done());
}

TEST(Buffer, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
}

TEST(Buffer, ExtremeValues) {
  Writer w;
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.i64(std::numeric_limits<std::int64_t>::max());
  w.u64(std::numeric_limits<std::uint64_t>::max());
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);

  Reader r(w.bytes());
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_TRUE(r.done());
}

TEST(Buffer, UnderflowSetsFailedState) {
  Writer w;
  w.u16(7);
  Reader r(w.bytes());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // underflow
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
  // Once failed, everything returns zero values.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.str(), "");
}

TEST(Buffer, TruncatedBlobFails) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  w.u8(1);     // but only 1 does
  Reader r(w.bytes());
  EXPECT_TRUE(r.blob().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Buffer, EmptyReaderIsDone) {
  Reader r(nullptr, 0);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Buffer, RemainingTracksPosition) {
  Writer w;
  w.u32(1);
  w.u32(2);
  Reader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Buffer, RawAppendsWithoutPrefix) {
  Writer inner;
  inner.u16(0x1234);
  Writer outer;
  outer.raw(inner.bytes());
  Reader r(outer.bytes());
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_TRUE(r.done());
}

TEST(Buffer, TakeMovesBytes) {
  Writer w;
  w.u8(9);
  Bytes b = w.take();
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 9);
}

TEST(Buffer, FuzzRoundTripRandomSequences) {
  // Property test: any sequence of typed writes reads back identically.
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    Writer w;
    std::vector<int> kinds;
    std::vector<std::uint64_t> ints;
    std::vector<double> doubles;
    std::vector<std::string> strings;
    const int ops = static_cast<int>(rng.below(20)) + 1;
    for (int i = 0; i < ops; ++i) {
      const int kind = static_cast<int>(rng.below(3));
      kinds.push_back(kind);
      switch (kind) {
        case 0: {
          const std::uint64_t v = rng.next();
          ints.push_back(v);
          w.u64(v);
          break;
        }
        case 1: {
          const double v = rng.uniform() * 1e12 - 5e11;
          doubles.push_back(v);
          w.f64(v);
          break;
        }
        case 2: {
          std::string s;
          const auto len = rng.below(64);
          for (std::uint64_t j = 0; j < len; ++j) {
            s.push_back(static_cast<char>(rng.below(256)));
          }
          strings.push_back(s);
          w.str(s);
          break;
        }
      }
    }
    Reader r(w.bytes());
    std::size_t ii = 0, di = 0, si = 0;
    for (int kind : kinds) {
      switch (kind) {
        case 0: ASSERT_EQ(r.u64(), ints[ii++]); break;
        case 1: ASSERT_DOUBLE_EQ(r.f64(), doubles[di++]); break;
        case 2: ASSERT_EQ(r.str(), strings[si++]); break;
      }
    }
    ASSERT_TRUE(r.done());
  }
}

TEST(Buffer, RestReturnsUnreadTail) {
  Writer w;
  w.u32(7);
  w.str("header");
  w.u64(0xdeadbeefULL);
  const Bytes all = w.take();

  Reader r(all);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.str(), "header");
  const Bytes tail = r.rest();
  EXPECT_TRUE(r.done()) << "rest() consumes everything";
  EXPECT_EQ(r.rest(), Bytes{}) << "second rest() is empty";

  // The tail re-decodes as its own message.
  Reader tr(tail);
  EXPECT_EQ(tr.u64(), 0xdeadbeefULL);
  EXPECT_TRUE(tr.done());
}

TEST(Buffer, RestOfWholeAndEmptyBuffers) {
  Writer w;
  w.u16(3);
  const Bytes b = w.take();
  Reader whole(b);
  EXPECT_EQ(whole.rest(), b) << "rest() before any read is the whole buffer";

  Reader empty(Bytes{});
  EXPECT_EQ(empty.rest(), Bytes{});
  EXPECT_TRUE(empty.done());
}

TEST(Buffer, RestAfterFailureIsEmpty) {
  Writer w;
  w.u8(1);
  Reader r(w.take());
  r.u64();  // truncated read: poisons the reader
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.rest(), Bytes{}) << "failed readers yield nothing";
}

}  // namespace
}  // namespace phish
