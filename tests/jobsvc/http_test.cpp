// End-to-end tests for PhishJobD's HTTP surface: a real HttpServer on an
// ephemeral port, a real JobService, and a LocalBackend running real task
// graphs — exercised through raw sockets like any external client would.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "apps/fib/fib.hpp"
#include "core/worker_core.hpp"
#include "jobsvc/http.hpp"
#include "jobsvc/jobd.hpp"
#include "jobsvc/json.hpp"
#include "jobsvc/local_backend.hpp"
#include "jobsvc/service.hpp"

namespace phish::jobsvc {
namespace {

// ---------------------------------------------------------------------------
// Minimal blocking HTTP/1.1 client (connection: close per request).

struct ClientResponse {
  int status = 0;
  std::string body;
};

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    ASSERT_GT(n, 0) << "send failed";
    off += static_cast<std::size_t>(n);
  }
}

std::string recv_until_eof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

ClientResponse request(std::uint16_t port, const std::string& method,
                       const std::string& target, const std::string& body = "") {
  ClientResponse resp;
  const int fd = connect_to(port);
  EXPECT_GE(fd, 0) << "connect to 127.0.0.1:" << port;
  if (fd < 0) return resp;
  std::string wire = method + " " + target +
                     " HTTP/1.1\r\nhost: 127.0.0.1\r\nconnection: close\r\n"
                     "content-length: " +
                     std::to_string(body.size()) + "\r\n\r\n" + body;
  send_all(fd, wire);
  const std::string raw = recv_until_eof(fd);
  ::close(fd);
  if (raw.rfind("HTTP/1.1 ", 0) == 0 && raw.size() >= 12) {
    resp.status = std::stoi(raw.substr(9, 3));
  }
  const auto split = raw.find("\r\n\r\n");
  if (split != std::string::npos) resp.body = raw.substr(split + 4);
  return resp;
}

// ---------------------------------------------------------------------------
// Fixture: registry (fib + a gated blocking task) + service + HTTP server.

/// Open/closed gate a task can block on, so tests can hold a job "active"
/// for as long as they need.
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  void release() {
    std::lock_guard<std::mutex> lock(m);
    open = true;
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [this] { return open; });
  }
};

class JobdHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    apps::register_fib(registry_);
    gate_ = std::make_shared<Gate>();
    auto gate = gate_;
    registry_.add("block.task", [gate](Context& cx, Closure& c) {
      gate->wait();
      cx.send(c.cont, std::int64_t{77});
    });

    backend_ = std::make_unique<LocalBackend>(registry_, /*threads=*/2);
    ServiceConfig cfg;
    cfg.max_active = 2;
    cfg.max_backlog = 4;
    service_ = std::make_unique<JobService>(clock_, *backend_, cfg);
    backend_->bind(*service_);

    server_ = std::make_unique<HttpServer>(HttpServerConfig{},
                                           make_jobd_handler(*service_));
    server_->start();
    port_ = server_->port();
    ASSERT_GT(port_, 0);
  }

  void TearDown() override {
    gate_->release();  // unblock any still-held jobs
    backend_->drain();
    server_->stop();
  }

  /// Poll the status endpoint until the job reaches `state` (or time out).
  JsonValue await_state(std::uint64_t job_id, const std::string& state) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
      const auto resp =
          request(port_, "GET", "/v1/jobs/" + std::to_string(job_id));
      EXPECT_EQ(resp.status, 200);
      auto doc = parse_json(resp.body);
      EXPECT_TRUE(doc.has_value()) << resp.body;
      if (doc && *doc->get_string("state") == state) return std::move(*doc);
      if (std::chrono::steady_clock::now() > deadline) {
        ADD_FAILURE() << "job " << job_id << " never reached " << state
                      << "; last: " << resp.body;
        return doc ? std::move(*doc) : JsonValue();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  TaskRegistry registry_;
  obs::SteadyClock clock_;
  std::shared_ptr<Gate> gate_;
  std::unique_ptr<LocalBackend> backend_;
  std::unique_ptr<JobService> service_;
  std::unique_ptr<HttpServer> server_;
  std::uint16_t port_ = 0;
};

TEST_F(JobdHttpTest, SubmitRunsToCompletionViaStatusEndpoint) {
  // The acceptance path: POST a real fib job, watch it go active, and read
  // the computed result back through the status endpoint.
  const auto submit = request(port_, "POST", "/v1/jobs",
                              R"({"root_task":"fib.task","args":[15],
                                  "tenant":"alice","name":"fib15"})");
  ASSERT_EQ(submit.status, 202) << submit.body;
  const auto ack = parse_json(submit.body);
  ASSERT_TRUE(ack.has_value());
  const std::uint64_t id =
      static_cast<std::uint64_t>(*ack->get_int("job_id"));
  EXPECT_GT(id, 0u);

  const JsonValue done = await_state(id, "done");
  EXPECT_EQ(*done.get_string("tenant"), "alice");
  EXPECT_EQ(*done.get_string("name"), "fib15");
  EXPECT_EQ(*done.get_string("root_task"), "fib.task");
  EXPECT_EQ(*done.get_int("result"), 610) << "fib(15)";
  EXPECT_GT(*done.get_int("finished_ns"), *done.get_int("submitted_ns"));
  EXPECT_GT(*done.get_int("first_task_ns"), 0);
}

TEST_F(JobdHttpTest, ListAndStatsReflectSubmissions) {
  const auto a = request(port_, "POST", "/v1/jobs",
                         R"({"root_task":"fib.task","args":[10],"tenant":"a"})");
  const auto b = request(port_, "POST", "/v1/jobs",
                         R"({"root_task":"fib.task","args":[10],"tenant":"b"})");
  ASSERT_EQ(a.status, 202);
  ASSERT_EQ(b.status, 202);
  backend_->drain();

  const auto all = parse_json(request(port_, "GET", "/v1/jobs").body);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->get("jobs")->as_array().size(), 2u);
  const auto only_a =
      parse_json(request(port_, "GET", "/v1/jobs?tenant=a").body);
  ASSERT_TRUE(only_a.has_value());
  ASSERT_EQ(only_a->get("jobs")->as_array().size(), 1u);
  EXPECT_EQ(only_a->get("jobs")->as_array()[0].get_string("tenant")->compare(
                "a"),
            0);

  const auto stats = parse_json(request(port_, "GET", "/v1/stats").body);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(*stats->get_int("accepted"), 2);
  EXPECT_EQ(*stats->get_int("completed"), 2);
  EXPECT_EQ(*stats->get_int("active"), 0);
}

TEST_F(JobdHttpTest, CancelPendingJobAndRefuseFinishedJob) {
  // Fill both active slots with gated jobs, then queue a third: it stays
  // pending and DELETE cancels it without it ever running.
  const char* blocked = R"({"root_task":"block.task"})";
  const auto r1 = request(port_, "POST", "/v1/jobs", blocked);
  const auto r2 = request(port_, "POST", "/v1/jobs", blocked);
  const auto r3 = request(port_, "POST", "/v1/jobs", blocked);
  ASSERT_EQ(r1.status, 202);
  ASSERT_EQ(r2.status, 202);
  ASSERT_EQ(r3.status, 202);
  const auto id3 = *parse_json(r3.body)->get_int("job_id");

  auto st3 = parse_json(
      request(port_, "GET", "/v1/jobs/" + std::to_string(id3)).body);
  EXPECT_EQ(*st3->get_string("state"), "pending");
  const auto del =
      request(port_, "DELETE", "/v1/jobs/" + std::to_string(id3));
  EXPECT_EQ(del.status, 200) << del.body;
  await_state(static_cast<std::uint64_t>(id3), "cancelled");

  // Let the active jobs finish; a finished job cannot be cancelled.
  gate_->release();
  const auto id1 = *parse_json(r1.body)->get_int("job_id");
  await_state(static_cast<std::uint64_t>(id1), "done");
  const auto late =
      request(port_, "DELETE", "/v1/jobs/" + std::to_string(id1));
  EXPECT_EQ(late.status, 409);
}

TEST_F(JobdHttpTest, RejectsBadAndUnknownRequests) {
  EXPECT_EQ(request(port_, "POST", "/v1/jobs", "not json").status, 400);
  EXPECT_EQ(request(port_, "POST", "/v1/jobs",
                    R"({"root_task":"x","args":[true]})")
                .status,
            400)
      << "bool args have no Value mapping";
  EXPECT_EQ(request(port_, "GET", "/v1/jobs/9999").status, 404);
  EXPECT_EQ(request(port_, "DELETE", "/v1/jobs/9999").status, 404);
  EXPECT_EQ(request(port_, "GET", "/v1/nope").status, 404);
  EXPECT_EQ(request(port_, "PUT", "/v1/jobs").status, 405);
  EXPECT_EQ(request(port_, "GET", "/v1/healthz").status, 200);
}

TEST_F(JobdHttpTest, RateLimitedSubmitGets429WithRetryHint) {
  TenantPolicy policy;
  policy.rate_per_sec = 0.001;  // effectively: burst only
  policy.burst = 1.0;
  service_->configure_tenant("throttled", policy);
  const char* body = R"({"root_task":"fib.task","args":[5],
                         "tenant":"throttled"})";
  EXPECT_EQ(request(port_, "POST", "/v1/jobs", body).status, 202);
  const auto rejected = request(port_, "POST", "/v1/jobs", body);
  EXPECT_EQ(rejected.status, 429);
  const auto doc = parse_json(rejected.body);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(*doc->get_string("error"), "rate_limited");
  EXPECT_GT(*doc->get_int("retry_after_ns"), 0);
}

TEST_F(JobdHttpTest, KeepAliveServesPipelinedRequests) {
  const int fd = connect_to(port_);
  ASSERT_GE(fd, 0);
  const std::string one =
      "GET /v1/healthz HTTP/1.1\r\nhost: x\r\ncontent-length: 0\r\n\r\n";
  send_all(fd, one + one);  // two requests, one write, no connection: close
  std::string got;
  char buf[4096];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) got.append(buf, static_cast<std::size_t>(n));
    std::size_t count = 0, pos = 0;
    while ((pos = got.find("{\"ok\":true}", pos)) != std::string::npos) {
      ++count;
      pos += 1;
    }
    if (count >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ::close(fd);
  std::size_t count = 0, pos = 0;
  while ((pos = got.find("{\"ok\":true}", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 2u) << got;
}

TEST_F(JobdHttpTest, MalformedRequestLineGets400) {
  const int fd = connect_to(port_);
  ASSERT_GE(fd, 0);
  send_all(fd, "THIS IS NOT HTTP\r\n\r\n");
  const std::string raw = recv_until_eof(fd);
  ::close(fd);
  EXPECT_NE(raw.find("400"), std::string::npos) << raw;
  EXPECT_GE(server_->stats().bad_requests, 1u);
}

// ---------------------------------------------------------------------------
// Codec units (no server needed).

TEST(SubmitBody, ParsesFullRequest) {
  const auto req = parse_submit_body(
      R"({"root_task":"fib.task","name":"demo","tenant":"t1",
          "priority":"high","args":[13, 2.5, "bytes"]})");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->root_task, "fib.task");
  EXPECT_EQ(req->name, "demo");
  EXPECT_EQ(req->tenant, "t1");
  EXPECT_EQ(req->priority, kPriorityHigh);
  ASSERT_EQ(req->args.size(), 3u);
  EXPECT_EQ(req->args[0].as_int(), 13);
  EXPECT_DOUBLE_EQ(req->args[1].as_double(), 2.5);
  EXPECT_EQ(req->args[2].as_blob(), Bytes({'b', 'y', 't', 'e', 's'}));
}

TEST(SubmitBody, RejectsMissingRootAndBadTypes) {
  EXPECT_FALSE(parse_submit_body("{}").has_value());
  EXPECT_FALSE(parse_submit_body("[1,2]").has_value());
  EXPECT_FALSE(parse_submit_body(R"({"root_task":""})").has_value());
  EXPECT_FALSE(
      parse_submit_body(R"({"root_task":"x","priority":"urgent"})").has_value());
  EXPECT_FALSE(
      parse_submit_body(R"({"root_task":"x","tenant":""})").has_value());
  EXPECT_FALSE(
      parse_submit_body(R"({"root_task":"x","args":[null]})").has_value());
  EXPECT_FALSE(
      parse_submit_body(R"({"root_task":"x","args":[[1]]})").has_value());
}

TEST(Priority, NamesRoundTrip) {
  for (const char* name : {"low", "normal", "high"}) {
    const auto p = parse_priority(name);
    ASSERT_TRUE(p.has_value());
    EXPECT_STREQ(priority_name(*p), name);
  }
  EXPECT_FALSE(parse_priority("urgent").has_value());
  EXPECT_FALSE(parse_priority("").has_value());
}

TEST(UrlDecode, DecodesEscapesAndRejectsBadOnes) {
  EXPECT_EQ(*url_decode("plain"), "plain");
  EXPECT_EQ(*url_decode("a%20b%2Fc"), "a b/c");
  EXPECT_EQ(*url_decode("x+y"), "x y");
  EXPECT_FALSE(url_decode("bad%2").has_value());
  EXPECT_FALSE(url_decode("bad%zz").has_value());
}

}  // namespace
}  // namespace phish::jobsvc
