#include "jobsvc/json.hpp"

#include <gtest/gtest.h>

namespace phish::jobsvc {
namespace {

TEST(Json, Scalars) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_TRUE(parse_json("true")->as_bool());
  EXPECT_FALSE(parse_json("false")->as_bool());
  EXPECT_EQ(parse_json("42")->as_int(), 42);
  EXPECT_EQ(parse_json("-7")->as_int(), -7);
  EXPECT_DOUBLE_EQ(parse_json("2.5")->as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3")->as_double(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
}

TEST(Json, IntegerWidensToDouble) {
  const auto v = parse_json("3");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind(), JsonValue::Kind::kInt);
  EXPECT_DOUBLE_EQ(v->as_double(), 3.0);
}

TEST(Json, StringEscapes) {
  const auto v = parse_json(R"("a\"b\\c\nd\te\u0041")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, ArraysAndObjects) {
  const auto v = parse_json(R"({"name":"fib","args":[25, 2.5, "x"],
                                "nested":{"deep":[[1]]}})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get_string("name"), "fib");
  const auto& args = v->get("args")->as_array();
  ASSERT_EQ(args.size(), 3u);
  EXPECT_EQ(args[0].as_int(), 25);
  EXPECT_DOUBLE_EQ(args[1].as_double(), 2.5);
  EXPECT_EQ(args[2].as_string(), "x");
  EXPECT_EQ(v->get("nested")->get("deep")->as_array()[0].as_array()[0].as_int(),
            1);
  EXPECT_EQ(v->get("missing"), nullptr);
}

TEST(Json, WhitespaceTolerant) {
  const auto v = parse_json("  { \"a\" :\t[ 1 ,\n 2 ] }  ");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get("a")->as_array().size(), 2u);
}

TEST(Json, RejectsMalformed) {
  for (const char* bad :
       {"", "{", "}", "[1,", "{\"a\":}", "{\"a\" 1}", "[1 2]", "tru",
        "01a", "\"unterminated", "{\"a\":1}x", "nan", "+1", "--1",
        "\"bad\\escape\"", "\"\\u12\""}) {
    EXPECT_FALSE(parse_json(bad).has_value()) << "input: " << bad;
  }
}

TEST(Json, RejectsPathologicalNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(parse_json(deep).has_value()) << "depth bound must hold";
}

TEST(Json, TypeMismatchThrows) {
  const auto v = parse_json("\"str\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_THROW(v->as_int(), std::bad_variant_access);
}

}  // namespace
}  // namespace phish::jobsvc
