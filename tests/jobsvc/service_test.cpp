#include "jobsvc/service.hpp"

#include <gtest/gtest.h>

namespace phish::jobsvc {
namespace {

/// Manually advanced clock: admission control under test must see exactly
/// the instants we choose.
class FakeClock final : public obs::Clock {
 public:
  std::uint64_t now_ns() const override { return now_; }
  void advance_ns(std::uint64_t d) { now_ += d; }

 private:
  std::uint64_t now_ = 1;
};

/// Records launches; completion is driven explicitly by the test.
class FakeBackend final : public JobBackend {
 public:
  void launch(const JobStatus& job, const std::vector<Value>& args) override {
    launched.push_back(job.job_id);
    last_args = args;
  }
  bool cancel_active(std::uint64_t job_id) override {
    cancel_calls.push_back(job_id);
    return cancellable;
  }

  std::vector<std::uint64_t> launched;
  std::vector<std::uint64_t> cancel_calls;
  std::vector<Value> last_args;
  bool cancellable = false;
};

SubmitRequest req(const std::string& tenant = "t",
                  std::uint8_t priority = kPriorityNormal) {
  SubmitRequest r;
  r.tenant = tenant;
  r.root_task = "fib.task";
  r.args.emplace_back(std::int64_t{20});
  r.priority = priority;
  return r;
}

class ServiceTest : public ::testing::Test {
 protected:
  JobService make(ServiceConfig cfg = {}) {
    return JobService(clock_, backend_, cfg);
  }
  FakeClock clock_;
  FakeBackend backend_;
};

TEST_F(ServiceTest, SubmitLaunchesImmediatelyWhenSlotsFree) {
  auto svc = make();
  const auto r = svc.submit(req());
  ASSERT_TRUE(r.accepted());
  EXPECT_EQ(backend_.launched, std::vector<std::uint64_t>{r.job_id});
  ASSERT_EQ(backend_.last_args.size(), 1u);
  EXPECT_EQ(backend_.last_args[0].as_int(), 20);
  const auto s = svc.status(r.job_id);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->state, JobState::kActive);
  EXPECT_EQ(s->tenant, "t");
}

TEST_F(ServiceTest, RejectsMalformedRequests) {
  auto svc = make();
  SubmitRequest empty;  // no root task
  EXPECT_EQ(svc.submit(empty).reject, Reject::kBadRequest);
  SubmitRequest bad_prio = req();
  bad_prio.priority = kPriorityClasses;
  EXPECT_EQ(svc.submit(bad_prio).reject, Reject::kBadRequest);
  EXPECT_EQ(svc.counters().rejected_bad_request, 2u);
}

TEST_F(ServiceTest, QueuesBeyondMaxActiveAndPromotesOnCompletion) {
  ServiceConfig cfg;
  cfg.max_active = 1;
  auto svc = make(cfg);
  const auto first = svc.submit(req());
  const auto second = svc.submit(req());
  ASSERT_TRUE(first.accepted());
  ASSERT_TRUE(second.accepted());
  EXPECT_EQ(svc.status(second.job_id)->state, JobState::kPending);
  EXPECT_EQ(svc.pending_jobs(), 1u);

  svc.note_done(first.job_id, Value(std::int64_t{6765}));
  EXPECT_EQ(svc.status(first.job_id)->state, JobState::kDone);
  EXPECT_EQ(svc.status(first.job_id)->result.as_int(), 6765);
  EXPECT_EQ(svc.status(second.job_id)->state, JobState::kActive)
      << "completion promotes the queued job";
  EXPECT_EQ(backend_.launched.back(), second.job_id);
}

TEST_F(ServiceTest, PromotionPrefersHigherPriority) {
  ServiceConfig cfg;
  cfg.max_active = 1;
  auto svc = make(cfg);
  const auto running = svc.submit(req());
  const auto low = svc.submit(req("t", kPriorityLow));
  const auto high = svc.submit(req("t", kPriorityHigh));
  svc.note_done(running.job_id, std::nullopt);
  EXPECT_EQ(svc.status(high.job_id)->state, JobState::kActive);
  EXPECT_EQ(svc.status(low.job_id)->state, JobState::kPending);
}

TEST_F(ServiceTest, BacklogFullRejects) {
  ServiceConfig cfg;
  cfg.max_active = 1;
  cfg.max_backlog = 2;
  auto svc = make(cfg);
  EXPECT_TRUE(svc.submit(req()).accepted());   // active
  EXPECT_TRUE(svc.submit(req()).accepted());   // backlog 1
  EXPECT_TRUE(svc.submit(req()).accepted());   // backlog 2
  const auto r = svc.submit(req());
  EXPECT_EQ(r.reject, Reject::kBacklogFull);
  EXPECT_EQ(svc.counters().rejected_backlog, 1u);
}

TEST_F(ServiceTest, TenantQuotaRejects) {
  auto svc = make();
  TenantPolicy policy;
  policy.max_jobs = 1;
  svc.configure_tenant("small", policy);
  const auto a = svc.submit(req("small"));
  ASSERT_TRUE(a.accepted());
  EXPECT_EQ(svc.submit(req("small")).reject, Reject::kQuotaExceeded);
  EXPECT_TRUE(svc.submit(req("other")).accepted())
      << "quota is per tenant, not global";
  // Completion frees the quota slot.
  svc.note_done(a.job_id, std::nullopt);
  EXPECT_TRUE(svc.submit(req("small")).accepted());
}

TEST_F(ServiceTest, RateLimitRefillsOverTime) {
  auto svc = make();
  TenantPolicy policy;
  policy.rate_per_sec = 1.0;
  policy.burst = 2.0;
  svc.configure_tenant("limited", policy);
  EXPECT_TRUE(svc.submit(req("limited")).accepted());  // burst token 1
  EXPECT_TRUE(svc.submit(req("limited")).accepted());  // burst token 2
  const auto rejected = svc.submit(req("limited"));
  EXPECT_EQ(rejected.reject, Reject::kRateLimited);
  EXPECT_GT(rejected.retry_after_ns, 0u);
  EXPECT_LE(rejected.retry_after_ns, 1'000'000'000ull);
  // One second refills one token.
  clock_.advance_ns(1'000'000'000ull);
  EXPECT_TRUE(svc.submit(req("limited")).accepted());
  EXPECT_EQ(svc.submit(req("limited")).reject, Reject::kRateLimited);
  EXPECT_EQ(svc.counters().rejected_rate, 2u);
}

TEST_F(ServiceTest, CancelPendingNeverReachesBackend) {
  ServiceConfig cfg;
  cfg.max_active = 1;
  auto svc = make(cfg);
  svc.submit(req());
  const auto queued = svc.submit(req());
  EXPECT_TRUE(svc.cancel(queued.job_id));
  EXPECT_EQ(svc.status(queued.job_id)->state, JobState::kCancelled);
  EXPECT_TRUE(backend_.cancel_calls.empty());
  EXPECT_EQ(backend_.launched.size(), 1u);
  EXPECT_FALSE(svc.cancel(queued.job_id)) << "second cancel is stale";
}

TEST_F(ServiceTest, CancelActiveDependsOnBackend) {
  auto svc = make();
  const auto r = svc.submit(req());
  backend_.cancellable = false;
  EXPECT_FALSE(svc.cancel(r.job_id));
  EXPECT_EQ(svc.status(r.job_id)->state, JobState::kActive);
  backend_.cancellable = true;
  EXPECT_TRUE(svc.cancel(r.job_id));
  EXPECT_EQ(svc.status(r.job_id)->state, JobState::kCancelled);
  // A late completion from the backend must not resurrect the job.
  svc.note_done(r.job_id, Value(std::int64_t{1}));
  EXPECT_EQ(svc.status(r.job_id)->state, JobState::kCancelled);
  EXPECT_EQ(svc.counters().completed, 0u);
}

TEST_F(ServiceTest, TimestampsProgressThroughLifecycle) {
  auto svc = make();
  const auto r = svc.submit(req());
  clock_.advance_ns(5);
  svc.note_first_task(r.job_id);
  clock_.advance_ns(5);
  svc.note_done(r.job_id, std::nullopt);
  const auto s = svc.status(r.job_id);
  ASSERT_TRUE(s.has_value());
  EXPECT_GT(s->submitted_ns, 0u);
  EXPECT_GE(s->activated_ns, s->submitted_ns);
  EXPECT_GT(s->first_task_ns, s->submitted_ns);
  EXPECT_GT(s->finished_ns, s->first_task_ns);
}

TEST_F(ServiceTest, ListFiltersByTenantNewestFirst) {
  auto svc = make();
  const auto a = svc.submit(req("alice"));
  svc.submit(req("bob"));
  const auto a2 = svc.submit(req("alice"));
  const auto all = svc.list();
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(all.front().job_id, a2.job_id) << "newest first";
  const auto alice = svc.list("alice");
  ASSERT_EQ(alice.size(), 2u);
  EXPECT_EQ(alice[0].job_id, a2.job_id);
  EXPECT_EQ(alice[1].job_id, a.job_id);
}

TEST_F(ServiceTest, UnknownJobQueriesAreSafe) {
  auto svc = make();
  EXPECT_FALSE(svc.status(99).has_value());
  EXPECT_FALSE(svc.cancel(99));
  svc.note_first_task(99);          // must not crash
  svc.note_done(99, std::nullopt);  // must not crash
}

TEST_F(ServiceTest, HistoryRetentionEvictsOldestTerminalJobs) {
  ServiceConfig cfg;
  cfg.max_active = 1;
  cfg.history_limit = 3;
  auto svc = make(cfg);
  // Run 5 jobs to completion, one at a time.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    const auto r = svc.submit(req());
    ASSERT_TRUE(r.accepted());
    svc.note_done(r.job_id, Value(std::int64_t{i}));
    ids.push_back(r.job_id);
  }
  // The 3 newest terminal jobs answer status(); the 2 oldest were evicted
  // and behave exactly like ids that never existed.
  EXPECT_FALSE(svc.status(ids[0]).has_value());
  EXPECT_FALSE(svc.status(ids[1]).has_value());
  for (int i = 2; i < 5; ++i) {
    const auto s = svc.status(ids[i]);
    ASSERT_TRUE(s.has_value()) << "job " << ids[i];
    EXPECT_EQ(s->state, JobState::kDone);
    EXPECT_EQ(s->result.as_int(), i);
  }
  EXPECT_EQ(svc.counters().history_evicted, 2u);
  EXPECT_EQ(svc.list().size(), 3u);
  // Evicted ids are inert everywhere, not just status().
  EXPECT_FALSE(svc.cancel(ids[0]));
  svc.note_done(ids[0], std::nullopt);  // must not crash or recount
  EXPECT_EQ(svc.counters().completed, 5u);
}

TEST_F(ServiceTest, HistoryRetentionNeverEvictsLiveJobs) {
  ServiceConfig cfg;
  cfg.max_active = 1;
  cfg.history_limit = 1;
  auto svc = make(cfg);
  // One active, one pending — both live while two other jobs terminate.
  const auto active = svc.submit(req());
  const auto pending = svc.submit(req());
  const auto doomed = svc.submit(req());
  const auto doomed2 = svc.submit(req());
  ASSERT_TRUE(svc.cancel(doomed.job_id));
  ASSERT_TRUE(svc.cancel(doomed2.job_id));  // evicts doomed
  EXPECT_EQ(svc.counters().history_evicted, 1u);
  EXPECT_FALSE(svc.status(doomed.job_id).has_value());
  // Live jobs survive the churn untouched.
  EXPECT_EQ(svc.status(active.job_id)->state, JobState::kActive);
  EXPECT_EQ(svc.status(pending.job_id)->state, JobState::kPending);
  // Cancelled-then-evicted jobs do not block the pending one from running.
  svc.note_done(active.job_id, std::nullopt);
  EXPECT_EQ(svc.status(pending.job_id)->state, JobState::kActive);
}

TEST_F(ServiceTest, ShedsBelowCapacityWatermarkAndRecovers) {
  ServiceConfig cfg;
  cfg.degrade_watermark = 0.5;
  cfg.degrade_retry_after_ns = 7'000'000'000ULL;
  auto svc = make(cfg);
  double capacity = 1.0;  // the probe reads this by reference
  svc.set_capacity_probe([&capacity] { return capacity; });

  // Healthy pool: admitted.
  EXPECT_TRUE(svc.submit(req()).accepted());

  // Churn takes the pool below the watermark: new submissions shed with a
  // retry-after hint; already-admitted jobs are untouched.
  capacity = 0.25;
  const auto r = svc.submit(req());
  EXPECT_EQ(r.reject, Reject::kDegraded);
  EXPECT_EQ(r.retry_after_ns, 7'000'000'000ULL);
  EXPECT_EQ(svc.counters().rejected_degraded, 1u);
  EXPECT_EQ(svc.counters().accepted, 1u);

  // Capacity returns: admission recovers with no reset or operator action.
  capacity = 0.75;
  EXPECT_TRUE(svc.submit(req()).accepted());
  EXPECT_EQ(svc.counters().rejected_degraded, 1u);
}

TEST_F(ServiceTest, WatermarkZeroDisablesShedding) {
  auto svc = make();  // default: degrade_watermark = 0
  svc.set_capacity_probe([] { return 0.0; });  // pool fully dark
  EXPECT_TRUE(svc.submit(req()).accepted())
      << "no watermark configured: the probe must be ignored";
}

TEST_F(ServiceTest, DegradedShedDoesNotConsumeRateTokens) {
  // A client retrying through a brown-out must not arrive rate-limited the
  // moment capacity returns: the shed happens before the token bucket.
  ServiceConfig cfg;
  cfg.degrade_watermark = 0.5;
  cfg.default_policy.rate_per_sec = 1.0;
  cfg.default_policy.burst = 1.0;
  auto svc = make(cfg);
  double capacity = 0.0;
  svc.set_capacity_probe([&capacity] { return capacity; });
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(svc.submit(req()).reject, Reject::kDegraded);
  }
  capacity = 1.0;
  EXPECT_TRUE(svc.submit(req()).accepted())
      << "the burst token must still be there after the degraded storm";
}

}  // namespace
}  // namespace phish::jobsvc
