// Property tests: scheduler invariants that must hold for every workload,
// policy combination, participant count, and seed.  Parameterized sweeps
// (INSTANTIATE_TEST_SUITE_P) cover the cross-product.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/apps.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "runtime/threads/threads_runtime.hpp"
#include "testing/scenario.hpp"

namespace phish::rt {
namespace {

// Every sweep seed can be overridden for replay — PHISH_TEST_SEED=<n> re-runs
// each case with that seed — and every failure message carries the seed that
// produced it.
std::uint64_t replay_seed(std::uint64_t fallback) {
  return phish::testing::seed_from_env("PHISH_TEST_SEED", fallback);
}

std::string replay_note(std::uint64_t seed) {
  std::ostringstream os;
  os << "seed " << seed << " (replay with PHISH_TEST_SEED=" << seed << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Conservation laws on a clean (fault-free) simulated run.
// ---------------------------------------------------------------------------

struct CleanRunParams {
  const char* app;
  int participants;
  std::uint64_t seed;
};

void PrintTo(const CleanRunParams& p, std::ostream* os) {
  *os << p.app << "/P" << p.participants << "/seed" << p.seed;
}

class CleanRunInvariants : public ::testing::TestWithParam<CleanRunParams> {
 protected:
  static SimJobResult run_case(const CleanRunParams& p) {
    TaskRegistry reg;
    TaskId root;
    std::vector<Value> args;
    if (std::string(p.app) == "fib") {
      root = apps::register_fib(reg, /*sequential_cutoff=*/8);
      args = {Value(std::int64_t{17})};
    } else if (std::string(p.app) == "nqueens") {
      root = apps::register_nqueens(reg, /*sequential_rows=*/4);
      args = {Value(std::int64_t{8})};
    } else {
      root = apps::register_pfold(reg, /*sequential_monomers=*/5);
      args = {Value(std::int64_t{12})};
    }
    SimJobConfig cfg;
    cfg.participants = p.participants;
    cfg.seed = replay_seed(p.seed);
    cfg.clearinghouse.detect_failures = false;
    cfg.worker.heartbeat_period = 0;
    cfg.worker.update_period = 0;
    return run_sim_job(reg, root, std::move(args), cfg);
  }
};

TEST_P(CleanRunInvariants, ConservationLaws) {
  SCOPED_TRACE(replay_note(replay_seed(GetParam().seed)));
  const auto r = run_case(GetParam());
  const auto& a = r.aggregate;

  // Every allocated closure is consumed exactly once: by execution or by
  // leaving its worker (steal or migration double-count on arrival).
  EXPECT_EQ(a.closures_created,
            a.tasks_executed + a.tasks_stolen_from_me + a.tasks_migrated_out);

  // Steals balance: every task surrendered was installed somewhere.
  EXPECT_EQ(a.tasks_stolen_by_me, a.tasks_stolen_from_me);

  // Nothing left allocated after a clean completion.
  EXPECT_EQ(a.tasks_in_use, 0u);

  // Non-local synchronizations are a subset of synchronizations.
  EXPECT_LE(a.non_local_synchs, a.synchronizations);

  // The working set can never exceed total allocations.
  EXPECT_LE(a.max_tasks_in_use, a.closures_created);

  // No dataflow was lost or duplicated on a clean run.
  EXPECT_EQ(a.args_duplicate, 0u);
  EXPECT_EQ(a.args_unknown_closure, 0u);
  EXPECT_EQ(a.tasks_redone, 0u);
}

TEST_P(CleanRunInvariants, WorkIsIndependentOfParticipants) {
  // tasks executed and synchronizations depend only on the program.
  SCOPED_TRACE(replay_note(replay_seed(GetParam().seed)));
  const auto r = run_case(GetParam());
  CleanRunParams one = GetParam();
  one.participants = 1;
  const auto r1 = run_case(one);
  EXPECT_EQ(r.aggregate.tasks_executed, r1.aggregate.tasks_executed);
  EXPECT_EQ(r.aggregate.synchronizations, r1.aggregate.synchronizations);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CleanRunInvariants,
    ::testing::Values(CleanRunParams{"fib", 2, 1},
                      CleanRunParams{"fib", 5, 2},
                      CleanRunParams{"nqueens", 3, 3},
                      CleanRunParams{"nqueens", 8, 4},
                      CleanRunParams{"pfold", 2, 5},
                      CleanRunParams{"pfold", 4, 6},
                      CleanRunParams{"pfold", 7, 7},
                      CleanRunParams{"pfold", 12, 8}));

// ---------------------------------------------------------------------------
// Policy matrix: every scheduling-policy combination computes the right
// answer (they differ only in efficiency).
// ---------------------------------------------------------------------------

struct PolicyParams {
  ExecOrder exec;
  StealOrder steal;
  VictimPolicy victim;
};

void PrintTo(const PolicyParams& p, std::ostream* os) {
  *os << (p.exec == ExecOrder::kLifo ? "LIFO" : "FIFO") << "-"
      << (p.steal == StealOrder::kFifo ? "FIFOsteal" : "LIFOsteal") << "-"
      << static_cast<int>(p.victim);
}

class PolicyMatrix : public ::testing::TestWithParam<PolicyParams> {};

TEST_P(PolicyMatrix, PfoldExactUnderAnyPolicy) {
  const PolicyParams p = GetParam();
  const std::uint64_t seed = replay_seed(42);
  SCOPED_TRACE(replay_note(seed));
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  SimJobConfig cfg;
  cfg.participants = 5;
  cfg.seed = seed;
  cfg.exec_order = p.exec;
  cfg.steal_order = p.steal;
  cfg.worker.victim_policy = p.victim;
  cfg.clearinghouse.detect_failures = false;
  cfg.worker.heartbeat_period = 0;
  cfg.worker.update_period = 0;
  const auto result = run_sim_job(reg, root, {Value(std::int64_t{12})}, cfg);
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(12));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyMatrix,
    ::testing::Values(
        PolicyParams{ExecOrder::kLifo, StealOrder::kFifo,
                     VictimPolicy::kUniformRandom},
        PolicyParams{ExecOrder::kLifo, StealOrder::kLifo,
                     VictimPolicy::kUniformRandom},
        PolicyParams{ExecOrder::kFifo, StealOrder::kFifo,
                     VictimPolicy::kUniformRandom},
        PolicyParams{ExecOrder::kFifo, StealOrder::kLifo,
                     VictimPolicy::kUniformRandom},
        PolicyParams{ExecOrder::kLifo, StealOrder::kFifo,
                     VictimPolicy::kRoundRobin},
        PolicyParams{ExecOrder::kLifo, StealOrder::kFifo,
                     VictimPolicy::kFixedFirst},
        PolicyParams{ExecOrder::kLifo, StealOrder::kFifo,
                     VictimPolicy::kClusterLocal}));

// ---------------------------------------------------------------------------
// Fault-injection sweep: a worker crash at ANY point of the job must leave
// the answer exact (redo + idempotent slots).
// ---------------------------------------------------------------------------

class CrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrashSweep, HistogramExactWithCrashAtVaryingTimes) {
  const int crash_ms = GetParam();
  const std::uint64_t seed =
      replay_seed(1000 + static_cast<std::uint64_t>(crash_ms));
  SCOPED_TRACE(replay_note(seed));
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  SimJobConfig cfg;
  cfg.participants = 4;
  cfg.seed = seed;
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 1500 * sim::kMillisecond;
  cfg.clearinghouse.failure_check_period_ns = 300 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 150 * sim::kMillisecond;
  cfg.max_sim_time = 3'600 * sim::kSecond;
  SimCluster cluster(reg, cfg);
  cluster.crash_at(3, static_cast<sim::SimTime>(crash_ms) *
                          sim::kMillisecond);
  const auto result = cluster.run(root, {Value(std::int64_t{13})});
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(13))
      << "crash at " << crash_ms << " ms corrupted the result";
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrashSweep,
                         ::testing::Values(25, 50, 80, 120, 200, 400));

// ---------------------------------------------------------------------------
// Owner-reclaim sweep: migration at any point preserves exactness.
// ---------------------------------------------------------------------------

class ReclaimSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReclaimSweep, HistogramExactWithReclaimAtVaryingTimes) {
  const int reclaim_ms = GetParam();
  const std::uint64_t seed =
      replay_seed(2000 + static_cast<std::uint64_t>(reclaim_ms));
  SCOPED_TRACE(replay_note(seed));
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  SimJobConfig cfg;
  cfg.participants = 4;
  cfg.seed = seed;
  cfg.clearinghouse.detect_failures = false;
  cfg.worker.heartbeat_period = 0;
  cfg.worker.update_period = 0;
  SimCluster cluster(reg, cfg);
  cluster.reclaim_at(2, static_cast<sim::SimTime>(reclaim_ms) *
                            sim::kMillisecond);
  const auto result = cluster.run(root, {Value(std::int64_t{13})});
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(13));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReclaimSweep,
                         ::testing::Values(20, 40, 70, 110, 180, 300));

// ---------------------------------------------------------------------------
// Grain sweep on the threads runtime: every cutoff computes the same value,
// and coarser grain means fewer tasks.
// ---------------------------------------------------------------------------

class GrainSweep : public ::testing::TestWithParam<int> {};

TEST_P(GrainSweep, FibExactAtEveryGrain) {
  const int cutoff = GetParam();
  const std::uint64_t seed = replay_seed(static_cast<std::uint64_t>(cutoff));
  SCOPED_TRACE(replay_note(seed));
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, cutoff);
  ThreadsConfig cfg;
  cfg.workers = 2;
  cfg.seed = seed;
  ThreadsRuntime rt(reg, cfg);
  const auto result = rt.run(root, {Value(std::int64_t{21})});
  EXPECT_EQ(result.value.as_int(), apps::fib_serial(21));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GrainSweep,
                         ::testing::Values(0, 1, 2, 5, 10, 15, 21, 50));

// ---------------------------------------------------------------------------
// Seed sweep: determinism holds for every seed, and the answer never
// depends on the seed.
// ---------------------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, DeterministicAndSeedIndependentAnswer) {
  const std::uint64_t seed = replay_seed(GetParam());
  SCOPED_TRACE(replay_note(seed));
  auto run_once = [&] {
    TaskRegistry reg;
    const TaskId root = apps::register_nqueens(reg, /*sequential_rows=*/4);
    SimJobConfig cfg;
    cfg.participants = 5;
    cfg.seed = seed;
    cfg.clearinghouse.detect_failures = false;
    cfg.worker.heartbeat_period = 0;
    cfg.worker.update_period = 0;
    return run_sim_job(reg, root, {Value(std::int64_t{8})}, cfg);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.value.as_int(), 92);
  EXPECT_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SeedSweep,
                         ::testing::Values(1, 7, 42, 1994, 0xdeadbeef));

}  // namespace
}  // namespace phish::rt
