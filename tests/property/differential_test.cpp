// Differential tests: the fast hot-path modes vs the seed's heap/eager
// path, through identical scheduler code.
//
// The fast task hot path (closure pooling, lazy id materialization, in-place
// argument assignment, fused LIFO spawn, the lock-free Chase–Lev ready
// deque) must be a pure performance change: every CoreOptions combination —
// the full {pooled, heap} × {lazy, eager} × {fused, plain} × {chase-lev,
// ring} matrix — has to produce the same results, the same task counts, the
// same scheduler statistics, and — under a deterministic clock — the same
// trace bytes.  These tests pin that equivalence so a future hot-path tweak
// that changes scheduling behavior (and not just its cost) fails loudly.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "apps/apps.hpp"
#include "core/local_runner.hpp"
#include "core/worker_core.hpp"
#include "obs/clock.hpp"
#include "obs/trace_file.hpp"
#include "obs/tracer.hpp"

namespace phish {
namespace {

struct ModeParam {
  std::string name;
  CoreOptions options;
};

/// The full mode matrix: allocation × id policy × spawn fusion × deque
/// backend, 16 combinations.  Element 0 is the all-fast mode; the all-seed
/// mode (heap, eager, unfused, guarded ring) is seed_mode() below.
std::vector<ModeParam> all_modes() {
  std::vector<ModeParam> out;
  for (bool pooled : {true, false}) {
    for (bool lazy : {true, false}) {
      for (bool fused : {true, false}) {
        for (bool lockfree : {true, false}) {
          CoreOptions o;
          o.lazy_spawn = lazy;
          o.pooled_alloc = pooled;
          o.fused_spawn = fused;
          o.lockfree_deque = lockfree;
          std::string name = std::string(pooled ? "pooled" : "heap") +
                             (lazy ? "_lazy" : "_eager") +
                             (fused ? "_fused" : "_plain") +
                             (lockfree ? "_cl" : "_ring");
          out.push_back(ModeParam{std::move(name), o});
        }
      }
    }
  }
  return out;
}

CoreOptions seed_mode() {
  CoreOptions o;
  o.lazy_spawn = false;
  o.pooled_alloc = false;
  o.fused_spawn = false;
  o.lockfree_deque = false;
  return o;
}

// The stats fields that define scheduling behavior.  Compared field by
// field so a mismatch names the counter that diverged.
void expect_same_stats(const WorkerStats& a, const WorkerStats& b,
                       const std::string& label) {
  EXPECT_EQ(a.tasks_executed, b.tasks_executed) << label;
  EXPECT_EQ(a.tasks_spawned, b.tasks_spawned) << label;
  EXPECT_EQ(a.closures_created, b.closures_created) << label;
  EXPECT_EQ(a.max_tasks_in_use, b.max_tasks_in_use) << label;
  EXPECT_EQ(a.synchronizations, b.synchronizations) << label;
  EXPECT_EQ(a.non_local_synchs, b.non_local_synchs) << label;
  EXPECT_EQ(a.args_duplicate, b.args_duplicate) << label;
  EXPECT_EQ(a.args_unknown_closure, b.args_unknown_closure) << label;
  EXPECT_EQ(a.executed_depth_total, b.executed_depth_total) << label;
  EXPECT_EQ(a.tasks_stolen_from_me, b.tasks_stolen_from_me) << label;
  EXPECT_EQ(a.tasks_stolen_by_me, b.tasks_stolen_by_me) << label;
}

// ---------------------------------------------------------------------------
// Single-core runs: every mode computes the same value with the same stats.
// ---------------------------------------------------------------------------

struct RunOutcome {
  Value result;
  WorkerStats stats;
};

RunOutcome run_app(const CoreOptions& options, const TaskRegistry& registry,
                   TaskId root, std::vector<Value> args) {
  LocalRunner runner(registry, options);
  RunOutcome out{runner.run(root, std::move(args)), runner.stats()};
  return out;
}

TEST(Differential, FibIdenticalAcrossModes) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/0);
  const RunOutcome ref =
      run_app(seed_mode(), reg, root, {Value(std::int64_t{18})});
  EXPECT_EQ(ref.result.as_int(), apps::fib_serial(18));
  for (const ModeParam& mode : all_modes()) {
    const RunOutcome got =
        run_app(mode.options, reg, root, {Value(std::int64_t{18})});
    EXPECT_EQ(got.result.as_int(), ref.result.as_int()) << mode.name;
    expect_same_stats(got.stats, ref.stats, mode.name);
  }
}

TEST(Differential, NQueensIdenticalAcrossModes) {
  TaskRegistry reg;
  const TaskId root = apps::register_nqueens(reg, /*sequential_rows=*/4);
  const RunOutcome ref =
      run_app(seed_mode(), reg, root, {Value(std::int64_t{8})});
  EXPECT_EQ(ref.result.as_int(), apps::nqueens_serial(8));
  for (const ModeParam& mode : all_modes()) {
    const RunOutcome got =
        run_app(mode.options, reg, root, {Value(std::int64_t{8})});
    EXPECT_EQ(got.result.as_int(), ref.result.as_int()) << mode.name;
    expect_same_stats(got.stats, ref.stats, mode.name);
  }
}

TEST(Differential, PfoldIdenticalAcrossModes) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/4);
  const Histogram expected = apps::pfold_serial(10);
  const RunOutcome ref =
      run_app(seed_mode(), reg, root, {Value(std::int64_t{10})});
  EXPECT_EQ(apps::decode_histogram(ref.result.as_blob()), expected);
  for (const ModeParam& mode : all_modes()) {
    const RunOutcome got =
        run_app(mode.options, reg, root, {Value(std::int64_t{10})});
    EXPECT_EQ(apps::decode_histogram(got.result.as_blob()), expected)
        << mode.name;
    expect_same_stats(got.stats, ref.stats, mode.name);
  }
}

// Exec-order sweep: the differential must hold for FIFO execution too (the
// paper's Table 2 runs both disciplines).
TEST(Differential, FifoExecutionIdenticalAcrossAllocationModes) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, 0);
  CoreOptions fast{ExecOrder::kFifo, StealOrder::kLifo, true, true};
  CoreOptions seed{ExecOrder::kFifo, StealOrder::kLifo, false, false};
  const RunOutcome a = run_app(fast, reg, root, {Value(std::int64_t{14})});
  const RunOutcome b = run_app(seed, reg, root, {Value(std::int64_t{14})});
  EXPECT_EQ(a.result.as_int(), b.result.as_int());
  expect_same_stats(a.stats, b.stats, "fifo");
}

// ---------------------------------------------------------------------------
// Trace replay: under a deterministic clock, all modes produce byte-equal
// trace files.  (With a tracer attached, lazy cores assign ids eagerly so
// events stay named — the byte equality below is what pins that contract.)
// ---------------------------------------------------------------------------

// now() must be const (obs::VirtualClock adapts a const source); ticking is
// observable state the test owns, hence mutable.
struct CountingSource {
  mutable std::uint64_t t = 0;
  std::uint64_t now() const { return ++t; }
};

Bytes traced_run_bytes(const CoreOptions& options) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, 0);
  obs::Tracer tracer(1u << 18);
  CountingSource source;
  obs::VirtualClock<CountingSource> clock(source);
  LocalRunner runner(reg, options);
  runner.core().set_trace(tracer.shard(0), &clock);
  const Value result = runner.run(root, {Value(std::int64_t{14})});
  EXPECT_EQ(result.as_int(), apps::fib_serial(14));
  obs::TraceData data;
  data.runtime = "differential";
  data.clock = obs::ClockDomain::kVirtual;
  data.participants = 1;
  data.take_from(tracer);
  EXPECT_EQ(data.dropped, 0u);
  return obs::encode_trace(data);
}

TEST(Differential, TraceBytesIdenticalAcrossModes) {
  const Bytes ref = traced_run_bytes(seed_mode());
  ASSERT_FALSE(ref.empty());
  for (const ModeParam& mode : all_modes()) {
    EXPECT_EQ(traced_run_bytes(mode.options), ref) << mode.name;
  }
}

// ---------------------------------------------------------------------------
// Steals: lazy victims materialize ids at steal time; the stolen work and
// the final result must match the eager/heap path.
// ---------------------------------------------------------------------------

// Two cores wired back-to-back in memory.  Remote sends are queued and
// pumped deterministically; the thief steals in batches whenever it runs
// dry, so lazy victims exercise materialize() on every stolen closure.
struct TwoCoreResult {
  Value result;
  WorkerStats victim;
  WorkerStats thief;
};

TwoCoreResult run_two_cores(const CoreOptions& options,
                            const TaskRegistry& reg, TaskId root,
                            std::vector<Value> args) {
  std::optional<Value> result;
  std::deque<std::pair<ContRef, Value>> wires;
  WorkerCore::Hooks hooks;
  hooks.send_remote = [&](const ContRef& cont, Value value) {
    if (cont.home == kResultNode) {
      result = std::move(value);
      return;
    }
    wires.emplace_back(cont, std::move(value));
  };
  WorkerCore victim(net::NodeId{0}, reg, hooks, options);
  WorkerCore thief(net::NodeId{1}, reg, hooks, options);
  WorkerCore* cores[2] = {&victim, &thief};

  victim.spawn(root, ArgSlots(std::move(args)), root_continuation(), 0);
  // Round-robin: each core runs a small batch, the thief steals when idle,
  // queued cross-core sends are delivered between batches.  Deterministic,
  // so stats are comparable across modes.
  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (int i = 0; i < 2; ++i) {
      for (int n = 0; n < 4; ++n) {
        auto task = cores[i]->pop_for_execution();
        if (!task) break;
        cores[i]->execute(*task);
        work_left = true;
      }
    }
    if (!thief.has_ready()) {
      thief.note_steal_request_sent();
      std::vector<Closure> got =
          victim.try_steal_batch(net::NodeId{1}, WorkerCore::kMaxStealBatch);
      if (got.empty()) {
        thief.note_steal_failed();
      } else {
        for (Closure& c : got) {
          // Every stolen closure must have been materialized by the victim.
          EXPECT_TRUE(c.id.valid());
          thief.install_stolen(std::move(c));
        }
        work_left = true;
      }
    }
    while (!wires.empty()) {
      auto [cont, value] = std::move(wires.front());
      wires.pop_front();
      cores[cont.home.value]->deliver_remote(cont.target, cont.slot,
                                             std::move(value));
      work_left = true;
    }
  }
  TwoCoreResult out;
  EXPECT_TRUE(result.has_value());
  out.result = result.value_or(Value());
  out.victim = victim.stats();
  out.thief = thief.stats();
  return out;
}

TEST(Differential, StealMaterializationMatchesSeedPath) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, 0);
  const TwoCoreResult seed =
      run_two_cores(seed_mode(), reg, root, {Value(std::int64_t{15})});
  EXPECT_EQ(seed.result.as_int(), apps::fib_serial(15));
  // The deterministic pump must actually have stolen something, or this
  // test is vacuous.
  EXPECT_GT(seed.victim.tasks_stolen_from_me, 0u);
  for (const ModeParam& mode : all_modes()) {
    const TwoCoreResult got =
        run_two_cores(mode.options, reg, root, {Value(std::int64_t{15})});
    EXPECT_EQ(got.result.as_int(), apps::fib_serial(15)) << mode.name;
    expect_same_stats(got.victim, seed.victim, mode.name + "/victim");
    expect_same_stats(got.thief, seed.thief, mode.name + "/thief");
  }
}

// Stolen ids must be globally unique even when the victim materializes them
// lazily: each first-time materialization must mint a fresh sequence number,
// never one a join or an earlier steal already holds.  The thief is a
// separate core (a closure stolen twice from the same core would keep its
// id, legitimately).
TEST(Differential, LazyMaterializedIdsAreUnique) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, 0);
  CoreOptions lazy{ExecOrder::kLifo, StealOrder::kFifo, true, true};
  std::optional<Value> result;
  std::deque<std::pair<ContRef, Value>> wires;
  WorkerCore::Hooks hooks;
  hooks.send_remote = [&](const ContRef& cont, Value value) {
    if (cont.home == kResultNode) {
      result = std::move(value);
      return;
    }
    wires.emplace_back(cont, std::move(value));
  };
  WorkerCore victim(net::NodeId{0}, reg, hooks, lazy);
  WorkerCore thief(net::NodeId{1}, reg, hooks, lazy);
  WorkerCore* cores[2] = {&victim, &thief};
  victim.spawn(root, {Value(std::int64_t{12})}, root_continuation(), 0);
  std::set<std::pair<std::uint32_t, std::uint64_t>> seen;
  bool work_left = true;
  while (work_left) {
    work_left = false;
    for (int i = 0; i < 2; ++i) {
      for (int n = 0; n < 3; ++n) {
        auto task = cores[i]->pop_for_execution();
        if (!task) break;
        cores[i]->execute(*task);
        work_left = true;
      }
    }
    // Steal in small batches so materialization happens at varied points.
    std::vector<Closure> got = victim.try_steal_batch(net::NodeId{1}, 4);
    for (Closure& c : got) {
      ASSERT_TRUE(c.id.valid());
      const auto key = std::make_pair(c.id.origin.value, c.id.seq);
      EXPECT_TRUE(seen.insert(key).second)
          << "duplicate materialized id " << to_string(c.id);
      thief.install_stolen(std::move(c));
      work_left = true;
    }
    while (!wires.empty()) {
      auto [cont, value] = std::move(wires.front());
      wires.pop_front();
      cores[cont.home.value]->deliver_remote(cont.target, cont.slot,
                                             std::move(value));
      work_left = true;
    }
  }
  EXPECT_GT(seen.size(), 0u);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->as_int(), apps::fib_serial(12));
}

}  // namespace
}  // namespace phish
