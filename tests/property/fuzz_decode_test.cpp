// Decoder robustness: every wire decoder must reject or safely absorb
// arbitrary bytes — a torn or hostile UDP datagram must never crash a
// worker, the Clearinghouse, or the JobQ.  (The paper's system lived on an
// open university network; so does ours.)
#include <gtest/gtest.h>

#include <functional>

#include "apps/pfold/pfold.hpp"
#include "core/jobq.hpp"
#include "core/protocol.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "util/rng.hpp"

namespace phish {
namespace {

Bytes random_bytes(Xoshiro256& rng, std::size_t max_len) {
  Bytes b(rng.below(max_len + 1));
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.below(256));
  return b;
}

class FuzzDecode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDecode, AllDecodersSurviveGarbage) {
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    const Bytes b = random_bytes(rng, 256);
    // None of these may crash; they may return nullopt or garbage values.
    (void)proto::ArgumentMsg::decode(b);
    (void)proto::DeadMsg::decode(b);
    (void)proto::MigrateMsg::decode(b);
    (void)proto::StatsMsg::decode(b);
    (void)proto::IoMsg::decode(b);
    (void)proto::Membership::decode(b);
    (void)proto::StealRequest::decode(b);
    (void)proto::StealReply::decode(b);
    (void)JobSpec::decode(b);
    (void)JobAssignment::decode(b);
    (void)rt::JobCheckpoint::decode(b);
    Reader r(b);
    (void)Closure::decode(r);
    Reader r2(b);
    (void)Value::decode(r2);
  }
}

TEST_P(FuzzDecode, TruncationsOfValidMessagesAreRejectedOrSafe) {
  Xoshiro256 rng(GetParam() ^ 0x7777);
  // Build a valid message of each kind, then decode every prefix.
  proto::MigrateMsg migrate;
  migrate.from = net::NodeId{3};
  Closure c;
  c.id = ClosureId{net::NodeId{3}, 9};
  c.task = 1;
  c.args = {Value(std::int64_t{5}), Value(Bytes{1, 2, 3})};
  migrate.closures.push_back(c);
  const Bytes full = migrate.encode();
  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes prefix(full.begin(), full.begin() + static_cast<long>(len));
    EXPECT_FALSE(proto::MigrateMsg::decode(prefix).has_value())
        << "truncated at " << len;
  }
  // And with random corruption of single bytes: decode must not crash, and
  // if it succeeds the result must still be structurally sane.
  for (int trial = 0; trial < 200; ++trial) {
    Bytes corrupt = full;
    corrupt[rng.below(corrupt.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    auto decoded = proto::MigrateMsg::decode(corrupt);
    if (decoded) {
      EXPECT_LE(decoded->closures.size(), 1u << 24);
    }
  }
}

TEST(FuzzDecodeRegression, TruncatedStealReplyClosureIsRejected) {
  // Regression: a steal reply truncated exactly after the closure header —
  // claiming N>0 argument slots but carrying none — used to decode with
  // r.ok() still true, so the thief installed a garbage closure and crashed
  // on the registry bounds check when it came up for execution.  The decoder
  // must fail the reader on any structurally short payload.
  Closure c;
  c.id = ClosureId{net::NodeId{2}, 17};
  c.task = 0;
  c.cont = ContRef{ClosureId{net::NodeId{1}, 5}, 0, net::NodeId{1}};
  c.args = {Value(std::int64_t{7}), Value(std::int64_t{8})};
  proto::StealReply reply;
  reply.tasks.push_back(c);
  const Bytes full = reply.encode();
  // Every strict prefix must be rejected — including the one ending right at
  // the closure header boundary (count + header, zero slot bytes).
  for (std::size_t len = 0; len < full.size(); ++len) {
    Bytes prefix(full.begin(), full.begin() + static_cast<long>(len));
    EXPECT_FALSE(proto::StealReply::decode(prefix).has_value())
        << "truncated steal reply accepted at " << len;
  }
  EXPECT_TRUE(proto::StealReply::decode(full).has_value());
}

TEST(FuzzDecodeRegression, AbsurdClosurePayloadsFailTheReader) {
  // Structurally absurd closures: enormous slot count, missing > nargs,
  // invalid id, invalid task.  Each must fail the reader (not return a
  // half-real closure with r.ok() == true).
  struct Case {
    const char* name;
    std::function<void(Writer&)> write;
  };
  const ClosureId good_id{net::NodeId{1}, 1};
  const auto header = [&](Writer& w, std::uint32_t nargs,
                          std::uint32_t missing, bool valid_id,
                          std::uint32_t task) {
    (valid_id ? good_id : ClosureId{}).encode(w);
    w.u32(task);
    ContRef{}.encode(w);
    w.u32(0);  // depth
    w.u32(nargs);
    w.u32(missing);
  };
  const std::vector<Case> cases = {
      {"slot count beyond kMaxWireSlots",
       [&](Writer& w) { header(w, Closure::kMaxWireSlots + 1, 0, true, 0); }},
      {"missing exceeds nargs", [&](Writer& w) { header(w, 1, 2, true, 0); }},
      {"invalid closure id", [&](Writer& w) { header(w, 0, 0, false, 0); }},
      {"invalid task id",
       [&](Writer& w) { header(w, 0, 0, true, kInvalidTask); }},
      {"fill flags disagree with missing-count",
       [&](Writer& w) {
         header(w, 1, 1, true, 0);
         w.boolean(true);  // slot claims filled, but missing says 1
         Value(std::int64_t{3}).encode(w);
       }},
  };
  for (const Case& test_case : cases) {
    Writer w;
    test_case.write(w);
    Reader r(w.bytes());
    (void)Closure::decode(r);
    EXPECT_FALSE(r.ok()) << test_case.name;
  }
}

TEST_P(FuzzDecode, GarbageDatagramsDoNotDisturbARunningJob) {
  // Inject random datagrams (random type, random payload) at every node of
  // a simulated job while it runs; the job must still produce the exact
  // answer.
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/6);
  rt::SimJobConfig cfg;
  cfg.participants = 3;
  cfg.seed = GetParam();
  cfg.clearinghouse.detect_failures = false;
  cfg.worker.heartbeat_period = 0;
  cfg.worker.update_period = 0;
  rt::SimCluster cluster(reg, cfg);

  Xoshiro256 rng(GetParam() ^ 0xabcd);
  auto& sim = cluster.simulator();
  auto& net = cluster.network();
  // Attacker node 99 sprays garbage every 5 ms for the first 300 ms.
  auto& attacker = net.channel(net::NodeId{99});
  for (int t = 1; t <= 60; ++t) {
    sim.schedule_at(static_cast<sim::SimTime>(t) * 5 * sim::kMillisecond,
                    [&attacker, &rng] {
                      const net::NodeId target{
                          static_cast<std::uint32_t>(rng.below(5))};
                      const auto type =
                          static_cast<std::uint16_t>(rng.below(0x10000));
                      Bytes payload(rng.below(64));
                      for (auto& byte : payload) {
                        byte = static_cast<std::uint8_t>(rng.below(256));
                      }
                      attacker.send(target, type, std::move(payload));
                    });
  }
  const auto result = cluster.run(root, {Value(std::int64_t{12})});
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecode,
                         ::testing::Values(1u, 99u, 31337u));

}  // namespace
}  // namespace phish
