// Seeded chaos sweep: every runtime x application under scripted fault
// schedules (drop / duplicate / reorder / delay, crash, reclaim, transient
// partition).  Every case must produce the fault-free serial answer; a
// failure prints the exact seed and the full FaultPlan, which replay the run
// byte-for-byte:
//
//   PHISH_CHAOS_SEED=<seed> PHISH_CHAOS_RUNTIME=<rt> PHISH_CHAOS_APP=<app>
//       ./test_chaos --gtest_filter='*ReplaySeedFromEnv*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "apps/apps.hpp"
#include "core/protocol.hpp"
#include "harness/scenario_runner.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "testing/scenario.hpp"

namespace phish::testing {
namespace {

class ChaosSweep : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosSweep, MatchesFaultFreeReference) {
  const ChaosOutcome o = run_chaos_case(GetParam());
  EXPECT_TRUE(o.ok) << o.failure;
}

INSTANTIATE_TEST_SUITE_P(Matrix, ChaosSweep,
                         ::testing::ValuesIn(chaos_matrix()));

TEST(ChaosMatrix, CoversAllRuntimesWithAtLeastFiftyCases) {
  const auto cases = chaos_matrix();
  EXPECT_GE(cases.size(), 50u);
  int by_runtime[3] = {0, 0, 0};
  for (const ChaosCase& c : cases) {
    ++by_runtime[static_cast<int>(c.runtime)];
  }
  EXPECT_GT(by_runtime[static_cast<int>(ChaosRuntime::kThreads)], 0);
  EXPECT_GT(by_runtime[static_cast<int>(ChaosRuntime::kSimdist)], 0);
  EXPECT_GT(by_runtime[static_cast<int>(ChaosRuntime::kUdp)], 0);
}

TEST(ChaosReplay, SimdistCaseReplaysBitForBit) {
  // The whole point of the seed: the same case runs to the same simulated
  // history, fingerprinted by event and message counts.
  const ChaosCase c{ChaosRuntime::kSimdist, "pfold", 1003, 0};
  const ChaosOutcome a = run_chaos_case(c);
  const ChaosOutcome b = run_chaos_case(c);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.plan.describe(), b.plan.describe());
}

TEST(ChaosReplay, PlanGenerationIsAPureFunctionOfTheSeed) {
  ChaosProfile profile;
  profile.workers = 5;
  for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    EXPECT_EQ(make_chaos_plan(seed, profile).describe(),
              make_chaos_plan(seed, profile).describe());
  }
  EXPECT_NE(make_chaos_plan(7, profile).describe(),
            make_chaos_plan(8, profile).describe());
}

TEST(ChaosReplay, ReplaySeedFromEnv) {
  // Replay hook: with PHISH_CHAOS_SEED unset this runs one fixed schedule;
  // with it set (plus optional PHISH_CHAOS_RUNTIME / PHISH_CHAOS_APP) it
  // re-runs exactly the schedule a failing sweep case printed.
  ChaosCase c{ChaosRuntime::kSimdist, "pfold",
              seed_from_env("PHISH_CHAOS_SEED", 2001), 0};
  if (const char* rt = std::getenv("PHISH_CHAOS_RUNTIME")) {
    const std::string name = rt;
    if (name == "threads") c.runtime = ChaosRuntime::kThreads;
    if (name == "udp") c.runtime = ChaosRuntime::kUdp;
  }
  static std::string app;  // ChaosCase keeps a borrowed pointer
  if (const char* a = std::getenv("PHISH_CHAOS_APP")) {
    app = a;
    c.app = app.c_str();
  }
  const ChaosOutcome o = run_chaos_case(c);
  EXPECT_TRUE(o.ok) << o.failure;
}

TEST(ChaosComposition, SweepEngagesMigrationDurabilityLedger) {
  // The Matrix sweep above already pins every composition_only case (seeds
  // 6000+) individually; this test guards against the whole category going
  // vacuous.  Across a fresh band of reclaim-then-crash /
  // migrate-midflight-crash seeds, the runs must not only stay exact — the
  // durability handshake itself must fire: reclaimed owners registering and
  // handing cargo to successors (tasks_migrated_out).  Whether a given seed
  // then crashes the successor *inside* the ~1 ms window before it executes
  // the inherited cargo is timing noise (handoff latency jitter dwarfs the
  // window), so post-death redelivery is not asserted here — it is pinned
  // deterministically by the Clearinghouse migration-ledger tests in
  // tests/core/clearinghouse_test.cpp.
  const char* kApps[] = {"fib", "nqueens", "pfold"};
  WorkerStats sum;
  for (std::uint64_t i = 0; i < 90; ++i) {
    ChaosCase c{ChaosRuntime::kSimdist, kApps[i % 3], 6500 + i, 0,
                /*failover_only=*/false, /*composition_only=*/true};
    const ChaosOutcome o = run_chaos_case(c);
    EXPECT_TRUE(o.ok) << o.failure;
    sum.merge(o.aggregate);
  }
  EXPECT_GT(sum.tasks_migrated_out, 0u)
      << "vacuous: no composition seed ever migrated cargo out";
}

TEST(ChaosScripted, EarlyPartitionHealsAndJobCompletes) {
  // A hand-written plan (not generator output) driving the partition path
  // end-to-end: worker 2 is cut from t=0 to t=120ms — its registration RPC
  // retransmits past the heal, after which it joins and the job finishes
  // exactly, with messy links on top.
  net::FaultPlan plan;
  plan.seed = 77;
  net::LinkRule all;
  all.drop = 0.05;
  all.duplicate = 0.05;
  all.reorder = 0.05;
  plan.links.push_back(all);
  plan.lossless_types = {proto::kArgument, proto::kMigrate};
  plan.events.push_back({0, net::NodeFaultKind::kPartition, 2});
  plan.events.push_back({120'000'000, net::NodeFaultKind::kHeal, 2});

  TaskRegistry reg;
  const TaskId root = apps::register_nqueens(reg, /*sequential_rows=*/4);
  rt::SimJobConfig cfg;
  cfg.participants = 4;
  cfg.seed = 4242;
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 1500 * sim::kMillisecond;
  cfg.clearinghouse.failure_check_period_ns = 300 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 150 * sim::kMillisecond;
  cfg.worker.rpc_policy = {100 * sim::kMillisecond, 10, 1.5};
  rt::SimCluster cluster(reg, cfg);
  cluster.apply_fault_plan(plan);
  const auto result = cluster.run(root, {Value(std::int64_t{8})});
  EXPECT_EQ(result.value.as_int(), 92) << plan.describe();
  EXPECT_EQ(result.aggregate.tasks_redone, 0u)
      << "partition under the heartbeat timeout must not read as a death";
}

TEST(ChaosScripted, CrashPlanTriggersRedoAndStaysExact) {
  // Deterministic crash-category plan: worker death mid-job under lossy
  // links must engage the steal-ledger redo machinery and still be exact.
  net::FaultPlan plan;
  plan.seed = 99;
  net::LinkRule all;
  all.drop = 0.10;
  all.duplicate = 0.05;
  plan.links.push_back(all);
  plan.lossless_types = {proto::kArgument, proto::kMigrate};
  plan.events.push_back({60'000'000, net::NodeFaultKind::kCrash, 3});

  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  rt::SimJobConfig cfg;
  cfg.participants = 4;
  cfg.seed = 99;
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 1500 * sim::kMillisecond;
  cfg.clearinghouse.failure_check_period_ns = 300 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 150 * sim::kMillisecond;
  cfg.worker.rpc_policy = {100 * sim::kMillisecond, 10, 1.5};
  rt::SimCluster cluster(reg, cfg);
  cluster.apply_fault_plan(plan);
  const auto result = cluster.run(root, {Value(std::int64_t{13})});
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(13))
      << plan.describe();
}

TEST(ChaosScripted, LazyMaterializationSurvivesCrashesOnFineGrain) {
  // Fully fine-grained fib maximizes the lazy hot path: every spawn defers
  // its ClosureId until a thief forces materialization, and a crash then
  // replays ledgered redo snapshots that were captured from materialized
  // closures.  Two workers die mid-job under lossy links; the answer must
  // still be exact — a duplicated or missing materialized id would surface
  // here as a dropped or double-counted subtree.
  net::FaultPlan plan;
  plan.seed = 1234;
  net::LinkRule all;
  all.drop = 0.10;
  all.duplicate = 0.05;
  all.reorder = 0.05;
  plan.links.push_back(all);
  plan.lossless_types = {proto::kArgument, proto::kMigrate};
  plan.events.push_back({40'000'000, net::NodeFaultKind::kCrash, 2});
  plan.events.push_back({90'000'000, net::NodeFaultKind::kCrash, 4});

  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/0);
  rt::SimJobConfig cfg;
  cfg.participants = 5;
  cfg.seed = 1234;
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 1500 * sim::kMillisecond;
  cfg.clearinghouse.failure_check_period_ns = 300 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 150 * sim::kMillisecond;
  cfg.worker.rpc_policy = {100 * sim::kMillisecond, 10, 1.5};
  rt::SimCluster cluster(reg, cfg);
  cluster.apply_fault_plan(plan);
  const auto result = cluster.run(root, {Value(std::int64_t{14})});
  EXPECT_EQ(result.value.as_int(), apps::fib_serial(14)) << plan.describe();
  EXPECT_GT(result.aggregate.tasks_stolen_from_me, 0u)
      << "vacuous: no steal ever forced a lazy materialization";
}

}  // namespace
}  // namespace phish::testing
