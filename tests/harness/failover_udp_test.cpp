// Control-plane failover on the UDP runtime: real sockets, scripted
// kill-the-primary / kill-and-rejoin chaos in wall-clock time.
//
// These tests measure real-time failure detection (heartbeat and lease
// timeouts against a wall clock), so they run RUN_SERIAL in ctest: a loaded
// machine starves the heartbeat threads and turns timing into noise.
#include <cstdint>

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "runtime/udp/udp_runtime.hpp"

namespace phish::testing {
namespace {

rt::UdpJobConfig udp_failover_config(std::uint64_t seed) {
  rt::UdpJobConfig cfg;
  cfg.workers = 3;
  cfg.net.base_port = 0;  // ephemeral: no collisions under ctest -j
  cfg.seed = seed;
  cfg.enable_backup = true;
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 2'000'000'000ULL;
  cfg.clearinghouse.failure_check_period_ns = 300'000'000ULL;
  cfg.clearinghouse.replicate_period_ns = 100'000'000ULL;
  cfg.clearinghouse.lease_timeout_ns = 400'000'000ULL;
  cfg.clearinghouse.lease_check_period_ns = 100'000'000ULL;
  cfg.heartbeat_period_ns = 200'000'000ULL;
  cfg.timeout_seconds = 60.0;
  return cfg;
}

/// fib(n) without the exponential recursion of apps::fib_serial (the
/// reference for fib(45) must not itself take seconds).
std::int64_t fib_iterative(int n) {
  std::int64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::int64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

TEST(UdpFailover, PrimaryKillPromotesBackupAndFinishes) {
  TaskRegistry reg;
  // fib(45)/cutoff 22 runs ~2.3s wall on 3 loopback workers: the 400ms kill
  // lands mid-job and promotion (~0.9s) leaves ample post-failover stealing.
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/22);
  rt::UdpJobConfig cfg = udp_failover_config(0x0ddf'a110);
  cfg.kill_primary_after_ns = 400'000'000ULL;
  rt::UdpJob job(reg, cfg);
  const auto result = job.run(root, {Value(std::int64_t{45})});
  EXPECT_EQ(result.value.as_int(), fib_iterative(45));
  EXPECT_GE(result.recovery.detects, 1u);
  EXPECT_EQ(result.recovery.promotions, 1u);
  EXPECT_GE(result.recovery.mttr_count, 1u);
}

TEST(UdpFailover, ReclaimedWorkerDrainsThroughLedgerAndRejoins) {
  // Owner return over real sockets: worker 1 is evicted mid-job and must
  // drain its closures through the acked migration-ledger handshake
  // (register at the coordinator, RPC handoff, holder confirm) instead of
  // the old fire-and-forget kMigrate; it later rejoins as a fresh
  // incarnation while its stub keeps forwarding stragglers.  The answer
  // must stay exact.
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/22);
  rt::UdpJobConfig cfg = udp_failover_config(0x3ec1'a1fe);
  cfg.enable_backup = false;
  cfg.node_events.push_back(
      {400'000'000ULL, net::NodeFaultKind::kReclaim, 1});
  cfg.node_events.push_back(
      {1'400'000'000ULL, net::NodeFaultKind::kRestart, 1});
  rt::UdpJob job(reg, cfg);
  const auto result = job.run(root, {Value(std::int64_t{45})});
  EXPECT_EQ(result.value.as_int(), fib_iterative(45));
  EXPECT_GT(result.aggregate.tasks_migrated_out, 0u)
      << "vacuous: the reclaim found worker 1 already empty";
}

TEST(UdpFailover, KilledWorkerRejoinsMidJob) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/22);
  rt::UdpJobConfig cfg = udp_failover_config(0x1d30);
  cfg.enable_backup = false;
  cfg.kill_worker_after_ns = 300'000'000ULL;
  cfg.kill_worker_index = 1;
  cfg.rejoin_worker_after_ns = 1'200'000'000ULL;
  rt::UdpJob job(reg, cfg);
  const auto result = job.run(root, {Value(std::int64_t{45})});
  EXPECT_EQ(result.value.as_int(), fib_iterative(45));
  EXPECT_GE(result.recovery.rejoins, 1u);
}

}  // namespace
}  // namespace phish::testing
