// Control-plane failover on the UDP runtime: real sockets, scripted
// kill-the-primary / kill-and-rejoin chaos in wall-clock time.
//
// These tests measure real-time failure detection (heartbeat and lease
// timeouts against a wall clock), so they run RUN_SERIAL in ctest: a loaded
// machine starves the heartbeat threads and turns timing into noise.
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "core/clearinghouse.hpp"
#include "core/closure.hpp"
#include "core/protocol.hpp"
#include "runtime/udp/udp_runtime.hpp"

namespace phish::testing {
namespace {

rt::UdpJobConfig udp_failover_config(std::uint64_t seed) {
  rt::UdpJobConfig cfg;
  cfg.workers = 3;
  cfg.net.base_port = 0;  // ephemeral: no collisions under ctest -j
  cfg.seed = seed;
  cfg.enable_backup = true;
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 2'000'000'000ULL;
  cfg.clearinghouse.failure_check_period_ns = 300'000'000ULL;
  cfg.clearinghouse.replicate_period_ns = 100'000'000ULL;
  cfg.clearinghouse.lease_timeout_ns = 400'000'000ULL;
  cfg.clearinghouse.lease_check_period_ns = 100'000'000ULL;
  cfg.heartbeat_period_ns = 200'000'000ULL;
  cfg.timeout_seconds = 60.0;
  return cfg;
}

/// fib(n) without the exponential recursion of apps::fib_serial (the
/// reference for fib(45) must not itself take seconds).
std::int64_t fib_iterative(int n) {
  std::int64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::int64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

TEST(UdpFailover, PrimaryKillPromotesBackupAndFinishes) {
  TaskRegistry reg;
  // fib(45)/cutoff 22 runs ~2.3s wall on 3 loopback workers: the 400ms kill
  // lands mid-job and promotion (~0.9s) leaves ample post-failover stealing.
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/22);
  rt::UdpJobConfig cfg = udp_failover_config(0x0ddf'a110);
  cfg.kill_primary_after_ns = 400'000'000ULL;
  rt::UdpJob job(reg, cfg);
  const auto result = job.run(root, {Value(std::int64_t{45})});
  EXPECT_EQ(result.value.as_int(), fib_iterative(45));
  EXPECT_GE(result.recovery.detects, 1u);
  EXPECT_EQ(result.recovery.promotions, 1u);
  EXPECT_GE(result.recovery.mttr_count, 1u);
}

TEST(UdpFailover, ReclaimedWorkerDrainsThroughLedgerAndRejoins) {
  // Owner return over real sockets: worker 1 is evicted mid-job and must
  // drain its closures through the acked migration-ledger handshake
  // (register at the coordinator, RPC handoff, holder confirm) instead of
  // the old fire-and-forget kMigrate; it later rejoins as a fresh
  // incarnation while its stub keeps forwarding stragglers.  The answer
  // must stay exact.
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/22);
  rt::UdpJobConfig cfg = udp_failover_config(0x3ec1'a1fe);
  cfg.enable_backup = false;
  cfg.node_events.push_back(
      {400'000'000ULL, net::NodeFaultKind::kReclaim, 1});
  cfg.node_events.push_back(
      {1'400'000'000ULL, net::NodeFaultKind::kRestart, 1});
  rt::UdpJob job(reg, cfg);
  const auto result = job.run(root, {Value(std::int64_t{45})});
  EXPECT_EQ(result.value.as_int(), fib_iterative(45));
  EXPECT_GT(result.aggregate.tasks_migrated_out, 0u)
      << "vacuous: the reclaim found worker 1 already empty";
}

TEST(UdpFailover, RejoinedWorkerReinstallsRedeliveredMigration) {
  // Regression: the migration dedupe set belongs to one incarnation.  A
  // worker that installed migration M, crashed, and rejoined must install a
  // Clearinghouse redelivery of M AGAIN — the installs died with the old
  // core.  A stale dedupe hit would ack true without installing, the ledger
  // would record the new incarnation as holder, and the cargo would be
  // silently and permanently lost.  (Common in small clusters: redelivery
  // targets the lowest-id live participant, often the rejoined node
  // itself.)  Here the test driver plays origin and coordinator so the
  // redelivery deterministically lands on the rejoined worker.
  TaskRegistry reg;
  apps::register_fib(reg, /*sequential_cutoff=*/22);

  net::UdpParams net_params;
  net_params.base_port = 0;  // ephemeral: no collisions under ctest -j
  net::UdpNetwork network(net_params);
  net::ThreadTimerService timers;

  const net::NodeId ch_node{0};
  net::RpcNode ch_rpc(network.channel(ch_node), timers);
  ClearinghouseConfig ch_cfg;
  ch_cfg.detect_failures = false;
  Clearinghouse ch(ch_rpc, timers, ch_cfg);
  ch.start();

  rt::UdpJobConfig cfg;
  cfg.workers = 1;
  cfg.rpc_policy = net::RetryPolicy{50'000'000, 3, 1.5};  // bounds rejoin()
  rt::UdpWorker worker(network, timers, reg, net::NodeId{1}, {ch_node}, cfg,
                       /*seed=*/0x5eed'1234ULL);
  worker.start();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (ch.membership().participants.empty()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "worker never registered";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  net::RpcNode driver(network.channel(net::NodeId{2}), timers);
  const auto call_migrate = [&](const proto::MigrateMsg& m) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false, accepted = false;
    driver.call(
        net::NodeId{1}, proto::kRpcMigrate, m.encode(),
        [&](net::RpcResult r) {
          if (r.ok) {
            Reader rd(r.reply);
            accepted = rd.boolean() && rd.ok();
          }
          std::lock_guard<std::mutex> lock(mu);
          done = true;
          cv.notify_all();
        },
        cfg.rpc_policy);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return accepted;
  };

  // A waiting closure (one empty slot): installable and id-addressable but
  // never executed, so the test stays a pure install-path probe.
  const auto make_waiting_cargo = [] {
    Closure c;
    c.id = ClosureId{net::NodeId{2}, 7};
    c.task = TaskId{0};
    c.args.reset(1);
    c.missing = 1;
    return c;
  };
  const std::uint64_t mid = (2ull << 32) | 1;
  proto::MigrateMsg first;
  first.from = net::NodeId{2};
  first.closures.push_back(make_waiting_cargo());
  first.migration_id = mid;
  first.redelivery = false;
  ASSERT_TRUE(call_migrate(first)) << "live worker must accept the handoff";

  worker.kill();
  worker.rejoin();  // blocks until the dead life's thread is gone
  ASSERT_EQ(worker.incarnation(), 2u);

  proto::MigrateMsg redelivered;
  redelivered.from = net::NodeId{2};
  redelivered.closures.push_back(make_waiting_cargo());
  redelivered.migration_id = mid;
  redelivered.redelivery = true;
  ASSERT_TRUE(call_migrate(redelivered));
  EXPECT_GE(worker.stats_snapshot().tasks_migration_redone, 1u)
      << "the rejoined incarnation deduped the redelivery against the dead "
         "life's installs: the cargo was acked but never installed";

  worker.request_stop();
  worker.join();
  ch.stop();
}

TEST(UdpFailover, KilledWorkerRejoinsMidJob) {
  TaskRegistry reg;
  const TaskId root = apps::register_fib(reg, /*sequential_cutoff=*/22);
  rt::UdpJobConfig cfg = udp_failover_config(0x1d30);
  cfg.enable_backup = false;
  cfg.kill_worker_after_ns = 300'000'000ULL;
  cfg.kill_worker_index = 1;
  cfg.rejoin_worker_after_ns = 1'200'000'000ULL;
  rt::UdpJob job(reg, cfg);
  const auto result = job.run(root, {Value(std::int64_t{45})});
  EXPECT_EQ(result.value.as_int(), fib_iterative(45));
  EXPECT_GE(result.recovery.rejoins, 1u);
}

}  // namespace
}  // namespace phish::testing
