#include "harness/scenario_runner.hpp"

#include <exception>
#include <sstream>
#include <string>

#include "apps/apps.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "runtime/threads/threads_runtime.hpp"
#include "runtime/udp/udp_runtime.hpp"
#include "testing/scenario.hpp"
#include "util/rng.hpp"

namespace phish::testing {
namespace {

using rt::SimJobConfig;
using rt::ThreadsConfig;
using rt::UdpJobConfig;

struct AppSpec {
  TaskId root;
  std::vector<Value> args;
  int n = 0;  // problem size, for the serial reference
};

/// Register `app` sized for chaos sweeps: small enough that dozens of cases
/// stay cheap, parallel enough that steals / migrations actually happen.
/// `big` sizes up the instance for the composition sweeps: a reclaim must
/// land while workers still hold closures, and the default micro-instances
/// are communication-bound (workers idle most of the run), which would make
/// reclaim-then-crash plans vacuous.
AppSpec register_app(TaskRegistry& reg, const std::string& app,
                     bool big = false) {
  if (app == "fib") {
    const int n = big ? 20 : 17;
    return {apps::register_fib(reg, /*sequential_cutoff=*/8),
            {Value(std::int64_t{n})},
            n};
  }
  if (app == "nqueens") {
    const int n = big ? 8 : 7;
    return {apps::register_nqueens(reg, /*sequential_rows=*/4),
            {Value(std::int64_t{n})},
            n};
  }
  const int n = big ? 13 : 11;
  return {apps::register_pfold(reg, /*sequential_monomers=*/5),
          {Value(std::int64_t{n})},
          n};
}

/// Compare a job's value against the serial ground truth; empty == match.
std::string check_value(const std::string& app, int n, const Value& value) {
  std::ostringstream why;
  if (app == "fib") {
    if (value.as_int() == apps::fib_serial(n)) return {};
    why << "fib(" << n << ") = " << value.as_int() << ", serial says "
        << apps::fib_serial(n);
  } else if (app == "nqueens") {
    if (value.as_int() == apps::nqueens_serial(n)) return {};
    why << "nqueens(" << n << ") = " << value.as_int() << ", serial says "
        << apps::nqueens_serial(n);
  } else {
    if (apps::decode_histogram(value.as_blob()) == apps::pfold_serial(n)) {
      return {};
    }
    why << "pfold(" << n << ") histogram differs from serial";
  }
  return why.str();
}

bool plan_has(const net::FaultPlan& plan, net::NodeFaultKind kind) {
  for (const net::NodeEvent& e : plan.events) {
    if (e.kind == kind) return true;
  }
  return false;
}

bool plan_duplicates(const net::FaultPlan& plan) {
  for (const net::LinkRule& rule : plan.links) {
    if (rule.duplicate > 0) return true;
  }
  return false;
}

/// Ledger invariants that must hold after the run.  `crashed` relaxes the
/// checks a death legitimately perturbs (a crashed worker's counters die with
/// it); `dup_links` allows unknown-closure argument sends, because a
/// duplicated kArgument can land after its closure completed and was freed —
/// the runtime discards it and counts it here.
std::string check_ledger(const WorkerStats& a, bool crashed, bool dup_links) {
  std::ostringstream why;
  if (!crashed) {
    if (a.tasks_redone != 0) {
      why << "tasks_redone = " << a.tasks_redone
          << " without any crash (false death?); ";
    }
    if (a.tasks_stolen_by_me != a.tasks_stolen_from_me) {
      why << "steal ledger unbalanced: stolen_by_me = " << a.tasks_stolen_by_me
          << ", stolen_from_me = " << a.tasks_stolen_from_me << "; ";
    }
  }
  if (a.args_unknown_closure != 0 && !crashed && !dup_links) {
    why << "args_unknown_closure = " << a.args_unknown_closure
        << " without any crash or duplicate band (lost dataflow?); ";
  }
  return why.str();
}

ChaosOutcome run_threads(const ChaosCase& c) {
  ChaosOutcome o;
  o.plan.seed = c.seed;  // no network: the seed perturbs scheduling instead
  Xoshiro256 rng(mix64(c.seed ^ 0x7472'6473ULL));
  ThreadsConfig cfg;
  cfg.workers = 1 + static_cast<int>(rng.below(6));
  cfg.exec_order = rng.chance(0.5) ? ExecOrder::kLifo : ExecOrder::kFifo;
  cfg.steal_order = rng.chance(0.5) ? StealOrder::kFifo : StealOrder::kLifo;
  cfg.phish_overheads = rng.chance(0.25);
  cfg.seed = c.seed;
  TaskRegistry reg;
  const AppSpec spec = register_app(reg, c.app);
  rt::ThreadsRuntime runtime(reg, cfg);
  const auto result = runtime.run(spec.root, spec.args);
  o.aggregate = result.aggregate;
  std::string why = check_value(c.app, spec.n, result.value);
  // No network, no faults: the full conservation laws apply.
  const auto& a = result.aggregate;
  if (a.closures_created !=
      a.tasks_executed + a.tasks_stolen_from_me + a.tasks_migrated_out) {
    why += "; closure conservation violated";
  }
  if (a.tasks_in_use != 0) why += "; closures leaked (tasks_in_use != 0)";
  why += check_ledger(a, /*crashed=*/false, /*dup_links=*/false);
  o.ok = why.empty();
  o.failure = why;
  return o;
}

/// Simdist plans draw from the full category space: link faults, worker
/// crash / reclaim / partition, control-plane failover (primary crash;
/// worker crash-then-rejoin), and the post-migration compositions
/// (reclaim-then-crash; migrate-midflight-crash).
ChaosProfile simdist_profile(const ChaosCase& c) {
  ChaosProfile profile;
  profile.workers = 3 + static_cast<int>(c.seed % 3);
  profile.coordinator_crash = true;
  profile.crash_rejoin = true;
  profile.reclaim_then_crash = true;
  profile.migrate_midflight_crash = true;
  if (c.composition_only) {
    // Pin the draw to categories 6/7 only: every plan in the targeted sweep
    // composes a reclaim with a crash.  The sweep apps finish in a few
    // (virtual) milliseconds, so the default 20-500 ms event window would
    // reclaim an already-idle cluster: land the reclaim while closures are
    // in flight and the paired crash while the successor still holds them.
    profile.coordinator_crash = false;
    profile.crash_rejoin = false;
    profile.failover_only = true;
    // Three workers pins the cast: worker 0 is immune, so a category-6 plan
    // reclaims one of {1, 2} and crashes the other — which is the migration
    // successor whenever the departing worker's coin-flip between worker 0
    // and the other worker picked the latter.
    profile.workers = 3;
    profile.min_event_ns = 4 * sim::kMillisecond;
    profile.event_horizon_ns = 30 * sim::kMillisecond;
    profile.reclaim_crash_gap_ns = 3 * sim::kMillisecond;
    profile.midflight_crash_gap_ns = 2 * sim::kMillisecond;
  } else {
    profile.failover_only = c.failover_only;
  }
  return profile;
}

ChaosOutcome run_simdist(const ChaosCase& c) {
  ChaosOutcome o;
  const ChaosProfile profile = simdist_profile(c);
  o.plan = make_chaos_plan(c.seed, profile);

  SimJobConfig cfg;
  cfg.participants = profile.workers;
  cfg.seed = c.seed;
  // Failure detection on (crash plans need it) with the CrashSweep timings;
  // partition windows are capped well below the heartbeat timeout so a cut
  // never reads as a death.
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 1500 * sim::kMillisecond;
  cfg.clearinghouse.failure_check_period_ns = 300 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 150 * sim::kMillisecond;
  // Budget RPC retries so link-level drops cannot plausibly exhaust a call:
  // at <= 15% drop each way, ten attempts fail with p ~ 3e-6.
  cfg.worker.rpc_policy = {100 * sim::kMillisecond, 10, 1.5};
  // Warm-standby coordinator: plans may crash the primary mid-job.
  cfg.enable_backup = true;
  cfg.clearinghouse.replicate_period_ns = 150 * sim::kMillisecond;
  cfg.clearinghouse.lease_timeout_ns = 600 * sim::kMillisecond;
  cfg.clearinghouse.lease_check_period_ns = 150 * sim::kMillisecond;

  TaskRegistry reg;
  const AppSpec spec = register_app(reg, c.app, c.composition_only);
  rt::SimCluster cluster(reg, cfg);
  cluster.apply_fault_plan(o.plan);
  const auto result = cluster.run(spec.root, spec.args);
  o.aggregate = result.aggregate;
  o.messages_sent = result.messages_sent;
  o.events_fired = result.events_fired;
  std::string why = check_value(c.app, spec.n, result.value);
  why += check_ledger(result.aggregate,
                      plan_has(o.plan, net::NodeFaultKind::kCrash),
                      plan_duplicates(o.plan));
  o.ok = why.empty();
  o.failure = why;
  return o;
}

ChaosOutcome run_udp(const ChaosCase& c) {
  ChaosOutcome o;
  const int workers = 2 + static_cast<int>(c.seed % 2);
  o.plan = make_chaos_plan(c.seed, ChaosProfile::udp(workers));

  UdpJobConfig cfg;
  cfg.workers = workers;
  // Default to ephemeral ports (collision-free under ctest -j); a nonzero
  // base_port pins the layout for external observation.
  cfg.net.base_port = c.base_port;
  cfg.seed = c.seed;
  cfg.fault_plan = o.plan;
  // Real sockets + injected loss both ways per RPC attempt: twelve attempts
  // make an exhausted call astronomically unlikely (~(0.24)^12).
  cfg.rpc_policy = {30'000'000, 12, 1.5};
  cfg.clearinghouse.detect_failures = false;
  cfg.timeout_seconds = 60.0;

  TaskRegistry reg;
  const AppSpec spec = register_app(reg, c.app);
  rt::UdpJob job(reg, cfg);
  const auto result = job.run(spec.root, spec.args);
  o.aggregate = result.aggregate;
  std::string why = check_value(c.app, spec.n, result.value);
  why += check_ledger(result.aggregate, /*crashed=*/false,
                      plan_duplicates(o.plan));
  o.ok = why.empty();
  o.failure = why;
  return o;
}

}  // namespace

const char* to_string(ChaosRuntime rt) noexcept {
  switch (rt) {
    case ChaosRuntime::kThreads:
      return "threads";
    case ChaosRuntime::kSimdist:
      return "simdist";
    case ChaosRuntime::kUdp:
      return "udp";
  }
  return "?";
}

void PrintTo(const ChaosCase& c, std::ostream* os) {
  *os << to_string(c.runtime) << "/" << c.app << "/seed" << c.seed;
}

ChaosOutcome run_chaos_case(const ChaosCase& c) {
  ChaosOutcome o;
  try {
    switch (c.runtime) {
      case ChaosRuntime::kThreads:
        o = run_threads(c);
        break;
      case ChaosRuntime::kSimdist:
        o = run_simdist(c);
        break;
      case ChaosRuntime::kUdp:
        o = run_udp(c);
        break;
    }
  } catch (const std::exception& e) {
    o.ok = false;
    o.failure = std::string("exception: ") + e.what();
    // Regenerate the plan the failed run used so the replay line is honest.
    switch (c.runtime) {
      case ChaosRuntime::kThreads:
        o.plan.seed = c.seed;
        break;
      case ChaosRuntime::kSimdist:
        o.plan = make_chaos_plan(c.seed, simdist_profile(c));
        break;
      case ChaosRuntime::kUdp:
        o.plan = make_chaos_plan(
            c.seed, ChaosProfile::udp(2 + static_cast<int>(c.seed % 2)));
        break;
    }
  }
  if (!o.ok) {
    std::ostringstream out;
    out << to_string(c.runtime) << "/" << c.app << " seed " << c.seed
        << " FAILED: " << o.failure
        << "\n  replay: PHISH_CHAOS_SEED=" << c.seed
        << " (and PHISH_CHAOS_RUNTIME=" << to_string(c.runtime)
        << " PHISH_CHAOS_APP=" << c.app << ") re-runs exactly this schedule"
        << "\n  plan:   " << o.plan.describe();
    o.failure = out.str();
  }
  return o;
}

std::vector<ChaosCase> chaos_matrix() {
  const char* kApps[] = {"fib", "nqueens", "pfold"};
  std::vector<ChaosCase> cases;
  // 24 simdist (full plans, virtual time) + 18 threads (seeded scheduling
  // perturbation) + 9 udp (link faults over real loopback sockets) = 51.
  for (int a = 0; a < 3; ++a) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      cases.push_back({ChaosRuntime::kSimdist, kApps[a],
                       1000 * static_cast<std::uint64_t>(a + 1) + i, 0});
    }
  }
  for (int a = 0; a < 3; ++a) {
    for (std::uint64_t i = 0; i < 6; ++i) {
      cases.push_back({ChaosRuntime::kThreads, kApps[a],
                       9000 + 10 * static_cast<std::uint64_t>(a) + i, 0});
    }
  }
  std::uint16_t port = 36000;
  for (int a = 0; a < 3; ++a) {
    for (std::uint64_t i = 0; i < 3; ++i) {
      cases.push_back({ChaosRuntime::kUdp, kApps[a],
                       7000 + 10 * static_cast<std::uint64_t>(a) + i, port});
      port = static_cast<std::uint16_t>(port + 64);
    }
  }
  // Targeted failover sweep: every plan either crashes the primary
  // Clearinghouse (warm standby promotes), crash-rejoins a worker, or
  // composes a reclaim with a crash.
  for (int a = 0; a < 3; ++a) {
    for (std::uint64_t i = 0; i < 3; ++i) {
      cases.push_back({ChaosRuntime::kSimdist, kApps[a],
                       5000 + 10 * static_cast<std::uint64_t>(a) + i, 0,
                       /*failover_only=*/true});
    }
  }
  // Targeted composition sweep, >= 50 seeds: every plan is a
  // reclaim-then-crash or migrate-midflight-crash composition — the two
  // failure-matrix rows the migration durability ledger flipped to
  // survivable.  A failing seed prints the standard PHISH_CHAOS_SEED
  // replay line.
  for (int a = 0; a < 3; ++a) {
    for (std::uint64_t i = 0; i < 17; ++i) {
      cases.push_back({ChaosRuntime::kSimdist, kApps[a],
                       6000 + 100 * static_cast<std::uint64_t>(a) + i, 0,
                       /*failover_only=*/false, /*composition_only=*/true});
    }
  }
  return cases;
}

}  // namespace phish::testing
