// Control-plane survival tests: warm-standby Clearinghouse failover, worker
// crash-and-rejoin, reliable death notices, and heartbeat edge cases.
//
// These are the scripted counterparts of the seeded failover sweep in
// chaos_test.cpp (ChaosCase.failover_only): each test pins one scenario the
// generator only samples.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "core/clearinghouse.hpp"
#include "core/protocol.hpp"
#include "core/recovery.hpp"
#include "harness/scenario_runner.hpp"
#include "net/sim_net.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "testing/scenario.hpp"

namespace phish::testing {
namespace {

/// Simdist config with fast failover timings: detection in ~1s, promotion
/// within ~750ms of a primary crash.
rt::SimJobConfig failover_sim_config(std::uint64_t seed) {
  rt::SimJobConfig cfg;
  cfg.participants = 4;
  cfg.seed = seed;
  cfg.enable_backup = true;
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 700 * sim::kMillisecond;
  cfg.clearinghouse.failure_check_period_ns = 150 * sim::kMillisecond;
  cfg.clearinghouse.replicate_period_ns = 150 * sim::kMillisecond;
  cfg.clearinghouse.lease_timeout_ns = 600 * sim::kMillisecond;
  cfg.clearinghouse.lease_check_period_ns = 150 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 100 * sim::kMillisecond;
  cfg.worker.rpc_policy = {100 * sim::kMillisecond, 10, 1.5};
  return cfg;
}

TEST(SimdistFailover, PrimaryCrashPromotesBackupAndFinishes) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  rt::SimCluster cluster(reg, failover_sim_config(0xf41'0001));
  // pfold(17) runs ~3.8 simulated seconds: the 500ms crash lands mid-job
  // and the ~1.1s promotion leaves plenty of post-failover stealing.
  cluster.crash_primary_at(500 * sim::kMillisecond);
  const auto result = cluster.run(root, {Value(std::int64_t{17})});

  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(17));
  ASSERT_NE(cluster.backup(), nullptr);
  EXPECT_TRUE(cluster.backup()->acting_primary())
      << "the warm standby must have taken over";
  EXPECT_GE(cluster.backup()->view(), 2u);
  const auto snap = cluster.recovery().snapshot();
  EXPECT_GE(snap.detects, 1u);
  EXPECT_EQ(snap.promotions, 1u);
  // MTTR: the detect -> first-post-failover-steal window closed.
  EXPECT_GE(snap.mttr_count, 1u);
  EXPECT_GT(snap.last_mttr_ns, 0u);
}

TEST(SimdistFailover, PrimaryCrashReplaysBitForBit) {
  // Determinism across the failover path: same seed, same virtual history.
  auto run_once = [] {
    TaskRegistry reg;
    const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
    rt::SimCluster cluster(reg, failover_sim_config(0xf41'0002));
    cluster.crash_primary_at(200 * sim::kMillisecond);
    return cluster.run(root, {Value(std::int64_t{15})});
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.value.as_blob(), b.value.as_blob());
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.events_fired, b.events_fired);
}

TEST(SimdistFailover, KilledWorkerRejoinsAndStealsAgain) {
  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  rt::SimJobConfig cfg = failover_sim_config(0xf41'0003);
  cfg.enable_backup = false;  // this one is about the worker, not the CH
  rt::SimCluster cluster(reg, cfg);
  // Crash at 500ms, death declared by ~1.35s, rejoin at 2s; pfold(17) keeps
  // the survivors busy past 3.5 simulated seconds.
  cluster.crash_at(2, 500 * sim::kMillisecond);
  cluster.rejoin_at(2, 2000 * sim::kMillisecond);
  // Snapshot the victim's counters at the rejoin instant: everything above
  // this baseline afterwards happened in its second life.
  WorkerStats at_rejoin;
  cluster.simulator().schedule_at(2000 * sim::kMillisecond - 1, [&] {
    at_rejoin = cluster.worker(2).stats();
  });
  const auto result = cluster.run(root, {Value(std::int64_t{17})});

  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(17));
  EXPECT_EQ(cluster.worker(2).incarnation(), 2u);
  EXPECT_GE(cluster.recovery().snapshot().rejoins, 1u);
  // The dead worker was detected and its stolen work redone by survivors.
  EXPECT_FALSE(cluster.clearinghouse().declared_dead().empty());
  // Post-rejoin the worker pulled its way back in by stealing.
  EXPECT_GT(cluster.worker(2).stats().tasks_stolen_by_me,
            at_rejoin.tasks_stolen_by_me)
      << "the rejoined incarnation never stole work";
}

TEST(SimdistFailover, DeathNoticeSurvivesDropHeavyLinks) {
  // Satellite of the reliable-kDead change: with death notices on the acked
  // kRpcControl path, a crash under 25% blanket loss still propagates to
  // every survivor and the job completes exactly.  Under the old oneway
  // scheme a single dropped datagram could orphan a thief forever.
  net::FaultPlan plan;
  plan.seed = 0xdead'10ff;
  net::LinkRule all;
  all.drop = 0.25;
  plan.links.push_back(all);
  plan.lossless_types = {proto::kArgument, proto::kMigrate};
  plan.events.push_back({500'000'000, net::NodeFaultKind::kCrash, 3});

  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  rt::SimJobConfig cfg = failover_sim_config(0xf41'0004);
  cfg.enable_backup = false;
  rt::SimCluster cluster(reg, cfg);
  cluster.apply_fault_plan(plan);
  const auto result = cluster.run(root, {Value(std::int64_t{17})});
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(17));
  EXPECT_EQ(cluster.clearinghouse().declared_dead().size(), 1u);
}

TEST(SimdistFailover, SeededFailoverSweepCaseReplays) {
  // The generator's failover categories replay bit-for-bit too.
  const ChaosCase c{ChaosRuntime::kSimdist, "pfold", 5021, 0,
                    /*failover_only=*/true};
  const ChaosOutcome a = run_chaos_case(c);
  const ChaosOutcome b = run_chaos_case(c);
  ASSERT_TRUE(a.ok) << a.failure;
  ASSERT_TRUE(b.ok) << b.failure;
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.events_fired, b.events_fired);
  EXPECT_EQ(a.plan.describe(), b.plan.describe());
}

// --- Heartbeat false-positive edges. ---------------------------------------
// The failure detector must not declare a slow-but-alive worker dead
// (heartbeats arriving just under the timeout), and must declare a silent
// one dead shortly after the timeout.

class HeartbeatEdge : public ::testing::Test {
 protected:
  static constexpr net::NodeId kCh{0};

  HeartbeatEdge()
      : network_(sim_, quiet()), timers_(sim_),
        ch_rpc_(network_.channel(kCh), timers_) {}

  static net::SimNetParams quiet() {
    net::SimNetParams p;
    p.jitter = 0;
    return p;
  }

  static ClearinghouseConfig edge_config() {
    ClearinghouseConfig cfg;
    cfg.heartbeat_timeout_ns = 1000 * sim::kMillisecond;
    cfg.failure_check_period_ns = 20 * sim::kMillisecond;
    return cfg;
  }

  sim::Simulator sim_;
  net::SimNetwork network_;
  net::SimTimerService timers_;
  net::RpcNode ch_rpc_;
};

TEST_F(HeartbeatEdge, JustUnderTimeoutStaysAlive) {
  Clearinghouse ch(ch_rpc_, timers_, edge_config());
  ch.start();
  net::RpcNode w(network_.channel(net::NodeId{1}), timers_);
  w.serve(proto::kRpcControl, [](net::NodeId, const Bytes&) {
    return Bytes{};
  });
  w.call(kCh, proto::kRpcRegister, {}, [](net::RpcResult) {});
  // Heartbeat every 950ms: each gap stays just under the 1s timeout.
  for (int t = 1; t <= 10; ++t) {
    sim_.schedule_at(static_cast<sim::SimTime>(t) * 950 * sim::kMillisecond,
                     [&] { w.send_oneway(kCh, proto::kHeartbeat, {}); });
  }
  sim_.run_until(10 * sim::kSecond);
  EXPECT_EQ(ch.membership().participants.size(), 1u)
      << "a worker heartbeating just under the timeout is alive";
  EXPECT_TRUE(ch.declared_dead().empty());
}

TEST_F(HeartbeatEdge, JustOverTimeoutIsDead) {
  Clearinghouse ch(ch_rpc_, timers_, edge_config());
  ch.start();
  net::RpcNode w(network_.channel(net::NodeId{1}), timers_);
  w.serve(proto::kRpcControl, [](net::NodeId, const Bytes&) {
    return Bytes{};
  });
  w.call(kCh, proto::kRpcRegister, {}, [](net::RpcResult) {});
  // One heartbeat at 500ms, then silence.
  sim_.schedule_at(500 * sim::kMillisecond,
                   [&] { w.send_oneway(kCh, proto::kHeartbeat, {}); });
  // Just under: at last-heartbeat + timeout - epsilon, still alive.
  sim_.run_until(1490 * sim::kMillisecond);
  EXPECT_TRUE(ch.declared_dead().empty());
  EXPECT_EQ(ch.membership().participants.size(), 1u);
  // Just over: within one detector period past the timeout, dead.
  sim_.run_until(1600 * sim::kMillisecond);
  EXPECT_EQ(ch.declared_dead().size(), 1u);
  EXPECT_TRUE(ch.membership().participants.empty());
}

}  // namespace
}  // namespace phish::testing
