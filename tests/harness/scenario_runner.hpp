// Chaos-scenario runner: one seeded ChaosCase -> one verdict.
//
// A case names a runtime, an application, and a 64-bit seed.  The runner
// expands the seed into a FaultPlan (testing::make_chaos_plan), runs the
// application under that plan on that runtime, and compares the result
// against the fault-free serial reference.  On any mismatch — wrong value,
// violated ledger invariant, or a thrown watchdog timeout — the returned
// outcome carries a failure string containing the exact seed and the full
// plan, which is everything needed to replay the run byte-for-byte
// (PHISH_CHAOS_SEED=<seed> re-runs it; see chaos_test.cpp).
//
// Per-runtime fault coverage (see DESIGN.md "Fault model & chaos harness"):
//   simdist  full plans: link faults natively in SimNetwork (virtual-time
//            drop/duplicate/reorder/delay) + scheduled node events
//            (crash / partition+heal / owner reclaim).
//   udp      link faults only, through the FaultyChannel decorator on every
//            worker's real socket; real time is not scriptable, so node
//            events are off.
//   threads  no network to break: the chaos dimension is the seeded
//            scheduling perturbation (worker count, execution and steal
//            orders, overhead mode drawn from the seed).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/worker_stats.hpp"
#include "net/fault.hpp"

namespace phish::testing {

enum class ChaosRuntime : std::uint8_t { kThreads, kSimdist, kUdp };

const char* to_string(ChaosRuntime rt) noexcept;

struct ChaosCase {
  ChaosRuntime runtime = ChaosRuntime::kSimdist;
  const char* app = "fib";  // "fib" | "nqueens" | "pfold"
  std::uint64_t seed = 1;
  /// UDP only: fixed loopback port block (0 = ephemeral kernel-assigned
  /// ports, the collision-free default under concurrent ctest).
  std::uint16_t base_port = 0;
  /// Simdist only: restrict the plan to the failover categories (primary
  /// Clearinghouse crash / worker crash-then-rejoin) for targeted sweeps.
  bool failover_only = false;
  /// Simdist only: restrict the plan to the post-migration compositions
  /// (reclaim-then-crash / migrate-midflight-crash) — the two failure-matrix
  /// rows the migration durability ledger flipped to survivable.
  bool composition_only = false;
};

void PrintTo(const ChaosCase& c, std::ostream* os);

struct ChaosOutcome {
  bool ok = false;
  /// Empty when ok; otherwise the mismatch, the seed, and plan.describe().
  std::string failure;
  net::FaultPlan plan;
  WorkerStats aggregate;
  /// Deterministic fingerprints (simdist only; 0 elsewhere) — equal across
  /// replays of the same case by construction.
  std::uint64_t messages_sent = 0;
  std::uint64_t events_fired = 0;
};

/// Run one case to completion.  Never throws: runtime exceptions (watchdog
/// timeouts, setup errors) become ok=false outcomes with the replay line.
ChaosOutcome run_chaos_case(const ChaosCase& c);

/// The sweep executed by chaos_test.cpp: >= 50 cases spanning all three
/// runtimes and all three applications.
std::vector<ChaosCase> chaos_matrix();

}  // namespace phish::testing
