// Sustained-churn survival: make_churn_plan schedules drive the simdist
// runtime through continuous crash -> detect -> redo -> rejoin cycles
// (including correlated whole-rack losses) and the job must still produce
// the fault-free serial answer.  Every assertion carries the replay line —
// PHISH_CHAOS_SEED=<seed> plus the full plan — so a red run is reproducible
// byte-for-byte:
//
//   PHISH_CHAOS_SEED=<seed> ./test_chaos --gtest_filter='Churn*'
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "runtime/simdist/sim_cluster.hpp"
#include "testing/scenario.hpp"

namespace phish::testing {
namespace {

/// The replay line printed on any churn failure (satellite requirement:
/// a failing chaos/churn assertion names the exact env to re-run it).
std::string replay_line(std::uint64_t seed, const net::FaultPlan& plan) {
  return "replay: PHISH_CHAOS_SEED=" + std::to_string(seed) +
         " ./test_chaos --gtest_filter='Churn*'\n" + plan.describe();
}

rt::SimJobConfig churn_job_config(std::uint64_t seed, int workers) {
  rt::SimJobConfig cfg;
  cfg.participants = workers;
  cfg.seed = seed;
  cfg.clearinghouse.detect_failures = true;
  cfg.clearinghouse.heartbeat_timeout_ns = 1500 * sim::kMillisecond;
  cfg.clearinghouse.failure_check_period_ns = 300 * sim::kMillisecond;
  cfg.worker.heartbeat_period = 150 * sim::kMillisecond;
  cfg.worker.rpc_policy = {100 * sim::kMillisecond, 10, 1.5};
  // Stretch the job across the churn horizon: at the default 2us charge unit
  // a pfold(13) finishes in virtual milliseconds, long before the first
  // scheduled crash fires, and the redo assertion below would be vacuous.
  cfg.worker.charge_unit = 2 * sim::kMillisecond;
  return cfg;
}

ChurnProfile test_profile(int workers) {
  ChurnProfile p;
  p.workers = workers;
  p.horizon_ns = 8 * sim::kSecond;
  p.churn_rate_hz = 2.0;
  p.correlation = 0.4;
  p.rack_size = 2;
  p.mean_downtime_ns = 1 * sim::kSecond;
  p.min_downtime_ns = 200 * sim::kMillisecond;
  p.min_live = 2;
  return p;
}

/// Shared invariant checker: per-worker strictly alternating down / kRestart
/// with every down paired, worker 0 immune, live floor respected.  Primary
/// crashes (worker == net::kCoordinatorWorker) sit outside the per-worker
/// state machine: at most one, unpaired, in the early half of the horizon.
void check_plan_invariants(const ChurnProfile& profile,
                           const net::FaultPlan& plan) {
  std::vector<int> down(static_cast<std::size_t>(profile.workers), 0);
  int live = profile.workers;
  int primary_crashes = 0;
  for (const net::NodeEvent& e : plan.events) {
    if (e.worker == net::kCoordinatorWorker) {
      ASSERT_EQ(e.kind, net::NodeFaultKind::kCrash);
      ASSERT_TRUE(profile.primary_churn);
      ASSERT_GE(e.at_ns, profile.min_event_ns);
      ASSERT_LT(e.at_ns, profile.horizon_ns / 2);
      ++primary_crashes;
      continue;
    }
    ASSERT_NE(e.worker, 0) << "worker 0 (submitter) is immune";
    ASSERT_GE(e.worker, 1);
    ASSERT_LT(e.worker, profile.workers);
    auto& d = down[static_cast<std::size_t>(e.worker)];
    if (e.kind == net::NodeFaultKind::kRestart) {
      ASSERT_EQ(d, 1) << "restart without a preceding down";
      d = 0;
      ++live;
    } else {
      ASSERT_TRUE(e.kind == net::NodeFaultKind::kCrash ||
                  e.kind == net::NodeFaultKind::kReclaim);
      if (profile.reclaim_fraction <= 0.0) {
        ASSERT_EQ(e.kind, net::NodeFaultKind::kCrash)
            << "reclaim_fraction=0 must generate crashes only";
      }
      ASSERT_EQ(d, 0) << "double-down without a rejoin in between";
      d = 1;
      --live;
      ASSERT_GE(live, profile.min_live);
    }
  }
  ASSERT_LE(primary_crashes, 1) << "the primary dies at most once per storm";
  if (profile.primary_churn) EXPECT_EQ(primary_crashes, 1);
  for (int d : down) EXPECT_EQ(d, 0) << "every down is paired kRestart";
}

TEST(ChurnPlan, InvariantsHoldAcrossSeeds) {
  const ChurnProfile profile = test_profile(6);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const net::FaultPlan plan = make_churn_plan(seed, profile);
    SCOPED_TRACE(replay_line(seed, plan));
    // Racks partition [0, workers) in index order.
    ASSERT_EQ(plan.racks.size(), 3u);
    check_plan_invariants(profile, plan);
  }
}

TEST(ChurnPlan, InvariantsHoldWithReclaimsAndPrimaryChurn) {
  // Same state-machine invariants with both new event classes enabled:
  // owner returns mixed into the leave stream, plus the one-shot primary
  // crash.  Reclaims are downs like any other (the departed worker rejoins
  // later via the paired kRestart).
  ChurnProfile profile = test_profile(6);
  profile.reclaim_fraction = 0.5;
  profile.primary_churn = true;
  std::uint64_t reclaims = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const net::FaultPlan plan = make_churn_plan(seed, profile);
    SCOPED_TRACE(replay_line(seed, plan));
    check_plan_invariants(profile, plan);
    for (const net::NodeEvent& e : plan.events) {
      if (e.kind == net::NodeFaultKind::kReclaim) ++reclaims;
    }
  }
  EXPECT_GT(reclaims, 0u)
      << "vacuous: reclaim_fraction=0.5 never drew an owner return";
}

TEST(ChurnPlan, PrimaryChurnDoesNotPerturbWorkerSchedule) {
  // The primary crash draws from an independent rng stream, so a sweep can
  // attribute availability deltas to the primary crash alone: the worker
  // schedule must be bit-identical with the knob on or off.
  ChurnProfile off = test_profile(8);
  ChurnProfile on = off;
  on.primary_churn = true;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const net::FaultPlan a = make_churn_plan(seed, off);
    net::FaultPlan b = make_churn_plan(seed, on);
    std::erase_if(b.events, [](const net::NodeEvent& e) {
      return e.worker == net::kCoordinatorWorker;
    });
    EXPECT_EQ(a.describe(), b.describe()) << "seed " << seed;
  }
}

TEST(ChurnPlan, IsAPureFunctionOfTheSeed) {
  const ChurnProfile profile = test_profile(8);
  EXPECT_EQ(make_churn_plan(42, profile).describe(),
            make_churn_plan(42, profile).describe());
  EXPECT_NE(make_churn_plan(42, profile).describe(),
            make_churn_plan(43, profile).describe());
}

TEST(ChurnSimdist, SustainedChurnStaysExact) {
  // Continuous churn, correlated rack losses included, over the whole job:
  // the redo protocol must hold the answer exact no matter how many times
  // capacity collapses and recovers.
  const std::uint64_t seed = seed_from_env("PHISH_CHAOS_SEED", 0xc842'0001);
  const int workers = 6;
  const net::FaultPlan plan = make_churn_plan(seed, test_profile(workers));
  ASSERT_FALSE(plan.events.empty());

  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  rt::SimCluster cluster(reg, churn_job_config(seed, workers));
  cluster.apply_fault_plan(plan);
  const auto result = cluster.run(root, {Value(std::int64_t{13})});
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(13))
      << replay_line(seed, plan);
  EXPECT_GT(result.aggregate.tasks_redone, 0u)
      << "vacuous: churn never killed a worker holding stolen work\n"
      << replay_line(seed, plan);
}

TEST(ChurnSimdist, ReclaimChurnMigratesAndStaysExact) {
  // Owner returns mixed into the storm: departing workers must drain their
  // closures through the acked migration handshake (to peers that may die
  // moments later) and the answer must stay exact.  Aggregated over seeds so
  // the migration assertion is robust to any single schedule being idle.
  const int workers = 6;
  ChurnProfile profile = test_profile(workers);
  profile.reclaim_fraction = 0.6;
  profile.correlation = 0.2;
  WorkerStats sum;
  for (std::uint64_t seed :
       {0xc842'0010ull, 0xc842'0011ull, 0xc842'0012ull}) {
    const net::FaultPlan plan = make_churn_plan(seed, profile);
    TaskRegistry reg;
    const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
    rt::SimCluster cluster(reg, churn_job_config(seed, workers));
    cluster.apply_fault_plan(plan);
    const auto result = cluster.run(root, {Value(std::int64_t{13})});
    EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
              apps::pfold_serial(13))
        << replay_line(seed, plan);
    sum.merge(result.aggregate);
  }
  EXPECT_GT(sum.tasks_migrated_out, 0u)
      << "vacuous: no reclaim ever drained closures through the handshake";
}

TEST(ChurnSimdist, PrimaryCrashMidStormFailsOverAndStaysExact) {
  // The hardest composition in the churn taxonomy: the active Clearinghouse
  // dies while workers are crashing and rejoining around it.  The warm
  // standby must promote (epoch-fenced), absorb the in-flux membership, and
  // the job must still finish exactly.
  const std::uint64_t seed = seed_from_env("PHISH_CHAOS_SEED", 0xc842'0020);
  const int workers = 6;
  ChurnProfile profile = test_profile(workers);
  profile.primary_churn = true;
  const net::FaultPlan plan = make_churn_plan(seed, profile);

  TaskRegistry reg;
  const TaskId root = apps::register_pfold(reg, /*sequential_monomers=*/5);
  rt::SimJobConfig cfg = churn_job_config(seed, workers);
  cfg.enable_backup = true;
  rt::SimCluster cluster(reg, cfg);
  cluster.apply_fault_plan(plan);
  const auto result = cluster.run(root, {Value(std::int64_t{13})});
  EXPECT_EQ(apps::decode_histogram(result.value.as_blob()),
            apps::pfold_serial(13))
      << replay_line(seed, plan);
  EXPECT_GT(cluster.recovery().snapshot().promotions, 0u)
      << "vacuous: the standby never promoted\n"
      << replay_line(seed, plan);
}

TEST(ChurnSimdist, ReplayIsBitForBitDeterministic) {
  // The acceptance bar: the same seed replays to the same simulated history.
  const std::uint64_t seed = seed_from_env("PHISH_CHAOS_SEED", 0xc842'0002);
  const int workers = 4;
  ChurnProfile profile = test_profile(workers);
  profile.horizon_ns = 4 * sim::kSecond;
  const net::FaultPlan plan = make_churn_plan(seed, profile);

  TaskRegistry reg;
  const TaskId root = apps::register_nqueens(reg, /*sequential_rows=*/4);
  std::uint64_t fingerprint[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    rt::SimCluster cluster(reg, churn_job_config(seed, workers));
    cluster.apply_fault_plan(plan);
    const auto result = cluster.run(root, {Value(std::int64_t{8})});
    ASSERT_EQ(result.value.as_int(), 92) << replay_line(seed, plan);
    fingerprint[run] = result.messages_sent;
  }
  EXPECT_EQ(fingerprint[0], fingerprint[1]) << replay_line(seed, plan);
}

}  // namespace
}  // namespace phish::testing
