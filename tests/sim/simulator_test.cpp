#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace phish::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(30, [&] { order.push_back(3); });
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(5, [&] { order.push_back(1); });
  s.schedule(5, [&] { order.push_back(2); });
  s.schedule(5, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NowAdvancesDuringCallback) {
  Simulator s;
  SimTime seen = 0;
  s.schedule(42, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 42u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  std::vector<SimTime> times;
  s.schedule(10, [&] {
    times.push_back(s.now());
    s.schedule(10, [&] { times.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 20}));
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator s;
  SimTime seen = 0;
  s.schedule(10, [&] {
    s.schedule_at(100, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator s;
  s.schedule(50, [&] {
    EXPECT_THROW(s.schedule_at(10, [] {}), std::logic_error);
  });
  s.run();
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator s;
  bool fired = false;
  const EventId id = s.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceIsFalse) {
  Simulator s;
  const EventId id = s.schedule(10, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  s.run();
}

TEST(Simulator, CancelInvalidIdIsFalse) {
  Simulator s;
  EXPECT_FALSE(s.cancel(EventId{}));
  EXPECT_FALSE(s.cancel(EventId{9999}));
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunWithLimitStopsEarly) {
  Simulator s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.schedule(i + 1, [&] { ++count; });
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.run(), 7u);
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunUntilFiresUpToDeadlineInclusive) {
  Simulator s;
  std::vector<int> fired;
  s.schedule(10, [&] { fired.push_back(10); });
  s.schedule(20, [&] { fired.push_back(20); });
  s.schedule(30, [&] { fired.push_back(30); });
  s.run_until(20);
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(s.now(), 20u);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500u);
}

TEST(Simulator, RunUntilSkipsCancelledHead) {
  Simulator s;
  bool fired_late = false;
  const EventId id = s.schedule(5, [] { FAIL() << "cancelled event fired"; });
  s.schedule(10, [&] { fired_late = true; });
  s.cancel(id);
  s.run_until(10);
  EXPECT_TRUE(fired_late);
}

TEST(Simulator, EventsFiredCounts) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule(i, [] {});
  s.run();
  EXPECT_EQ(s.events_fired(), 5u);
}

TEST(Simulator, PendingExcludesCancelled) {
  Simulator s;
  const EventId a = s.schedule(1, [] {});
  s.schedule(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator s;
  SimTime last = 0;
  int count = 0;
  for (int i = 1000; i >= 1; --i) {
    s.schedule(static_cast<SimTime>(i * 3 % 997), [&, i] {
      EXPECT_GE(s.now(), last);
      last = s.now();
      ++count;
      (void)i;
    });
  }
  s.run();
  EXPECT_EQ(count, 1000);
}

TEST(PeriodicTimer, TicksAtPeriod) {
  Simulator s;
  std::vector<SimTime> ticks;
  PeriodicTimer t(s, 100, [&] { ticks.push_back(s.now()); });
  t.start();
  s.run_until(350);
  EXPECT_EQ(ticks, (std::vector<SimTime>{100, 200, 300}));
}

TEST(PeriodicTimer, InitialDelayDiffersFromPeriod) {
  Simulator s;
  std::vector<SimTime> ticks;
  PeriodicTimer t(s, 100, [&] { ticks.push_back(s.now()); });
  t.start(/*initial_delay=*/10);
  s.run_until(250);
  EXPECT_EQ(ticks, (std::vector<SimTime>{10, 110, 210}));
}

TEST(PeriodicTimer, StopHaltsTicks) {
  Simulator s;
  int ticks = 0;
  PeriodicTimer t(s, 10, [&] { ++ticks; });
  t.start();
  s.schedule(35, [&] { t.stop(); });
  s.run_until(1000);
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(t.running());
}

TEST(PeriodicTimer, StopFromWithinTick) {
  Simulator s;
  int ticks = 0;
  PeriodicTimer t(s, 10, [&] {
    if (++ticks == 2) t.stop();
  });
  t.start();
  s.run_until(1000);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTimer, RestartAfterStop) {
  Simulator s;
  int ticks = 0;
  PeriodicTimer t(s, 10, [&] { ++ticks; });
  t.start();
  s.run_until(25);
  t.stop();
  s.run_until(100);
  EXPECT_EQ(ticks, 2);
  t.start();
  s.run_until(135);
  EXPECT_EQ(ticks, 5);  // ticks at 110, 120, 130
}

TEST(PeriodicTimer, SetPeriodTakesEffectNextTick) {
  Simulator s;
  std::vector<SimTime> ticks;
  PeriodicTimer t(s, 10, [&] { ticks.push_back(s.now()); });
  t.start();
  s.schedule(15, [&] { t.set_period(50); });
  s.run_until(130);
  // Ticks at 10, 20 (already armed), then every 50: 70, 120.
  EXPECT_EQ(ticks, (std::vector<SimTime>{10, 20, 70, 120}));
}

TEST(TimeConversions, RoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(kMillisecond), 1e-3);
  EXPECT_DOUBLE_EQ(to_seconds(kMicrosecond), 1e-6);
  EXPECT_EQ(from_seconds(2.5), 2'500'000'000ull);
}

}  // namespace
}  // namespace phish::sim
