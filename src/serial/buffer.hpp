// Byte-buffer serialization for Phish's wire protocol.
//
// Every message the runtime sends (steal requests, argument sends,
// registration, heartbeats, job assignments) is encoded with Writer and
// decoded with Reader.  The format is explicit little-endian with
// length-prefixed strings/blobs, so it is stable across hosts — the paper's
// Phish ran on a heterogeneous Unix network over UDP/IP, and this layer plays
// the same role.
//
// Reader never throws on hot paths; malformed input flips an error flag that
// callers check once per message (torn UDP datagrams must not crash a worker).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace phish {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values to a growing byte vector.
class Writer {
 public:
  Writer() = default;
  explicit Writer(Bytes initial) : bytes_(std::move(initial)) {}

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void blob(const void* data, std::size_t size);
  void str(std::string_view s) { blob(s.data(), s.size()); }

  /// Raw append with no length prefix (for nesting pre-encoded payloads).
  void raw(const Bytes& data);

  const Bytes& bytes() const noexcept { return bytes_; }
  Bytes take() noexcept { return std::move(bytes_); }
  std::size_t size() const noexcept { return bytes_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes bytes_;
};

/// Consumes primitive values from a byte span.  On underflow or overflow the
/// reader enters a failed state: subsequent reads return zero values and
/// ok() returns false.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const Bytes& bytes) : Reader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() { return read_le<std::uint8_t>(); }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }

  /// Length-prefixed byte string; returns empty and fails on bad length.
  Bytes blob();
  std::string str();

  /// Consume and return every unread byte as one bulk slice (no length
  /// prefix) — for decoders that hand the remainder of a message to a nested
  /// decoder.  Empty (without failing) when nothing remains; empty after a
  /// failure too, so callers can keep checking ok() once at the end.
  Bytes rest();

  /// All bytes not yet consumed (does not advance).
  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool ok() const noexcept { return !failed_; }

  /// Decoders call this when the bytes parsed so far are structurally
  /// invalid (absurd counts, unknown enum tags) even though the reads
  /// themselves did not underflow; callers then see ok() == false exactly as
  /// for a truncated buffer.
  void fail() noexcept { failed_ = true; }

  /// True when the whole buffer was consumed without error — the normal
  /// "message fully parsed" check.
  bool done() const noexcept { return ok() && remaining() == 0; }

 private:
  template <typename T>
  T read_le() {
    if (failed_ || size_ - pos_ < sizeof(T)) {
      failed_ = true;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace phish
