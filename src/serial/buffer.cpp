#include "serial/buffer.hpp"

namespace phish {

void Writer::blob(const void* data, std::size_t size) {
  u32(static_cast<std::uint32_t>(size));
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

void Writer::raw(const Bytes& data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

Bytes Reader::blob() {
  const std::uint32_t n = u32();
  if (failed_ || size_ - pos_ < n) {
    failed_ = true;
    return {};
  }
  Bytes out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

std::string Reader::str() {
  const Bytes b = blob();
  return std::string(b.begin(), b.end());
}

Bytes Reader::rest() {
  if (failed_) return {};
  Bytes out(data_ + pos_, data_ + size_);
  pos_ = size_;
  return out;
}

}  // namespace phish
