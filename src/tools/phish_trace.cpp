// phish-trace: inspect .phtrace binary traces from any runtime.
//
//   phish-trace summary <run.phtrace>          event counts, drops, time span
//   phish-trace steals  <run.phtrace>          steal latency percentiles
//   phish-trace util    <run.phtrace>          per-worker utilization
//   phish-trace depth   <run.phtrace>          ready-deque depth over time
//   phish-trace export  <run.phtrace> --out=trace.json   Chrome/Perfetto JSON
//
// All timestamps are in the trace's own clock domain (virtual ns for simdist
// traces, steady wall-clock ns for threads/udp traces); the tool prints
// which one it is reading.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_file.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace phish::obs {
namespace {

const char* domain_name(ClockDomain d) {
  return d == ClockDomain::kVirtual ? "virtual (simulated ns)"
                                    : "steady (wall-clock ns)";
}

void print_header(const TraceData& data) {
  std::printf("runtime=%s  clock=%s  seed=%llu  participants=%u  events=%zu"
              "  dropped=%llu\n",
              data.runtime.c_str(), domain_name(data.clock),
              static_cast<unsigned long long>(data.seed), data.participants,
              data.events.size(),
              static_cast<unsigned long long>(data.dropped));
}

std::pair<std::uint64_t, std::uint64_t> time_span(const TraceData& data) {
  std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
  for (const TraceEvent& e : data.events) {
    lo = std::min(lo, e.t_start);
    hi = std::max(hi, e.t_end);
  }
  if (lo > hi) lo = hi = 0;
  return {lo, hi};
}

int cmd_summary(const TraceData& data) {
  print_header(data);
  const auto [lo, hi] = time_span(data);
  std::printf("span: %.6f s\n\n", static_cast<double>(hi - lo) / 1e9);
  std::map<EventType, std::uint64_t> counts;
  for (const TraceEvent& e : data.events) {
    ++counts[static_cast<EventType>(e.type)];
  }
  TextTable table({"event", "count"});
  for (const auto& [type, count] : counts) {
    table.add_row({to_string(type),
                   TextTable::num(static_cast<std::int64_t>(count))});
  }
  std::printf("%s", table.to_string().c_str());
  // Recovery digest: how much failure this run absorbed and what it cost.
  // kExecute spans on a closure that a kRedo re-enqueued are redone work.
  const std::uint64_t crashes = counts[EventType::kCrash];
  const std::uint64_t reclaims = counts[EventType::kReclaim];
  const std::uint64_t redos = counts[EventType::kRedo];
  if (crashes + reclaims + redos > 0) {
    std::uint64_t executes = counts[EventType::kExecute];
    std::printf(
        "recovery: crashes=%llu reclaims=%llu redo_snapshots=%llu "
        "(%.1f%% of %llu executions re-run at most)\n",
        static_cast<unsigned long long>(crashes),
        static_cast<unsigned long long>(reclaims),
        static_cast<unsigned long long>(redos),
        executes > 0
            ? 100.0 * static_cast<double>(redos) / static_cast<double>(executes)
            : 0.0,
        static_cast<unsigned long long>(executes));
  }
  // Migration digest: durability-ledger traffic.  kMigrateOut/kMigrateRereg
  // carry the drained/installed cargo count in `arg`, so sum those; a
  // kMigrationRedo means the coordinator redelivered ledgered cargo after
  // its holder died — the composition that used to strand work.
  const std::uint64_t mig_out = counts[EventType::kMigrateOut];
  const std::uint64_t mig_in = counts[EventType::kMigrateIn];
  const std::uint64_t reregs = counts[EventType::kMigrateRereg];
  const std::uint64_t mig_redo = counts[EventType::kMigrationRedo];
  if (mig_out + mig_in + reregs + mig_redo > 0) {
    std::uint64_t drained = 0, reregistered = 0;
    for (const TraceEvent& e : data.events) {
      const auto type = static_cast<EventType>(e.type);
      if (type == EventType::kMigrateOut) drained += e.arg;
      if (type == EventType::kMigrateRereg) reregistered += e.arg;
    }
    std::printf(
        "migration: departures=%llu (%llu closures drained) installs=%llu "
        "re-registrations=%llu (%llu closures+ledger entries) "
        "ledger_redeliveries=%llu\n",
        static_cast<unsigned long long>(mig_out),
        static_cast<unsigned long long>(drained),
        static_cast<unsigned long long>(mig_in),
        static_cast<unsigned long long>(reregs),
        static_cast<unsigned long long>(reregistered),
        static_cast<unsigned long long>(mig_redo));
  }
  return 0;
}

int cmd_steals(const TraceData& data) {
  print_header(data);
  // Per worker, pair each steal request with the next success/fail on the
  // same worker (a thief has at most one steal outstanding in every
  // runtime).  Events are sorted by time, so one forward pass suffices.
  std::map<std::uint16_t, std::uint64_t> open;  // worker -> request time
  std::vector<std::uint64_t> won, lost;
  for (const TraceEvent& e : data.events) {
    const auto type = static_cast<EventType>(e.type);
    if (type == EventType::kStealRequest) {
      open[e.worker] = e.t_start;
    } else if (type == EventType::kStealSuccess ||
               type == EventType::kStealFail) {
      auto it = open.find(e.worker);
      if (it == open.end()) continue;  // e.g. a steal begun before tracing
      (type == EventType::kStealSuccess ? won : lost)
          .push_back(e.t_start - it->second);
      open.erase(it);
    }
  }
  auto report = [](const char* label, std::vector<std::uint64_t>& lat) {
    if (lat.empty()) {
      std::printf("%s: none\n", label);
      return;
    }
    std::sort(lat.begin(), lat.end());
    auto at = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(lat.size() - 1));
      return static_cast<double>(lat[idx]) / 1e3;  // us
    };
    double sum = 0;
    for (std::uint64_t v : lat) sum += static_cast<double>(v);
    std::printf("%s: n=%zu  mean=%.1f us  p50=%.1f us  p90=%.1f us  "
                "p99=%.1f us  max=%.1f us\n",
                label, lat.size(), sum / static_cast<double>(lat.size()) / 1e3,
                at(0.50), at(0.90), at(0.99),
                static_cast<double>(lat.back()) / 1e3);
  };
  report("successful steals", won);
  report("failed steals", lost);
  return 0;
}

int cmd_util(const TraceData& data) {
  print_header(data);
  const auto [lo, hi] = time_span(data);
  const double window = static_cast<double>(hi - lo);
  std::map<std::uint16_t, std::uint64_t> busy;
  std::map<std::uint16_t, std::uint64_t> tasks;
  for (const TraceEvent& e : data.events) {
    if (static_cast<EventType>(e.type) != EventType::kExecute) continue;
    busy[e.worker] += e.t_end - e.t_start;
    ++tasks[e.worker];
  }
  TextTable table({"worker", "tasks", "busy (s)", "utilization"});
  for (const auto& [worker, ns] : busy) {
    table.add_row(
        {TextTable::num(static_cast<std::int64_t>(worker)),
         TextTable::num(static_cast<std::int64_t>(tasks[worker])),
         TextTable::num(static_cast<double>(ns) / 1e9, 3),
         TextTable::num(window > 0 ? static_cast<double>(ns) / window : 0.0,
                        3)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_depth(const TraceData& data, int buckets) {
  print_header(data);
  const auto [lo, hi] = time_span(data);
  if (hi == lo || buckets < 1) {
    std::printf("trace too short for a depth profile\n");
    return 0;
  }
  // kSpawn/kExecute/kStealSuccess/kStealServed record the ready-deque depth
  // after the operation in `arg`; average them per (worker, time bucket).
  struct Cell {
    std::uint64_t sum = 0, n = 0;
  };
  std::map<std::uint16_t, std::vector<Cell>> per_worker;
  for (const TraceEvent& e : data.events) {
    const auto type = static_cast<EventType>(e.type);
    if (type != EventType::kSpawn && type != EventType::kExecute &&
        type != EventType::kStealSuccess && type != EventType::kStealServed) {
      continue;
    }
    auto& cells = per_worker[e.worker];
    if (cells.empty()) cells.resize(static_cast<std::size_t>(buckets));
    const auto b = static_cast<std::size_t>(
        static_cast<double>(e.t_start - lo) / static_cast<double>(hi - lo) *
        (buckets - 1));
    cells[b].sum += e.arg;
    ++cells[b].n;
  }
  std::uint64_t peak = 1;
  for (const auto& [worker, cells] : per_worker) {
    for (const Cell& c : cells) {
      if (c.n > 0) peak = std::max(peak, c.sum / c.n);
    }
  }
  std::printf("ready-deque depth over time (avg per bucket; scale 0..%llu)\n",
              static_cast<unsigned long long>(peak));
  const char glyphs[] = " .:-=+*#%@";
  for (const auto& [worker, cells] : per_worker) {
    std::string line;
    for (const Cell& c : cells) {
      if (c.n == 0) {
        line += ' ';
        continue;
      }
      const std::uint64_t avg = c.sum / c.n;
      const auto g = static_cast<std::size_t>(
          static_cast<double>(avg) / static_cast<double>(peak) * 9.0);
      line += glyphs[g];
    }
    std::printf("w%-4u |%s|\n", worker, line.c_str());
  }
  return 0;
}

int cmd_export(const TraceData& data, const std::string& out) {
  if (!write_chrome_trace(out, data)) {
    std::fprintf(stderr, "phish-trace: cannot write %s\n", out.c_str());
    return 1;
  }
  print_header(data);
  std::printf("ARTIFACT %s\n", out.c_str());
  std::printf("open in https://ui.perfetto.dev or chrome://tracing\n");
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: phish-trace <summary|steals|util|depth|export> <run.phtrace>\n"
      "       depth takes --buckets=N (default 64)\n"
      "       export takes --out=trace.json\n");
  return 2;
}

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  if (flags.positional().size() < 2) return usage();
  const std::string command = flags.positional()[0];
  const std::string path = flags.positional()[1];
  auto data = read_trace_file(path);
  if (!data) {
    std::fprintf(stderr, "phish-trace: cannot read trace %s\n", path.c_str());
    return 1;
  }
  if (command == "summary") return cmd_summary(*data);
  if (command == "steals") return cmd_steals(*data);
  if (command == "util") return cmd_util(*data);
  if (command == "depth") {
    return cmd_depth(*data, static_cast<int>(flags.get_int("buckets", 64)));
  }
  if (command == "export") {
    const std::string out = flags.get_string("out", "trace.json");
    return cmd_export(*data, out);
  }
  return usage();
}

}  // namespace
}  // namespace phish::obs

int main(int argc, char** argv) { return phish::obs::run(argc, argv); }
