// phish-jobctl: command-line client for a running phish-jobd.
//
//   phish-jobctl submit --root=fib.task --args=25 [--tenant=a] [--priority=high]
//   phish-jobctl status <job-id>
//   phish-jobctl list [--tenant=a]
//   phish-jobctl cancel <job-id>
//   phish-jobctl stats
//
// Talks plain HTTP/1.1 over a blocking socket — no dependencies — and
// prints the server's JSON verbatim (pipe through jq for pretty output).
// --host/--port default to 127.0.0.1:8080.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "util/flags.hpp"

namespace {

/// One blocking HTTP exchange; returns the response body (and sets status).
bool http_request(const std::string& host, std::uint16_t port,
                  const std::string& method, const std::string& target,
                  const std::string& body, int& status, std::string& reply) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n" +
                        "host: " + host + "\r\nconnection: close\r\n" +
                        "content-length: " + std::to_string(body.size()) +
                        "\r\n\r\n" + body;
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos ||
      response.compare(0, 7, "HTTP/1.") != 0) {
    return false;
  }
  status = std::atoi(response.c_str() + 9);
  reply = response.substr(head_end + 4);
  return true;
}

int usage() {
  std::cerr <<
      "usage: phish-jobctl [--host=127.0.0.1] [--port=8080] <command>\n"
      "  submit --root=TASK [--args=1,2,3] [--tenant=T] [--name=N]\n"
      "         [--priority=low|normal|high]\n"
      "  status <job-id>\n"
      "  list [--tenant=T]\n"
      "  cancel <job-id>\n"
      "  stats\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using phish::Flags;
  Flags flags;
  try {
    flags = Flags::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "phish-jobctl: " << e.what() << "\n";
    return 2;
  }
  const std::string host = flags.get_string("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(flags.get_int("port", 8080));
  const auto& args = flags.positional();  // argv[0] is not included
  if (args.empty()) return usage();
  const std::string& command = args[0];

  std::string method = "GET", target, body;
  if (command == "submit") {
    const std::string root = flags.get_string("root", "");
    if (root.empty()) return usage();
    method = "POST";
    target = "/v1/jobs";
    std::ostringstream b;
    b << "{\"root_task\":\"" << root << "\"";
    const std::string name = flags.get_string("name", "");
    if (!name.empty()) b << ",\"name\":\"" << name << "\"";
    const std::string tenant = flags.get_string("tenant", "");
    if (!tenant.empty()) b << ",\"tenant\":\"" << tenant << "\"";
    const std::string priority = flags.get_string("priority", "");
    if (!priority.empty()) b << ",\"priority\":\"" << priority << "\"";
    const std::string arg_list = flags.get_string("args", "");
    b << ",\"args\":[";
    std::size_t start = 0;
    bool first = true;
    while (start < arg_list.size()) {
      std::size_t comma = arg_list.find(',', start);
      if (comma == std::string::npos) comma = arg_list.size();
      if (!first) b << ",";
      b << arg_list.substr(start, comma - start);
      first = false;
      start = comma + 1;
    }
    b << "]}";
    body = b.str();
  } else if (command == "status" && args.size() >= 2) {
    target = "/v1/jobs/" + args[1];
  } else if (command == "list") {
    target = "/v1/jobs";
    const std::string tenant = flags.get_string("tenant", "");
    if (!tenant.empty()) target += "?tenant=" + tenant;
  } else if (command == "cancel" && args.size() >= 2) {
    method = "DELETE";
    target = "/v1/jobs/" + args[1];
  } else if (command == "stats") {
    target = "/v1/stats";
  } else {
    return usage();
  }

  int status = 0;
  std::string reply;
  if (!http_request(host, port, method, target, body, status, reply)) {
    std::cerr << "phish-jobctl: cannot reach " << host << ":" << port << "\n";
    return 1;
  }
  std::cout << reply;
  return status < 400 ? 0 : 1;
}
