// phish-jobd: the PhishJobD daemon (DESIGN.md §11).
//
// Serves the multi-tenant job API over HTTP on 127.0.0.1 and executes
// admitted jobs on an in-process thread pool (LocalBackend) with the four
// evaluation applications preregistered.  Quickstart:
//
//   phish-jobd --port=8080 &
//   curl -s -X POST localhost:8080/v1/jobs
//     -d '{"root_task":"fib.task","args":[25],"tenant":"alice"}'
//   curl -s localhost:8080/v1/jobs/1
//
// Tenants can be seeded from the command line:
//   --tenant=alice:weight=2,rate=10,max_jobs=4   (repeatable)
#include <csignal>
#include <cstdio>
#include <iostream>

#include "apps/apps.hpp"
#include "jobsvc/http.hpp"
#include "jobsvc/jobd.hpp"
#include "jobsvc/local_backend.hpp"
#include "jobsvc/service.hpp"
#include "util/flags.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

// "alice:weight=2,rate=10,burst=4,max_jobs=8" -> (name, policy).
bool parse_tenant_flag(const std::string& spec, std::string& name,
                       phish::jobsvc::TenantPolicy& policy) {
  const std::size_t colon = spec.find(':');
  name = spec.substr(0, colon);
  if (name.empty()) return false;
  if (colon == std::string::npos) return true;
  std::size_t start = colon + 1;
  while (start < spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string kv = spec.substr(start, comma - start);
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = kv.substr(0, eq);
    const double value = std::atof(kv.substr(eq + 1).c_str());
    if (key == "weight") policy.weight = value;
    else if (key == "rate") policy.rate_per_sec = value;
    else if (key == "burst") policy.burst = value;
    else if (key == "max_jobs") policy.max_jobs = static_cast<std::size_t>(value);
    else if (key == "max_workstations")
      policy.max_workstations = static_cast<std::uint32_t>(value);
    else return false;
    start = comma + 1;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phish;
  Flags flags;
  try {
    flags = Flags::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "phish-jobd: " << e.what() << "\n";
    return 2;
  }
  const auto port = static_cast<std::uint16_t>(flags.get_int("port", 8080));
  const int threads = static_cast<int>(flags.get_int("threads", 2));

  TaskRegistry registry;
  apps::register_fib(registry);
  apps::register_nqueens(registry);
  apps::register_pfold(registry);
  apps::register_ray(registry, apps::Scene{}, 64, 48, 16);

  jobsvc::ServiceConfig config;
  config.max_active = static_cast<std::size_t>(flags.get_int("max-active", 8));
  config.max_backlog =
      static_cast<std::size_t>(flags.get_int("max-backlog", 64));

  static obs::SteadyClock clock;
  jobsvc::LocalBackend backend(registry, threads);
  jobsvc::JobService service(clock, backend, config);
  backend.bind(service);

  // Repeatable --tenant flags arrive as one comma-less string each; Flags
  // keeps only the last duplicate, so also accept --tenants=a:...;b:...
  for (const std::string& key : {std::string("tenant"), std::string("tenants")}) {
    std::string specs = flags.get_string(key, "");
    std::size_t start = 0;
    while (start < specs.size()) {
      std::size_t semi = specs.find(';', start);
      if (semi == std::string::npos) semi = specs.size();
      const std::string spec = specs.substr(start, semi - start);
      std::string name;
      jobsvc::TenantPolicy policy;
      if (!spec.empty()) {
        if (!parse_tenant_flag(spec, name, policy)) {
          std::cerr << "phish-jobd: bad --" << key << " spec '" << spec
                    << "'\n";
          return 2;
        }
        service.configure_tenant(name, policy);
      }
      start = semi + 1;
    }
  }

  jobsvc::HttpServerConfig http_config;
  http_config.port = port;
  jobsvc::HttpServer server(http_config,
                            jobsvc::make_jobd_handler(service));
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "phish-jobd: " << e.what() << "\n";
    return 1;
  }
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::cout << "phish-jobd: serving http://127.0.0.1:" << server.port()
            << "/v1 (" << threads << " worker threads)" << std::endl;
  while (g_stop == 0) {
    struct timespec ts {0, 100'000'000};
    nanosleep(&ts, nullptr);
  }
  server.stop();
  std::cout << "phish-jobd: bye" << std::endl;
  return 0;
}
