// Minimal leveled logging.  The runtimes log through this so tests can raise
// the threshold to keep output quiet while examples can turn on tracing.
// Thread-safe: each emit formats into a local buffer and writes it in one call.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace phish {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// RAII message builder: phish::Log(LogLevel::kInfo) << "x=" << x;
class Log {
 public:
  explicit Log(LogLevel level) : level_(level) {}
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;
  ~Log() {
    if (level_ >= log_threshold()) detail::log_emit(level_, out_.str());
  }

  template <typename T>
  Log& operator<<(const T& value) {
    if (level_ >= log_threshold()) out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

#define PHISH_LOG(level) ::phish::Log(::phish::LogLevel::level)

}  // namespace phish
