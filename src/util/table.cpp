#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace phish {

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row arity " +
                                std::to_string(row.size()) + " != header " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string TextTable::num(std::uint64_t value) { return std::to_string(value); }
std::string TextTable::num(std::int64_t value) { return std::to_string(value); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
          << std::left << row[c];
    }
    out << '\n';
  };
  emit_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) rule += "  ";
    rule += std::string(width[c], '-');
  }
  out << rule << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace phish
