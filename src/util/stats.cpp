#include "util/stats.hpp"

#include <cmath>
#include <sstream>

namespace phish {

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

std::uint64_t Histogram::total() const noexcept {
  std::uint64_t t = 0;
  for (const auto& [k, v] : bins_) t += v;
  return t;
}

void Histogram::merge(const Histogram& other) {
  for (const auto& [k, v] : other.bins_) bins_[k] += v;
}

std::string Histogram::to_string() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [k, v] : bins_) {
    if (!first) out << ' ';
    out << k << ':' << v;
    first = false;
  }
  return out.str();
}

std::uint64_t Log2Histogram::quantile_upper_bound(double q) const noexcept {
  if (total_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return i == 0 ? 0 : (1ULL << i) - 1;
    }
  }
  return std::numeric_limits<std::uint64_t>::max();
}

}  // namespace phish
