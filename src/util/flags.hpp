// Tiny command-line flag parser for the bench binaries and examples.
// Supports --name=value and --name value; unknown flags are an error so typos
// in experiment sweeps fail loudly instead of silently using defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace phish {

class Flags {
 public:
  /// Parse argv.  Throws std::invalid_argument on malformed input.
  /// Positional (non --flag) arguments are collected in order.
  static Flags parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& default_value) const;
  std::int64_t get_int(const std::string& name,
                       std::int64_t default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value) const;

  /// Comma-separated integer list, e.g. --workers=1,2,4,8.
  std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& dflt) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names that were supplied but never read; used by benches to reject typos.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace phish
