#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace phish {
namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() noexcept {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail
}  // namespace phish
