// Deterministic pseudo-random number generation for the Phish reproduction.
//
// Every randomized component in this repository (victim selection, network
// jitter, drop injection, owner traces, workload generators) draws from one of
// these generators with an explicit seed, so every experiment is exactly
// reproducible.  We implement splitmix64 (for seeding and cheap hashing) and
// xoshiro256** (the workhorse generator), both public-domain algorithms by
// Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace phish {

/// splitmix64: one 64-bit state, one output per step.  Used to expand a single
/// seed into the larger state of xoshiro256** and as a cheap integer mixer.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of a 64-bit value (one splitmix64 step with state = x).
/// Handy for deriving independent stream seeds: mix64(seed ^ stream_id).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  return SplitMix64(x).next();
}

/// xoshiro256**: fast, high-quality 64-bit generator with 256-bit state.
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be used
/// with <random> distributions, though we provide bias-free bounded draws
/// directly (Lemire's method) to keep hot paths cheap and portable.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire 2019).
  /// bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply-shift; rejection loop runs < 1 time in expectation.
    for (;;) {
      const std::uint64_t x = next();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Derive an independent generator for a named substream.  The derivation is
  /// a pure function of (current state's first word, stream id), so forks are
  /// reproducible regardless of interleaving.
  Xoshiro256 fork(std::uint64_t stream_id) const noexcept {
    return Xoshiro256(mix64(state_[0] ^ mix64(stream_id)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace phish
