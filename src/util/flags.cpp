#include "util/flags.hpp"

#include <charconv>
#include <stdexcept>

namespace phish {
namespace {

std::int64_t parse_int(const std::string& name, const std::string& text) {
  std::int64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    throw std::invalid_argument("flag --" + name + ": not an integer: '" +
                                text + "'");
  }
  return value;
}

}  // namespace

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[arg] = argv[++i];
    } else {
      flags.values_[arg] = "true";  // bare boolean flag
    }
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::get_string(const std::string& name,
                              const std::string& default_value) const {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t default_value) const {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? default_value : parse_int(name, it->second);
}

double Flags::get_double(const std::string& name, double default_value) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  try {
    std::size_t pos = 0;
    const double value = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + ": not a number: '" +
                                it->second + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool default_value) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + ": not a boolean: '" + v +
                              "'");
}

std::vector<std::int64_t> Flags::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& dflt) const {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  std::vector<std::int64_t> result;
  const std::string& text = it->second;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const auto end = comma == std::string::npos ? text.size() : comma;
    result.push_back(parse_int(name, text.substr(start, end - start)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return result;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!used_.count(name)) names.push_back(name);
  }
  return names;
}

}  // namespace phish
