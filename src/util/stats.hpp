// Streaming statistics and histograms used throughout the benchmarks and the
// scheduler's own bookkeeping (Table 2 statistics, Figure 4/5 series, pfold's
// energy histogram).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace phish {

/// Single-pass summary statistics (Welford's online algorithm for variance).
/// Numerically stable; O(1) space.
class StreamingStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Population variance; 0 for fewer than two samples.
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const noexcept;

  /// Merge another summary into this one (parallel Welford combine).
  void merge(const StreamingStats& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Integer-keyed histogram with exact counts.  pfold uses this for its energy
/// histogram; benches use it for distribution summaries (e.g. steals per
/// worker).  Keys are sparse, so storage is a map.
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1) { bins_[key] += weight; }

  std::uint64_t count(std::int64_t key) const {
    auto it = bins_.find(key);
    return it == bins_.end() ? 0 : it->second;
  }

  std::uint64_t total() const noexcept;
  bool empty() const noexcept { return bins_.empty(); }
  std::size_t distinct() const noexcept { return bins_.size(); }

  /// Merge another histogram into this one.
  void merge(const Histogram& other);

  bool operator==(const Histogram& other) const { return bins_ == other.bins_; }

  const std::map<std::int64_t, std::uint64_t>& bins() const noexcept {
    return bins_;
  }

  /// Render as "key:count key:count ..." in ascending key order.
  std::string to_string() const;

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
};

/// Fixed-resolution latency/size histogram with power-of-two buckets,
/// suitable for hot paths (no allocation after construction).
class Log2Histogram {
 public:
  // bucket_of returns 0 for value 0 and 64 - clz(v) otherwise, i.e. 0..64,
  // so 65 buckets are needed.
  static constexpr int kBuckets = 65;

  void add(std::uint64_t value) noexcept {
    ++buckets_[bucket_of(value)];
    ++total_;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t bucket(int i) const noexcept { return buckets_[i]; }

  /// Smallest value v such that at least fraction q of samples are <= upper
  /// bound of v's bucket.  Returns an upper bound of the quantile's bucket.
  std::uint64_t quantile_upper_bound(double q) const noexcept;

  static int bucket_of(std::uint64_t value) noexcept {
    if (value == 0) return 0;
    return 64 - __builtin_clzll(value);
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

}  // namespace phish
