// Wall-clock timing helpers for the real-time measurements (Table 1) and the
// UDP runtime's timeouts.
#pragma once

#include <chrono>
#include <cstdint>

namespace phish {

/// Monotonic nanoseconds since an arbitrary epoch.
inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(monotonic_ns()) {}
  void reset() noexcept { start_ = monotonic_ns(); }
  std::uint64_t elapsed_ns() const noexcept { return monotonic_ns() - start_; }
  double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

}  // namespace phish
