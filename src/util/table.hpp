// Plain-text table rendering for the benchmark harness.  Every bench prints a
// human-readable table (like the paper's) and machine-readable "key=value"
// rows; this class handles the former.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace phish {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision.
  static std::string num(double value, int precision = 3);
  static std::string num(std::uint64_t value);
  static std::string num(std::int64_t value);

  /// Render with aligned columns.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace phish
