// Deterministic discrete-event simulator.
//
// This is the substitute testbed for the paper's network of SparcStation 1's
// (see DESIGN.md §3.1).  Workstations, workers, the Clearinghouse, the
// PhishJobQ, and the network itself are all expressed as events scheduled on
// one Simulator.  Determinism: events fire in (time, sequence) order, so two
// runs with the same seeds produce byte-identical statistics.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

namespace phish::sim {

/// Simulated time in nanoseconds.
using SimTime = std::uint64_t;

constexpr SimTime kMicrosecond = 1'000;
constexpr SimTime kMillisecond = 1'000'000;
constexpr SimTime kSecond = 1'000'000'000;

inline double to_seconds(SimTime t) {
  return static_cast<double>(t) * 1e-9;
}
inline SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9);
}

/// Handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t seq = 0;
  bool valid() const noexcept { return seq != 0; }
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` to run `delay` after the current time.  Returns a handle
  /// usable with cancel().
  EventId schedule(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule at an absolute simulated time (must be >= now()).
  EventId schedule_at(SimTime when, Callback fn);

  /// Cancel a pending event.  Safe to call on already-fired or already-
  /// cancelled events (no-op).  Returns true if the event was still pending.
  bool cancel(EventId id);

  SimTime now() const noexcept { return now_; }

  /// Number of events scheduled but not yet fired or cancelled.
  std::size_t pending() const noexcept {
    return queue_.size() >= cancelled_.size()
               ? queue_.size() - cancelled_.size()
               : 0;
  }

  /// Fire the next event.  Returns false when no events remain.
  bool step();

  /// Run until the event queue drains or `limit` events have fired.
  /// Returns the number of events fired.
  std::uint64_t run(std::uint64_t limit =
                        std::numeric_limits<std::uint64_t>::max());

  /// Run until simulated time reaches `deadline` (events at exactly
  /// `deadline` do fire) or the queue drains.
  void run_until(SimTime deadline);

  /// Total events fired over the simulator's lifetime.
  std::uint64_t events_fired() const noexcept { return fired_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
};

/// Periodic timer helper: reschedules itself every `period` until stopped.
/// Used by the PhishJobManager polling loops and Clearinghouse heartbeats.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& simulator, SimTime period,
                std::function<void()> on_tick)
      : sim_(simulator), period_(period), on_tick_(std::move(on_tick)) {}
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start(SimTime initial_delay);
  void start() { start(period_); }
  void stop();
  bool running() const noexcept { return running_; }

  /// Change the period; takes effect at the next tick.
  void set_period(SimTime period) noexcept { period_ = period; }

 private:
  void arm(SimTime delay);

  Simulator& sim_;
  SimTime period_;
  std::function<void()> on_tick_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace phish::sim
