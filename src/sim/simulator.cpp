#include "sim/simulator.hpp"

#include <stdexcept>

namespace phish::sim {

EventId Simulator::schedule_at(SimTime when, Callback fn) {
  if (when < now_) {
    throw std::logic_error("Simulator::schedule_at: time in the past");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{when, seq, std::move(fn)});
  return EventId{seq};
}

bool Simulator::cancel(EventId id) {
  // Lazy cancellation: mark the sequence number; the event is dropped (and the
  // tombstone reclaimed) when it reaches the head of the queue.  Cancelling an
  // event that already fired leaves a permanent tombstone, so callers must
  // clear their handles once an event fires — PeriodicTimer does, and it is
  // the only caller that cancels.
  if (!id.valid() || id.seq >= next_seq_) return false;
  return cancelled_.insert(id.seq).second;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    auto it = cancelled_.find(ev.seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++fired_;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Peek past cancelled events without firing live ones early.
    const Event& top = queue_.top();
    if (cancelled_.count(top.seq)) {
      cancelled_.erase(top.seq);
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void PeriodicTimer::start(SimTime initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTimer::stop() {
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = EventId{};
  }
  running_ = false;
}

void PeriodicTimer::arm(SimTime delay) {
  pending_ = sim_.schedule(delay, [this] {
    pending_ = EventId{};
    if (!running_) return;
    on_tick_();
    // on_tick_ may have stopped the timer.
    if (running_ && !pending_.valid()) arm(period_);
  });
}

}  // namespace phish::sim
