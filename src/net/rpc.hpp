// Split-phase remote procedure calls over unreliable datagrams.
//
// The paper: "almost all communications are done with split-phase operations;
// that is, the runtime system almost always works while waiting for a reply
// message.  In order to achieve split-phase communications, all communications
// are implemented on top of UDP/IP messages."
//
// RpcNode layers exactly that on a Channel:
//   * call()  — asynchronous request with retransmission and exponential
//               backoff; the caller keeps working and a completion callback
//               fires with the reply (or failure after the retry budget).
//   * serve() — register a method handler; duplicate requests (retransmits
//               that crossed a reply in flight) are answered from a bounded
//               reply cache without re-running the handler, making methods
//               effectively at-most-once.
//   * send_oneway()/set_oneway_handler() — raw datagrams for traffic that has
//               application-level reliability (argument sends are made
//               idempotent by closure slot fill-flags instead).
//
// Thread-safety: safe for concurrent use (the UDP runtime calls in from
// receiver and timer threads); no lock is held while user callbacks run.
#pragma once

#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "net/channel.hpp"
#include "net/timer_service.hpp"
#include "obs/clock.hpp"
#include "obs/tracer.hpp"

namespace phish::net {

/// Channel message types at and above this value are reserved for RPC frames.
constexpr std::uint16_t kRpcTypeBase = 0xff00;
constexpr std::uint16_t kRpcRequest = 0xff01;
constexpr std::uint16_t kRpcReply = 0xff02;

struct RetryPolicy {
  std::uint64_t timeout_ns = 200'000'000;  // cold-start RTO (no RTT samples)
  int max_attempts = 5;
  double backoff = 2.0;
  /// Fraction of each timeout added as deterministic pseudo-random jitter in
  /// [0, jitter), derived from (jitter seed, request id, attempt): many
  /// workers backing off from the same loss burst must not retransmit in
  /// lockstep.
  double jitter = 0.1;
  /// Start from the per-peer Jacobson RTO (srtt + 4*rttvar, clamped to
  /// [min_timeout_ns, timeout_ns]) once a peer has an RTT sample; timeout_ns
  /// stays the cold-start value and the adaptive ceiling, so a policy tuned
  /// for a chaos profile never waits *longer* than configured, only recovers
  /// faster on a quiet link.
  bool adaptive = true;
  std::uint64_t min_timeout_ns = 5'000'000;
};

/// Per-peer smoothed RTT state (Jacobson/Karn, RFC 6298 gains).
struct RttEstimate {
  bool valid = false;
  double srtt_ns = 0;
  double rttvar_ns = 0;
  std::uint64_t samples = 0;
};

struct RpcResult {
  bool ok = false;
  Bytes reply;
};

struct RpcStats {
  std::uint64_t calls_started = 0;
  std::uint64_t calls_succeeded = 0;
  std::uint64_t calls_failed = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicate_requests = 0;  // served from the reply cache
  std::uint64_t rtt_samples = 0;  // replies accepted into an estimator
};

class RpcNode {
 public:
  using MethodHandler = std::function<Bytes(NodeId src, const Bytes& args)>;
  using OnewayHandler = std::function<void(Message&&)>;
  using Completion = std::function<void(RpcResult)>;

  RpcNode(Channel& channel, TimerService& timers,
          std::size_t reply_cache_capacity = 1024);
  ~RpcNode();

  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  NodeId id() const { return channel_.id(); }

  /// Register the handler for a method id (< kRpcTypeBase).
  void serve(std::uint16_t method, MethodHandler handler);

  /// Asynchronous call.  `on_done` fires exactly once, possibly on a
  /// transport or timer thread.
  void call(NodeId dst, std::uint16_t method, Bytes args, Completion on_done,
            RetryPolicy policy = {});

  /// Raw datagram with an application message type (< kRpcTypeBase).
  void send_oneway(NodeId dst, std::uint16_t type, Bytes payload);

  /// Handler for incoming non-RPC datagrams.
  void set_oneway_handler(OnewayHandler handler);

  RpcStats stats() const;

  /// Seed for deterministic backoff jitter; replays of the same seed produce
  /// the same retransmit schedule.  Default 0 is itself deterministic.
  void set_jitter_seed(std::uint64_t seed);

  /// Paused nodes drop everything — inbound frames, outbound requests,
  /// replies, and oneways — while timers keep running, so a "killed" process
  /// looks to its peers exactly like a crashed one (calls time out) without
  /// tearing down the object.
  void set_paused(bool paused);
  bool paused() const;

  /// Smoothed RTT state toward `peer` (valid=false until the first sample).
  RttEstimate rtt_estimate(NodeId peer) const;

  /// Observability: record every datagram this node sends/receives
  /// (kRpcSend/kRpcRecv, arg = wire message type).  Nulls detach.
  void set_trace(obs::TraceShard* shard, const obs::Clock* clock) {
    trace_ = (shard != nullptr && clock != nullptr) ? shard : nullptr;
    trace_clock_ = clock;
  }

 private:
  void trace_message(obs::EventType type, std::uint16_t wire_type) noexcept {
    if (trace_ == nullptr || !trace_->enabled()) return;
    obs::TraceEvent e = obs::make_event(
        type, static_cast<std::uint16_t>(channel_.id().value),
        trace_clock_->now_ns());
    e.arg = wire_type;
    trace_->emit(e);
  }

  struct PendingCall {
    NodeId dst;
    std::uint16_t method = 0;
    Bytes args;
    Completion on_done;
    RetryPolicy policy;
    int attempts = 0;
    std::uint64_t current_timeout_ns = 0;
    std::uint64_t sent_ns = 0;  // last transmit time, for RTT sampling
    TimerToken timer;
  };

  struct CachedReply {
    std::uint64_t request_id;
    Bytes reply;
  };

  void on_message(Message&& message);
  void handle_request(Message&& message);
  void handle_reply(Message&& message);
  void transmit(std::uint64_t request_id, const PendingCall& call);
  void on_timeout(std::uint64_t request_id);
  void send_reply(NodeId dst, std::uint64_t request_id, const Bytes& reply);
  /// First timeout for a call to `dst`: adaptive RTO when a sample exists,
  /// the policy's cold-start otherwise, plus deterministic jitter.
  std::uint64_t initial_timeout_locked(NodeId dst, const RetryPolicy& policy,
                                       std::uint64_t request_id) const;
  std::uint64_t jitter_locked(std::uint64_t base_ns, double fraction,
                              std::uint64_t request_id, int attempt) const;

  Channel& channel_;
  TimerService& timers_;
  const std::size_t reply_cache_capacity_;
  obs::TraceShard* trace_ = nullptr;
  const obs::Clock* trace_clock_ = nullptr;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint16_t, MethodHandler> methods_;
  OnewayHandler oneway_handler_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::uint64_t next_request_id_;
  // Reply cache per peer, bounded FIFO.
  std::unordered_map<NodeId, std::deque<CachedReply>> reply_cache_;
  std::unordered_map<NodeId, RttEstimate> rtt_;
  std::uint64_t jitter_seed_ = 0;
  bool paused_ = false;
  RpcStats stats_;
};

}  // namespace phish::net
