// Split-phase remote procedure calls over unreliable datagrams.
//
// The paper: "almost all communications are done with split-phase operations;
// that is, the runtime system almost always works while waiting for a reply
// message.  In order to achieve split-phase communications, all communications
// are implemented on top of UDP/IP messages."
//
// RpcNode layers exactly that on a Channel:
//   * call()  — asynchronous request with retransmission and exponential
//               backoff; the caller keeps working and a completion callback
//               fires with the reply (or failure after the retry budget).
//   * serve() — register a method handler; duplicate requests (retransmits
//               that crossed a reply in flight) are answered from a bounded
//               reply cache without re-running the handler, making methods
//               effectively at-most-once.
//   * send_oneway()/set_oneway_handler() — raw datagrams for traffic that has
//               application-level reliability (argument sends are made
//               idempotent by closure slot fill-flags instead).
//
// Thread-safety: safe for concurrent use (the UDP runtime calls in from
// receiver and timer threads); no lock is held while user callbacks run.
#pragma once

#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "net/channel.hpp"
#include "net/timer_service.hpp"
#include "obs/clock.hpp"
#include "obs/tracer.hpp"

namespace phish::net {

/// Channel message types at and above this value are reserved for RPC frames.
constexpr std::uint16_t kRpcTypeBase = 0xff00;
constexpr std::uint16_t kRpcRequest = 0xff01;
constexpr std::uint16_t kRpcReply = 0xff02;

struct RetryPolicy {
  std::uint64_t timeout_ns = 200'000'000;  // first retransmit after 200 ms
  int max_attempts = 5;
  double backoff = 2.0;
};

struct RpcResult {
  bool ok = false;
  Bytes reply;
};

struct RpcStats {
  std::uint64_t calls_started = 0;
  std::uint64_t calls_succeeded = 0;
  std::uint64_t calls_failed = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicate_requests = 0;  // served from the reply cache
};

class RpcNode {
 public:
  using MethodHandler = std::function<Bytes(NodeId src, const Bytes& args)>;
  using OnewayHandler = std::function<void(Message&&)>;
  using Completion = std::function<void(RpcResult)>;

  RpcNode(Channel& channel, TimerService& timers,
          std::size_t reply_cache_capacity = 1024);
  ~RpcNode();

  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  NodeId id() const { return channel_.id(); }

  /// Register the handler for a method id (< kRpcTypeBase).
  void serve(std::uint16_t method, MethodHandler handler);

  /// Asynchronous call.  `on_done` fires exactly once, possibly on a
  /// transport or timer thread.
  void call(NodeId dst, std::uint16_t method, Bytes args, Completion on_done,
            RetryPolicy policy = {});

  /// Raw datagram with an application message type (< kRpcTypeBase).
  void send_oneway(NodeId dst, std::uint16_t type, Bytes payload);

  /// Handler for incoming non-RPC datagrams.
  void set_oneway_handler(OnewayHandler handler);

  RpcStats stats() const;

  /// Observability: record every datagram this node sends/receives
  /// (kRpcSend/kRpcRecv, arg = wire message type).  Nulls detach.
  void set_trace(obs::TraceShard* shard, const obs::Clock* clock) {
    trace_ = (shard != nullptr && clock != nullptr) ? shard : nullptr;
    trace_clock_ = clock;
  }

 private:
  void trace_message(obs::EventType type, std::uint16_t wire_type) noexcept {
    if (trace_ == nullptr || !trace_->enabled()) return;
    obs::TraceEvent e = obs::make_event(
        type, static_cast<std::uint16_t>(channel_.id().value),
        trace_clock_->now_ns());
    e.arg = wire_type;
    trace_->emit(e);
  }

  struct PendingCall {
    NodeId dst;
    std::uint16_t method = 0;
    Bytes args;
    Completion on_done;
    RetryPolicy policy;
    int attempts = 0;
    std::uint64_t current_timeout_ns = 0;
    TimerToken timer;
  };

  struct CachedReply {
    std::uint64_t request_id;
    Bytes reply;
  };

  void on_message(Message&& message);
  void handle_request(Message&& message);
  void handle_reply(Message&& message);
  void transmit(std::uint64_t request_id, const PendingCall& call);
  void on_timeout(std::uint64_t request_id);
  void send_reply(NodeId dst, std::uint64_t request_id, const Bytes& reply);

  Channel& channel_;
  TimerService& timers_;
  const std::size_t reply_cache_capacity_;
  obs::TraceShard* trace_ = nullptr;
  const obs::Clock* trace_clock_ = nullptr;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint16_t, MethodHandler> methods_;
  OnewayHandler oneway_handler_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;
  std::uint64_t next_request_id_;
  // Reply cache per peer, bounded FIFO.
  std::unordered_map<NodeId, std::deque<CachedReply>> reply_cache_;
  RpcStats stats_;
};

}  // namespace phish::net
