#include "net/fault.hpp"

#include <algorithm>
#include <sstream>

namespace phish::net {

const char* to_string(NodeFaultKind kind) noexcept {
  switch (kind) {
    case NodeFaultKind::kCrash:
      return "crash";
    case NodeFaultKind::kPartition:
      return "partition";
    case NodeFaultKind::kHeal:
      return "heal";
    case NodeFaultKind::kRestart:
      return "restart";
    case NodeFaultKind::kReclaim:
      return "reclaim";
  }
  return "?";
}

namespace {

std::uint64_t link_key(NodeId src, NodeId dst) noexcept {
  return (static_cast<std::uint64_t>(src.value) << 32) | dst.value;
}

/// Uniform double in [0, 1) from a hash of (seed, link, seq) — the whole
/// determinism story lives in this one pure function.
double link_draw(std::uint64_t seed, NodeId src, NodeId dst,
                 std::uint64_t seq) noexcept {
  const std::uint64_t h =
      mix64(seed ^ mix64(link_key(src, dst)) ^ mix64(seq ^ 0x5eedfau));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultPlan::is_lossless(std::uint16_t type) const noexcept {
  return std::find(lossless_types.begin(), lossless_types.end(), type) !=
         lossless_types.end();
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out << "FaultPlan{seed=" << seed;
  for (const LinkRule& r : links) {
    out << "; link " << (r.src == kNilNode ? "*" : to_string(r.src)) << "->"
        << (r.dst == kNilNode ? "*" : to_string(r.dst));
    if (r.first_seq != 1 ||
        r.last_seq != std::numeric_limits<std::uint64_t>::max()) {
      out << " seq[" << r.first_seq << ","
          << (r.last_seq == std::numeric_limits<std::uint64_t>::max()
                  ? std::string("inf")
                  : std::to_string(r.last_seq))
          << "]";
    }
    if (r.drop > 0) out << " drop=" << r.drop;
    if (r.duplicate > 0) out << " dup=" << r.duplicate;
    if (r.reorder > 0) {
      out << " reorder=" << r.reorder << "(depth " << r.reorder_depth << ")";
    }
    if (r.delay > 0) {
      out << " delay=" << r.delay << "(+" << r.extra_delay_ns << "ns)";
    }
  }
  if (!racks.empty()) {
    out << "; racks=[";
    for (std::size_t r = 0; r < racks.size(); ++r) {
      out << (r ? " " : "") << "{";
      for (std::size_t i = 0; i < racks[r].size(); ++i) {
        out << (i ? "," : "") << racks[r][i];
      }
      out << "}";
    }
    out << "]";
  }
  for (const NodeEvent& e : events) {
    out << "; " << to_string(e.kind) << " worker " << e.worker << " @ "
        << e.at_ns << "ns";
  }
  if (!lossless_types.empty()) {
    out << "; lossless={";
    for (std::size_t i = 0; i < lossless_types.size(); ++i) {
      out << (i ? "," : "") << lossless_types[i];
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

SendDecision FaultInjector::decide(NodeId src, NodeId dst, std::uint16_t type,
                                   std::uint64_t seq) const {
  for (const LinkRule& rule : plan_.links) {
    if (!rule.matches(src, dst, seq)) continue;
    const double u = link_draw(plan_.seed, src, dst, seq);
    double band = rule.drop;
    // A lossless type skips the drop band (delivered instead) but keeps the
    // same uniform draw, so other links' decisions are unaffected.
    if (u < band) {
      if (plan_.is_lossless(type)) return {};
      return {SendAction::kDrop, 0, 0};
    }
    band += rule.duplicate;
    if (u < band) return {SendAction::kDuplicate, 0, 0};
    band += rule.reorder;
    if (u < band) return {SendAction::kHold, 0, rule.reorder_depth};
    band += rule.delay;
    if (u < band) return {SendAction::kDelay, rule.extra_delay_ns, 0};
    return {};  // first matching rule decides
  }
  return {};
}

SendDecision FaultInjector::on_send(NodeId src, NodeId dst,
                                    std::uint16_t type) {
  return decide(src, dst, type, ++link_seq_[link_key(src, dst)]);
}

void FaultyChannel::send(NodeId dst, std::uint16_t type, Bytes payload) {
  // Decide under the lock, emit outside it (the inner send may do syscalls,
  // and its receiver path must never find us locked).
  struct Out {
    NodeId dst;
    std::uint16_t type;
    Bytes payload;
  };
  std::vector<Out> emit;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const SendDecision decision = injector_.on_send(id(), dst, type);
    switch (decision.action) {
      case SendAction::kDrop:
        ++fault_stats_.dropped;
        break;
      case SendAction::kDuplicate:
        ++fault_stats_.duplicated;
        emit.push_back({dst, type, payload});  // copy for the duplicate
        emit.push_back({dst, type, std::move(payload)});
        break;
      case SendAction::kHold:
        ++fault_stats_.reordered;
        // +1 because the aging loop below runs for this send call too.
        held_.push_back({dst, type, std::move(payload),
                         decision.hold_for + 1});
        break;
      case SendAction::kDelay:  // no clock at channel level: deliver
        ++fault_stats_.delayed;
        [[fallthrough]];
      case SendAction::kDeliver:
        emit.push_back({dst, type, std::move(payload)});
        break;
    }
    // Every send call ages held messages; release the ripe ones after the
    // current message so they land out of order, as promised.
    for (std::size_t i = 0; i < held_.size();) {
      if (--held_[i].remaining <= 0) {
        emit.push_back({held_[i].dst, held_[i].type,
                        std::move(held_[i].payload)});
        held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (Out& o : emit) inner_.send(o.dst, o.type, std::move(o.payload));
}

FaultStats FaultyChannel::fault_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_stats_;
}

void FaultyChannel::flush() {
  std::vector<Held> ripe;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ripe.swap(held_);
  }
  for (Held& h : ripe) inner_.send(h.dst, h.type, std::move(h.payload));
}

}  // namespace phish::net
