// Timer abstraction so the RPC layer (retransmission timeouts) and the
// heartbeat/failure detectors run identically over simulated time and real
// time.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "sim/simulator.hpp"

namespace phish::net {

struct TimerToken {
  std::uint64_t id = 0;
  bool valid() const noexcept { return id != 0; }
};

class TimerService {
 public:
  virtual ~TimerService() = default;

  /// Run `fn` once, `delay_ns` from now.
  virtual TimerToken schedule(std::uint64_t delay_ns,
                              std::function<void()> fn) = 0;

  /// Best-effort cancel; the callback may already be running.
  virtual void cancel(TimerToken token) = 0;

  /// Current time in nanoseconds on this service's clock.
  virtual std::uint64_t now_ns() const = 0;
};

/// Timer service over the discrete-event simulator (single-threaded).
class SimTimerService final : public TimerService {
 public:
  explicit SimTimerService(sim::Simulator& simulator) : sim_(simulator) {}

  TimerToken schedule(std::uint64_t delay_ns,
                      std::function<void()> fn) override {
    const sim::EventId ev = sim_.schedule(delay_ns, std::move(fn));
    return TimerToken{ev.seq};
  }

  void cancel(TimerToken token) override {
    sim_.cancel(sim::EventId{token.id});
  }

  std::uint64_t now_ns() const override { return sim_.now(); }

 private:
  sim::Simulator& sim_;
};

/// Timer service over a dedicated real-time thread (for the UDP runtime).
/// Callbacks run on the timer thread; they must not block for long.
class ThreadTimerService final : public TimerService {
 public:
  ThreadTimerService();
  ~ThreadTimerService() override;

  ThreadTimerService(const ThreadTimerService&) = delete;
  ThreadTimerService& operator=(const ThreadTimerService&) = delete;

  TimerToken schedule(std::uint64_t delay_ns,
                      std::function<void()> fn) override;
  void cancel(TimerToken token) override;
  std::uint64_t now_ns() const override;

 private:
  void loop();

  struct Entry {
    std::uint64_t id;
    std::function<void()> fn;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  // Key: (deadline_ns, id) for stable ordering.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::function<void()>>
      entries_;
  std::map<std::uint64_t, std::uint64_t> deadline_of_;  // id -> deadline
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace phish::net
