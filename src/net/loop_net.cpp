#include "net/loop_net.hpp"

#include <stdexcept>

namespace phish::net {

void LoopChannel::send(NodeId dst, std::uint16_t type, Bytes payload) {
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  net_.route(Message{id_, dst, type, std::move(payload)});
}

LoopChannel& LoopNetwork::channel(NodeId id) {
  if (!id.valid()) throw std::invalid_argument("LoopNetwork: nil node id");
  if (id.value >= channels_.size()) channels_.resize(id.value + 1);
  auto& slot = channels_[id.value];
  if (!slot) slot.reset(new LoopChannel(*this, id));
  return *slot;
}

void LoopNetwork::route(Message&& message) {
  if (drop_probability_ > 0.0 && rng_.chance(drop_probability_)) {
    if (message.src.value < channels_.size() &&
        channels_[message.src.value]) {
      ++channels_[message.src.value]->stats_.messages_dropped;
    }
    return;
  }
  queue_.push_back(std::move(message));
}

bool LoopNetwork::deliver_one() {
  if (queue_.empty()) return false;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  if (msg.dst.value >= channels_.size() || !channels_[msg.dst.value] ||
      !channels_[msg.dst.value]->receiver_) {
    return true;  // destination never attached: silently dropped, like UDP
  }
  LoopChannel& ch = *channels_[msg.dst.value];
  ++ch.stats_.messages_received;
  ch.stats_.bytes_received += msg.payload.size();
  ch.receiver_(std::move(msg));
  return true;
}

std::size_t LoopNetwork::drain() {
  std::size_t n = 0;
  while (deliver_one()) ++n;
  return n;
}

void LoopNetwork::drop_all_in_flight() { queue_.clear(); }

}  // namespace phish::net
