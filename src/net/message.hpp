// Datagram message: the unit of communication on every transport.
#pragma once

#include <cstdint>

#include "net/address.hpp"
#include "serial/buffer.hpp"

namespace phish::net {

struct Message {
  NodeId src;
  NodeId dst;
  std::uint16_t type = 0;
  Bytes payload;
};

/// Per-channel traffic counters.  `messages_sent` is the statistic the paper's
/// Table 2 reports; the rest support the network ablation benches.
struct ChannelStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_dropped = 0;  // injected loss (sim / loop only)

  void merge(const ChannelStats& other) noexcept {
    messages_sent += other.messages_sent;
    bytes_sent += other.bytes_sent;
    messages_received += other.messages_received;
    bytes_received += other.bytes_received;
    messages_dropped += other.messages_dropped;
  }
};

}  // namespace phish::net
