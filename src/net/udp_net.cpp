#include "net/udp_net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace phish::net {
namespace {

constexpr std::uint32_t kMagic = 0x50485348u;  // "PHSH"
constexpr std::uint8_t kVersion = 1;

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpNetwork::UdpNetwork(UdpParams params) : params_(params) {}

UdpNetwork::~UdpNetwork() = default;

std::uint16_t UdpNetwork::port_of(NodeId id) const noexcept {
  if (params_.base_port != 0) {
    return static_cast<std::uint16_t>(params_.base_port + id.value);
  }
  std::lock_guard<std::mutex> lock(port_mutex_);
  const auto it = ports_.find(id.value);
  return it == ports_.end() ? 0 : it->second;
}

void UdpNetwork::register_port(NodeId id, std::uint16_t port) {
  std::lock_guard<std::mutex> lock(port_mutex_);
  ports_[id.value] = port;
}

UdpChannel& UdpNetwork::channel(NodeId id) {
  if (!id.valid()) throw std::invalid_argument("UdpNetwork: nil node id");
  std::lock_guard<std::mutex> lock(mutex_);
  if (id.value >= channels_.size()) channels_.resize(id.value + 1);
  auto& slot = channels_[id.value];
  if (!slot) slot.reset(new UdpChannel(*this, id));
  return *slot;
}

UdpChannel::UdpChannel(UdpNetwork& net, NodeId id)
    : net_(net), id_(id), drop_rng_state_(mix64(net.params().seed ^ id.value)) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("udp: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  int reuse = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
  timeval tv{};
  tv.tv_sec = net.params().recv_timeout_ms / 1000;
  tv.tv_usec = (net.params().recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  // base_port 0: bind port 0 and let the kernel allocate — the only
  // collision-free option when many test processes share the machine.
  const std::uint16_t want =
      net.params().base_port == 0
          ? 0
          : static_cast<std::uint16_t>(net.params().base_port + id.value);
  const sockaddr_in addr = loopback_addr(want);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("udp: bind(" + std::to_string(want) +
                             ") failed: " + std::string(std::strerror(err)));
  }
  if (want == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("udp: getsockname failed: " +
                               std::string(std::strerror(err)));
    }
    net.register_port(id, ntohs(bound.sin_port));
  }
  receiver_thread_ = std::thread([this] { receive_loop(); });
}

UdpChannel::~UdpChannel() {
  stopping_.store(true, std::memory_order_release);
  if (receiver_thread_.joinable()) receiver_thread_.join();
  if (fd_ >= 0) ::close(fd_);
}

void UdpChannel::set_receiver(Receiver receiver) {
  std::lock_guard<std::mutex> lock(mutex_);
  receiver_ = std::move(receiver);
}

const ChannelStats& UdpChannel::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_snapshot_ = stats_;
  return stats_snapshot_;
}

void UdpChannel::send(NodeId dst, std::uint16_t type, Bytes payload) {
  if (payload.size() > kMaxPayload) {
    throw std::length_error("udp: payload exceeds datagram limit (" +
                            std::to_string(payload.size()) + " bytes)");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.messages_sent;
    stats_.bytes_sent += payload.size();
    if (net_.params().drop_probability > 0.0) {
      drop_rng_state_ = mix64(drop_rng_state_);
      const double u =
          static_cast<double>(drop_rng_state_ >> 11) * 0x1.0p-53;
      if (u < net_.params().drop_probability) {
        ++stats_.messages_dropped;
        return;
      }
    }
  }
  Writer w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u32(id_.value);
  w.u32(dst.value);
  w.u16(type);
  w.u64(fnv1a(payload.data(), payload.size()));
  w.blob(payload.data(), payload.size());
  const Bytes& frame = w.bytes();

  const std::uint16_t dst_port = net_.port_of(dst);
  if (dst_port == 0) {
    // Ephemeral layout and the destination has no channel (yet): nothing to
    // address the datagram to.  Same contract as sending to a dead host.
    PHISH_LOG(kDebug) << "udp: no port known for " << to_string(dst)
                      << "; dropping";
    return;
  }
  const sockaddr_in addr = loopback_addr(dst_port);
  const ssize_t sent =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (sent < 0) {
    // UDP semantics: sends can fail (e.g. no socket bound yet); drop silently
    // but log for diagnosis.  Reliability is the RPC layer's job.
    PHISH_LOG(kDebug) << "udp: sendto " << to_string(dst)
                      << " failed: " << std::strerror(errno);
  }
}

void UdpChannel::receive_loop() {
  std::vector<std::uint8_t> buf(kMaxPayload + 64);
  while (!stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      if (stopping_.load(std::memory_order_acquire)) break;
      PHISH_LOG(kWarn) << "udp: recv failed on " << to_string(id_) << ": "
                       << std::strerror(errno);
      continue;
    }
    Reader r(buf.data(), static_cast<std::size_t>(n));
    if (r.u32() != kMagic || r.u8() != kVersion) continue;
    const NodeId src{r.u32()};
    const NodeId dst{r.u32()};
    const std::uint16_t type = r.u16();
    const std::uint64_t checksum = r.u64();
    Bytes payload = r.blob();
    if (!r.done() || dst != id_) continue;
    if (fnv1a(payload.data(), payload.size()) != checksum) {
      PHISH_LOG(kWarn) << "udp: checksum mismatch on " << to_string(id_);
      continue;
    }
    Receiver receiver;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.messages_received;
      stats_.bytes_received += payload.size();
      receiver = receiver_;
    }
    if (receiver) receiver(Message{src, dst, type, std::move(payload)});
  }
}

}  // namespace phish::net
