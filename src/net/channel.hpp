// Channel: one node's connection to the network.
//
// The worker engine, Clearinghouse, JobQ, and RPC layer are all written
// against this interface, so the same scheduler code runs over the simulated
// network (SimNetwork), an in-process test network (LoopNetwork), and real
// UDP sockets (UdpNetwork) — mirroring how the paper's Phish and Strata share
// one programming model across a workstation network and the CM-5.
#pragma once

#include <functional>

#include "net/message.hpp"

namespace phish::net {

class Channel {
 public:
  using Receiver = std::function<void(Message&&)>;

  virtual ~Channel() = default;

  /// This node's address.
  virtual NodeId id() const = 0;

  /// Fire-and-forget datagram send (split-phase: never blocks on the
  /// destination).  Delivery may fail silently, exactly like UDP; reliability
  /// is layered on top by the RPC module where it matters.
  virtual void send(NodeId dst, std::uint16_t type, Bytes payload) = 0;

  /// Install the message handler.  The transport guarantees the receiver is
  /// never invoked concurrently with itself for the same channel.
  virtual void set_receiver(Receiver receiver) = 0;

  /// Traffic counters for this node.
  virtual const ChannelStats& stats() const = 0;
};

}  // namespace phish::net
