// In-process loopback network for unit tests.
//
// Messages are queued and delivered when the test calls drain() (or
// deliver_one()), so protocol state machines can be single-stepped
// deterministically without a simulator or sockets.  Supports loss injection
// and reordering for exercising the RPC retransmission logic.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "util/rng.hpp"

namespace phish::net {

class LoopNetwork;

class LoopChannel final : public Channel {
 public:
  NodeId id() const override { return id_; }
  void send(NodeId dst, std::uint16_t type, Bytes payload) override;
  void set_receiver(Receiver receiver) override {
    receiver_ = std::move(receiver);
  }
  const ChannelStats& stats() const override { return stats_; }

 private:
  friend class LoopNetwork;
  LoopChannel(LoopNetwork& net, NodeId id) : net_(net), id_(id) {}

  LoopNetwork& net_;
  NodeId id_;
  Receiver receiver_;
  ChannelStats stats_;
};

class LoopNetwork {
 public:
  explicit LoopNetwork(std::uint64_t seed = 1) : rng_(seed) {}

  LoopChannel& channel(NodeId id);

  /// Deliver the oldest in-flight message.  Returns false if none.
  bool deliver_one();

  /// Deliver until the network is quiet.  Handlers may send more messages;
  /// those are delivered too.  Returns the number delivered.
  std::size_t drain();

  /// Messages currently in flight.
  std::size_t in_flight() const noexcept { return queue_.size(); }

  /// Drop each subsequent message with this probability.
  void set_drop_probability(double p) noexcept { drop_probability_ = p; }

  /// Discard all in-flight messages (e.g. simulate a burst of loss).
  void drop_all_in_flight();

 private:
  friend class LoopChannel;
  void route(Message&& message);

  std::vector<std::unique_ptr<LoopChannel>> channels_;
  std::deque<Message> queue_;
  double drop_probability_ = 0.0;
  Xoshiro256 rng_;
};

}  // namespace phish::net
