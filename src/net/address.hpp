// Node addressing.
//
// Every process in a Phish network — workers, the Clearinghouse of each job,
// the PhishJobQ, and each PhishJobManager — is a node with a small integer id.
// In the simulated network the id indexes the simulator's node table; in the
// real UDP network it maps to a 127.0.0.1 port.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace phish::net {

struct NodeId {
  std::uint32_t value = kNilValue;

  static constexpr std::uint32_t kNilValue = 0xffffffffu;

  constexpr bool valid() const noexcept { return value != kNilValue; }
  constexpr auto operator<=>(const NodeId&) const = default;
};

constexpr NodeId kNilNode{};

inline std::string to_string(NodeId id) {
  return id.valid() ? "n" + std::to_string(id.value) : "n<nil>";
}

}  // namespace phish::net

template <>
struct std::hash<phish::net::NodeId> {
  std::size_t operator()(const phish::net::NodeId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
