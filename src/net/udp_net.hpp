// Real UDP/IP transport on loopback.
//
// This is the layer the paper's Phish actually ran on: split-phase
// communication over UDP datagrams.  Each node binds its own socket on
// 127.0.0.1 at (base_port + node id); a receiver thread per node parses and
// dispatches incoming datagrams.  Datagrams carry a small header with a magic
// number, src/dst ids, a message type, and an FNV-1a checksum so torn or
// foreign packets are discarded instead of crashing a worker.
//
// The reproduction runs all "workstations" on one box (see DESIGN.md §3.3);
// the code does not care — addresses are plain sockaddrs.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/channel.hpp"

namespace phish::net {

struct UdpParams {
  /// 0 = ephemeral: every channel binds port 0 and the kernel picks a free
  /// one; the network keeps the id -> port table.  This is the only
  /// collision-free choice when many tests run concurrently (ctest -j).
  /// Nonzero = fixed layout: node id binds base_port + id (useful when an
  /// external process must know the ports up front).
  std::uint16_t base_port = 29070;
  /// Receive poll timeout; bounds shutdown latency.
  int recv_timeout_ms = 50;
  /// Artificial outbound loss for testing retransmission over real sockets.
  double drop_probability = 0.0;
  std::uint64_t seed = 0x5eed'0000'0002ULL;
};

class UdpChannel;

/// Owns the node-id -> port mapping and the channels created in this process.
class UdpNetwork {
 public:
  explicit UdpNetwork(UdpParams params = {});
  ~UdpNetwork();

  UdpNetwork(const UdpNetwork&) = delete;
  UdpNetwork& operator=(const UdpNetwork&) = delete;

  /// Create and bind the channel for `id`.  Throws std::runtime_error if the
  /// port cannot be bound.  The receiver thread starts immediately; install a
  /// receiver with set_receiver() before peers start sending, or early
  /// messages are dropped (as real UDP would).
  UdpChannel& channel(NodeId id);

  const UdpParams& params() const noexcept { return params_; }

  /// Port `id` is reachable at.  Fixed layout: base_port + id.  Ephemeral
  /// (base_port == 0): looked up in the bind table; 0 if `id` has no channel
  /// yet (a send there fails like any datagram to a dead host).
  std::uint16_t port_of(NodeId id) const noexcept;

 private:
  friend class UdpChannel;
  void register_port(NodeId id, std::uint16_t port);

  UdpParams params_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<UdpChannel>> channels_;
  mutable std::mutex port_mutex_;
  std::unordered_map<std::uint32_t, std::uint16_t> ports_;
};

class UdpChannel final : public Channel {
 public:
  ~UdpChannel() override;

  NodeId id() const override { return id_; }
  void send(NodeId dst, std::uint16_t type, Bytes payload) override;
  void set_receiver(Receiver receiver) override;
  const ChannelStats& stats() const override;

  /// Maximum payload a single datagram may carry.
  static constexpr std::size_t kMaxPayload = 60 * 1024;

 private:
  friend class UdpNetwork;
  UdpChannel(UdpNetwork& net, NodeId id);

  void receive_loop();

  UdpNetwork& net_;
  NodeId id_;
  int fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread receiver_thread_;

  mutable std::mutex mutex_;  // guards receiver_, stats_, rng state
  Receiver receiver_;
  ChannelStats stats_;
  mutable ChannelStats stats_snapshot_;
  std::uint64_t drop_rng_state_;
};

}  // namespace phish::net
