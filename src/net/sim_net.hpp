// Simulated network: delivers messages through the discrete-event simulator
// with a configurable cost model.
//
// The default parameters model the paper's characterization of a 1994
// workstation Ethernet relative to a CM-5: per-message software overhead two
// orders of magnitude higher (hundreds of microseconds), ~1 ms one-way
// latency, and ~1.25 MB/s of usable bandwidth.  The network ablation bench
// (A7) sweeps these.
#pragma once

#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "net/fault.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace phish::net {

struct SimNetParams {
  /// CPU time the *sender* burns per message (software overhead).  Charged to
  /// the sending worker via send_cpu_cost(); the paper identifies this as the
  /// dominant cost of workstation networking.
  sim::SimTime send_overhead = 200 * sim::kMicrosecond;
  /// CPU time the *receiver* burns per message.
  sim::SimTime recv_overhead = 200 * sim::kMicrosecond;
  /// One-way wire latency.
  sim::SimTime latency = 500 * sim::kMicrosecond;
  /// Usable bandwidth; transfer time = size / bandwidth.
  double bytes_per_second = 1.25e6;
  /// Uniform random extra delay in [0, jitter].
  sim::SimTime jitter = 50 * sim::kMicrosecond;
  /// Probability a message is silently dropped (loss injection for the fault
  /// tolerance and RPC retransmission tests).
  double drop_probability = 0.0;
  /// Seed for jitter/drop randomness.
  std::uint64_t seed = 0x5eed'0000'0001ULL;

  // ---- Heterogeneous-network extension (paper §6 future work). ----
  // Nodes can be assigned to clusters (SimNetwork::set_cluster); messages
  // crossing a cluster boundary use these wire characteristics instead of
  // `latency`/`bytes_per_second`.  Defaults equal the intra-cluster values,
  // i.e. a flat network.
  sim::SimTime inter_cluster_latency = 500 * sim::kMicrosecond;
  double inter_cluster_bytes_per_second = 1.25e6;

  /// A CM-5-like interconnect for the Strata-analog comparisons: overheads and
  /// latency two orders of magnitude below the workstation defaults.
  static SimNetParams cm5_like();
};

class SimNetwork;

class SimChannel final : public Channel {
 public:
  NodeId id() const override { return id_; }
  void send(NodeId dst, std::uint16_t type, Bytes payload) override;
  void set_receiver(Receiver receiver) override {
    receiver_ = std::move(receiver);
  }
  const ChannelStats& stats() const override { return stats_; }

 private:
  friend class SimNetwork;
  SimChannel(SimNetwork& net, NodeId id) : net_(net), id_(id) {}

  SimNetwork& net_;
  NodeId id_;
  Receiver receiver_;
  ChannelStats stats_;
};

class SimNetwork {
 public:
  SimNetwork(sim::Simulator& simulator, SimNetParams params = {})
      : sim_(simulator), params_(params), rng_(params.seed) {}

  /// Create (or fetch) the channel for a node id.  Node ids are dense small
  /// integers assigned by the caller.
  SimChannel& channel(NodeId id);

  /// CPU cost the sender should charge itself for a message of `size` bytes.
  sim::SimTime send_cpu_cost(std::size_t size) const;
  /// CPU cost the receiver should charge itself per delivered message.
  sim::SimTime recv_cpu_cost() const { return params_.recv_overhead; }

  const SimNetParams& params() const { return params_; }
  sim::Simulator& simulator() { return sim_; }

  /// Sum of all channels' counters.
  ChannelStats total_stats() const;

  /// Drop every message to/from this node from now on (simulates a machine
  /// crash for the fault-tolerance experiments).
  void partition(NodeId id, bool dead = true);
  bool is_partitioned(NodeId id) const;

  /// Assign a node to a cluster (heterogeneous-network extension).  Nodes
  /// default to cluster 0.
  void set_cluster(NodeId id, int cluster);
  int cluster_of(NodeId id) const;
  /// Messages that crossed a cluster boundary (for the topology ablation).
  std::uint64_t inter_cluster_messages() const {
    return inter_cluster_messages_;
  }

  /// Messages currently on the wire (scheduled but not yet delivered).
  /// Zero means this simulated instant is network-quiescent — the condition
  /// the checkpoint service waits for.
  std::uint64_t messages_in_flight() const { return in_flight_; }

  /// Install a fault injector consulted for every routed message (nullptr
  /// to remove).  Unlike the FaultyChannel decorator, the native hook can
  /// express timed faults: kDelay adds virtual latency and kHold becomes a
  /// delay long enough to overtake later traffic.  Not owned; the caller
  /// keeps it alive for the network's lifetime.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
  }
  const FaultStats& fault_stats() const { return fault_stats_; }

 private:
  friend class SimChannel;
  void route(Message&& message);
  void deliver(Message&& message);

  sim::Simulator& sim_;
  SimNetParams params_;
  Xoshiro256 rng_;
  FaultInjector* fault_injector_ = nullptr;
  FaultStats fault_stats_;
  std::vector<std::unique_ptr<SimChannel>> channels_;
  std::vector<bool> dead_;
  std::vector<int> clusters_;
  std::uint64_t inter_cluster_messages_ = 0;
  std::uint64_t in_flight_ = 0;
};

}  // namespace phish::net
