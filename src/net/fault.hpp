// Deterministic fault injection for every transport.
//
// The paper's claim is not that Phish is fast on a quiet network but that it
// keeps adaptively-parallel jobs correct while workstations join, leave
// (owner returns), crash, and the network mangles datagrams.  This module
// turns those failure modes into a *scriptable, seeded schedule* — a
// FaultPlan — that replays byte-for-byte:
//
//   * per-link message faults (drop, duplicate, reorder, extra delay), and
//   * node-level events (crash, partition, heal/restart, forced owner
//     reclaim) in virtual time.
//
// One plan drives all transports.  SimNetwork consults a FaultInjector
// natively (virtual-time faults, including delay); LoopNetwork and the UDP
// runtime get the same link faults through the FaultyChannel decorator,
// which wraps any net::Channel without the scheduler code noticing.
//
// Determinism: every link-fault decision is a pure function of
// (plan seed, src, dst, per-link sequence number).  The sequence number is
// counted per (src, dst) pair at the injection point, so the decision for
// "the 7th message A sent to B" is the same regardless of thread
// interleaving or what other links are doing — a failing chaos seed replays
// exactly, even over real sockets.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/channel.hpp"
#include "util/rng.hpp"

namespace phish::net {

/// One per-link fault rule.  A rule applies to messages whose source and
/// destination match (kNilNode = wildcard) and whose per-link 1-based
/// sequence number lies in [first_seq, last_seq].  The first matching rule
/// decides; probabilities within a rule are evaluated as disjoint bands of
/// one uniform draw (drop first, then duplicate, reorder, delay).
struct LinkRule {
  NodeId src = kNilNode;  // kNilNode matches any sender
  NodeId dst = kNilNode;  // kNilNode matches any receiver
  std::uint64_t first_seq = 1;
  std::uint64_t last_seq = std::numeric_limits<std::uint64_t>::max();
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double delay = 0.0;
  /// Extra latency when the delay band fires (virtual-time transports).
  std::uint64_t extra_delay_ns = 0;
  /// When the reorder band fires, the message is held back until this many
  /// later messages from the same channel have been sent.
  int reorder_depth = 2;

  bool matches(NodeId s, NodeId d, std::uint64_t seq) const noexcept {
    return (src == kNilNode || src == s) && (dst == kNilNode || dst == d) &&
           seq >= first_seq && seq <= last_seq;
  }
};

/// Node-level fault kinds, mapping the paper's failure modes (machine crash,
/// owner return) plus transient network outages.  Consumed by runtimes that
/// own a virtual clock (SimCluster); link faults alone apply elsewhere.
enum class NodeFaultKind : std::uint8_t {
  kCrash,      // machine vanishes; redo machinery must recover
  kPartition,  // node unreachable (network cut); the process keeps running
  kHeal,       // partition ends
  kRestart,    // a crashed worker rejoins as a fresh incarnation; on a
               // merely partitioned (still-running) node, same as kHeal
  kReclaim,    // owner returns: worker migrates its closures and departs
};

const char* to_string(NodeFaultKind kind) noexcept;

/// NodeEvent::worker value addressing the coordinator (the primary
/// Clearinghouse) instead of a worker: kCrash halts the primary mid-job,
/// exercising warm-standby promotion.
inline constexpr int kCoordinatorWorker = -1;

struct NodeEvent {
  std::uint64_t at_ns = 0;  // virtual time
  NodeFaultKind kind = NodeFaultKind::kCrash;
  /// Worker *index* (SimCluster order), not a NodeId; kCoordinatorWorker
  /// targets the primary Clearinghouse.
  int worker = 0;
};

/// A seeded, scriptable schedule of faults.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<LinkRule> links;
  std::vector<NodeEvent> events;
  /// Message types that are never *dropped* (they remain eligible for
  /// duplicate / reorder / delay, which the protocol must absorb through
  /// idempotent slot fills).  Phish layers reliability selectively: RPC
  /// frames retransmit (death notices now ride that acked path) and
  /// heartbeats are periodic, so losing them is part of the contract — but
  /// plain-oneway dataflow (kArgument, kMigrate) has no retransmit path,
  /// exactly as in the paper's prototype.  Dropping those would model a
  /// failure mode the protocol never claimed to survive and simply hang
  /// the job.
  std::vector<std::uint16_t> lossless_types;
  /// Topology behind correlated failures: racks[r] lists the worker indices
  /// sharing failure domain r (power strip, switch).  Churn plans kill whole
  /// racks at once; empty = no correlated events in this plan.
  std::vector<std::vector<int>> racks;

  bool empty() const noexcept { return links.empty() && events.empty(); }
  bool is_lossless(std::uint16_t type) const noexcept;

  /// Human-readable dump, printed on chaos-test failure so the exact plan
  /// can be replayed.
  std::string describe() const;
};

enum class SendAction : std::uint8_t {
  kDeliver,
  kDrop,
  kDuplicate,
  kHold,   // reorder: hold back past the next `hold_for` sends
  kDelay,  // deliver after extra_delay_ns (virtual-time transports)
};

struct SendDecision {
  SendAction action = SendAction::kDeliver;
  std::uint64_t extra_delay_ns = 0;
  int hold_for = 0;
};

/// Per-message counters kept by the injection points (FaultyChannel and
/// SimNetwork); separate from ChannelStats so wire accounting stays honest.
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t delayed = 0;
};

/// Deterministic decision engine for a plan's link rules.  decide() is a
/// pure function; on_send() additionally counts per-link sequence numbers.
/// Not internally synchronized — callers that share an injector across
/// threads (FaultyChannel) serialize on their own lock.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Decision for the seq-th message (1-based) ever sent src -> dst.
  SendDecision decide(NodeId src, NodeId dst, std::uint16_t type,
                      std::uint64_t seq) const;

  /// Count the next message on (src, dst) and decide its fate.
  SendDecision on_send(NodeId src, NodeId dst, std::uint16_t type);

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  std::unordered_map<std::uint64_t, std::uint64_t> link_seq_;
};

/// Channel decorator applying a plan's link faults to outbound traffic.
/// Works on any transport; the wrapped channel (and everything behind it —
/// RpcNode, WorkerCore) is none the wiser.  Reorder is implemented by
/// holding a message back until `reorder_depth` later sends have gone out;
/// a held message that never accumulates enough successors is released by
/// flush() (or stays undelivered, which the unreliable-datagram contract
/// permits).  kDelay degrades to deliver: a real-time channel has no clock
/// to delay against; use SimNetwork's native hook for timed faults.
///
/// Thread-safe: the UDP runtime sends from worker, receiver, and timer
/// threads.
class FaultyChannel final : public Channel {
 public:
  FaultyChannel(Channel& inner, const FaultPlan& plan)
      : inner_(inner), injector_(plan) {}

  NodeId id() const override { return inner_.id(); }
  void send(NodeId dst, std::uint16_t type, Bytes payload) override;
  void set_receiver(Receiver receiver) override {
    inner_.set_receiver(std::move(receiver));
  }
  /// Wire accounting of the underlying channel (dropped messages never hit
  /// the wire; duplicates hit it twice).
  const ChannelStats& stats() const override { return inner_.stats(); }

  FaultStats fault_stats() const;

  /// Release every held message (in original order), e.g. at teardown.
  void flush();

 private:
  struct Held {
    NodeId dst;
    std::uint16_t type;
    Bytes payload;
    int remaining;
  };

  Channel& inner_;
  FaultInjector injector_;
  mutable std::mutex mutex_;  // guards injector_, held_, fault_stats_
  std::vector<Held> held_;
  FaultStats fault_stats_;
};

}  // namespace phish::net
