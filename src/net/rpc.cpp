#include "net/rpc.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace phish::net {

RpcNode::RpcNode(Channel& channel, TimerService& timers,
                 std::size_t reply_cache_capacity)
    : channel_(channel),
      timers_(timers),
      reply_cache_capacity_(reply_cache_capacity),
      next_request_id_(mix64(channel.id().value) | 1) {
  channel_.set_receiver([this](Message&& m) { on_message(std::move(m)); });
}

RpcNode::~RpcNode() {
  channel_.set_receiver({});
  std::vector<PendingCall> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, call] : pending_) {
      timers_.cancel(call.timer);
      orphans.push_back(std::move(call));
    }
    pending_.clear();
  }
  for (auto& call : orphans) {
    if (call.on_done) call.on_done(RpcResult{false, {}});
  }
}

void RpcNode::serve(std::uint16_t method, MethodHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  methods_[method] = std::move(handler);
}

void RpcNode::call(NodeId dst, std::uint16_t method, Bytes args,
                   Completion on_done, RetryPolicy policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t request_id = next_request_id_++;
  PendingCall call;
  call.dst = dst;
  call.method = method;
  call.args = std::move(args);
  call.on_done = std::move(on_done);
  call.policy = policy;
  call.attempts = 1;
  call.current_timeout_ns = initial_timeout_locked(dst, policy, request_id);
  auto [it, inserted] = pending_.emplace(request_id, std::move(call));
  ++stats_.calls_started;
  it->second.sent_ns = timers_.now_ns();
  transmit(request_id, it->second);
  it->second.timer = timers_.schedule(
      jitter_locked(it->second.current_timeout_ns, policy.jitter, request_id,
                    /*attempt=*/1),
      [this, request_id] { on_timeout(request_id); });
}

void RpcNode::send_oneway(NodeId dst, std::uint16_t type, Bytes payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (paused_) return;
  }
  trace_message(obs::EventType::kRpcSend, type);
  channel_.send(dst, type, std::move(payload));
}

void RpcNode::set_oneway_handler(OnewayHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  oneway_handler_ = std::move(handler);
}

RpcStats RpcNode::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void RpcNode::set_jitter_seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  jitter_seed_ = seed;
}

void RpcNode::set_paused(bool paused) {
  std::lock_guard<std::mutex> lock(mutex_);
  paused_ = paused;
}

bool RpcNode::paused() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return paused_;
}

RttEstimate RpcNode::rtt_estimate(NodeId peer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rtt_.find(peer);
  return it == rtt_.end() ? RttEstimate{} : it->second;
}

std::uint64_t RpcNode::initial_timeout_locked(NodeId dst,
                                              const RetryPolicy& policy,
                                              std::uint64_t) const {
  if (!policy.adaptive) return policy.timeout_ns;
  auto it = rtt_.find(dst);
  if (it == rtt_.end() || !it->second.valid) return policy.timeout_ns;
  const double rto = it->second.srtt_ns + 4.0 * it->second.rttvar_ns;
  const auto clamped = static_cast<std::uint64_t>(rto);
  if (clamped < policy.min_timeout_ns) return policy.min_timeout_ns;
  if (clamped > policy.timeout_ns) return policy.timeout_ns;
  return clamped;
}

std::uint64_t RpcNode::jitter_locked(std::uint64_t base_ns, double fraction,
                                     std::uint64_t request_id,
                                     int attempt) const {
  if (fraction <= 0.0) return base_ns;
  const std::uint64_t h = mix64(jitter_seed_ ^ mix64(request_id) ^
                                mix64(0x6a17'7e12ULL + attempt));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1p-53;
  return base_ns +
         static_cast<std::uint64_t>(static_cast<double>(base_ns) * fraction * u);
}

void RpcNode::on_message(Message&& message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (paused_) return;  // a "killed" node hears nothing
  }
  trace_message(obs::EventType::kRpcRecv, message.type);
  switch (message.type) {
    case kRpcRequest:
      handle_request(std::move(message));
      break;
    case kRpcReply:
      handle_reply(std::move(message));
      break;
    default: {
      OnewayHandler handler;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        handler = oneway_handler_;
      }
      if (handler) handler(std::move(message));
      break;
    }
  }
}

void RpcNode::handle_request(Message&& message) {
  Reader r(message.payload);
  const std::uint64_t request_id = r.u64();
  const std::uint16_t method = r.u16();
  const Bytes args = r.blob();
  if (!r.done()) {
    PHISH_LOG(kWarn) << "rpc: malformed request from "
                     << to_string(message.src);
    return;
  }

  MethodHandler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Duplicate? Answer from the reply cache without re-running the handler.
    auto cached = reply_cache_.find(message.src);
    if (cached != reply_cache_.end()) {
      for (const CachedReply& entry : cached->second) {
        if (entry.request_id == request_id) {
          ++stats_.duplicate_requests;
          // channel_.send never calls back into this RpcNode, so sending
          // while holding our mutex is safe.
          send_reply(message.src, request_id, entry.reply);
          return;
        }
      }
    }
    auto it = methods_.find(method);
    if (it == methods_.end()) {
      PHISH_LOG(kDebug) << "rpc: no handler for method " << method << " on "
                        << to_string(channel_.id());
      return;  // caller times out, exactly as with a dead UDP peer
    }
    handler = it->second;
  }

  Bytes reply = handler(message.src, args);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& cache = reply_cache_[message.src];
    cache.push_back(CachedReply{request_id, reply});
    while (cache.size() > reply_cache_capacity_) cache.pop_front();
  }
  send_reply(message.src, request_id, reply);
}

void RpcNode::handle_reply(Message&& message) {
  Reader r(message.payload);
  const std::uint64_t request_id = r.u64();
  Bytes reply = r.blob();
  if (!r.done()) {
    PHISH_LOG(kWarn) << "rpc: malformed reply from " << to_string(message.src);
    return;
  }
  Completion on_done;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;  // late duplicate reply
    timers_.cancel(it->second.timer);
    // Karn's rule: a retransmitted call's reply is ambiguous (it may answer
    // any earlier transmit), so only first-attempt replies feed the
    // estimator.
    if (it->second.attempts == 1) {
      const std::uint64_t now = timers_.now_ns();
      if (now >= it->second.sent_ns) {
        const double r = static_cast<double>(now - it->second.sent_ns);
        RttEstimate& est = rtt_[message.src];
        if (!est.valid) {
          est.valid = true;
          est.srtt_ns = r;
          est.rttvar_ns = r / 2.0;
        } else {
          const double err = r - est.srtt_ns;
          est.srtt_ns += err / 8.0;
          est.rttvar_ns += (std::abs(err) - est.rttvar_ns) / 4.0;
        }
        ++est.samples;
        ++stats_.rtt_samples;
      }
    }
    on_done = std::move(it->second.on_done);
    pending_.erase(it);
    ++stats_.calls_succeeded;
  }
  if (on_done) on_done(RpcResult{true, std::move(reply)});
}

void RpcNode::transmit(std::uint64_t request_id, const PendingCall& call) {
  if (paused_) return;  // callers hold mutex_
  Writer w;
  w.u64(request_id);
  w.u16(call.method);
  w.blob(call.args.data(), call.args.size());
  trace_message(obs::EventType::kRpcSend, kRpcRequest);
  channel_.send(call.dst, kRpcRequest, w.take());
}

void RpcNode::on_timeout(std::uint64_t request_id) {
  Completion on_done;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;
    PendingCall& call = it->second;
    if (call.attempts >= call.policy.max_attempts) {
      on_done = std::move(call.on_done);
      pending_.erase(it);
      ++stats_.calls_failed;
    } else {
      ++call.attempts;
      ++stats_.retransmissions;
      call.current_timeout_ns = static_cast<std::uint64_t>(
          static_cast<double>(call.current_timeout_ns) * call.policy.backoff);
      call.sent_ns = timers_.now_ns();
      transmit(request_id, call);
      call.timer = timers_.schedule(
          jitter_locked(call.current_timeout_ns, call.policy.jitter,
                        request_id, call.attempts),
          [this, request_id] { on_timeout(request_id); });
    }
  }
  if (on_done) on_done(RpcResult{false, {}});
}

void RpcNode::send_reply(NodeId dst, std::uint64_t request_id,
                         const Bytes& reply) {
  Writer w;
  w.u64(request_id);
  w.blob(reply.data(), reply.size());
  trace_message(obs::EventType::kRpcSend, kRpcReply);
  channel_.send(dst, kRpcReply, w.take());
}

}  // namespace phish::net
