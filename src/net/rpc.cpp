#include "net/rpc.hpp"

#include <utility>
#include <vector>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace phish::net {

RpcNode::RpcNode(Channel& channel, TimerService& timers,
                 std::size_t reply_cache_capacity)
    : channel_(channel),
      timers_(timers),
      reply_cache_capacity_(reply_cache_capacity),
      next_request_id_(mix64(channel.id().value) | 1) {
  channel_.set_receiver([this](Message&& m) { on_message(std::move(m)); });
}

RpcNode::~RpcNode() {
  channel_.set_receiver({});
  std::vector<PendingCall> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, call] : pending_) {
      timers_.cancel(call.timer);
      orphans.push_back(std::move(call));
    }
    pending_.clear();
  }
  for (auto& call : orphans) {
    if (call.on_done) call.on_done(RpcResult{false, {}});
  }
}

void RpcNode::serve(std::uint16_t method, MethodHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  methods_[method] = std::move(handler);
}

void RpcNode::call(NodeId dst, std::uint16_t method, Bytes args,
                   Completion on_done, RetryPolicy policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t request_id = next_request_id_++;
  PendingCall call;
  call.dst = dst;
  call.method = method;
  call.args = std::move(args);
  call.on_done = std::move(on_done);
  call.policy = policy;
  call.attempts = 1;
  call.current_timeout_ns = policy.timeout_ns;
  auto [it, inserted] = pending_.emplace(request_id, std::move(call));
  ++stats_.calls_started;
  transmit(request_id, it->second);
  it->second.timer = timers_.schedule(
      it->second.current_timeout_ns,
      [this, request_id] { on_timeout(request_id); });
}

void RpcNode::send_oneway(NodeId dst, std::uint16_t type, Bytes payload) {
  trace_message(obs::EventType::kRpcSend, type);
  channel_.send(dst, type, std::move(payload));
}

void RpcNode::set_oneway_handler(OnewayHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  oneway_handler_ = std::move(handler);
}

RpcStats RpcNode::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void RpcNode::on_message(Message&& message) {
  trace_message(obs::EventType::kRpcRecv, message.type);
  switch (message.type) {
    case kRpcRequest:
      handle_request(std::move(message));
      break;
    case kRpcReply:
      handle_reply(std::move(message));
      break;
    default: {
      OnewayHandler handler;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        handler = oneway_handler_;
      }
      if (handler) handler(std::move(message));
      break;
    }
  }
}

void RpcNode::handle_request(Message&& message) {
  Reader r(message.payload);
  const std::uint64_t request_id = r.u64();
  const std::uint16_t method = r.u16();
  const Bytes args = r.blob();
  if (!r.done()) {
    PHISH_LOG(kWarn) << "rpc: malformed request from "
                     << to_string(message.src);
    return;
  }

  MethodHandler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Duplicate? Answer from the reply cache without re-running the handler.
    auto cached = reply_cache_.find(message.src);
    if (cached != reply_cache_.end()) {
      for (const CachedReply& entry : cached->second) {
        if (entry.request_id == request_id) {
          ++stats_.duplicate_requests;
          // channel_.send never calls back into this RpcNode, so sending
          // while holding our mutex is safe.
          send_reply(message.src, request_id, entry.reply);
          return;
        }
      }
    }
    auto it = methods_.find(method);
    if (it == methods_.end()) {
      PHISH_LOG(kDebug) << "rpc: no handler for method " << method << " on "
                        << to_string(channel_.id());
      return;  // caller times out, exactly as with a dead UDP peer
    }
    handler = it->second;
  }

  Bytes reply = handler(message.src, args);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& cache = reply_cache_[message.src];
    cache.push_back(CachedReply{request_id, reply});
    while (cache.size() > reply_cache_capacity_) cache.pop_front();
  }
  send_reply(message.src, request_id, reply);
}

void RpcNode::handle_reply(Message&& message) {
  Reader r(message.payload);
  const std::uint64_t request_id = r.u64();
  Bytes reply = r.blob();
  if (!r.done()) {
    PHISH_LOG(kWarn) << "rpc: malformed reply from " << to_string(message.src);
    return;
  }
  Completion on_done;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;  // late duplicate reply
    timers_.cancel(it->second.timer);
    on_done = std::move(it->second.on_done);
    pending_.erase(it);
    ++stats_.calls_succeeded;
  }
  if (on_done) on_done(RpcResult{true, std::move(reply)});
}

void RpcNode::transmit(std::uint64_t request_id, const PendingCall& call) {
  Writer w;
  w.u64(request_id);
  w.u16(call.method);
  w.blob(call.args.data(), call.args.size());
  trace_message(obs::EventType::kRpcSend, kRpcRequest);
  channel_.send(call.dst, kRpcRequest, w.take());
}

void RpcNode::on_timeout(std::uint64_t request_id) {
  Completion on_done;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;
    PendingCall& call = it->second;
    if (call.attempts >= call.policy.max_attempts) {
      on_done = std::move(call.on_done);
      pending_.erase(it);
      ++stats_.calls_failed;
    } else {
      ++call.attempts;
      ++stats_.retransmissions;
      call.current_timeout_ns = static_cast<std::uint64_t>(
          static_cast<double>(call.current_timeout_ns) * call.policy.backoff);
      transmit(request_id, call);
      call.timer = timers_.schedule(call.current_timeout_ns,
                                    [this, request_id] {
                                      on_timeout(request_id);
                                    });
    }
  }
  if (on_done) on_done(RpcResult{false, {}});
}

void RpcNode::send_reply(NodeId dst, std::uint64_t request_id,
                         const Bytes& reply) {
  Writer w;
  w.u64(request_id);
  w.blob(reply.data(), reply.size());
  trace_message(obs::EventType::kRpcSend, kRpcReply);
  channel_.send(dst, kRpcReply, w.take());
}

}  // namespace phish::net
