#include "net/sim_net.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace phish::net {

SimNetParams SimNetParams::cm5_like() {
  SimNetParams p;
  p.send_overhead = 2 * sim::kMicrosecond;
  p.recv_overhead = 2 * sim::kMicrosecond;
  p.latency = 5 * sim::kMicrosecond;
  p.bytes_per_second = 125e6;  // ~100x the Ethernet figure
  p.jitter = 0;
  return p;
}

void SimChannel::send(NodeId dst, std::uint16_t type, Bytes payload) {
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  net_.route(Message{id_, dst, type, std::move(payload)});
}

SimChannel& SimNetwork::channel(NodeId id) {
  if (!id.valid()) throw std::invalid_argument("SimNetwork: nil node id");
  if (id.value >= channels_.size()) {
    channels_.resize(id.value + 1);
    dead_.resize(id.value + 1, false);
  }
  auto& slot = channels_[id.value];
  if (!slot) slot.reset(new SimChannel(*this, id));
  return *slot;
}

sim::SimTime SimNetwork::send_cpu_cost(std::size_t size) const {
  const auto wire = static_cast<sim::SimTime>(
      static_cast<double>(size) / params_.bytes_per_second * 1e9);
  return params_.send_overhead + wire;
}

ChannelStats SimNetwork::total_stats() const {
  ChannelStats total;
  for (const auto& ch : channels_) {
    if (ch) total.merge(ch->stats_);
  }
  return total;
}

void SimNetwork::partition(NodeId id, bool dead) {
  if (id.value >= dead_.size()) dead_.resize(id.value + 1, false);
  dead_[id.value] = dead;
}

bool SimNetwork::is_partitioned(NodeId id) const {
  return id.value < dead_.size() && dead_[id.value];
}

void SimNetwork::set_cluster(NodeId id, int cluster) {
  if (!id.valid()) throw std::invalid_argument("set_cluster: nil node id");
  if (id.value >= clusters_.size()) clusters_.resize(id.value + 1, 0);
  clusters_[id.value] = cluster;
}

int SimNetwork::cluster_of(NodeId id) const {
  return id.value < clusters_.size() ? clusters_[id.value] : 0;
}

void SimNetwork::route(Message&& message) {
  if (is_partitioned(message.src) || is_partitioned(message.dst)) {
    if (message.src.value < channels_.size() && channels_[message.src.value]) {
      ++channels_[message.src.value]->stats_.messages_dropped;
    }
    return;
  }
  if (params_.drop_probability > 0.0 && rng_.chance(params_.drop_probability)) {
    if (message.src.value < channels_.size() && channels_[message.src.value]) {
      ++channels_[message.src.value]->stats_.messages_dropped;
    }
    return;
  }
  // Messages crossing a cluster boundary ride the (usually slower)
  // inter-cluster link.
  const bool crossing = cluster_of(message.src) != cluster_of(message.dst);
  if (crossing) ++inter_cluster_messages_;
  const double bw = crossing ? params_.inter_cluster_bytes_per_second
                             : params_.bytes_per_second;
  const sim::SimTime base_latency =
      crossing ? params_.inter_cluster_latency : params_.latency;
  const auto wire = static_cast<sim::SimTime>(
      static_cast<double>(message.payload.size()) / bw * 1e9);
  sim::SimTime delay = base_latency + wire;
  if (params_.jitter > 0) {
    delay += rng_.below(params_.jitter + 1);
  }
  int copies = 1;
  if (fault_injector_) {
    const SendDecision d =
        fault_injector_->on_send(message.src, message.dst, message.type);
    switch (d.action) {
      case SendAction::kDrop:
        ++fault_stats_.dropped;
        if (message.src.value < channels_.size() &&
            channels_[message.src.value]) {
          ++channels_[message.src.value]->stats_.messages_dropped;
        }
        return;
      case SendAction::kDuplicate:
        ++fault_stats_.duplicated;
        copies = 2;
        break;
      case SendAction::kHold:
        // In virtual time "reorder" is a delay long enough to be overtaken
        // by anything sent within hold_for full round trips.
        ++fault_stats_.reordered;
        delay += static_cast<sim::SimTime>(d.hold_for) *
                 2 * (base_latency + params_.jitter);
        break;
      case SendAction::kDelay:
        ++fault_stats_.delayed;
        delay += d.extra_delay_ns;
        break;
      case SendAction::kDeliver:
        break;
    }
  }
  in_flight_ += static_cast<std::uint64_t>(copies);
  for (int copy = 1; copy < copies; ++copy) {
    Message dup{message.src, message.dst, message.type, message.payload};
    sim_.schedule(delay, [this, msg = std::move(dup)]() mutable {
      deliver(std::move(msg));
    });
  }
  sim_.schedule(delay, [this, msg = std::move(message)]() mutable {
    deliver(std::move(msg));
  });
}

void SimNetwork::deliver(Message&& msg) {
  --in_flight_;
  // Destination may have died while the message was in flight.
  if (is_partitioned(msg.dst)) return;
  if (msg.dst.value >= channels_.size() || !channels_[msg.dst.value]) {
    PHISH_LOG(kDebug) << "sim_net: message to unknown node "
                      << to_string(msg.dst);
    return;
  }
  SimChannel& ch = *channels_[msg.dst.value];
  if (!ch.receiver_) {
    PHISH_LOG(kDebug) << "sim_net: no receiver on " << to_string(msg.dst);
    return;
  }
  ++ch.stats_.messages_received;
  ch.stats_.bytes_received += msg.payload.size();
  ch.receiver_(std::move(msg));
}

}  // namespace phish::net
