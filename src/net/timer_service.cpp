#include "net/timer_service.hpp"

#include "util/timer.hpp"

namespace phish::net {

ThreadTimerService::ThreadTimerService() : thread_([this] { loop(); }) {}

ThreadTimerService::~ThreadTimerService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

TimerToken ThreadTimerService::schedule(std::uint64_t delay_ns,
                                        std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  const std::uint64_t deadline = monotonic_ns() + delay_ns;
  entries_.emplace(std::make_pair(deadline, id), std::move(fn));
  deadline_of_[id] = deadline;
  cv_.notify_all();
  return TimerToken{id};
}

void ThreadTimerService::cancel(TimerToken token) {
  if (!token.valid()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = deadline_of_.find(token.id);
  if (it == deadline_of_.end()) return;
  entries_.erase(std::make_pair(it->second, token.id));
  deadline_of_.erase(it);
}

std::uint64_t ThreadTimerService::now_ns() const { return monotonic_ns(); }

void ThreadTimerService::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (entries_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !entries_.empty(); });
      continue;
    }
    const auto next = entries_.begin()->first;
    const std::uint64_t now = monotonic_ns();
    if (next.first > now) {
      cv_.wait_for(lock, std::chrono::nanoseconds(next.first - now));
      continue;
    }
    auto fn = std::move(entries_.begin()->second);
    deadline_of_.erase(next.second);
    entries_.erase(entries_.begin());
    lock.unlock();
    fn();  // run without the lock so callbacks can (re)schedule timers
    lock.lock();
  }
}

}  // namespace phish::net
