// A small embedded HTTP/1.1 server for PhishJobD.
//
// Scope: exactly what a localhost control endpoint needs — poll(2)-driven,
// single service thread, non-blocking sockets, bounded request sizes,
// Content-Length bodies (no chunked requests), connection keep-alive.  This
// is deliberately not a general web server: PhishJobD serves a handful of
// concurrent curl/CLI clients on 127.0.0.1, and the whole server fits in a
// few hundred lines the tests can exercise end to end.
//
// Threading: start() spawns the service thread; the request handler runs on
// it, so handlers must be thread-safe with respect to the rest of the
// process (JobService is).  stop() joins.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace phish::jobsvc {

struct HttpRequest {
  std::string method;   // "GET", "POST", "DELETE", ...
  std::string target;   // raw request target ("/v1/jobs?tenant=a")
  std::string path;     // target up to '?'
  std::map<std::string, std::string> query;  // decoded query parameters
  std::map<std::string, std::string> headers;  // keys lowercased
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse json(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerConfig {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (tests).
  std::uint16_t port = 0;
  /// Reject requests whose head or body exceed these (413 / 431).
  std::size_t max_head_bytes = 16 * 1024;
  std::size_t max_body_bytes = 1024 * 1024;
  /// Concurrent connections; excess accepts are closed immediately.
  std::size_t max_connections = 64;
};

class HttpServer {
 public:
  HttpServer(HttpServerConfig config, HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind + listen + spawn the service thread.  Throws std::runtime_error
  /// when the port cannot be bound.
  void start();
  void stop();

  /// Port actually bound (resolves ephemeral port 0); valid after start().
  std::uint16_t port() const noexcept { return port_; }

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t bad_requests = 0;
    std::uint64_t overflows = 0;  // head/body too large
  };
  Stats stats() const;

 private:
  struct Connection;

  void serve();
  void handle_readable(Connection& conn);
  bool try_dispatch(Connection& conn);
  static std::string status_text(int status);

  HttpServerConfig config_;
  HttpHandler handler_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: stop() wakes poll()
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

/// Percent-decode a URL component (nullopt on malformed escapes).
std::optional<std::string> url_decode(const std::string& s);

}  // namespace phish::jobsvc
