// PhishJobD's HTTP surface: routes + JSON codecs over a JobService.
//
// API (DESIGN.md §11.2):
//   POST   /v1/jobs        submit  -> 202 {"job_id":N} | 400 | 429
//   GET    /v1/jobs/<id>   status  -> 200 {...} | 404
//   GET    /v1/jobs        list    -> 200 {"jobs":[...]}   (?tenant=NAME)
//   DELETE /v1/jobs/<id>   cancel  -> 200 | 404 | 409 (running, can't)
//   GET    /v1/stats       service counters + queue depths
//   GET    /v1/healthz     200 {"ok":true}
//
// Submit body: {"root_task": "...", "name": "...", "tenant": "...",
//               "priority": "low"|"normal"|"high",
//               "args": [13, 2.5, "blob-as-string", ...]}
// args map onto the task Value types: integers, doubles, and strings
// (strings become blobs — byte payloads).
#pragma once

#include <string>

#include "jobsvc/http.hpp"
#include "jobsvc/json.hpp"
#include "jobsvc/service.hpp"

namespace phish::jobsvc {

/// Parse a submit body into a SubmitRequest; nullopt on malformed JSON or
/// bad field types (the caller answers 400).
std::optional<SubmitRequest> parse_submit_body(const std::string& body);

/// Render a JobStatus as a JSON object string.
std::string job_status_json(const JobStatus& status);

/// Stateless request router; returned handler captures `service` by
/// reference (it must outlive the server).
HttpHandler make_jobd_handler(JobService& service);

std::optional<std::uint8_t> parse_priority(const std::string& name);
const char* priority_name(std::uint8_t priority);

}  // namespace phish::jobsvc
