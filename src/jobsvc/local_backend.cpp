#include "jobsvc/local_backend.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace phish::jobsvc {

LocalBackend::LocalBackend(const TaskRegistry& registry, int threads)
    : registry_(registry) {
  threads_.reserve(static_cast<std::size_t>(std::max(threads, 1)));
  for (int i = 0; i < std::max(threads, 1); ++i) {
    threads_.emplace_back([this] { worker(); });
  }
}

LocalBackend::~LocalBackend() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void LocalBackend::bind(JobService& service) { service_ = &service; }

void LocalBackend::launch(const JobStatus& job,
                          const std::vector<Value>& args) {
  // Unknown root task: fail fast as an empty completion rather than letting
  // a pool thread throw.  (The HTTP layer already reports job state; a
  // richer error channel is not worth a schema change here.)
  if (!registry_.has(job.root_task)) {
    PHISH_LOG(kError) << "jobd: unknown root task '" << job.root_task << "'";
    if (service_ != nullptr) service_->note_done(job.job_id, std::nullopt);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(
        Work{job.job_id, registry_.id_of(job.root_task), args});
  }
  cv_.notify_one();
}

bool LocalBackend::cancel_active(std::uint64_t job_id) {
  // Only jobs still waiting for a pool thread can be stopped; a LocalRunner
  // mid-graph runs to completion.
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const Work& w) { return w.job_id == job_id; });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

void LocalBackend::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void LocalBackend::worker() {
  for (;;) {
    Work work;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      work = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    if (service_ != nullptr) service_->note_first_task(work.job_id);
    std::optional<Value> result;
    try {
      LocalRunner runner(registry_);
      result = runner.run(work.root, std::move(work.args));
    } catch (const std::exception& e) {
      PHISH_LOG(kError) << "jobd: job " << work.job_id
                        << " failed: " << e.what();
    }
    if (service_ != nullptr) service_->note_done(work.job_id, std::move(result));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace phish::jobsvc
