#include "jobsvc/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <variant>

namespace phish::jobsvc {

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    auto v = value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool eat_word(const char* w) {
    const std::size_t n = std::char_traits<char>::length(w);
    if (text_.compare(pos_, n, w) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n':
        return eat_word("null") ? std::optional(JsonValue::make_null())
                                : std::nullopt;
      case 't':
        return eat_word("true") ? std::optional(JsonValue::make_bool(true))
                                : std::nullopt;
      case 'f':
        return eat_word("false") ? std::optional(JsonValue::make_bool(false))
                                 : std::nullopt;
      case '"':
        return string_value();
      case '[':
        return array_value(depth);
      case '{':
        return object_value(depth);
      default:
        return number_value();
    }
  }

  std::optional<JsonValue> string_value() {
    std::string out;
    if (!parse_string(out)) return std::nullopt;
    return JsonValue::make_string(std::move(out));
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          if (code > 0x7f) return false;  // ASCII-only \u (see header)
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  std::optional<JsonValue> number_value() {
    const std::size_t start = pos_;
    if (eat('-')) {}
    if (!std::isdigit(static_cast<unsigned char>(
            pos_ < text_.size() ? text_[pos_] : '\0'))) {
      return std::nullopt;
    }
    bool integral = true;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return std::nullopt;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return std::nullopt;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return JsonValue::make_int(static_cast<std::int64_t>(v));
      }
      // Fell out of int64 range: hold it as a double like everyone else.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return std::nullopt;
    return JsonValue::make_double(d);
  }

  std::optional<JsonValue> array_value(int depth) {
    if (!eat('[')) return std::nullopt;
    std::vector<JsonValue> items;
    skip_ws();
    if (eat(']')) return JsonValue::make_array(std::move(items));
    for (;;) {
      auto v = value(depth + 1);
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      skip_ws();
      if (eat(']')) return JsonValue::make_array(std::move(items));
      if (!eat(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> object_value(int depth) {
    if (!eat('{')) return std::nullopt;
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (eat('}')) return JsonValue::make_object(std::move(members));
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      auto v = value(depth + 1);
      if (!v) return std::nullopt;
      members[std::move(key)] = std::move(*v);
      skip_ws();
      if (eat('}')) return JsonValue::make_object(std::move(members));
      if (!eat(',')) return std::nullopt;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

void JsonValue::expect(Kind k) const {
  if (kind_ != k) throw std::bad_variant_access();
}

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::optional<std::string> JsonValue::get_string(const std::string& key) const {
  const JsonValue* v = get(key);
  if (v == nullptr || v->kind() != Kind::kString) return std::nullopt;
  return v->as_string();
}

std::optional<std::int64_t> JsonValue::get_int(const std::string& key) const {
  const JsonValue* v = get(key);
  if (v == nullptr || v->kind() != Kind::kInt) return std::nullopt;
  return v->as_int();
}

std::optional<double> JsonValue::get_double(const std::string& key) const {
  const JsonValue* v = get(key);
  if (v == nullptr ||
      (v->kind() != Kind::kDouble && v->kind() != Kind::kInt)) {
    return std::nullopt;
  }
  return v->as_double();
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}
JsonValue JsonValue::make_int(std::int64_t v) {
  JsonValue j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}
JsonValue JsonValue::make_double(double v) {
  JsonValue j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}
JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}
JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.array_ = std::move(v);
  return j;
}
JsonValue JsonValue::make_object(std::map<std::string, JsonValue> v) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.object_ = std::move(v);
  return j;
}

std::optional<JsonValue> parse_json(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace phish::jobsvc
