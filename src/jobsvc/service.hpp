// PhishJobD's brain: the multi-tenant job service (DESIGN.md §11).
//
// The paper's deployment assumed one friendly user per PhishJobQ: "when a
// Phish application begins execution, it is submitted to the PhishJobQ" —
// directly, with no admission control, no accounting, and no isolation
// between submitters.  JobService is the front end that makes the pool safe
// to share: every job belongs to a tenant, submission passes through
// admission control (per-tenant rate limits and job quotas, a global bounded
// backlog), and admitted jobs flow to a pluggable JobBackend (the simulated
// macro cluster, a thread pool, or a real network) which reports progress
// back so clients can poll job status over HTTP.
//
// Transport-agnostic by design: this class knows nothing about HTTP — the
// route layer (jobd.hpp) translates SubmitResult/JobState to status codes.
// Time comes from an obs::Clock so the whole service — rate limiters
// included — runs identically under the simulator's virtual clock (the load
// bench) and the steady clock (the real daemon).
//
// Backpressure states (§11.3):
//   admit   — active slot free, or backlog has room: job runs or queues;
//   reject  — tenant over rate limit (kRateLimited, with a retry-after
//             hint), tenant at its job quota (kQuotaExceeded), or the
//             global backlog full (kBacklogFull).  Rejections are cheap and
//             stateless; clients are expected to back off and resubmit.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/jobq.hpp"
#include "core/value.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace phish::jobsvc {

struct SubmitRequest {
  std::string tenant = kDefaultTenant;
  std::string name;       // human label; defaults to root_task
  std::string root_task;  // registry name of the application's root
  std::vector<Value> args;
  std::uint8_t priority = kPriorityNormal;
};

enum class Reject : std::uint8_t {
  kNone,          // accepted
  kBadRequest,    // malformed (empty root task, unknown priority...)
  kRateLimited,   // tenant token bucket empty (HTTP 429)
  kQuotaExceeded, // tenant at max concurrent jobs (HTTP 429)
  kBacklogFull,   // global pending queue full (HTTP 429)
  kDegraded,      // pool capacity below the watermark (HTTP 503)
};

const char* reject_name(Reject r);

struct SubmitResult {
  std::uint64_t job_id = 0;  // valid only when accepted
  Reject reject = Reject::kNone;
  /// kRateLimited: nanoseconds until the bucket refills one token.
  std::uint64_t retry_after_ns = 0;

  bool accepted() const noexcept { return reject == Reject::kNone; }
};

enum class JobState : std::uint8_t {
  kPending,    // admitted, waiting for an active slot
  kActive,     // launched on the backend
  kDone,       // backend reported completion
  kCancelled,  // cancelled before completion
};

const char* job_state_name(JobState s);

struct JobStatus {
  std::uint64_t job_id = 0;
  std::string tenant;
  std::string name;
  std::string root_task;
  std::uint8_t priority = kPriorityNormal;
  JobState state = JobState::kPending;
  // Clock-domain timestamps (obs::Clock::now_ns); 0 = not reached yet.
  std::uint64_t submitted_ns = 0;
  std::uint64_t activated_ns = 0;
  std::uint64_t first_task_ns = 0;  // first workstation joined / first task ran
  std::uint64_t finished_ns = 0;
  bool has_result = false;
  Value result;
};

/// Per-tenant admission policy.  weight/max_workstations mirror the JobQ's
/// TenantConfig (the owner forwards them); the rest is service-side.
struct TenantPolicy {
  double weight = 1.0;
  std::uint32_t max_workstations = std::numeric_limits<std::uint32_t>::max();
  /// Max jobs concurrently pending+active for this tenant.
  std::size_t max_jobs = std::numeric_limits<std::size_t>::max();
  /// Sustained submit rate (token bucket).  0 = unlimited.
  double rate_per_sec = 0.0;
  /// Bucket capacity (burst size) in tokens.
  double burst = 8.0;
};

struct ServiceConfig {
  /// Jobs running on the backend at once (the paper's pool had no cap; a
  /// shared service needs one so one tenant cannot monopolize launches).
  std::size_t max_active = 8;
  /// Bound on the pending queue; beyond it submissions get kBacklogFull.
  std::size_t max_backlog = 64;
  /// Terminal jobs (done/cancelled) retained for status queries.  A
  /// long-lived daemon otherwise grows its job table without bound — one
  /// JobStatus plus result Value per job forever.  Oldest-terminal-first
  /// eviction; evicted ids answer status() with nullopt, exactly like ids
  /// that never existed, so clients need no new error path.  Live
  /// (pending/active) jobs are never evicted.
  std::size_t history_limit = 10000;
  /// Policy for tenants never explicitly configured.
  TenantPolicy default_policy;
  /// Graceful degradation under churn: when the capacity probe (see
  /// set_capacity_probe) reports live capacity below this fraction of
  /// nominal, new submissions shed with kDegraded (HTTP 503 + retry-after)
  /// instead of piling into a backlog the shrunken pool cannot drain.
  /// Admission recovers by itself as soon as capacity returns.  0 = off.
  double degrade_watermark = 0.0;
  /// retry-after hint attached to kDegraded rejections.
  std::uint64_t degrade_retry_after_ns = 2'000'000'000;  // 2 s
};

/// Where admitted jobs go.  Implementations call note_first_task/note_done
/// on the owning service as the job progresses.
class JobBackend {
 public:
  virtual ~JobBackend() = default;
  /// Launch an admitted job.  Called outside the service lock.
  virtual void launch(const JobStatus& job, const std::vector<Value>& args) = 0;
  /// Best-effort cancel of an active job; false = cannot (job runs on).
  virtual bool cancel_active(std::uint64_t /*job_id*/) { return false; }
};

class JobService {
 public:
  JobService(const obs::Clock& clock, JobBackend& backend,
             ServiceConfig config);

  /// Register/update a tenant's policy.  Unknown tenants submitting jobs
  /// get config.default_policy.
  void configure_tenant(const std::string& tenant, TenantPolicy policy);
  std::optional<TenantPolicy> tenant_policy(const std::string& tenant) const;

  /// Live-capacity probe for degradation: returns the fraction of nominal
  /// pool capacity currently live, in [0, 1] (e.g. live workstations /
  /// total).  Sampled on every submit, outside the service lock; must be
  /// cheap and thread-safe.  Unset = always healthy.
  void set_capacity_probe(std::function<double()> probe);

  /// Admission control + launch/queue.  Thread-safe.
  SubmitResult submit(SubmitRequest request);

  std::optional<JobStatus> status(std::uint64_t job_id) const;
  /// All jobs, newest first; optionally filtered by tenant.
  std::vector<JobStatus> list(const std::string& tenant = "") const;

  /// Cancel: pending jobs always cancel; active jobs only if the backend
  /// can.  False when unknown, already finished, or uncancellable.
  bool cancel(std::uint64_t job_id);

  // ---- Backend progress feed. ----
  /// First concrete progress (first workstation joined the job).
  void note_first_task(std::uint64_t job_id);
  void note_done(std::uint64_t job_id, std::optional<Value> result);

  // ---- Introspection. ----
  std::size_t pending_jobs() const;
  std::size_t active_jobs() const;
  struct Counters {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected_bad_request = 0;
    std::uint64_t rejected_rate = 0;
    std::uint64_t rejected_quota = 0;
    std::uint64_t rejected_backlog = 0;
    std::uint64_t rejected_degraded = 0;  // shed below the capacity watermark
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t history_evicted = 0;  // terminal jobs dropped by retention
  };
  Counters counters() const;

 private:
  struct TokenBucket {
    double tokens = 0;
    std::uint64_t refilled_ns = 0;
    bool primed = false;
  };
  struct Tenant {
    TenantPolicy policy;
    bool configured = false;  // explicit configure_tenant vs default
    TokenBucket bucket;
    std::size_t jobs_in_flight = 0;  // pending + active
  };
  struct Job {
    JobStatus status;
    std::vector<Value> args;
  };

  /// Launch captured under the lock, fired after it is released (backends
  /// may call back into the service synchronously).
  struct Launch {
    JobStatus status;
    std::vector<Value> args;
  };

  // All *_locked helpers assume mutex_ is held.
  Tenant& tenant_locked(const std::string& name);
  bool take_token_locked(Tenant& tenant, std::uint64_t now,
                         std::uint64_t& retry_after_ns);
  /// Move pending jobs into free active slots; returns the launches to fire.
  std::vector<Launch> promote_locked(std::uint64_t now);
  std::uint64_t pop_best_pending_locked();
  /// Record a job as terminal (done/cancelled) in the retention ring and
  /// evict the oldest terminal jobs beyond config_.history_limit.
  void retire_locked(std::uint64_t job_id);

  const obs::Clock& clock_;
  JobBackend& backend_;
  ServiceConfig config_;
  std::function<double()> capacity_probe_;  // set once at wiring time

  mutable std::mutex mutex_;
  std::map<std::string, Tenant> tenants_;
  std::map<std::uint64_t, Job> jobs_;
  std::deque<std::uint64_t> backlog_;  // pending job ids, FIFO per class
  std::deque<std::uint64_t> history_;  // terminal job ids, oldest first
  std::size_t active_ = 0;
  std::uint64_t next_job_id_ = 1;
  Counters counters_;

  // Metrics (process-global obs registry; names under "jobsvc.").
  obs::Counter& m_submitted_;
  obs::Counter& m_accepted_;
  obs::Counter& m_rejected_;
  obs::Counter& m_completed_;
  obs::Counter& m_cancelled_;
  obs::Gauge& m_pending_;
  obs::Gauge& m_active_;
  obs::Histogram& m_queue_wait_ns_;
  obs::Histogram& m_first_task_ns_;
  obs::Histogram& m_turnaround_ns_;
};

}  // namespace phish::jobsvc
