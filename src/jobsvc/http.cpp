#include "jobsvc/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <list>
#include <stdexcept>

#include "util/log.hpp"

namespace phish::jobsvc {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

std::optional<std::string> url_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= s.size()) return std::nullopt;
      const auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

struct HttpServer::Connection {
  int fd = -1;
  std::string in;        // bytes read, not yet consumed
  std::string out;       // bytes to write
  bool close_after = false;  // half-closed or protocol error: drain and close
};

HttpServer::HttpServer(HttpServerConfig config, HttpHandler handler)
    : config_(config), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (running_.load()) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("HttpServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: cannot bind 127.0.0.1:" +
                             std::to_string(config_.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);
  if (::pipe(wake_fds_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: pipe() failed");
  }
  set_nonblocking(wake_fds_[0]);
  running_.store(true);
  thread_ = std::thread([this] { serve(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  // Wake the poll loop so it observes running_ == false.
  const char b = 'x';
  [[maybe_unused]] const auto n = ::write(wake_fds_[1], &b, 1);
  if (thread_.joinable()) thread_.join();
  for (int* fd : {&listen_fd_, &wake_fds_[0], &wake_fds_[1]}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
}

void HttpServer::serve() {
  std::list<Connection> conns;
  while (running_.load()) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    for (Connection& c : conns) {
      short events = POLLIN;
      if (!c.out.empty()) events |= POLLOUT;
      fds.push_back(pollfd{c.fd, events, 0});
    }
    if (::poll(fds.data(), fds.size(), 1000) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load()) break;
    // Accept.
    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (conns.size() >= config_.max_connections) {
          ::close(fd);
          continue;
        }
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns.push_back(Connection{fd});
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.connections;
      }
    }
    // Service connections.
    std::size_t i = 2;
    for (auto it = conns.begin(); it != conns.end(); ++i) {
      Connection& c = *it;
      const short revents = fds[i].revents;
      bool drop = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                  (revents & POLLIN) == 0;
      if (!drop && (revents & POLLIN) != 0) {
        char buf[4096];
        for (;;) {
          const ssize_t n = ::read(c.fd, buf, sizeof(buf));
          if (n > 0) {
            c.in.append(buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) c.close_after = true;  // peer finished sending
          break;
        }
        handle_readable(c);
      }
      if (!drop && (revents & POLLOUT) != 0 && !c.out.empty()) {
        const ssize_t n = ::write(c.fd, c.out.data(), c.out.size());
        if (n > 0) c.out.erase(0, static_cast<std::size_t>(n));
        else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) drop = true;
      }
      if (drop || (c.close_after && c.out.empty())) {
        ::close(c.fd);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (Connection& c : conns) ::close(c.fd);
}

void HttpServer::handle_readable(Connection& conn) {
  // Serve every complete request already buffered (keep-alive pipelining).
  while (try_dispatch(conn)) {
  }
  // Flush what we can immediately; poll handles the rest.
  if (!conn.out.empty()) {
    const ssize_t n = ::write(conn.fd, conn.out.data(), conn.out.size());
    if (n > 0) conn.out.erase(0, static_cast<std::size_t>(n));
  }
}

bool HttpServer::try_dispatch(Connection& conn) {
  if (conn.close_after && conn.in.empty()) return false;
  const std::size_t head_end = conn.in.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    if (conn.in.size() > config_.max_head_bytes) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.overflows;
      conn.out += "HTTP/1.1 431 Request Header Fields Too Large\r\n"
                  "content-length: 0\r\nconnection: close\r\n\r\n";
      conn.close_after = true;
      conn.in.clear();
    }
    return false;
  }

  HttpRequest req;
  bool bad = false;
  {
    const std::string head = conn.in.substr(0, head_end);
    std::size_t line_start = 0;
    std::size_t line_no = 0;
    while (line_start <= head.size() && !bad) {
      std::size_t line_end = head.find("\r\n", line_start);
      if (line_end == std::string::npos) line_end = head.size();
      const std::string line = head.substr(line_start, line_end - line_start);
      if (line_no == 0) {
        // Request line: METHOD SP target SP HTTP/1.x
        const std::size_t sp1 = line.find(' ');
        const std::size_t sp2 =
            sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
        if (sp2 == std::string::npos ||
            line.compare(sp2 + 1, 7, "HTTP/1.") != 0) {
          bad = true;
        } else {
          req.method = line.substr(0, sp1);
          req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
        }
      } else if (!line.empty()) {
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) {
          bad = true;
        } else {
          std::string value = line.substr(colon + 1);
          const std::size_t first = value.find_first_not_of(" \t");
          value = first == std::string::npos ? "" : value.substr(first);
          req.headers[lower(line.substr(0, colon))] = std::move(value);
        }
      }
      ++line_no;
      if (line_end >= head.size()) break;
      line_start = line_end + 2;
    }
  }

  std::size_t body_len = 0;
  if (!bad) {
    const auto cl = req.headers.find("content-length");
    if (cl != req.headers.end()) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(cl->second.c_str(), &end, 10);
      if (errno != 0 || end == nullptr || *end != '\0') bad = true;
      else body_len = static_cast<std::size_t>(v);
    }
    if (req.headers.count("transfer-encoding") != 0) bad = true;  // no chunked
  }
  if (bad) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.bad_requests;
    conn.out += "HTTP/1.1 400 Bad Request\r\ncontent-length: 0\r\n"
                "connection: close\r\n\r\n";
    conn.close_after = true;
    conn.in.clear();
    return false;
  }
  if (body_len > config_.max_body_bytes) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.overflows;
    conn.out += "HTTP/1.1 413 Content Too Large\r\ncontent-length: 0\r\n"
                "connection: close\r\n\r\n";
    conn.close_after = true;
    conn.in.clear();
    return false;
  }
  if (conn.in.size() < head_end + 4 + body_len) return false;  // body pending

  req.body = conn.in.substr(head_end + 4, body_len);
  conn.in.erase(0, head_end + 4 + body_len);

  // Split target into path + query.
  const std::size_t qmark = req.target.find('?');
  req.path = req.target.substr(0, qmark);
  if (qmark != std::string::npos) {
    const std::string qs = req.target.substr(qmark + 1);
    std::size_t start = 0;
    while (start < qs.size()) {
      std::size_t amp = qs.find('&', start);
      if (amp == std::string::npos) amp = qs.size();
      const std::string pair = qs.substr(start, amp - start);
      const std::size_t eq = pair.find('=');
      const auto key = url_decode(pair.substr(0, eq));
      const auto value = url_decode(
          eq == std::string::npos ? "" : pair.substr(eq + 1));
      if (key && value && !key->empty()) req.query[*key] = *value;
      start = amp + 1;
    }
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  HttpResponse resp;
  try {
    resp = handler_(req);
  } catch (const std::exception& e) {
    PHISH_LOG(kError) << "jobd: handler threw: " << e.what();
    resp = HttpResponse::json(500, "{\"error\":\"internal\"}\n");
  }
  const bool keep_alive =
      lower(req.headers.count("connection") != 0 ? req.headers.at("connection")
                                                 : "keep-alive") != "close";
  conn.out += "HTTP/1.1 " + std::to_string(resp.status) + " " +
              status_text(resp.status) + "\r\ncontent-type: " +
              resp.content_type + "\r\ncontent-length: " +
              std::to_string(resp.body.size()) + "\r\nconnection: " +
              (keep_alive ? "keep-alive" : "close") + "\r\n\r\n" + resp.body;
  if (!keep_alive) conn.close_after = true;
  return !conn.close_after;
}

std::string HttpServer::status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

HttpServer::Stats HttpServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace phish::jobsvc
