#include "jobsvc/jobd.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace phish::jobsvc {

namespace {

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

HttpResponse error_response(int status, const std::string& code) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("error", code);
  w.end_object();
  return HttpResponse::json(status, w.take() + "\n");
}

}  // namespace

std::optional<std::uint8_t> parse_priority(const std::string& name) {
  if (name == "low") return kPriorityLow;
  if (name == "normal") return kPriorityNormal;
  if (name == "high") return kPriorityHigh;
  return std::nullopt;
}

const char* priority_name(std::uint8_t priority) {
  switch (priority) {
    case kPriorityLow: return "low";
    case kPriorityHigh: return "high";
    default: return "normal";
  }
}

std::optional<SubmitRequest> parse_submit_body(const std::string& body) {
  const auto doc = parse_json(body);
  if (!doc || doc->kind() != JsonValue::Kind::kObject) return std::nullopt;
  SubmitRequest req;
  const auto root = doc->get_string("root_task");
  if (!root || root->empty()) return std::nullopt;
  req.root_task = *root;
  if (const JsonValue* v = doc->get("name")) {
    if (v->kind() != JsonValue::Kind::kString) return std::nullopt;
    req.name = v->as_string();
  }
  if (const JsonValue* v = doc->get("tenant")) {
    if (v->kind() != JsonValue::Kind::kString || v->as_string().empty()) {
      return std::nullopt;
    }
    req.tenant = v->as_string();
  }
  if (const JsonValue* v = doc->get("priority")) {
    if (v->kind() != JsonValue::Kind::kString) return std::nullopt;
    const auto p = parse_priority(v->as_string());
    if (!p) return std::nullopt;
    req.priority = *p;
  }
  if (const JsonValue* v = doc->get("args")) {
    if (v->kind() != JsonValue::Kind::kArray) return std::nullopt;
    for (const JsonValue& a : v->as_array()) {
      switch (a.kind()) {
        case JsonValue::Kind::kInt:
          req.args.emplace_back(a.as_int());
          break;
        case JsonValue::Kind::kDouble:
          req.args.emplace_back(a.as_double());
          break;
        case JsonValue::Kind::kString: {
          const std::string& s = a.as_string();
          req.args.emplace_back(Bytes(s.begin(), s.end()));
          break;
        }
        default:
          return std::nullopt;  // null/bool/nested make no Value
      }
    }
  }
  return req;
}

std::string job_status_json(const JobStatus& status) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("job_id", status.job_id);
  w.kv("tenant", status.tenant);
  w.kv("name", status.name);
  w.kv("root_task", status.root_task);
  w.kv("priority", priority_name(status.priority));
  w.kv("state", job_state_name(status.state));
  w.kv("submitted_ns", status.submitted_ns);
  w.kv("activated_ns", status.activated_ns);
  w.kv("first_task_ns", status.first_task_ns);
  w.kv("finished_ns", status.finished_ns);
  if (status.has_result) {
    switch (status.result.kind()) {
      case Value::Kind::kInt:
        w.kv("result", status.result.as_int());
        break;
      case Value::Kind::kDouble:
        w.kv("result", status.result.as_double());
        break;
      case Value::Kind::kBlob:
        // Blobs are opaque bytes; report the size, not the payload.
        w.kv("result_blob_bytes",
             static_cast<std::uint64_t>(status.result.as_blob().size()));
        break;
      case Value::Kind::kNil:
        w.key("result");
        w.null();
        break;
    }
  }
  w.end_object();
  return w.take();
}

HttpHandler make_jobd_handler(JobService& service) {
  return [&service](const HttpRequest& req) -> HttpResponse {
    if (req.path == "/v1/healthz") {
      if (req.method != "GET") return error_response(405, "method");
      return HttpResponse::json(200, "{\"ok\":true}\n");
    }

    if (req.path == "/v1/stats") {
      if (req.method != "GET") return error_response(405, "method");
      const auto c = service.counters();
      obs::JsonWriter w;
      w.begin_object();
      w.kv("submitted", c.submitted);
      w.kv("accepted", c.accepted);
      w.kv("rejected_bad_request", c.rejected_bad_request);
      w.kv("rejected_rate_limited", c.rejected_rate);
      w.kv("rejected_quota", c.rejected_quota);
      w.kv("rejected_backlog_full", c.rejected_backlog);
      w.kv("rejected_degraded", c.rejected_degraded);
      w.kv("completed", c.completed);
      w.kv("cancelled", c.cancelled);
      w.kv("history_evicted", c.history_evicted);
      w.kv("pending", static_cast<std::uint64_t>(service.pending_jobs()));
      w.kv("active", static_cast<std::uint64_t>(service.active_jobs()));
      // Recovery / availability counters (process-global obs registry):
      // how much churn the pool under this daemon has absorbed.
      auto& reg = obs::Registry::global();
      w.key("recovery");
      w.begin_object();
      w.kv("node_downs", reg.counter("recovery.node_downs").value());
      w.kv("node_ups", reg.counter("recovery.node_ups").value());
      w.kv("rejoins", reg.counter("recovery.rejoins").value());
      w.kv("failover_detects",
           reg.counter("recovery.failover.detects").value());
      w.kv("failover_promotions",
           reg.counter("recovery.failover.promotions").value());
      const auto mttr = reg.histogram("recovery.node_mttr_ns").summarize();
      w.kv("node_mttr_p50_ns", mttr.quantile(0.5));
      w.kv("node_mttr_p99_ns", mttr.quantile(0.99));
      w.end_object();
      w.end_object();
      return HttpResponse::json(200, w.take() + "\n");
    }

    if (req.path == "/v1/jobs") {
      if (req.method == "POST") {
        auto submit = parse_submit_body(req.body);
        if (!submit) return error_response(400, "bad_request");
        const SubmitResult result = service.submit(std::move(*submit));
        if (!result.accepted()) {
          switch (result.reject) {
            case Reject::kBadRequest:
              return error_response(400, reject_name(result.reject));
            case Reject::kRateLimited:
            case Reject::kDegraded: {
              // Degraded pool: 503 + retry-after — the client did nothing
              // wrong; the service is shedding until capacity returns.
              obs::JsonWriter w;
              w.begin_object();
              w.kv("error", reject_name(result.reject));
              w.kv("retry_after_ns", result.retry_after_ns);
              w.end_object();
              const int status =
                  result.reject == Reject::kDegraded ? 503 : 429;
              return HttpResponse::json(status, w.take() + "\n");
            }
            default:  // quota / backlog
              return error_response(429, reject_name(result.reject));
          }
        }
        obs::JsonWriter w;
        w.begin_object();
        w.kv("job_id", result.job_id);
        w.end_object();
        return HttpResponse::json(202, w.take() + "\n");
      }
      if (req.method == "GET") {
        const auto tenant = req.query.find("tenant");
        const auto jobs =
            service.list(tenant == req.query.end() ? "" : tenant->second);
        std::string out = "{\"jobs\":[";
        for (std::size_t i = 0; i < jobs.size(); ++i) {
          if (i != 0) out += ",";
          out += job_status_json(jobs[i]);
        }
        out += "]}\n";
        return HttpResponse::json(200, std::move(out));
      }
      return error_response(405, "method");
    }

    constexpr const char* kJobPrefix = "/v1/jobs/";
    if (req.path.rfind(kJobPrefix, 0) == 0) {
      const auto id = parse_u64(req.path.substr(std::strlen(kJobPrefix)));
      if (!id) return error_response(404, "not_found");
      if (req.method == "GET") {
        const auto status = service.status(*id);
        if (!status) return error_response(404, "not_found");
        return HttpResponse::json(200, job_status_json(*status) + "\n");
      }
      if (req.method == "DELETE") {
        const auto status = service.status(*id);
        if (!status) return error_response(404, "not_found");
        if (service.cancel(*id)) {
          return HttpResponse::json(200, "{\"cancelled\":true}\n");
        }
        // Known job we could not cancel: already finished, or running on a
        // backend that cannot stop it.
        return error_response(409, "not_cancellable");
      }
      return error_response(405, "method");
    }

    return error_response(404, "not_found");
  };
}

}  // namespace phish::jobsvc
