// LocalBackend: run admitted jobs on an in-process thread pool.
//
// The deployment story for the real daemon (tools/phish-jobd): each admitted
// job is one complete task graph executed by a LocalRunner on a pool thread.
// This is the single-workstation degenerate case of the paper's network —
// no steals, no migration — but it exercises the entire service surface
// (admission, queueing, status, cancellation of still-queued work) against
// real applications, and is what the HTTP end-to-end tests drive.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/local_runner.hpp"
#include "jobsvc/service.hpp"

namespace phish::jobsvc {

class LocalBackend final : public JobBackend {
 public:
  LocalBackend(const TaskRegistry& registry, int threads = 2);
  ~LocalBackend() override;

  /// Must be called (once) before the service launches jobs; the service is
  /// constructed after the backend, hence the late bind.
  void bind(JobService& service);

  void launch(const JobStatus& job, const std::vector<Value>& args) override;
  bool cancel_active(std::uint64_t job_id) override;

  /// Block until every launched job has been reported done (tests).
  void drain();

 private:
  struct Work {
    std::uint64_t job_id = 0;
    TaskId root{};
    std::vector<Value> args;
  };

  void worker();

  const TaskRegistry& registry_;
  JobService* service_ = nullptr;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Work> queue_;
  std::size_t running_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace phish::jobsvc
