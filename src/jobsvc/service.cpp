#include "jobsvc/service.hpp"

#include <algorithm>

namespace phish::jobsvc {

const char* reject_name(Reject r) {
  switch (r) {
    case Reject::kNone: return "none";
    case Reject::kBadRequest: return "bad_request";
    case Reject::kRateLimited: return "rate_limited";
    case Reject::kQuotaExceeded: return "quota_exceeded";
    case Reject::kBacklogFull: return "backlog_full";
    case Reject::kDegraded: return "degraded";
  }
  return "unknown";
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kPending: return "pending";
    case JobState::kActive: return "active";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

JobService::JobService(const obs::Clock& clock, JobBackend& backend,
                       ServiceConfig config)
    : clock_(clock),
      backend_(backend),
      config_(config),
      m_submitted_(obs::Registry::global().counter("jobsvc.submitted")),
      m_accepted_(obs::Registry::global().counter("jobsvc.accepted")),
      m_rejected_(obs::Registry::global().counter("jobsvc.rejected")),
      m_completed_(obs::Registry::global().counter("jobsvc.completed")),
      m_cancelled_(obs::Registry::global().counter("jobsvc.cancelled")),
      m_pending_(obs::Registry::global().gauge("jobsvc.pending")),
      m_active_(obs::Registry::global().gauge("jobsvc.active")),
      m_queue_wait_ns_(
          obs::Registry::global().histogram("jobsvc.queue_wait_ns")),
      m_first_task_ns_(
          obs::Registry::global().histogram("jobsvc.submit_to_first_task_ns")),
      m_turnaround_ns_(
          obs::Registry::global().histogram("jobsvc.turnaround_ns")) {}

void JobService::configure_tenant(const std::string& tenant,
                                  TenantPolicy policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  Tenant& t = tenants_[tenant];
  t.policy = policy;
  t.configured = true;
  t.bucket.primed = false;  // re-prime with the new burst on next submit
}

std::optional<TenantPolicy> JobService::tenant_policy(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.configured) return std::nullopt;
  return it->second.policy;
}

JobService::Tenant& JobService::tenant_locked(const std::string& name) {
  const auto [it, inserted] = tenants_.try_emplace(name);
  if (inserted) it->second.policy = config_.default_policy;
  return it->second;
}

bool JobService::take_token_locked(Tenant& tenant, std::uint64_t now,
                                   std::uint64_t& retry_after_ns) {
  const TenantPolicy& p = tenant.policy;
  if (p.rate_per_sec <= 0) return true;  // unlimited
  TokenBucket& b = tenant.bucket;
  const double burst = std::max(p.burst, 1.0);
  if (!b.primed) {
    b.tokens = burst;
    b.refilled_ns = now;
    b.primed = true;
  }
  const double elapsed_s =
      static_cast<double>(now - b.refilled_ns) / 1e9;
  b.tokens = std::min(burst, b.tokens + elapsed_s * p.rate_per_sec);
  b.refilled_ns = now;
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return true;
  }
  retry_after_ns = static_cast<std::uint64_t>(
      (1.0 - b.tokens) / p.rate_per_sec * 1e9);
  return false;
}

void JobService::set_capacity_probe(std::function<double()> probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_probe_ = std::move(probe);
}

SubmitResult JobService::submit(SubmitRequest request) {
  // Sample the pool's live capacity outside the lock: the probe may read
  // cluster state with its own locking.
  double capacity = 1.0;
  {
    std::function<double()> probe;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      probe = capacity_probe_;
    }
    if (config_.degrade_watermark > 0.0 && probe) capacity = probe();
  }
  std::vector<Launch> launches;
  SubmitResult result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t now = clock_.now_ns();
    ++counters_.submitted;
    m_submitted_.inc();
    if (request.tenant.empty()) request.tenant = kDefaultTenant;
    if (request.root_task.empty() || request.priority >= kPriorityClasses) {
      ++counters_.rejected_bad_request;
      m_rejected_.inc();
      result.reject = Reject::kBadRequest;
      return result;
    }
    if (config_.degrade_watermark > 0.0 &&
        capacity < config_.degrade_watermark) {
      // Graceful degradation: the pool lost too many workstations to churn.
      // Shedding here (with a retry-after) beats queueing work the shrunken
      // pool cannot start; admission resumes by itself once the probe sees
      // capacity again.
      ++counters_.rejected_degraded;
      m_rejected_.inc();
      result.reject = Reject::kDegraded;
      result.retry_after_ns = config_.degrade_retry_after_ns;
      return result;
    }
    Tenant& tenant = tenant_locked(request.tenant);
    // Order matters: the rate limiter protects the service itself, so it
    // fires first and a storm of submits cannot even reach the quota math.
    if (!take_token_locked(tenant, now, result.retry_after_ns)) {
      ++counters_.rejected_rate;
      m_rejected_.inc();
      result.reject = Reject::kRateLimited;
      return result;
    }
    if (tenant.jobs_in_flight >= tenant.policy.max_jobs) {
      ++counters_.rejected_quota;
      m_rejected_.inc();
      result.reject = Reject::kQuotaExceeded;
      return result;
    }
    if (active_ >= config_.max_active &&
        backlog_.size() >= config_.max_backlog) {
      ++counters_.rejected_backlog;
      m_rejected_.inc();
      result.reject = Reject::kBacklogFull;
      return result;
    }
    // Admitted.
    const std::uint64_t id = next_job_id_++;
    Job job;
    job.status.job_id = id;
    job.status.tenant = request.tenant;
    job.status.name =
        request.name.empty() ? request.root_task : std::move(request.name);
    job.status.root_task = std::move(request.root_task);
    job.status.priority = request.priority;
    job.status.state = JobState::kPending;
    job.status.submitted_ns = now;
    job.args = std::move(request.args);
    jobs_.emplace(id, std::move(job));
    backlog_.push_back(id);
    ++tenant.jobs_in_flight;
    ++counters_.accepted;
    m_accepted_.inc();
    launches = promote_locked(now);
    m_pending_.set(static_cast<std::int64_t>(backlog_.size()));
    m_active_.set(static_cast<std::int64_t>(active_));
    result.job_id = id;
  }
  // Fire launches outside the lock: the backend may synchronously call
  // note_first_task / note_done back into us.
  for (const Launch& l : launches) backend_.launch(l.status, l.args);
  return result;
}

std::uint64_t JobService::pop_best_pending_locked() {
  // Highest priority class first; FIFO within a class.
  auto best = backlog_.begin();
  for (auto it = std::next(backlog_.begin()); it != backlog_.end(); ++it) {
    if (jobs_.at(*it).status.priority > jobs_.at(*best).status.priority) {
      best = it;
    }
  }
  const std::uint64_t id = *best;
  backlog_.erase(best);
  return id;
}

void JobService::retire_locked(std::uint64_t job_id) {
  history_.push_back(job_id);
  while (history_.size() > config_.history_limit) {
    const std::uint64_t oldest = history_.front();
    history_.pop_front();
    jobs_.erase(oldest);
    ++counters_.history_evicted;
  }
}

std::vector<JobService::Launch> JobService::promote_locked(std::uint64_t now) {
  std::vector<Launch> launches;
  while (active_ < config_.max_active && !backlog_.empty()) {
    const std::uint64_t id = pop_best_pending_locked();
    Job& job = jobs_.at(id);
    job.status.state = JobState::kActive;
    job.status.activated_ns = now;
    m_queue_wait_ns_.observe(now - job.status.submitted_ns);
    ++active_;
    launches.push_back(Launch{job.status, job.args});
  }
  return launches;
}

std::optional<JobStatus> JobService::status(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.status;
}

std::vector<JobStatus> JobService::list(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobStatus> out;
  for (auto it = jobs_.rbegin(); it != jobs_.rend(); ++it) {
    if (!tenant.empty() && it->second.status.tenant != tenant) continue;
    out.push_back(it->second.status);
  }
  return out;
}

bool JobService::cancel(std::uint64_t job_id) {
  std::vector<Launch> launches;
  bool cancelled = false;
  bool ask_backend = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return false;
    Job& job = it->second;
    switch (job.status.state) {
      case JobState::kPending: {
        const auto pos =
            std::find(backlog_.begin(), backlog_.end(), job_id);
        if (pos != backlog_.end()) backlog_.erase(pos);
        job.status.state = JobState::kCancelled;
        job.status.finished_ns = clock_.now_ns();
        --tenant_locked(job.status.tenant).jobs_in_flight;
        ++counters_.cancelled;
        m_cancelled_.inc();
        m_pending_.set(static_cast<std::int64_t>(backlog_.size()));
        retire_locked(job_id);
        cancelled = true;
        break;
      }
      case JobState::kActive:
        ask_backend = true;  // decided outside the lock
        break;
      case JobState::kDone:
      case JobState::kCancelled:
        return false;
    }
  }
  if (ask_backend && backend_.cancel_active(job_id)) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job_id);
    if (it != jobs_.end() && it->second.status.state == JobState::kActive) {
      it->second.status.state = JobState::kCancelled;
      it->second.status.finished_ns = clock_.now_ns();
      --active_;
      --tenant_locked(it->second.status.tenant).jobs_in_flight;
      ++counters_.cancelled;
      m_cancelled_.inc();
      launches = promote_locked(clock_.now_ns());
      m_pending_.set(static_cast<std::int64_t>(backlog_.size()));
      m_active_.set(static_cast<std::int64_t>(active_));
      retire_locked(job_id);
      cancelled = true;
    }
  }
  for (const Launch& l : launches) backend_.launch(l.status, l.args);
  return cancelled;
}

void JobService::note_first_task(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  JobStatus& s = it->second.status;
  if (s.state != JobState::kActive || s.first_task_ns != 0) return;
  s.first_task_ns = clock_.now_ns();
  m_first_task_ns_.observe(s.first_task_ns - s.submitted_ns);
}

void JobService::note_done(std::uint64_t job_id, std::optional<Value> result) {
  std::vector<Launch> launches;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return;
    JobStatus& s = it->second.status;
    if (s.state != JobState::kActive) return;  // cancelled job finished late
    const std::uint64_t now = clock_.now_ns();
    s.state = JobState::kDone;
    s.finished_ns = now;
    if (result) {
      s.has_result = true;
      s.result = std::move(*result);
    }
    // A job that never saw a workstation join still "started" by finishing.
    if (s.first_task_ns == 0) {
      s.first_task_ns = now;
      m_first_task_ns_.observe(now - s.submitted_ns);
    }
    m_turnaround_ns_.observe(now - s.submitted_ns);
    --active_;
    --tenant_locked(s.tenant).jobs_in_flight;
    ++counters_.completed;
    m_completed_.inc();
    launches = promote_locked(now);
    m_pending_.set(static_cast<std::int64_t>(backlog_.size()));
    m_active_.set(static_cast<std::int64_t>(active_));
    retire_locked(job_id);
  }
  for (const Launch& l : launches) backend_.launch(l.status, l.args);
}

std::size_t JobService::pending_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backlog_.size();
}

std::size_t JobService::active_jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

JobService::Counters JobService::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace phish::jobsvc
