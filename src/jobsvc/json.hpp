// Minimal recursive-descent JSON parser for the PhishJobD request bodies.
//
// The obs library deliberately ships only a JSON *writer* (exporters never
// consume JSON); the job service is the first component that must read it —
// submit bodies arrive over HTTP as JSON documents.  The parser covers the
// full RFC 8259 value grammar minus two conveniences the service never
// needs: \u escapes decode only the ASCII range, and numbers are held as
// either int64 or double (the caller picks with as_int/as_double).
//
// Depth is bounded so a hostile body of 100k '[' cannot blow the stack —
// this parser sits on a network-facing endpoint.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace phish::jobsvc {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,     // number that parsed exactly as an integer
    kDouble,  // any other number
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }

  bool as_bool() const { return expect(Kind::kBool), bool_; }
  std::int64_t as_int() const { return expect(Kind::kInt), int_; }
  double as_double() const {
    // Integers quietly widen: {"weight": 2} is a fine double.
    if (kind_ == Kind::kInt) return static_cast<double>(int_);
    return expect(Kind::kDouble), double_;
  }
  const std::string& as_string() const {
    return expect(Kind::kString), string_;
  }
  const std::vector<JsonValue>& as_array() const {
    return expect(Kind::kArray), array_;
  }
  const std::map<std::string, JsonValue>& as_object() const {
    return expect(Kind::kObject), object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const;

  // Typed convenience getters for optional members.
  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<std::int64_t> get_int(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_int(std::int64_t v);
  static JsonValue make_double(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(std::map<std::string, JsonValue> v);

 private:
  void expect(Kind k) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parse a complete JSON document.  nullopt on any syntax error, trailing
/// garbage, or nesting deeper than 64 levels.
std::optional<JsonValue> parse_json(const std::string& text);

}  // namespace phish::jobsvc
