#include "apps/fib/fib.hpp"

#include "core/worker_core.hpp"

namespace phish::apps {

std::int64_t fib_serial(std::int64_t n) {
  if (n < 2) return n;
  return fib_serial(n - 1) + fib_serial(n - 2);
}

namespace {

// fib is the finest-grain app in the suite (Table 1's worst slowdown row),
// so its tasks register through add_raw as pre-devirtualized entry points:
// one indirect call per task, no thunk hop, no capture holder.  The
// sequential cutoff rides in the env word itself; the join task id is
// derived from the registration-order invariant sum == task - 1.

// fib.sum: the join task.  Two slots; sends their sum onward.
void fib_sum_task(Context& cx, Closure& c, void* /*env*/) {
  cx.send(c.cont, c.args[0].as_int() + c.args[1].as_int());
}

// fib.task: the spawning task.  env carries the sequential cutoff.
void fib_spawn_task(Context& cx, Closure& c, void* env) {
  const auto sequential_cutoff =
      static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(env));
  const std::int64_t n = c.args[0].as_int();
  if (n < 2) {
    cx.charge(1);
    cx.send(c.cont, n);
    return;
  }
  if (n <= sequential_cutoff) {
    // Coarsened grain: finish this subtree as plain procedure calls.
    const std::int64_t result = fib_serial(n);
    // The recursion visits exactly 2*fib(n+1) - 1 call nodes; compute
    // fib(n-1) iteratively to charge the exact count.
    std::int64_t a = 0, b = 1;  // fib(0), fib(1)
    for (std::int64_t i = 0; i + 2 < n; ++i) {
      const std::int64_t next = a + b;
      a = b;
      b = next;
    }  // n - 2 iterations: b == fib(n-1) for n >= 2
    const std::int64_t fib_n_plus_1 = result + (n >= 1 ? b : 1);
    cx.charge(static_cast<std::uint64_t>(2 * fib_n_plus_1 - 1));
    cx.send(c.cont, result);
    return;
  }
  cx.charge(1);
  const TaskId self = c.task;
  const TaskId sum_id = self - 1;  // fib.sum registers immediately before us
  const ClosureId join = cx.make_join(sum_id, 2, c.cont);
  cx.spawn(self, Value(n - 1), cx.slot(join, 0));
  cx.spawn(self, Value(n - 2), cx.slot(join, 1));
}

}  // namespace

TaskId register_fib(TaskRegistry& registry, std::int64_t sequential_cutoff) {
  const TaskId sum_id = registry.add_raw("fib.sum", fib_sum_task, nullptr);
  const TaskId fib_id = registry.add_raw(
      "fib.task", fib_spawn_task,
      reinterpret_cast<void*>(static_cast<std::intptr_t>(sequential_cutoff)));
  // fib_spawn_task derives the join's task id as self - 1; keep that
  // invariant explicit at the registration site.
  (void)sum_id;
  return fib_id;
}

}  // namespace phish::apps
