// fib: the paper's tiny-grain toy application.
//
// "The fib application is a naive, doubly-recursive program that computes
// Fibonacci numbers. ... fib incurs serial slowdown because of its tiny grain
// size; it does almost nothing but spawn parallel tasks, which are simple
// procedure calls in the serial implementation."
//
// Its sole purpose is to stress scheduling overhead (Table 1) and to give the
// work-stealing tests a deep, highly parallel spawn tree.
#pragma once

#include <cstdint>

#include "core/task_registry.hpp"

namespace phish::apps {

/// The best serial implementation: a plain doubly-recursive function.
std::int64_t fib_serial(std::int64_t n);

/// Register the fib tasks; returns the root task's id.
/// Root task signature: args = [n : int]; sends fib(n) : int to cont.
///
/// `sequential_cutoff`: below this n a task computes serially instead of
/// spawning (0 reproduces the paper's fully fine-grained version).
TaskId register_fib(TaskRegistry& registry, std::int64_t sequential_cutoff = 0);

/// Work units fib tasks charge (for the simulated runtime's cost model):
/// one unit per serial-fib call node.
constexpr std::uint64_t kFibUnitPerNode = 1;

}  // namespace phish::apps
