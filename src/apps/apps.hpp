// Convenience umbrella for the four evaluation applications.
#pragma once

#include "apps/fib/fib.hpp"
#include "apps/nqueens/nqueens.hpp"
#include "apps/pfold/pfold.hpp"
#include "apps/ray/ray.hpp"
