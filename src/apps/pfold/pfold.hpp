// pfold: protein folding on a lattice.
//
// "The protein-folding application finds all possible foldings of a polymer
// into a lattice and computes a histogram of the energy values."  (Developed
// by Chris Joerg and Vijay Pande; the same workload later drove Cilk's
// pfold.)  We model the polymer as a self-avoiding walk of `n` monomers on
// the 2D square lattice, with the first step fixed to +x to quotient out
// rotational symmetry.  The energy of a folding is the number of contacts:
// pairs of monomers adjacent on the lattice but not consecutive in the chain
// (an HP model with all-H residues, negated).
//
// This is the workload of the paper's Figure 4, Figure 5, and Table 2: a
// deep, irregular enumeration tree with cheap nodes and a tiny result
// (a histogram), i.e. maximal scheduling stress with minimal data movement.
#pragma once

#include <cstdint>

#include "core/task_registry.hpp"
#include "util/stats.hpp"

namespace phish::apps {

/// Best serial implementation: enumerate all foldings of an n-monomer
/// polymer and histogram their contact counts.  Also reports the number of
/// search-tree nodes visited via `nodes_out` when non-null (used to charge
/// simulated work).
Histogram pfold_serial(int n, std::uint64_t* nodes_out = nullptr);

/// Total number of foldings of an n-monomer polymer (== pfold_serial(n).total()).
std::uint64_t pfold_count(int n);

/// Histogram <-> Value blob encoding used by the pfold tasks.
Bytes encode_histogram(const Histogram& h);
Histogram decode_histogram(const Bytes& b);

/// Register the pfold tasks; returns the root task's id.
/// Root task signature: args = [n : int]; sends the energy histogram
/// (encoded with encode_histogram) to cont.
///
/// `sequential_monomers`: subtrees with at most this many monomers left to
/// place are enumerated serially inside one task (grain control).
TaskId register_pfold(TaskRegistry& registry, int sequential_monomers = 7);

}  // namespace phish::apps
