#include "apps/pfold/pfold.hpp"

#include <stdexcept>
#include <vector>

#include "core/worker_core.hpp"

namespace phish::apps {
namespace {

// Direction encoding for walk steps.
constexpr int kDx[4] = {1, -1, 0, 0};
constexpr int kDy[4] = {0, 0, 1, -1};

/// Lattice walk state: occupancy grid plus incremental contact count.
/// The grid spans [-n, n]^2, indexed with an offset so the walk can never
/// leave it.
class Walk {
 public:
  explicit Walk(int n)
      : n_(n), side_(2 * n + 1), grid_(side_ * side_, 0), contacts_(0) {
    if (n < 1) throw std::invalid_argument("pfold: n must be >= 1");
    x_.reserve(n);
    y_.reserve(n);
    place(0, 0);
  }

  int length() const noexcept { return static_cast<int>(x_.size()); }
  int n() const noexcept { return n_; }
  int contacts() const noexcept { return contacts_; }

  bool occupied(int x, int y) const noexcept {
    return grid_[index(x, y)] != 0;
  }

  /// Can the walk extend one step in direction d?
  bool can_step(int d) const noexcept {
    const int nx = x_.back() + kDx[d];
    const int ny = y_.back() + kDy[d];
    return !occupied(nx, ny);
  }

  void step(int d) {
    place(x_.back() + kDx[d], y_.back() + kDy[d]);
  }

  void unstep() {
    const int x = x_.back();
    const int y = y_.back();
    x_.pop_back();
    y_.pop_back();
    grid_[index(x, y)] = 0;
    contacts_ -= new_contacts(x, y);
  }

  /// Enumerate all completions of the current walk into `out`, charging one
  /// node per visit.
  void enumerate(Histogram& out, std::uint64_t& nodes) {
    ++nodes;
    if (length() == n_) {
      out.add(contacts_);
      return;
    }
    for (int d = 0; d < 4; ++d) {
      if (!can_step(d)) continue;
      step(d);
      enumerate(out, nodes);
      unstep();
    }
  }

 private:
  std::size_t index(int x, int y) const noexcept {
    return static_cast<std::size_t>(y + n_) * side_ +
           static_cast<std::size_t>(x + n_);
  }

  /// Contacts created by adding a monomer at (x, y): occupied lattice
  /// neighbours other than its chain predecessor.
  int new_contacts(int x, int y) const noexcept {
    int c = 0;
    for (int d = 0; d < 4; ++d) {
      const int nx = x + kDx[d];
      const int ny = y + kDy[d];
      if (!occupied(nx, ny)) continue;
      // The predecessor is adjacent and consecutive: exclude it.
      if (!x_.empty() && nx == x_.back() && ny == y_.back()) continue;
      ++c;
    }
    return c;
  }

  void place(int x, int y) {
    contacts_ += new_contacts(x, y);
    x_.push_back(x);
    y_.push_back(y);
    grid_[index(x, y)] = 1;
  }

  int n_;
  int side_;
  std::vector<std::uint8_t> grid_;
  std::vector<int> x_, y_;
  int contacts_;
};

/// Rebuild a Walk from a direction path.
Walk walk_from_path(int n, const std::uint8_t* dirs, std::size_t len) {
  Walk w(n);
  for (std::size_t i = 0; i < len; ++i) {
    if (dirs[i] >= 4 || !w.can_step(dirs[i])) {
      throw std::invalid_argument("pfold: corrupt walk path");
    }
    w.step(dirs[i]);
  }
  return w;
}

/// Task-state blob: [n : u32][len : u32][dir bytes...].
Bytes encode_state(int n, const std::vector<std::uint8_t>& dirs) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(n));
  w.u32(static_cast<std::uint32_t>(dirs.size()));
  for (std::uint8_t d : dirs) w.u8(d);
  return w.take();
}

struct State {
  int n;
  std::vector<std::uint8_t> dirs;
};

State decode_state(const Bytes& b) {
  Reader r(b);
  State s;
  s.n = static_cast<int>(r.u32());
  const std::uint32_t len = r.u32();
  s.dirs.resize(len);
  for (std::uint32_t i = 0; i < len; ++i) s.dirs[i] = r.u8();
  if (!r.done()) throw std::invalid_argument("pfold: corrupt state blob");
  return s;
}

}  // namespace

Histogram pfold_serial(int n, std::uint64_t* nodes_out) {
  Histogram h;
  std::uint64_t nodes = 0;
  if (n <= 1) {
    h.add(0);  // a single monomer (or empty) has one trivial folding
    nodes = 1;
  } else {
    // First step fixed to +x (symmetry reduction).
    Walk w(n);
    w.step(0);
    w.enumerate(h, nodes);
  }
  if (nodes_out) *nodes_out = nodes;
  return h;
}

std::uint64_t pfold_count(int n) { return pfold_serial(n).total(); }

Bytes encode_histogram(const Histogram& h) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(h.bins().size()));
  for (const auto& [key, count] : h.bins()) {
    w.i64(key);
    w.u64(count);
  }
  return w.take();
}

Histogram decode_histogram(const Bytes& b) {
  Reader r(b);
  Histogram h;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::int64_t key = r.i64();
    const std::uint64_t count = r.u64();
    h.add(key, count);
  }
  if (!r.done()) throw std::invalid_argument("pfold: corrupt histogram blob");
  return h;
}

TaskId register_pfold(TaskRegistry& registry, int sequential_monomers) {
  // pfold.merge: variable-arity join merging child histograms.
  const TaskId merge_id =
      registry.add("pfold.merge", [](Context& cx, Closure& c) {
        Histogram total;
        for (const Value& v : c.args) {
          total.merge(decode_histogram(v.as_blob()));
        }
        cx.send(c.cont, encode_histogram(total));
      });

  // pfold.extend: args = [state blob]; explores the subtree under a partial
  // walk.
  const TaskId extend_id = registry.add(
      "pfold.extend",
      [merge_id, sequential_monomers](Context& cx, Closure& c) {
        State s = decode_state(c.args[0].as_blob());
        Walk w = walk_from_path(s.n, s.dirs.data(), s.dirs.size());
        // Rebuilding the walk is real work proportional to its length.
        cx.charge(static_cast<std::uint64_t>(w.length()));

        const int remaining = s.n - w.length();
        if (remaining <= sequential_monomers) {
          Histogram h;
          std::uint64_t nodes = 0;
          w.enumerate(h, nodes);
          cx.charge(nodes);
          cx.send(c.cont, encode_histogram(h));
          return;
        }

        std::vector<int> moves;
        for (int d = 0; d < 4; ++d) {
          if (w.can_step(d)) moves.push_back(d);
        }
        cx.charge(1);
        if (moves.empty()) {
          cx.send(c.cont, encode_histogram(Histogram{}));  // dead end
          return;
        }
        const ClosureId join = cx.make_join(
            merge_id, static_cast<std::uint16_t>(moves.size()), c.cont);
        for (std::size_t i = 0; i < moves.size(); ++i) {
          s.dirs.push_back(static_cast<std::uint8_t>(moves[i]));
          cx.spawn(c.task, {Value(encode_state(s.n, s.dirs))},
                   cx.slot(join, static_cast<std::uint16_t>(i)));
          s.dirs.pop_back();
        }
      });

  // pfold.root: args = [n]; fixes the first step and kicks off the search.
  const TaskId root_id = registry.add(
      "pfold.root", [extend_id](Context& cx, Closure& c) {
        const int n = static_cast<int>(c.args[0].as_int());
        cx.charge(1);
        if (n <= 1) {
          Histogram h;
          h.add(0);
          cx.send(c.cont, encode_histogram(h));
          return;
        }
        cx.spawn(extend_id, {Value(encode_state(n, {0}))}, c.cont);
      });
  return root_id;
}

}  // namespace phish::apps
