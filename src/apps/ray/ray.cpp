#include "apps/ray/ray.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "core/worker_core.hpp"

namespace phish::apps {
namespace {

constexpr double kEpsilon = 1e-6;
constexpr double kPi = 3.14159265358979323846;

struct Ray {
  Vec3 origin;
  Vec3 dir;  // normalized
};

struct Hit {
  double t = -1.0;
  Vec3 point;
  Vec3 normal;
  Material material;
  bool valid() const { return t > 0.0; }
};

/// Ray-sphere intersection; returns smallest positive t or -1.
double intersect_sphere(const Ray& ray, const Sphere& s) {
  const Vec3 oc = ray.origin - s.center;
  const double b = oc.dot(ray.dir);
  const double c = oc.norm2() - s.radius * s.radius;
  const double disc = b * b - c;
  if (disc < 0.0) return -1.0;
  const double sq = std::sqrt(disc);
  const double t1 = -b - sq;
  if (t1 > kEpsilon) return t1;
  const double t2 = -b + sq;
  if (t2 > kEpsilon) return t2;
  return -1.0;
}

Material plane_material(const Vec3& point) {
  // Checkerboard in x/z.
  const auto cx = static_cast<long long>(std::floor(point.x));
  const auto cz = static_cast<long long>(std::floor(point.z));
  Material m;
  m.color = ((cx + cz) & 1) ? Vec3{0.15, 0.15, 0.15} : Vec3{0.9, 0.9, 0.9};
  m.diffuse = 0.9;
  m.specular = 0.1;
  m.reflectivity = 0.15;
  return m;
}

Hit closest_hit(const Scene& scene, const Ray& ray) {
  Hit best;
  for (const Sphere& s : scene.spheres) {
    const double t = intersect_sphere(ray, s);
    if (t > 0.0 && (!best.valid() || t < best.t)) {
      best.t = t;
      best.point = ray.origin + ray.dir * t;
      best.normal = (best.point - s.center).normalized();
      best.material = s.material;
    }
  }
  if (scene.ground_plane && std::abs(ray.dir.y) > kEpsilon) {
    const double t = (scene.plane_y - ray.origin.y) / ray.dir.y;
    if (t > kEpsilon && (!best.valid() || t < best.t)) {
      best.t = t;
      best.point = ray.origin + ray.dir * t;
      best.normal = Vec3{0, 1, 0};
      best.material = plane_material(best.point);
    }
  }
  return best;
}

Vec3 sky_color(const Scene& scene, const Ray& ray) {
  const double t = 0.5 * (ray.dir.y + 1.0);
  return scene.sky_bottom * (1.0 - t) + scene.sky_top * t;
}

bool in_shadow(const Scene& scene, const Vec3& point, const Vec3& to_light,
               double light_dist, std::uint64_t& rays) {
  ++rays;
  const Ray shadow{point + to_light * (8 * kEpsilon), to_light};
  for (const Sphere& s : scene.spheres) {
    const double t = intersect_sphere(shadow, s);
    if (t > 0.0 && t < light_dist) return true;
  }
  // The ground plane casts no shadows upward onto itself or the spheres in
  // this scene (lights sit above it), so skip it.
  return false;
}

Vec3 trace(const Scene& scene, const Ray& ray, int depth,
           std::uint64_t& rays) {
  ++rays;
  const Hit hit = closest_hit(scene, ray);
  if (!hit.valid()) return sky_color(scene, ray);

  Vec3 color = scene.ambient * hit.material.color;
  for (const Light& light : scene.lights) {
    const Vec3 to_light_raw = light.position - hit.point;
    const double light_dist = to_light_raw.norm();
    const Vec3 to_light = to_light_raw * (1.0 / light_dist);
    const double ndotl = hit.normal.dot(to_light);
    if (ndotl <= 0.0) continue;
    if (in_shadow(scene, hit.point, to_light, light_dist, rays)) continue;
    // Lambert.
    color = color +
            light.intensity * hit.material.color * (hit.material.diffuse *
                                                    ndotl);
    // Blinn-Phong.
    const Vec3 half = (to_light - ray.dir).normalized();
    const double ndoth = hit.normal.dot(half);
    if (ndoth > 0.0) {
      color = color + light.intensity * (hit.material.specular *
                                         std::pow(ndoth,
                                                  hit.material.shininess));
    }
  }
  if (hit.material.reflectivity > 0.0 && depth < scene.max_depth) {
    const Vec3 refl_dir =
        ray.dir - hit.normal * (2.0 * ray.dir.dot(hit.normal));
    const Ray refl{hit.point + refl_dir * (8 * kEpsilon),
                   refl_dir.normalized()};
    const Vec3 reflected = trace(scene, refl, depth + 1, rays);
    color = color * (1.0 - hit.material.reflectivity) +
            reflected * hit.material.reflectivity;
  }
  return color;
}

std::uint8_t to_byte(double channel) {
  const double clamped = channel < 0.0 ? 0.0 : (channel > 1.0 ? 1.0 : channel);
  return static_cast<std::uint8_t>(clamped * 255.0 + 0.5);
}

/// Render a rectangular region of the frame into `rgb` (row-major within the
/// region).  Shared by the serial renderer and the tile tasks, so parallel
/// output is byte-identical to serial output.
void render_region(const Scene& scene, int frame_w, int frame_h, int x0,
                   int y0, int w, int h, std::uint8_t* rgb,
                   std::uint64_t& rays) {
  const double aspect = static_cast<double>(frame_w) / frame_h;
  const double tan_half = std::tan(scene.fov_degrees * kPi / 360.0);
  // Camera basis.
  const Vec3 forward = (scene.look_at - scene.eye).normalized();
  Vec3 right{forward.z, 0, -forward.x};  // cross(world-up == +y, forward)
  right = right.normalized();
  const Vec3 up = Vec3{right.y * forward.z - right.z * forward.y,
                       right.z * forward.x - right.x * forward.z,
                       right.x * forward.y - right.y * forward.x};

  for (int py = 0; py < h; ++py) {
    for (int px = 0; px < w; ++px) {
      const double u =
          (2.0 * (x0 + px + 0.5) / frame_w - 1.0) * tan_half * aspect;
      const double v = (1.0 - 2.0 * (y0 + py + 0.5) / frame_h) * tan_half;
      const Ray ray{scene.eye,
                    (forward + right * u + up * v).normalized()};
      const Vec3 c = trace(scene, ray, 0, rays);
      std::uint8_t* out = rgb + 3 * (static_cast<std::size_t>(py) * w + px);
      out[0] = to_byte(c.x);
      out[1] = to_byte(c.y);
      out[2] = to_byte(c.z);
    }
  }
}

/// Region blob: [x0,y0,w,h : u32][rgb bytes].
Bytes encode_region(int x0, int y0, int w, int h,
                    const std::vector<std::uint8_t>& rgb) {
  Writer out;
  out.u32(static_cast<std::uint32_t>(x0));
  out.u32(static_cast<std::uint32_t>(y0));
  out.u32(static_cast<std::uint32_t>(w));
  out.u32(static_cast<std::uint32_t>(h));
  out.blob(rgb.data(), rgb.size());
  return out.take();
}

struct Region {
  int x0, y0, w, h;
  Bytes rgb;
};

Region decode_region(const Bytes& blob) {
  Reader r(blob);
  Region reg;
  reg.x0 = static_cast<int>(r.u32());
  reg.y0 = static_cast<int>(r.u32());
  reg.w = static_cast<int>(r.u32());
  reg.h = static_cast<int>(r.u32());
  reg.rgb = r.blob();
  if (!r.done() ||
      reg.rgb.size() != static_cast<std::size_t>(3) * reg.w * reg.h) {
    throw std::invalid_argument("ray: corrupt region blob");
  }
  return reg;
}

}  // namespace

double Vec3::norm() const { return std::sqrt(norm2()); }

Vec3 Vec3::normalized() const {
  const double n = norm();
  return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{0, 0, 0};
}

Scene make_default_scene() {
  Scene scene;
  Sphere mirror;
  mirror.center = {0.0, 1.0, 0.5};
  mirror.radius = 1.0;
  mirror.material = {{0.95, 0.95, 0.95}, 0.25, 0.6, 96.0, 0.6};
  Sphere red;
  red.center = {-1.8, 0.6, -0.6};
  red.radius = 0.6;
  red.material = {{0.9, 0.2, 0.2}, 0.8, 0.3, 32.0, 0.1};
  Sphere blue;
  blue.center = {1.7, 0.5, -0.9};
  blue.radius = 0.5;
  blue.material = {{0.2, 0.3, 0.9}, 0.8, 0.4, 48.0, 0.25};
  scene.spheres = {mirror, red, blue};
  scene.lights = {Light{{-4, 6, -3}, {0.9, 0.9, 0.85}},
                  Light{{5, 4, -2}, {0.35, 0.35, 0.45}}};
  return scene;
}

Image render_serial(const Scene& scene, int width, int height,
                    std::uint64_t* ray_count_out) {
  Image img;
  img.width = width;
  img.height = height;
  img.rgb.resize(static_cast<std::size_t>(3) * width * height);
  std::uint64_t rays = 0;
  render_region(scene, width, height, 0, 0, width, height, img.rgb.data(),
                rays);
  if (ray_count_out) *ray_count_out = rays;
  return img;
}

void write_ppm(const Image& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("ray: cannot open " + path);
  out << "P6\n" << image.width << ' ' << image.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.rgb.data()),
            static_cast<std::streamsize>(image.rgb.size()));
}

Image decode_image_blob(const Bytes& blob) {
  const Region reg = decode_region(blob);
  Image img;
  img.width = reg.w;
  img.height = reg.h;
  img.rgb = reg.rgb;
  return img;
}

TaskId register_ray(TaskRegistry& registry, Scene scene, int width, int height,
                    int tile_pixels) {
  auto shared_scene = std::make_shared<Scene>(std::move(scene));

  // ray.merge: combine two sub-region blobs into their bounding region.
  const TaskId merge_id = registry.add("ray.merge", [](Context& cx,
                                                       Closure& c) {
    const Region a = decode_region(c.args[0].as_blob());
    const Region b = decode_region(c.args[1].as_blob());
    const int x0 = std::min(a.x0, b.x0);
    const int y0 = std::min(a.y0, b.y0);
    const int x1 = std::max(a.x0 + a.w, b.x0 + b.w);
    const int y1 = std::max(a.y0 + a.h, b.y0 + b.h);
    const int w = x1 - x0;
    const int h = y1 - y0;
    std::vector<std::uint8_t> rgb(static_cast<std::size_t>(3) * w * h, 0);
    auto blit = [&](const Region& reg) {
      for (int row = 0; row < reg.h; ++row) {
        const std::uint8_t* src = reg.rgb.data() +
                                  static_cast<std::size_t>(3) * row * reg.w;
        std::uint8_t* dst =
            rgb.data() + 3 * (static_cast<std::size_t>(reg.y0 - y0 + row) * w +
                              (reg.x0 - x0));
        std::copy(src, src + static_cast<std::size_t>(3) * reg.w, dst);
      }
    };
    blit(a);
    blit(b);
    cx.charge(static_cast<std::uint64_t>(w) * h / 16 + 1);
    cx.send(c.cont, encode_region(x0, y0, w, h, rgb));
  });

  // ray.region: args = [x0, y0, w, h]; renders or splits.
  const TaskId region_id = registry.add(
      "ray.region",
      [shared_scene, width, height, tile_pixels, merge_id](Context& cx,
                                                           Closure& c) {
        const int x0 = static_cast<int>(c.args[0].as_int());
        const int y0 = static_cast<int>(c.args[1].as_int());
        const int w = static_cast<int>(c.args[2].as_int());
        const int h = static_cast<int>(c.args[3].as_int());
        if (w * h <= tile_pixels) {
          std::vector<std::uint8_t> rgb(static_cast<std::size_t>(3) * w * h);
          std::uint64_t rays = 0;
          render_region(*shared_scene, width, height, x0, y0, w, h,
                        rgb.data(), rays);
          cx.charge(rays);
          cx.send(c.cont, encode_region(x0, y0, w, h, rgb));
          return;
        }
        // Split the longer axis; children join through ray.merge.
        cx.charge(1);
        const ClosureId join = cx.make_join(merge_id, 2, c.cont);
        if (w >= h) {
          const int wl = w / 2;
          cx.spawn(c.task,
                   {Value(std::int64_t{x0}), Value(std::int64_t{y0}),
                    Value(std::int64_t{wl}), Value(std::int64_t{h})},
                   cx.slot(join, 0));
          cx.spawn(c.task,
                   {Value(std::int64_t{x0 + wl}), Value(std::int64_t{y0}),
                    Value(std::int64_t{w - wl}), Value(std::int64_t{h})},
                   cx.slot(join, 1));
        } else {
          const int ht = h / 2;
          cx.spawn(c.task,
                   {Value(std::int64_t{x0}), Value(std::int64_t{y0}),
                    Value(std::int64_t{w}), Value(std::int64_t{ht})},
                   cx.slot(join, 0));
          cx.spawn(c.task,
                   {Value(std::int64_t{x0}), Value(std::int64_t{y0 + ht}),
                    Value(std::int64_t{w}), Value(std::int64_t{h - ht})},
                   cx.slot(join, 1));
        }
      });

  // ray.root: args = []; renders the configured frame.
  const TaskId root_id = registry.add(
      "ray.root", [region_id, width, height](Context& cx, Closure& c) {
        cx.spawn(region_id,
                 {Value(std::int64_t{0}), Value(std::int64_t{0}),
                  Value(std::int64_t{width}), Value(std::int64_t{height})},
                 c.cont);
      });
  return root_id;
}

}  // namespace phish::apps
