// ray: a recursive ray tracer — the paper's coarse-grain application.
//
// "The ray-tracing application renders images by tracing light rays around a
// mathematical model of a scene."  Rays hit spheres and a checkered ground
// plane; shading is Lambertian + Blinn-Phong with hard shadows and mirror
// reflections to a fixed depth.  All arithmetic is deterministic, so the
// parallel rendering must be byte-identical to the serial one — the tests
// assert exactly that.
//
// Its role in the evaluation is grain size: one task renders a whole tile,
// so scheduling overhead amortizes to nearly nothing (Table 1's serial
// slowdown of ~1.0x).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/task_registry.hpp"

namespace phish::apps {

struct Vec3 {
  double x = 0, y = 0, z = 0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3 operator*(const Vec3& o) const { return {x * o.x, y * o.y, z * o.z}; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm2() const { return dot(*this); }
  double norm() const;
  Vec3 normalized() const;
};

struct Material {
  Vec3 color{1, 1, 1};
  double diffuse = 0.8;
  double specular = 0.2;
  double shininess = 32.0;
  double reflectivity = 0.0;
};

struct Sphere {
  Vec3 center;
  double radius = 1.0;
  Material material;
};

struct Light {
  Vec3 position;
  Vec3 intensity{1, 1, 1};
};

struct Scene {
  std::vector<Sphere> spheres;
  std::vector<Light> lights;
  Vec3 ambient{0.08, 0.08, 0.1};
  Vec3 sky_top{0.4, 0.6, 0.9};
  Vec3 sky_bottom{0.9, 0.9, 1.0};
  bool ground_plane = true;   // checkered plane at y == 0
  double plane_y = 0.0;
  int max_depth = 3;          // reflection recursion limit
  // Camera.
  Vec3 eye{0, 1.5, -4};
  Vec3 look_at{0, 0.8, 0};
  double fov_degrees = 55.0;
};

/// The scene used by benches and examples: three reflective spheres on a
/// checkered plane under two lights.
Scene make_default_scene();

/// 8-bit RGB image.
struct Image {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> rgb;  // 3 * width * height, row-major

  bool operator==(const Image& other) const = default;
};

/// Best serial implementation: render the whole frame.
/// `ray_count_out`, when non-null, receives the number of rays traced
/// (primary + shadow + reflection) — the work unit the parallel tasks charge.
Image render_serial(const Scene& scene, int width, int height,
                    std::uint64_t* ray_count_out = nullptr);

/// Write a binary PPM (P6) for eyeballing example output.
void write_ppm(const Image& image, const std::string& path);

/// Register the ray tasks; returns the root task's id.
/// Root task signature: args = [] ; sends the finished frame to cont as a
/// blob [x0,y0,w,h, rgb bytes...] with x0 = y0 = 0 and w,h as configured.
///
/// The scene and frame size are bound at registration (every participant of
/// a job registers the same scene, exactly as every Phish worker binds the
/// same application binary).  `tile_pixels`: regions at most this large are
/// rendered inside one task; larger regions split in two.
TaskId register_ray(TaskRegistry& registry, Scene scene, int width, int height,
                    int tile_pixels = 1024);

/// Reassemble an Image from the root task's result blob.
Image decode_image_blob(const Bytes& blob);

}  // namespace phish::apps
