#include "apps/nqueens/nqueens.hpp"

#include <vector>

#include "core/worker_core.hpp"

namespace phish::apps {
namespace {

/// Counts completions from a partial placement given the three attack masks;
/// also counts visited search nodes for work charging.
std::int64_t count_completions(std::uint32_t all, std::uint32_t cols,
                               std::uint32_t diag_l, std::uint32_t diag_r,
                               std::uint64_t& nodes) {
  ++nodes;
  if (cols == all) return 1;
  std::int64_t count = 0;
  std::uint32_t free = all & ~(cols | diag_l | diag_r);
  while (free != 0) {
    const std::uint32_t bit = free & (~free + 1);  // lowest set bit
    free ^= bit;
    count += count_completions(all, cols | bit, (diag_l | bit) << 1,
                               (diag_r | bit) >> 1, nodes);
  }
  return count;
}

}  // namespace

std::int64_t nqueens_serial(int n) {
  std::uint64_t nodes = 0;
  const std::uint32_t all = (n >= 32) ? 0xffffffffu : ((1u << n) - 1);
  return count_completions(all, 0, 0, 0, nodes);
}

TaskId register_nqueens(TaskRegistry& registry, int sequential_rows) {
  // nqueens.sum: variable-arity join; sums all its slots.
  const TaskId sum_id =
      registry.add("nqueens.sum", [](Context& cx, Closure& c) {
        std::int64_t total = 0;
        for (const Value& v : c.args) total += v.as_int();
        cx.send(c.cont, total);
      });

  // nqueens.search: args = [n, row, cols, diag_l, diag_r].
  const TaskId search_id = registry.add(
      "nqueens.search",
      [sum_id, sequential_rows](Context& cx, Closure& c) {
        const int n = static_cast<int>(c.args[0].as_int());
        const int row = static_cast<int>(c.args[1].as_int());
        const auto cols = static_cast<std::uint32_t>(c.args[2].as_int());
        const auto diag_l = static_cast<std::uint32_t>(c.args[3].as_int());
        const auto diag_r = static_cast<std::uint32_t>(c.args[4].as_int());
        const std::uint32_t all = (n >= 32) ? 0xffffffffu : ((1u << n) - 1);

        if (row == n) {
          cx.charge(1);
          cx.send(c.cont, std::int64_t{1});
          return;
        }
        if (n - row <= sequential_rows) {
          // Few rows left: finish this subtree serially in one task.
          std::uint64_t nodes = 0;
          const std::int64_t count =
              count_completions(all, cols, diag_l, diag_r, nodes);
          cx.charge(nodes);
          cx.send(c.cont, count);
          return;
        }

        std::uint32_t free = all & ~(cols | diag_l | diag_r);
        if (free == 0) {
          cx.charge(1);
          cx.send(c.cont, std::int64_t{0});
          return;
        }
        // One child per legal column in this row, joined by a sum.
        std::vector<std::uint32_t> moves;
        while (free != 0) {
          const std::uint32_t bit = free & (~free + 1);
          free ^= bit;
          moves.push_back(bit);
        }
        cx.charge(1 + moves.size());
        const ClosureId join = cx.make_join(
            sum_id, static_cast<std::uint16_t>(moves.size()), c.cont);
        for (std::size_t i = 0; i < moves.size(); ++i) {
          const std::uint32_t bit = moves[i];
          cx.spawn(c.task,
                   {Value(std::int64_t{n}), Value(std::int64_t{row + 1}),
                    Value(static_cast<std::int64_t>(cols | bit)),
                    Value(static_cast<std::int64_t>((diag_l | bit) << 1)),
                    Value(static_cast<std::int64_t>((diag_r | bit) >> 1))},
                   cx.slot(join, static_cast<std::uint16_t>(i)));
        }
      });

  // nqueens.root: args = [n]; kicks off the search from an empty board.
  const TaskId root_id = registry.add(
      "nqueens.root", [search_id](Context& cx, Closure& c) {
        cx.spawn(search_id,
                 {c.args[0], Value(std::int64_t{0}), Value(std::int64_t{0}),
                  Value(std::int64_t{0}), Value(std::int64_t{0})},
                 c.cont);
      });
  return root_id;
}

}  // namespace phish::apps
