// nqueens: backtrack search counting queen placements.
//
// "The nqueens application counts by backtrack search the number of ways of
// arranging n queens on an n x n chess board such that no queen can capture
// any other."  Backtrack search is the workload class that inspired
// idle-initiated scheduling (DIB); parallelism is dynamic and irregular —
// subtree sizes vary wildly, which is exactly what random FIFO stealing
// handles well.
#pragma once

#include <cstdint>

#include "core/task_registry.hpp"

namespace phish::apps {

/// Best serial implementation: bitmask backtracking.
std::int64_t nqueens_serial(int n);

/// Register the nqueens tasks; returns the root task's id.
/// Root task signature: args = [n : int]; sends the solution count to cont.
///
/// `sequential_rows`: subtrees with at most this many rows left are counted
/// serially inside one task (grain control).  The paper's nqueens had a
/// moderate grain (serial slowdown 1.12); sequential_rows ~ n-3 models that.
TaskId register_nqueens(TaskRegistry& registry, int sequential_rows = 5);

}  // namespace phish::apps
