// Shared-memory threads runtime.
//
// Runs one WorkerCore per std::thread with direct (in-memory) argument
// delivery and direct steals — a *static* processor set, like the Strata
// scheduling library on the CM-5 that Phish was designed to mirror.  Table 1
// uses this runtime in two modes:
//
//   * static mode (default): the Strata analog — no network polling, no
//     dynamic-membership bookkeeping.
//   * phish_overheads mode: the same scheduler additionally pays, per task,
//     the obligations the paper blames for Phish's extra serial slowdown —
//     a real non-blocking poll of a UDP socket (split-phase message check)
//     and a dynamic-processor-set membership check.
//
// Synchronization design: each worker's WorkerCore is guarded by one mutex,
// held while popping and executing tasks (execution mutates the core through
// Context).  Cross-worker traffic never takes two core locks at once:
// argument sends go through a per-worker inbox with its own lock, and steals
// take only the victim's core lock.  This keeps the locking dead-simple and
// provably deadlock-free; contention is negligible because steals and
// non-local sends are rare by design (that is the paper's whole point).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/local_runner.hpp"
#include "core/worker_core.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/rng.hpp"

namespace phish::rt {

struct ThreadsConfig {
  int workers = 1;
  ExecOrder exec_order = ExecOrder::kLifo;
  StealOrder steal_order = StealOrder::kFifo;
  std::uint64_t seed = 0x5eed'0000'0010ULL;
  /// Pay Phish's per-task overheads (see file comment).  Table 1's second
  /// column.
  bool phish_overheads = false;
  /// phish_overheads: execute this many tasks between split-phase network
  /// polls (the real non-blocking recv syscall).  1 reproduces the 1994
  /// per-task poll; the default amortizes the syscall the way a modern
  /// split-phase scheduler would, while the per-task membership check (an
  /// atomic load) is still paid on every task.
  int poll_period = 128;
  /// Most tasks a single steal takes from a victim (steal-half, capped).
  /// 1 reproduces classic steal-one.
  int steal_batch = 8;
  /// Consecutive empty scheduling rounds (own queue, inbox, and a failed
  /// steal) after which a worker naps briefly instead of spinning.
  int spin_rounds_before_yield = 64;
  /// Back each worker's ready list with the lock-free Chase–Lev deque and
  /// steal without taking the victim's core lock.  Effective only with >1
  /// worker and the paper's standard orders (kLifo exec / kFifo steal);
  /// otherwise the mutex-guarded ring is used (a solo worker would pay the
  /// deque's fences for nothing, and ablation orders need the ring).  Off
  /// switch kept for differential testing.
  bool lockfree_deque = true;
  /// Run the newly spawned LIFO child from the core's one-slot register
  /// without touching the deque (Cilk-style fusion; see CoreOptions).
  bool fused_spawn = true;
  /// Optional event tracer (wall-clock domain).  Worker i writes to
  /// tracer->shard(i); null disables tracing entirely.
  obs::Tracer* tracer = nullptr;
};

struct ThreadsRunResult {
  Value value;
  double elapsed_seconds = 0.0;
  WorkerStats aggregate;                // merged per the paper's conventions
  std::vector<WorkerStats> per_worker;
};

class ThreadsRuntime {
 public:
  ThreadsRuntime(const TaskRegistry& registry, ThreadsConfig config);
  ~ThreadsRuntime();

  ThreadsRuntime(const ThreadsRuntime&) = delete;
  ThreadsRuntime& operator=(const ThreadsRuntime&) = delete;

  /// Execute root(args...) across the configured workers and return the
  /// result with timing and scheduling statistics.  Reusable: each call is
  /// an independent job.
  ThreadsRunResult run(TaskId root, std::vector<Value> args);
  ThreadsRunResult run(const std::string& root, std::vector<Value> args);

 private:
  struct InboxMessage {
    ContRef cont;
    Value value;
  };

  struct Worker {
    std::mutex core_mutex;
    std::unique_ptr<WorkerCore> core;  // guarded by core_mutex

    std::mutex inbox_mutex;
    std::vector<InboxMessage> inbox;   // guarded by inbox_mutex
    /// Set (under inbox_mutex) when a message is pushed, cleared when the
    /// inbox is drained.  Lets the hot loop skip the inbox lock entirely on
    /// the overwhelmingly common empty-inbox case.
    std::atomic<bool> inbox_nonempty{false};

    Xoshiro256 rng{0};
    int poll_fd = -1;                  // phish_overheads: real UDP socket
  };

  void worker_loop(int index);
  bool drain_inbox(Worker& w);               // callers hold core_mutex
  bool try_steal_for(int thief_index);
  void deliver(const ContRef& cont, Value value, int sender_index);
  bool quiescent_without_result();

  const TaskRegistry& registry_;
  ThreadsConfig config_;
  /// Resolved from config at construction: lock-free steals in play.
  bool use_lockfree_ = false;
  obs::Histogram& steal_latency_;  // successful-steal latency, global registry
  std::vector<std::unique_ptr<Worker>> workers_;

  // Per-job state.
  std::atomic<bool> done_{false};
  std::atomic<bool> job_active_{false};
  std::atomic<int> idle_workers_{0};
  std::atomic<int> in_transit_{0};  // stolen tasks between victim and thief
  std::atomic<std::uint64_t> membership_epoch_{0};  // phish_overheads check
  std::mutex result_mutex_;
  std::optional<Value> result_;

  // Thread pool control.
  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;
  bool shutdown_ = false;
  std::uint64_t job_generation_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace phish::rt
