#include "runtime/threads/threads_runtime.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace phish::rt {
namespace {

const obs::SteadyClock& steady_clock() {
  static const obs::SteadyClock clock;
  return clock;
}

int make_poll_socket() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw std::runtime_error("threads runtime: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    throw std::runtime_error("threads runtime: bind() failed");
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

}  // namespace

ThreadsRuntime::ThreadsRuntime(const TaskRegistry& registry,
                               ThreadsConfig config)
    : registry_(registry),
      config_(config),
      steal_latency_(obs::Registry::global().histogram("steal.latency_ns")) {
  if (config_.workers < 1) {
    throw std::invalid_argument("threads runtime: need at least one worker");
  }
  if (config_.poll_period < 1 || config_.steal_batch < 1) {
    throw std::invalid_argument(
        "threads runtime: poll_period and steal_batch must be >= 1");
  }
  use_lockfree_ = config_.lockfree_deque && config_.workers > 1 &&
                  config_.exec_order == ExecOrder::kLifo &&
                  config_.steal_order == StealOrder::kFifo;
  workers_.reserve(config_.workers);
  for (int i = 0; i < config_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->rng = Xoshiro256(mix64(config_.seed ^ static_cast<std::uint64_t>(i)));
    if (config_.phish_overheads) w->poll_fd = make_poll_socket();
    workers_.push_back(std::move(w));
  }
  threads_.reserve(config_.workers);
  for (int i = 0; i < config_.workers; ++i) {
    threads_.emplace_back([this, i] {
      std::uint64_t seen_generation = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(pool_mutex_);
          pool_cv_.wait(lock, [&] {
            return shutdown_ || job_generation_ != seen_generation;
          });
          if (shutdown_) return;
          seen_generation = job_generation_;
        }
        worker_loop(i);
        if (idle_workers_.fetch_add(1) + 1 == config_.workers) {
          pool_cv_.notify_all();  // last worker parked; job fully quiesced
        }
      }
    });
  }
}

ThreadsRuntime::~ThreadsRuntime() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    shutdown_ = true;
  }
  pool_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  for (auto& w : workers_) {
    if (w->poll_fd >= 0) ::close(w->poll_fd);
  }
}

ThreadsRunResult ThreadsRuntime::run(TaskId root, std::vector<Value> args) {
  if (job_active_.exchange(true)) {
    throw std::logic_error("threads runtime: run() is not reentrant");
  }
  // Fresh cores per job.
  for (int i = 0; i < config_.workers; ++i) {
    Worker& w = *workers_[i];
    WorkerCore::Hooks hooks;
    hooks.send_remote = [this, i](const ContRef& cont, Value value) {
      deliver(cont, std::move(value), i);
    };
    CoreOptions opts;
    opts.exec_order = config_.exec_order;
    opts.steal_order = config_.steal_order;
    opts.fused_spawn = config_.fused_spawn;
    opts.lockfree_deque = use_lockfree_;
    std::lock_guard<std::mutex> lock(w.core_mutex);
    w.core = std::make_unique<WorkerCore>(net::NodeId{
                                              static_cast<std::uint32_t>(i)},
                                          registry_, std::move(hooks), opts);
    if (config_.tracer != nullptr) {
      w.core->set_trace(config_.tracer->shard(static_cast<std::uint16_t>(i)),
                        &steady_clock());
    }
    std::lock_guard<std::mutex> inbox_lock(w.inbox_mutex);
    w.inbox.clear();
  }
  result_.reset();
  done_.store(false);
  idle_workers_.store(0);
  in_transit_.store(0);
  {
    std::lock_guard<std::mutex> lock(workers_[0]->core_mutex);
    workers_[0]->core->spawn(root, std::move(args), root_continuation(), 0);
  }

  Stopwatch watch;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    ++job_generation_;
  }
  pool_cv_.notify_all();

  // Wait for completion; check for global quiescence without a result (a
  // malformed task graph) so callers get an exception instead of a hang.
  {
    std::unique_lock<std::mutex> lock(pool_mutex_);
    while (!pool_cv_.wait_for(lock, std::chrono::milliseconds(50), [&] {
      return idle_workers_.load() == config_.workers;
    })) {
      if (!done_.load() && quiescent_without_result()) {
        done_.store(true);  // release the workers
        pool_cv_.wait(lock, [&] {
          return idle_workers_.load() == config_.workers;
        });
        job_active_.store(false);
        throw std::runtime_error(
            "threads runtime: task graph quiesced without producing a "
            "result (missing send to continuation?)");
      }
    }
  }

  ThreadsRunResult result;
  result.elapsed_seconds = watch.elapsed_seconds();
  {
    std::lock_guard<std::mutex> lock(result_mutex_);
    if (!result_) {
      job_active_.store(false);
      throw std::runtime_error("threads runtime: no result recorded");
    }
    result.value = std::move(*result_);
  }
  StatsSnapshot snap = collect_stats(workers_, [](const auto& w) {
    std::lock_guard<std::mutex> lock(w->core_mutex);
    // Fold any not-yet-reclaimed victim-side steal accounting (lock-free
    // mode) so per-worker stats balance; harmless no-op otherwise.
    w->core->reclaim_stolen_slots();
    return w->core->stats();
  });
  result.aggregate = std::move(snap.aggregate);
  result.per_worker = std::move(snap.per_worker);
  job_active_.store(false);
  return result;
}

ThreadsRunResult ThreadsRuntime::run(const std::string& root,
                                     std::vector<Value> args) {
  return run(registry_.id_of(root), std::move(args));
}

bool ThreadsRuntime::quiescent_without_result() {
  // Take every core lock, then every inbox lock (global lock order), so the
  // check sees a consistent snapshot: no worker can be mid-execution or
  // mid-delivery while we hold its locks.
  std::vector<std::unique_lock<std::mutex>> core_locks;
  core_locks.reserve(workers_.size());
  for (auto& w : workers_) core_locks.emplace_back(w->core_mutex);
  std::vector<std::unique_lock<std::mutex>> inbox_locks;
  inbox_locks.reserve(workers_.size());
  for (auto& w : workers_) inbox_locks.emplace_back(w->inbox_mutex);

  if (done_.load()) return false;
  for (auto& w : workers_) {
    if (!w->core || w->core->has_ready() || !w->inbox.empty()) return false;
  }
  // in_transit_ is checked AFTER the deque scan: a lock-free thief does not
  // take the victim's core lock, so it can CAS a task out of a deque we have
  // not scanned yet — but it increments in_transit_ before that CAS and can
  // only decrement after install (which needs its own core lock, held by us),
  // so the task is visible either in a deque or in this counter.
  return in_transit_.load() == 0;
}

void ThreadsRuntime::worker_loop(int index) {
  Worker& w = *workers_[index];
  int unproductive_rounds = 0;
  int tasks_since_poll = 0;
  // A solo worker has no thieves to yield the lock to, so it can run much
  // longer batches per lock acquisition.  It also cannot receive inbox
  // messages mid-job — deliver() only enqueues when a send crosses workers —
  // so the per-task inbox check is dead work and is skipped (the per-batch
  // drain stays, keeping the loop shape uniform).
  const bool solo = config_.workers == 1;
  const int exec_batch = solo ? 256 : 8;
  // Hoist per-task loop inputs into locals: execute() ends in an opaque
  // indirect call, so the compiler must otherwise reload every `config_`
  // field from memory after each task.  At fib grain those reloads cost more
  // than the modeled obligation itself (which is one relaxed load), so
  // leaving them in would overstate Phish's overhead.
  const bool phish = config_.phish_overheads;
  const int poll_period = config_.poll_period;
  const int poll_fd = w.poll_fd;
  while (!done_.load(std::memory_order_acquire)) {
    bool progressed = false;
    bool out_of_local_work = false;
    {
      // Execute a bounded batch per lock acquisition so thieves blocked on
      // this core's mutex get a window at the deque between batches.
      std::lock_guard<std::mutex> lock(w.core_mutex);
      progressed |= drain_inbox(w);
      // Return pool slots thieves CAS-stole since the last batch (lock-free
      // mode; cheap flag check otherwise a no-op).
      if (use_lockfree_ && w.core->has_parked_slots()) {
        w.core->reclaim_stolen_slots();
      }
      WorkerCore& core = *w.core;
      int executed = 0;
      for (; executed < exec_batch; ++executed) {
        auto task = core.pop_for_execution();
        if (!task) {
          out_of_local_work = true;
          break;
        }
        core.execute(*task);
        if (phish) {
          // Phish's per-task obligations: a dynamic-membership check on
          // every task, and a split-phase network poll (a real non-blocking
          // syscall) amortized over poll_period tasks.
          (void)membership_epoch_.load(std::memory_order_relaxed);
          if (++tasks_since_poll >= poll_period) {
            tasks_since_poll = 0;
            std::uint8_t buf[64];
            (void)::recv(poll_fd, buf, sizeof buf, 0);  // expected: EAGAIN
          }
        }
        if (!solo) drain_inbox(w);
      }
      if (executed != 0) progressed = true;
    }
    // done_ is checked once per batch, not per task: the acquire load is on
    // the hot path, and a batch is only tens of microseconds long.
    if (done_.load(std::memory_order_acquire)) return;
    // Become a thief only when the local ready list is empty (idle-initiated:
    // idle workers search out work; busy workers never shed it).
    if (out_of_local_work && config_.workers > 1 && try_steal_for(index)) {
      progressed = true;
    }

    if (progressed) {
      unproductive_rounds = 0;
    } else if (++unproductive_rounds > config_.spin_rounds_before_yield) {
      // Nap briefly: bounded because deliveries are polled, not signalled.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

bool ThreadsRuntime::drain_inbox(Worker& w) {
  // Fast path: no message has been pushed since the last drain.  The flag is
  // published under inbox_mutex, so a true value is always eventually seen;
  // a stale false just defers the drain to the next loop iteration.
  if (!w.inbox_nonempty.load(std::memory_order_acquire)) return false;
  std::vector<InboxMessage> batch;
  {
    std::lock_guard<std::mutex> lock(w.inbox_mutex);
    w.inbox_nonempty.store(false, std::memory_order_release);
    batch.swap(w.inbox);
  }
  for (InboxMessage& m : batch) {
    const auto outcome =
        w.core->deliver_remote(m.cont.target, m.cont.slot, std::move(m.value));
    if (outcome == WorkerCore::Deliver::kUnknown) {
      PHISH_LOG(kError) << "threads runtime: argument for unknown closure "
                        << to_string(m.cont.target);
    }
  }
  return !batch.empty();
}

bool ThreadsRuntime::try_steal_for(int thief_index) {
  Worker& thief = *workers_[thief_index];
  // Choose a victim uniformly at random among the other workers.
  const auto pick = static_cast<int>(
      thief.rng.below(static_cast<std::uint64_t>(config_.workers - 1)));
  const int victim_index = pick >= thief_index ? pick + 1 : pick;
  Worker& victim = *workers_[victim_index];

  const std::uint64_t t0 = monotonic_ns();
  std::vector<Closure> stolen;
  if (use_lockfree_) {
    // No victim lock: CAS-steal straight from its Chase–Lev deque.  The
    // in_transit_ increment covers the whole window from the first possible
    // CAS until install, so the quiescence detector can never observe a
    // stolen task in neither deque (victim.core itself is only reconstructed
    // between jobs, so reading the pointer unlocked is safe).
    in_transit_.fetch_add(1);
    victim.core->steal_concurrent(
        stolen, static_cast<std::uint32_t>(config_.steal_batch));
  } else {
    std::lock_guard<std::mutex> lock(victim.core_mutex);
    stolen = victim.core->try_steal_batch(
        net::NodeId{static_cast<std::uint32_t>(thief_index)},
        static_cast<std::uint32_t>(config_.steal_batch));
    // Mark the tasks in transit *before* releasing the victim's lock so the
    // quiescence detector can never observe them in neither deque.
    if (!stolen.empty()) {
      in_transit_.fetch_add(1);
    }
  }
  const bool covered = use_lockfree_ || !stolen.empty();
  bool ok = false;
  {
    std::lock_guard<std::mutex> lock(thief.core_mutex);
    thief.core->note_steal_request_sent();
    if (stolen.empty()) {
      thief.core->note_steal_failed();
    } else {
      for (Closure& c : stolen) thief.core->install_stolen(std::move(c));
      steal_latency_.observe(monotonic_ns() - t0);
      ok = true;
    }
  }
  if (covered) in_transit_.fetch_sub(1);
  return ok;
}

void ThreadsRuntime::deliver(const ContRef& cont, Value value,
                             int sender_index) {
  (void)sender_index;
  if (cont.home == kResultNode) {
    {
      std::lock_guard<std::mutex> lock(result_mutex_);
      result_ = std::move(value);
    }
    done_.store(true, std::memory_order_release);
    pool_cv_.notify_all();
    return;
  }
  if (!cont.home.valid() ||
      cont.home.value >= static_cast<std::uint32_t>(config_.workers)) {
    PHISH_LOG(kError) << "threads runtime: send to unknown worker "
                      << net::to_string(cont.home);
    return;
  }
  Worker& target = *workers_[cont.home.value];
  std::lock_guard<std::mutex> lock(target.inbox_mutex);
  target.inbox.push_back(InboxMessage{cont, std::move(value)});
  target.inbox_nonempty.store(true, std::memory_order_release);
}

}  // namespace phish::rt
