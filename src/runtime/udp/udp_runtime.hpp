// The real thing: Phish over UDP/IP sockets.
//
// This runtime is the paper's prototype re-implemented: every worker is a
// process-like unit with its own UDP socket (here: its own threads inside
// one process, on loopback — see DESIGN.md §3.3); the Clearinghouse is an
// RPC server on its own socket; all dataflow is split-phase datagrams; steal
// requests are RPCs with retransmission; workers register, heartbeat, fetch
// membership updates, and unregister; the job's result is delivered reliably
// and triggers a shutdown broadcast.
//
// The same WorkerCore and Clearinghouse classes run here as in the simulated
// runtime — only the event loop and the clock differ — so the behaviour the
// benches measure in simulation is the behaviour this code ships on real
// sockets.
#pragma once

#include <atomic>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/clearinghouse.hpp"
#include "core/worker_core.hpp"
#include "net/fault.hpp"
#include "net/udp_net.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/rng.hpp"

namespace phish::rt {

struct UdpJobConfig {
  int workers = 2;
  net::UdpParams net;  // base_port must be free; nodes use base_port + id
  ExecOrder exec_order = ExecOrder::kLifo;
  StealOrder steal_order = StealOrder::kFifo;
  std::uint64_t seed = 0x5eed'0000'0040ULL;
  /// Consecutive failed steals before a worker concludes the parallelism has
  /// shrunk and exits.
  int max_failed_steals = std::numeric_limits<int>::max();
  std::uint64_t steal_retry_ns = 2'000'000;        // 2 ms
  std::uint64_t heartbeat_period_ns = 500'000'000; // 500 ms
  net::RetryPolicy rpc_policy{100'000'000, 6, 1.5};
  ClearinghouseConfig clearinghouse;
  /// Watchdog: give up if the job has not finished in this much real time.
  double timeout_seconds = 120.0;
  /// Chaos testing: wrap every worker's channel in a FaultyChannel applying
  /// this plan's link rules (drop/duplicate/reorder) to outbound datagrams.
  /// Node events are ignored here — real time is not scriptable; use the
  /// simdist runtime for crash/reclaim schedules.
  std::optional<net::FaultPlan> fault_plan;
  /// Optional event tracer (wall-clock domain).  Worker i writes to
  /// tracer->shard(i + 1); the Clearinghouse's RPC traffic goes to shard 0.
  obs::Tracer* tracer = nullptr;
};

struct UdpJobResult {
  Value value;
  double elapsed_seconds = 0.0;
  WorkerStats aggregate;
  std::vector<WorkerStats> per_worker;
  /// Datagrams sent by the workers (from their channel counters).
  std::uint64_t messages_sent = 0;
};

/// One worker process-equivalent: a UDP socket, a WorkerCore, and a thread.
class UdpWorker {
 public:
  UdpWorker(net::UdpNetwork& network, net::TimerService& timers,
            const TaskRegistry& registry, net::NodeId me,
            net::NodeId clearinghouse, const UdpJobConfig& config,
            std::uint64_t seed);
  ~UdpWorker();

  UdpWorker(const UdpWorker&) = delete;
  UdpWorker& operator=(const UdpWorker&) = delete;

  /// Give this worker the job's root task (before start()).
  void set_root(TaskId task, std::vector<Value> args);

  /// Launch the worker thread (register -> work/steal -> unregister).
  void start();

  /// Ask the worker to wind down (as the shutdown broadcast does).
  void request_stop();

  /// Block until the worker thread exits.
  void join();

  net::NodeId id() const { return me_; }
  WorkerStats stats_snapshot() const;
  const net::ChannelStats& channel_stats() const { return channel_.stats(); }
  bool departed_for_shrink() const {
    return departed_for_shrink_.load(std::memory_order_acquire);
  }

 private:
  void thread_main();
  bool do_register();
  void run_loop();
  bool attempt_steal();
  void handle_message(net::Message&& message);
  void send_stats_and_unregister();
  void refresh_membership();
  std::optional<net::NodeId> pick_peer();  // callers hold mutex_

  net::UdpNetwork& network_;
  net::TimerService& timers_;
  const TaskRegistry& registry_;
  net::NodeId me_;
  net::NodeId clearinghouse_;
  const UdpJobConfig& config_;

  net::UdpChannel& channel_;
  /// Present when config.fault_plan is set; rpc_ then speaks through it.
  std::unique_ptr<net::FaultyChannel> faulty_;
  net::RpcNode rpc_;

  mutable std::mutex mutex_;  // guards core_, peers_, rng_, forward_to_
  WorkerCore core_;
  std::vector<net::NodeId> peers_;
  net::NodeId forward_to_;  // successor after a shrink departure
  Xoshiro256 rng_;

  obs::Histogram& steal_latency_ =
      obs::Registry::global().histogram("steal.latency_ns");
  std::condition_variable wake_cv_;  // signalled on new work / shutdown
  std::atomic<bool> stop_{false};
  std::atomic<bool> departed_for_shrink_{false};
  std::optional<std::pair<TaskId, std::vector<Value>>> root_;
  std::thread thread_;
};

/// Harness: stand up a Clearinghouse and N workers on loopback UDP, run one
/// job, tear everything down.
class UdpJob {
 public:
  UdpJob(const TaskRegistry& registry, UdpJobConfig config);

  /// Throws std::runtime_error on watchdog timeout.
  UdpJobResult run(TaskId root, std::vector<Value> args);
  UdpJobResult run(const std::string& root, std::vector<Value> args);

 private:
  const TaskRegistry& registry_;
  UdpJobConfig config_;
};

}  // namespace phish::rt
