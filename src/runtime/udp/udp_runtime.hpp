// The real thing: Phish over UDP/IP sockets.
//
// This runtime is the paper's prototype re-implemented: every worker is a
// process-like unit with its own UDP socket (here: its own threads inside
// one process, on loopback — see DESIGN.md §3.3); the Clearinghouse is an
// RPC server on its own socket; all dataflow is split-phase datagrams; steal
// requests are RPCs with retransmission; workers register, heartbeat, fetch
// membership updates, and unregister; the job's result is delivered reliably
// and triggers a shutdown broadcast.
//
// The same WorkerCore and Clearinghouse classes run here as in the simulated
// runtime — only the event loop and the clock differ — so the behaviour the
// benches measure in simulation is the behaviour this code ships on real
// sockets.
#pragma once

#include <atomic>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/ch_client.hpp"
#include "core/clearinghouse.hpp"
#include "core/recovery.hpp"
#include "core/worker_core.hpp"
#include "net/fault.hpp"
#include "net/udp_net.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "util/rng.hpp"

namespace phish::rt {

struct UdpJobConfig {
  int workers = 2;
  net::UdpParams net;  // base_port must be free; nodes use base_port + id
  ExecOrder exec_order = ExecOrder::kLifo;
  StealOrder steal_order = StealOrder::kFifo;
  std::uint64_t seed = 0x5eed'0000'0040ULL;
  /// Consecutive failed steals before a worker concludes the parallelism has
  /// shrunk and exits.
  int max_failed_steals = std::numeric_limits<int>::max();
  /// Most tasks one steal RPC may carry back (steal-half, capped); 1 is the
  /// paper's steal-one.
  int steal_batch = 1;
  std::uint64_t steal_retry_ns = 2'000'000;        // 2 ms
  std::uint64_t heartbeat_period_ns = 500'000'000; // 500 ms
  net::RetryPolicy rpc_policy{100'000'000, 6, 1.5};
  /// Registration: attempts before the worker gives up on joining, with
  /// exponential backoff (plus seeded jitter) between attempts so a mass
  /// rejoin does not storm the coordinator.
  int register_attempts = 5;
  std::uint64_t register_backoff_ns = 50'000'000;       // 50 ms
  std::uint64_t register_backoff_max_ns = 800'000'000;  // 800 ms
  ClearinghouseConfig clearinghouse;
  /// Watchdog: give up if the job has not finished in this much real time.
  double timeout_seconds = 120.0;
  /// Chaos testing: wrap every worker's channel in a FaultyChannel applying
  /// this plan's link rules (drop/duplicate/reorder) to outbound datagrams.
  /// Node events are ignored here — real time is not scriptable; use the
  /// simdist runtime for crash/reclaim schedules.
  std::optional<net::FaultPlan> fault_plan;
  /// Optional event tracer (wall-clock domain).  Worker i writes to
  /// tracer->shard(i + 1); the Clearinghouse's RPC traffic goes to shard 0.
  obs::Tracer* tracer = nullptr;
  /// Warm-standby Clearinghouse replica on node workers+1 (port
  /// base_port + workers + 1): receives state deltas from the primary and
  /// promotes itself when the primary misses its lease.
  bool enable_backup = false;
  /// Scripted control-plane chaos, in wall-clock ns from job start (0 = off;
  /// unlike link faults these are coarse enough for real time).
  /// Requires enable_backup for the job to survive a primary kill.
  std::uint64_t kill_primary_after_ns = 0;
  /// Kill worker `kill_worker_index` (never use 0 — it carries the root)
  /// after this long, then optionally bring it back as a fresh incarnation.
  std::uint64_t kill_worker_after_ns = 0;
  int kill_worker_index = 1;
  std::uint64_t rejoin_worker_after_ns = 0;
  /// General node-event schedule (e.g. a ChurnPlan's events), in wall-clock
  /// ns from job start; merged with the legacy kill_* fields above.
  /// kCrash kills the worker (index semantics as in NodeEvent; never 0 — it
  /// carries the root), kReclaim evicts it gracefully (drain through the
  /// acked migration-ledger handshake, then depart — the same owner-return
  /// semantics the simdist runtime scripts), kRestart rejoins it as a fresh
  /// incarnation, worker == net::kCoordinatorWorker halts the primary.
  /// kPartition/kHeal are ignored: real sockets have no scriptable cut.
  std::vector<net::NodeEvent> node_events;
};

struct UdpJobResult {
  Value value;
  double elapsed_seconds = 0.0;
  WorkerStats aggregate;
  std::vector<WorkerStats> per_worker;
  /// Datagrams sent by the workers (from their channel counters).
  std::uint64_t messages_sent = 0;
  /// Failover / rejoin counters and the last MTTR, when chaos was scripted.
  RecoveryTracker::Snapshot recovery{};
};

/// One worker process-equivalent: a UDP socket, a WorkerCore, and a thread.
class UdpWorker {
 public:
  /// `clearinghouse` is the replica ring (primary first, then any warm
  /// standby); all coordinator traffic fails over across it.
  UdpWorker(net::UdpNetwork& network, net::TimerService& timers,
            const TaskRegistry& registry, net::NodeId me,
            std::vector<net::NodeId> clearinghouse,
            const UdpJobConfig& config, std::uint64_t seed);
  ~UdpWorker();

  UdpWorker(const UdpWorker&) = delete;
  UdpWorker& operator=(const UdpWorker&) = delete;

  /// Give this worker the job's root task (before start()).
  void set_root(TaskId task, std::vector<Value> args);

  /// Launch the worker thread (register -> work/steal -> unregister).
  void start();

  /// Ask the worker to wind down (as the shutdown broadcast does).
  void request_stop();

  /// Simulate a machine crash: drop all traffic both ways at the RPC layer
  /// and stop the worker loop with no unregister and no stats report — the
  /// Clearinghouse must find out the hard way (missed heartbeats).
  void kill();

  /// Graceful owner reclaim: ask the worker thread to drain its closures
  /// and steal ledger through the acked migration handshake (register the
  /// cargo in the Clearinghouse ledger, hand it to a successor by RPC,
  /// confirm the holder transfer) and then depart.  The object stays behind
  /// as a forwarding stub, exactly like a shrink departure.  Asynchronous:
  /// returns immediately; the handshake runs on the worker thread.
  void evict();

  /// Bring a killed or evicted worker back as a fresh incarnation: joins
  /// the old thread, resets the core (survivors redo the dead life's work),
  /// bumps the incarnation, and re-registers into the running job.  Blocks
  /// until the old life's last in-flight RPCs resolve.  After a graceful
  /// eviction the forwarding stub and its fill log survive into the new
  /// life: the stub obligation outlives the incarnation that created it.
  void rejoin();

  /// MTTR instrumentation: fires on every successful steal (the tracker
  /// ignores steals outside a recovery window).
  void set_recovery_tracker(RecoveryTracker* tracker) { tracker_ = tracker; }

  /// Block until the worker thread exits.
  void join();

  net::NodeId id() const { return me_; }
  std::uint32_t incarnation() const { return incarnation_; }
  WorkerStats stats_snapshot() const;
  const net::ChannelStats& channel_stats() const { return channel_.stats(); }
  bool departed_for_shrink() const {
    return departed_for_shrink_.load(std::memory_order_acquire);
  }

 private:
  void thread_main();
  bool do_register();
  void run_loop();
  bool attempt_steal();
  void handle_message(net::Message&& message);
  Bytes handle_control(const Bytes& args);
  Bytes serve_migrate(const Bytes& args);
  void send_stats_and_unregister();
  void refresh_membership();
  std::optional<net::NodeId> pick_peer();  // callers hold mutex_
  /// Apply a membership delta (or embedded full snapshot); holds mutex_.
  void apply_membership_update_locked(const proto::MembershipUpdate& update);
  /// Run the acked migration handshake on the worker thread and depart.
  /// Returns true if the worker departed (run_loop must exit); false if the
  /// departure was abandoned (cargo reinstalled, keep working).
  bool perform_evict();
  /// Blocking coordinator RPC (worker thread only): true iff the reply's
  /// leading boolean is true.
  bool call_ledger_blocking(const proto::MigrationLedgerMsg& msg);
  /// TTL-guarded append to the stub fill log + forward if a successor is
  /// known.  Callers hold mutex_.
  void log_and_forward_fill_locked(proto::ArgumentMsg arg);
  void flush_fill_log_locked();

  net::UdpNetwork& network_;
  net::TimerService& timers_;
  const TaskRegistry& registry_;
  net::NodeId me_;
  net::NodeId clearinghouse_;  // original primary; home of the root cont
  const UdpJobConfig& config_;

  net::UdpChannel& channel_;
  /// Present when config.fault_plan is set; rpc_ then speaks through it.
  std::unique_ptr<net::FaultyChannel> faulty_;
  net::RpcNode rpc_;
  ClearinghouseClient client_;
  std::uint32_t incarnation_ = 1;
  RecoveryTracker* tracker_ = nullptr;
  std::atomic<bool> killed_{false};

  mutable std::mutex mutex_;  // guards core_, peers_, rng_, forward_to_
  WorkerCore core_;
  std::vector<net::NodeId> peers_;
  /// Highest membership epoch applied; presented on register/update so the
  /// Clearinghouse can reply with deltas.  0 = never registered.
  std::uint64_t known_epoch_ = 0;
  net::NodeId forward_to_;  // successor after a shrink departure / eviction
  Xoshiro256 rng_;
  /// Migration durability state (mirrors SimWorker).  All under mutex_.
  std::uint32_t next_mig_seq_ = 1;
  std::unordered_set<std::uint64_t> seen_migrations_;  // idempotent installs
  std::unordered_set<std::uint32_t> ever_died_;  // death notices ever heard
  /// Encoded ArgumentMsgs the stub buffered/forwarded after the drain; the
  /// whole log replays at the new holder on a kReroute (the previous holder
  /// died and the coordinator redelivered our cargo elsewhere).  Retained
  /// only while outstanding_migrations_ is non-empty: once the coordinator
  /// has sent a kMigrationRetired for every migration we registered, no
  /// reroute can ever replay it, so it is cleared (and later fills are
  /// forwarded without being logged) instead of growing for the stub's
  /// whole lifetime.
  std::vector<Bytes> fill_log_;
  std::size_t flushed_fills_ = 0;
  /// Migration ids we registered in the coordinator's ledger whose entries
  /// have not been retired yet (kMigrationRetired erases them).
  std::unordered_set<std::uint64_t> outstanding_migrations_;

  obs::Histogram& steal_latency_ =
      obs::Registry::global().histogram("steal.latency_ns");
  std::condition_variable wake_cv_;  // signalled on new work / shutdown
  std::atomic<bool> stop_{false};
  std::atomic<bool> departed_for_shrink_{false};
  std::atomic<bool> evict_requested_{false};  // owner reclaim pending
  std::atomic<bool> departing_{false};  // handshake in flight: refuse cargo
  std::atomic<bool> departed_{false};   // gracefully gone; rejoin() allowed
  /// Holder confirm failed mid-departure: exit without unregistering so the
  /// coordinator's failure detector redelivers the ledgered cargo (a
  /// graceful unregister would retire the entry we still nominally hold).
  std::atomic<bool> suppress_unregister_{false};
  std::optional<std::pair<TaskId, std::vector<Value>>> root_;
  std::thread thread_;
};

/// Harness: stand up a Clearinghouse and N workers on loopback UDP, run one
/// job, tear everything down.
class UdpJob {
 public:
  UdpJob(const TaskRegistry& registry, UdpJobConfig config);

  /// Throws std::runtime_error on watchdog timeout.
  UdpJobResult run(TaskId root, std::vector<Value> args);
  UdpJobResult run(const std::string& root, std::vector<Value> args);

 private:
  const TaskRegistry& registry_;
  UdpJobConfig config_;
};

}  // namespace phish::rt
