#include "runtime/udp/udp_runtime.hpp"

#include <algorithm>
#include <chrono>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace phish::rt {
namespace {

const obs::SteadyClock& steady_clock() {
  static const obs::SteadyClock clock;
  return clock;
}

}  // namespace

UdpWorker::UdpWorker(net::UdpNetwork& network, net::TimerService& timers,
                     const TaskRegistry& registry, net::NodeId me,
                     std::vector<net::NodeId> clearinghouse,
                     const UdpJobConfig& config, std::uint64_t seed)
    : network_(network),
      timers_(timers),
      registry_(registry),
      me_(me),
      clearinghouse_(clearinghouse.front()),
      config_(config),
      channel_(network.channel(me)),
      faulty_(config.fault_plan ? std::make_unique<net::FaultyChannel>(
                                      channel_, *config.fault_plan)
                                : nullptr),
      rpc_(faulty_ ? static_cast<net::Channel&>(*faulty_)
                   : static_cast<net::Channel&>(channel_),
           timers),
      client_(rpc_, std::move(clearinghouse)),
      core_(me, registry,
            [this] {
              WorkerCore::Hooks hooks;
              hooks.send_remote = [this](const ContRef& cont, Value value) {
                const Bytes payload =
                    proto::ArgumentMsg{cont, std::move(value)}.encode();
                if (client_.is_replica(cont.home)) {
                  // The job result must survive loss and coordinator
                  // failover: RPC through the replica ring.
                  client_.call(proto::kRpcResult, payload,
                               [](net::RpcResult) {}, config_.rpc_policy);
                } else {
                  rpc_.send_oneway(cont.home, proto::kArgument, payload);
                }
              };
              hooks.emit_io = [this](const std::string& text) {
                client_.send_oneway(proto::kIo,
                                    proto::IoMsg{me_, text}.encode());
              };
              hooks.forward_local_miss = [this](const ContRef& cont,
                                                Value&& value) {
                // Called from core_, so mutex_ is already held.  A locally
                // homed fill whose target left with a previous life's cargo
                // (or with the in-flight departure drain) must follow the
                // forwarding stub, not the dead-letter counter.
                if (!departing_.load(std::memory_order_acquire) &&
                    !forward_to_.valid()) {
                  return false;
                }
                log_and_forward_fill_locked(
                    proto::ArgumentMsg{cont, std::move(value)});
                return true;
              };
              return hooks;
            }(),
            config.exec_order, config.steal_order),
      rng_(mix64(seed ^ me.value)) {
  rpc_.set_jitter_seed(mix64(seed ^ 0x6a77'7e12'0badULL ^ me.value));
  if (config.tracer != nullptr) {
    obs::TraceShard* shard =
        config.tracer->shard(static_cast<std::uint16_t>(me.value));
    core_.set_trace(shard, &steady_clock());
    rpc_.set_trace(shard, &steady_clock());
  }
  rpc_.set_oneway_handler(
      [this](net::Message&& m) { handle_message(std::move(m)); });
  rpc_.serve(proto::kRpcSteal, [this](net::NodeId, const Bytes& args) {
    auto request = proto::StealRequest::decode(args);
    proto::StealReply reply;
    // A departing worker refuses thieves: every closure it still holds is
    // about to be drained into the migration cargo, and a steal racing the
    // drain would fork ownership.
    if (request && !stop_.load(std::memory_order_acquire) &&
        !departing_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mutex_);
      reply.tasks = core_.try_steal_batch(request->thief, request->max_tasks);
    }
    return reply.encode();
  });
  rpc_.serve(proto::kRpcControl, [this](net::NodeId, const Bytes& args) {
    return handle_control(args);
  });
  rpc_.serve(proto::kRpcMigrate, [this](net::NodeId, const Bytes& args) {
    return serve_migrate(args);
  });
}

UdpWorker::~UdpWorker() {
  request_stop();
  join();
}

void UdpWorker::set_root(TaskId task, std::vector<Value> args) {
  root_ = std::make_pair(task, std::move(args));
}

void UdpWorker::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void UdpWorker::request_stop() {
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
}

void UdpWorker::kill() {
  killed_.store(true, std::memory_order_release);
  // A killed machine neither sends nor hears anything; in-flight RPCs die
  // by retry exhaustion, which is what unblocks the worker loop.
  rpc_.set_paused(true);
  request_stop();
}

void UdpWorker::evict() {
  evict_requested_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
}

void UdpWorker::rejoin() {
  join();  // wait out the dead life's last (failing) in-flight RPCs
  const bool was_killed = killed_.load(std::memory_order_acquire);
  const bool was_departed = departed_.load(std::memory_order_acquire);
  if (!was_killed && !was_departed) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++incarnation_;
    // Survivors redo everything the dead life had stolen; the new life
    // starts empty but in a fresh ClosureId band, so late datagrams
    // addressed to the old incarnation cannot land in new closures.
    core_.reset_for_rejoin();
    core_.set_seq_base(static_cast<std::uint64_t>(incarnation_) << 32);
    // The dedupe set described installs into the dead life's core, which is
    // now empty: a Clearinghouse redelivery of the same migration_id must
    // land again (a stale hit would ack without installing and the ledger
    // would record this incarnation as holder — silent permanent loss).
    // Duplicate installs in the new life are merely idempotent re-execution.
    seen_migrations_.clear();
    // peers_ and known_epoch_ survive: they are the base the registration
    // delta is applied against (the Clearinghouse replies with changes since
    // known_epoch_, including our own death and any peers lost meanwhile).
    if (!was_departed) {
      // A crashed life had no stub; a gracefully departed one did, and its
      // obligation (forward_to_ + fill_log_ + outstanding migration ids)
      // outlives the incarnation — fills addressed to the migrated cargo
      // keep arriving here.
      forward_to_ = net::NodeId{};
      fill_log_.clear();
      flushed_fills_ = 0;
      outstanding_migrations_.clear();
    }
  }
  departed_for_shrink_.store(false, std::memory_order_release);
  departed_.store(false, std::memory_order_release);
  departing_.store(false, std::memory_order_release);
  evict_requested_.store(false, std::memory_order_release);
  suppress_unregister_.store(false, std::memory_order_release);
  killed_.store(false, std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  rpc_.set_paused(false);
  start();
}

void UdpWorker::join() {
  if (thread_.joinable()) thread_.join();
}

WorkerStats UdpWorker::stats_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return core_.stats();
}

void UdpWorker::thread_main() {
  if (!do_register()) {
    PHISH_LOG(kWarn) << net::to_string(me_) << ": registration failed; worker "
                     << "exiting without joining the job";
    return;
  }
  client_.send_oneway_all(proto::kHeartbeat, {});
  if (root_) {
    std::lock_guard<std::mutex> lock(mutex_);
    core_.spawn(root_->first, std::move(root_->second),
                clearinghouse_continuation(clearinghouse_), 0);
    root_.reset();
  }
  run_loop();
  // A killed worker vanishes silently; the Clearinghouse must detect it via
  // missed heartbeats (that is the failure mode under test).
  if (!killed_.load(std::memory_order_acquire)) send_stats_and_unregister();
}

bool UdpWorker::do_register() {
  // Registration is synchronous from the worker's point of view: nothing to
  // do until the Clearinghouse knows us.  Bounded retries with exponential
  // backoff (plus seeded jitter) keep a mass rejoin — e.g. a rack coming
  // back after a correlated loss — from storming the coordinator in
  // lockstep.
  const int max_attempts = std::max(config_.register_attempts, 1);
  std::uint64_t backoff_ns = config_.register_backoff_ns;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (stop_.load(std::memory_order_acquire)) return false;
    std::uint64_t since;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      since = known_epoch_;
    }
    std::mutex m;
    std::condition_variable cv;
    bool done = false, ok = false;
    client_.call(
        proto::kRpcRegister,
        proto::RegisterMsg{incarnation_, since}.encode(),
        [&](net::RpcResult result) {
          std::lock_guard<std::mutex> lock(m);
          done = true;
          if (result.ok) {
            if (since > 0) {
              // Rejoin with a prior view: the reply is a delta against it.
              auto update = proto::MembershipUpdate::decode(result.reply);
              if (update) {
                std::lock_guard<std::mutex> self_lock(mutex_);
                apply_membership_update_locked(*update);
                ok = true;
              }
            } else {
              auto membership = proto::Membership::decode(result.reply);
              if (membership) {
                std::lock_guard<std::mutex> self_lock(mutex_);
                known_epoch_ = membership->epoch;
                peers_.clear();
                for (net::NodeId p : membership->participants) {
                  if (p != me_) peers_.push_back(p);
                }
                ok = true;
              }
            }
          }
          cv.notify_all();
        },
        config_.rpc_policy);
    // RpcNode guarantees the completion fires exactly once (reply, retry
    // exhaustion, or destruction), so waiting without a timeout is safe — and
    // necessary: the callback captures these stack variables by reference.
    {
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return done; });
    }
    if (ok) return true;
    if (attempt + 1 >= max_attempts) break;
    std::uint64_t jitter;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jitter = rng_.below(backoff_ns / 2 + 1);
    }
    PHISH_LOG(kWarn) << net::to_string(me_) << ": register attempt "
                     << (attempt + 1) << " failed; retrying in "
                     << (backoff_ns + jitter) / 1'000'000 << " ms";
    std::unique_lock<std::mutex> lock(mutex_);
    wake_cv_.wait_for(lock, std::chrono::nanoseconds(backoff_ns + jitter),
                      [this] {
                        return stop_.load(std::memory_order_acquire);
                      });
    backoff_ns = std::min(backoff_ns * 2, config_.register_backoff_max_ns);
  }
  return false;
}

void UdpWorker::apply_membership_update_locked(
    const proto::MembershipUpdate& update) {
  known_epoch_ = update.epoch;
  if (update.full) {
    peers_.clear();
    for (net::NodeId p : update.participants) {
      if (p != me_) peers_.push_back(p);
    }
    return;
  }
  for (net::NodeId p : update.left) {
    peers_.erase(std::remove(peers_.begin(), peers_.end(), p), peers_.end());
  }
  for (net::NodeId p : update.joined) {
    if (p == me_) continue;
    if (std::find(peers_.begin(), peers_.end(), p) == peers_.end()) {
      peers_.push_back(p);
    }
  }
}

void UdpWorker::run_loop() {
  int consecutive_failed_steals = 0;
  std::uint64_t last_heartbeat = timers_.now_ns();
  while (!stop_.load(std::memory_order_acquire)) {
    if (evict_requested_.exchange(false, std::memory_order_acq_rel)) {
      // Owner reclaim: drain through the acked migration handshake.  On
      // abandonment (coordinator unreachable / nobody took the cargo) the
      // closures are reinstalled and we keep working — strictly better than
      // stranding them in a stopped worker.
      if (perform_evict()) return;
      consecutive_failed_steals = 0;
      continue;
    }
    // Heartbeats are sent from the worker's own loop (not a timer thread):
    // both busy and idle iterations come around far more often than the
    // period, and there is no callback lifetime to manage.
    const std::uint64_t now = timers_.now_ns();
    if (now - last_heartbeat >= config_.heartbeat_period_ns) {
      // Every replica hears heartbeats, so a promoted standby starts with a
      // warm liveness map.
      client_.send_oneway_all(proto::kHeartbeat, {});
      last_heartbeat = now;
    }
    bool did_work = false;
    {
      // Bounded batch per lock hold, as in the threads runtime, so the
      // receiver thread can serve steals and deliver arguments in between.
      constexpr int kBatch = 8;
      std::lock_guard<std::mutex> lock(mutex_);
      for (int i = 0; i < kBatch; ++i) {
        auto task = core_.pop_for_execution();
        if (!task) break;
        core_.execute(*task);
        did_work = true;
        if (stop_.load(std::memory_order_acquire)) return;
      }
    }
    if (did_work) {
      consecutive_failed_steals = 0;
      continue;
    }
    if (attempt_steal()) {
      consecutive_failed_steals = 0;
      continue;
    }
    // Periodically refresh the membership view while failing, so a
    // participant that joined after our registration becomes visible.
    if (consecutive_failed_steals > 0 && consecutive_failed_steals % 8 == 0) {
      refresh_membership();
    }
    if (++consecutive_failed_steals >= config_.max_failed_steals) {
      // Parallelism has shrunk: migrate leftovers through the same acked
      // handshake an owner reclaim uses and exit (the macro scheduler would
      // reassign this machine).  The old fire-and-forget kMigrate here was
      // the unsurvivable window the durability ledger closes.
      if (perform_evict()) {
        departed_for_shrink_.store(true, std::memory_order_release);
        return;
      }
      consecutive_failed_steals = 0;  // cargo reinstalled: keep trying
      continue;
    }
    // Nothing local, nothing stolen: nap until a message or retry time.
    std::unique_lock<std::mutex> lock(mutex_);
    wake_cv_.wait_for(lock, std::chrono::nanoseconds(config_.steal_retry_ns));
  }
}

bool UdpWorker::attempt_steal() {
  std::optional<net::NodeId> victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    core_.note_steal_request_sent();
    victim = pick_peer();
  }
  if (!victim) {
    // Nobody to steal from in our (possibly stale) view: refresh it.
    refresh_membership();
    std::lock_guard<std::mutex> lock(mutex_);
    core_.note_steal_failed();
    return false;
  }
  const std::uint64_t steal_sent_at = monotonic_ns();
  // Split-phase in spirit, but a thief has nothing else to do, so wait for
  // the reply (bounded by the RPC retry budget).
  std::mutex m;
  std::condition_variable cv;
  bool done = false, got = false;
  const std::uint16_t max_tasks = static_cast<std::uint16_t>(
      config_.steal_batch < 1 ? 1 : config_.steal_batch);
  rpc_.call(
      *victim, proto::kRpcSteal, proto::StealRequest{me_, max_tasks}.encode(),
      [&](net::RpcResult result) {
        if (result.ok) {
          auto reply = proto::StealReply::decode(result.reply);
          if (reply && !reply->tasks.empty()) {
            std::lock_guard<std::mutex> self_lock(mutex_);
            for (Closure& c : reply->tasks) {
              core_.install_stolen(std::move(c));
            }
            got = true;
          }
        }
        std::lock_guard<std::mutex> lock(m);
        done = true;
        cv.notify_all();
      },
      config_.rpc_policy);
  // See do_register: the completion is guaranteed, and it captures locals.
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
  if (!got) {
    std::lock_guard<std::mutex> self_lock(mutex_);
    core_.note_steal_failed();
  } else {
    steal_latency_.observe(monotonic_ns() - steal_sent_at);
    if (tracker_ != nullptr) tracker_->note_steal(timers_.now_ns());
  }
  return got;
}

void UdpWorker::handle_message(net::Message&& message) {
  switch (message.type) {
    case proto::kArgument: {
      auto arg = proto::ArgumentMsg::decode(message.payload);
      if (!arg) return;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (departed_.load(std::memory_order_acquire)) {
          // Pure stub (the thread exited after a graceful departure): every
          // fill follows the cargo.  Logged so a kReroute can replay it at
          // a re-delivered holder.
          log_and_forward_fill_locked(std::move(*arg));
          return;
        }
        // A departing worker or a rejoined life with a residual stub may
        // need the value again (to forward); everyone else moves it
        // straight into the closure.
        const bool may_forward =
            departing_.load(std::memory_order_acquire) || forward_to_.valid();
        const auto outcome = may_forward
                                 ? core_.deliver_remote(arg->cont.target,
                                                        arg->cont.slot,
                                                        arg->value)
                                 : core_.deliver_remote(arg->cont.target,
                                                        arg->cont.slot,
                                                        std::move(arg->value));
        if (outcome == WorkerCore::Deliver::kUnknown && may_forward) {
          // Post-drain fill (target left with the cargo) or residual-stub
          // fill (target left with a previous life's cargo): buffer and
          // forward once/because a successor is known.
          log_and_forward_fill_locked(std::move(*arg));
        }
      }
      wake_cv_.notify_all();
      break;
    }
    case proto::kShutdown:
      request_stop();
      break;
    case proto::kMigrate: {
      auto migrate = proto::MigrateMsg::decode(message.payload);
      if (!migrate) return;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (forward_to_.valid()) {
          rpc_.send_oneway(forward_to_, proto::kMigrate, message.payload);
          return;
        }
        for (Closure& c : migrate->closures) {
          core_.install_migrated(std::move(c));
        }
      }
      wake_cv_.notify_all();
      break;
    }
    default:
      PHISH_LOG(kDebug) << net::to_string(me_)
                        << ": unexpected message type " << message.type;
  }
}

Bytes UdpWorker::handle_control(const Bytes& args) {
  // Acked control plane (death notices, new-primary announcements).  The
  // RPC reply is the ack; an empty body is all the caller needs.
  auto msg = proto::ControlMsg::decode(args);
  if (!msg) return {};
  switch (msg->kind) {
    case proto::ControlMsg::kDeadNotice: {
      if (msg->who == me_) break;  // our own previous incarnation
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ever_died_.insert(msg->who.value);
        peers_.erase(std::remove(peers_.begin(), peers_.end(), msg->who),
                     peers_.end());
        // A departed stub's core is empty (its final drain was) and its
        // steal ledger lives at the successor, which inherited the victim
        // role: re-enqueueing redo snapshots here would strand them in a
        // worker whose loop has exited.  perform_evict flips departed_
        // inside this same mutex, so the check is race-free.
        if (!departed_.load(std::memory_order_acquire)) {
          core_.handle_participant_death(msg->who);
        }
      }
      wake_cv_.notify_all();
      break;
    }
    case proto::ControlMsg::kNewPrimary:
      client_.adopt(msg->who, msg->view);
      break;
    case proto::ControlMsg::kReroute: {
      // Our migrated cargo was re-delivered to msg->who after the previous
      // holder died: re-target the forwarding stub and replay every fill
      // logged since the drain — the old holder took the already-forwarded
      // ones to its grave.
      std::lock_guard<std::mutex> lock(mutex_);
      forward_to_ = msg->who;
      flushed_fills_ = 0;
      flush_fill_log_locked();
      break;
    }
    case proto::ControlMsg::kMigrationRetired: {
      // The coordinator retired ledger entry msg->view (its holder finished
      // the cargo or re-snapshotted it with all fills applied).  Once no
      // migration of ours remains outstanding, no kReroute can ever replay
      // the fill log: release it instead of retaining it forever.
      std::lock_guard<std::mutex> lock(mutex_);
      outstanding_migrations_.erase(msg->view);
      if (outstanding_migrations_.empty()) {
        fill_log_.clear();
        flushed_fills_ = 0;
      }
      break;
    }
    default:
      break;
  }
  return {};
}

Bytes UdpWorker::serve_migrate(const Bytes& args) {
  Writer reply;
  auto m = proto::MigrateMsg::decode(args);
  if (!m || stop_.load(std::memory_order_acquire) ||
      departing_.load(std::memory_order_acquire) ||
      departed_.load(std::memory_order_acquire)) {
    // Departing/stopped/stub workers refuse: the sender (origin or
    // coordinator) picks someone else.
    reply.boolean(false);
    return reply.take();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (m->migration_id != 0 &&
        !seen_migrations_.insert(m->migration_id).second) {
      // Duplicate delivery (retransmitted handoff racing a coordinator
      // redelivery): already installed, just re-ack.
      reply.boolean(true);
      return reply.take();
    }
    for (Closure& c : m->closures) {
      if (m->redelivery) {
        core_.install_migration_redo(std::move(c));
      } else {
        core_.install_migrated(std::move(c));
      }
    }
    for (proto::MigrantLedgerEntry& e : m->ledger) {
      // Inherit the victim role: if the thief already died (we saw the
      // notice; the origin's redo never ran), redo now instead of
      // ledgering.
      core_.adopt_migrant_ledger(e.thief, std::move(e.snapshot),
                                 ever_died_.count(e.thief.value) != 0);
    }
    if (m->migration_id != 0) {
      core_.trace_instant(obs::EventType::kMigrateRereg, ClosureId{},
                          static_cast<std::uint32_t>(m->closures.size() +
                                                     m->ledger.size()));
    }
  }
  wake_cv_.notify_all();
  reply.boolean(true);
  return reply.take();
}

bool UdpWorker::call_ledger_blocking(const proto::MigrationLedgerMsg& msg) {
  std::mutex m;
  std::condition_variable cv;
  bool done = false, ok = false;
  client_.call(
      proto::kRpcMigrateLedger, msg.encode(),
      [&](net::RpcResult result) {
        if (result.ok) {
          Reader r(result.reply);
          ok = r.boolean() && r.ok();
        }
        std::lock_guard<std::mutex> lock(m);
        done = true;
        cv.notify_all();
      },
      config_.rpc_policy);
  // See do_register: the completion is guaranteed, and it captures locals.
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
  return ok;
}

bool UdpWorker::perform_evict() {
  departing_.store(true, std::memory_order_release);
  // Loop until a drain comes up empty: fills arriving mid-handshake are
  // buffered in the fill log (see handle_message), not the core, and steals
  // and inbound migrations are refused while departing_ — the only refill
  // source is a kDeadNotice re-enqueueing redo snapshots, so rounds are
  // bounded by peer deaths during the handshake.  The cap below is a
  // churn-storm backstop, not the expected exit.
  constexpr int kMaxRounds = 8;
  for (int round = 0;; ++round) {
    std::vector<Closure> cargo;
    std::vector<proto::MigrantLedgerEntry> ledger;
    std::uint64_t mid = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Drain everything a crash of this worker (or of the successor)
      // would lose: remaining closures AND the steal ledger — the
      // successor inherits the victim role for our thieves' work.
      cargo = core_.drain_for_migration();
      ledger = core_.export_steal_ledger();
      if (cargo.empty() && ledger.empty()) {
        // The empty-drain check and the departed_ flip are one critical
        // section: a kDeadNotice (handle_control also holds mutex_) lands
        // either before this drain — and is caught by it — or after
        // departed_ is set, where its core redo is skipped because the
        // migrant ledger exported to the successor owns those redos now.
        // Flipping departed_ outside the mutex would let a notice slip in
        // between and strand redo snapshots in a stopped worker.
        departed_.store(true, std::memory_order_release);
        return true;
      }
      if (round >= kMaxRounds) {
        // The drain keeps refilling (a death-notice storm mid-handshake).
        // Give up on a graceful exit: depart as if crashed — reinstall so
        // nothing is half-drained, skip the unregister so the failure
        // detector fires, and let the ledgered cargo plus our victims'
        // steal ledgers drive the standard redo path.
        for (Closure& c : cargo) core_.install_migrated(std::move(c));
        for (proto::MigrantLedgerEntry& e : ledger) {
          core_.adopt_migrant_ledger(e.thief, std::move(e.snapshot),
                                     ever_died_.count(e.thief.value) != 0);
        }
        PHISH_LOG(kWarn) << net::to_string(me_)
                         << ": migration drain refilled " << round
                         << " times; departing noisily";
        suppress_unregister_.store(true, std::memory_order_release);
        departed_.store(true, std::memory_order_release);
        return true;
      }
      mid = (static_cast<std::uint64_t>(me_.value) << 32) | next_mig_seq_++;
    }
    // Step 1: register the cargo snapshot with the Clearinghouse BEFORE any
    // handoff.  From here on, a crash of ours or the successor's is
    // recoverable: the coordinator redelivers from the ledger.
    proto::MigrationLedgerMsg reg;
    reg.migration_id = mid;
    reg.from = me_;
    reg.holder = me_;
    reg.closures = cargo;
    reg.ledger = ledger;
    if (!call_ledger_blocking(reg)) {
      // Without a ledger entry a handoff would reopen the unsurvivable
      // window: reinstall and keep working instead.
      PHISH_LOG(kWarn) << net::to_string(me_)
                       << ": migration ledger unreachable; abandoning depart";
      std::lock_guard<std::mutex> lock(mutex_);
      for (Closure& c : cargo) core_.install_migrated(std::move(c));
      for (proto::MigrantLedgerEntry& e : ledger) {
        core_.adopt_migrant_ledger(e.thief, std::move(e.snapshot),
                                   ever_died_.count(e.thief.value) != 0);
      }
      departing_.store(false, std::memory_order_release);
      return false;
    }
    // Step 2: acked handoff.  The cargo is only considered placed once a
    // successor's reply says it installed it; refusals and RPC failures
    // rotate to the next candidate.
    std::vector<net::NodeId> candidates;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // The ledger entry exists from here until the coordinator retires it
      // (even if this depart is abandoned below): retain the fill log for a
      // possible kReroute replay until the retirement notice arrives.
      outstanding_migrations_.insert(mid);
      candidates = peers_;
      for (std::size_t i = candidates.size(); i > 1; --i) {
        std::swap(candidates[i - 1], candidates[rng_.below(i)]);
      }
    }
    proto::MigrateMsg msg;
    msg.from = me_;
    msg.closures = cargo;
    msg.migration_id = mid;
    msg.redelivery = false;
    msg.ledger = ledger;
    const Bytes payload = msg.encode();
    net::NodeId successor{};
    for (net::NodeId cand : candidates) {
      std::mutex m;
      std::condition_variable cv;
      bool done = false, accepted = false;
      rpc_.call(
          cand, proto::kRpcMigrate, payload,
          [&](net::RpcResult result) {
            if (result.ok) {
              Reader r(result.reply);
              accepted = r.boolean() && r.ok();
            }
            std::lock_guard<std::mutex> lock(m);
            done = true;
            cv.notify_all();
          },
          config_.rpc_policy);
      {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return done; });
      }
      if (accepted) {
        successor = cand;
        break;
      }
    }
    if (!successor.valid()) {
      // Nobody can take the cargo right now.  Abandon: reinstall and keep
      // working; the registered entry (holder still us) is superseded by
      // the next departure's drain or retired by a graceful unregister —
      // and if we crash first, the coordinator redelivers it.
      PHISH_LOG(kWarn) << net::to_string(me_)
                       << ": no successor accepted the cargo; abandoning "
                       << "depart";
      std::lock_guard<std::mutex> lock(mutex_);
      for (Closure& c : cargo) core_.install_migrated(std::move(c));
      for (proto::MigrantLedgerEntry& e : ledger) {
        core_.adopt_migrant_ledger(e.thief, std::move(e.snapshot),
                                   ever_died_.count(e.thief.value) != 0);
      }
      departing_.store(false, std::memory_order_release);
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      forward_to_ = successor;
      flush_fill_log_locked();  // post-drain fills follow the cargo
    }
    // Step 3: atomically transfer redo ownership — after this ack the
    // coordinator watches the successor, not us, for this cargo.
    proto::MigrationLedgerMsg upd;
    upd.migration_id = mid;
    upd.from = me_;
    upd.holder = successor;
    if (!call_ledger_blocking(upd)) {
      // The successor holds the cargo but the coordinator still lists us as
      // holder: depart WITHOUT unregistering (a graceful unregister would
      // retire the entry) so the failure detector redelivers; duplicate
      // execution is idempotent.
      PHISH_LOG(kWarn) << net::to_string(me_)
                       << ": holder confirm failed; departing noisily";
      suppress_unregister_.store(true, std::memory_order_release);
      departed_.store(true, std::memory_order_release);
      return true;
    }
  }
}

void UdpWorker::log_and_forward_fill_locked(proto::ArgumentMsg arg) {
  if (arg.ttl == 0) return;  // forwarding-cycle guard: drop, let redo cover
  --arg.ttl;
  if (forward_to_.valid() && outstanding_migrations_.empty()) {
    // Every ledger entry we originated is retired, so no kReroute can ever
    // ask for a replay: forward without retaining.  (With no successor yet
    // the fill must still be buffered below, retirement or not.)
    rpc_.send_oneway(forward_to_, proto::kArgument, arg.encode());
    return;
  }
  fill_log_.push_back(arg.encode());
  flush_fill_log_locked();
}

void UdpWorker::flush_fill_log_locked() {
  if (!forward_to_.valid()) return;
  for (std::size_t i = flushed_fills_; i < fill_log_.size(); ++i) {
    rpc_.send_oneway(forward_to_, proto::kArgument, fill_log_[i]);
  }
  flushed_fills_ = fill_log_.size();
}

void UdpWorker::send_stats_and_unregister() {
  proto::StatsMsg stats;
  stats.who = me_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.stats = core_.stats();
  }
  stats.end_ns = timers_.now_ns();
  client_.send_oneway(proto::kStatsReport, stats.encode());
  if (suppress_unregister_.load(std::memory_order_acquire)) return;
  client_.call(proto::kRpcUnregister, {}, [](net::RpcResult) {},
               config_.rpc_policy);
}

void UdpWorker::refresh_membership() {
  // Fire-and-forget update; the completion runs on a transport thread and
  // must not capture stack locals.  Presenting known_epoch_ gets a delta
  // instead of a full snapshot once we have any view at all.
  std::uint64_t since;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    since = known_epoch_;
  }
  client_.call(
      proto::kRpcUpdate, proto::UpdateRequest{since}.encode(),
      [this, since](net::RpcResult result) {
        if (!result.ok || stop_.load(std::memory_order_acquire)) return;
        if (since > 0) {
          auto update = proto::MembershipUpdate::decode(result.reply);
          if (!update) return;
          std::lock_guard<std::mutex> lock(mutex_);
          apply_membership_update_locked(*update);
          return;
        }
        auto membership = proto::Membership::decode(result.reply);
        if (!membership) return;
        std::lock_guard<std::mutex> lock(mutex_);
        known_epoch_ = membership->epoch;
        peers_.clear();
        for (net::NodeId p : membership->participants) {
          if (p != me_) peers_.push_back(p);
        }
      },
      config_.rpc_policy);
}

std::optional<net::NodeId> UdpWorker::pick_peer() {
  if (peers_.empty()) return std::nullopt;
  return peers_[rng_.below(peers_.size())];
}

// ---- UdpJob. ----

UdpJob::UdpJob(const TaskRegistry& registry, UdpJobConfig config)
    : registry_(registry), config_(config) {
  if (config_.workers < 1) {
    throw std::invalid_argument("udp runtime: need at least one worker");
  }
}

UdpJobResult UdpJob::run(TaskId root, std::vector<Value> args) {
  net::UdpNetwork network(config_.net);
  net::ThreadTimerService timers;

  const net::NodeId ch_node{0};
  net::RpcNode ch_rpc(network.channel(ch_node), timers);
  ch_rpc.set_jitter_seed(mix64(config_.seed ^ 0xc0de'0000ULL));
  if (config_.tracer != nullptr) {
    ch_rpc.set_trace(
        config_.tracer->shard(static_cast<std::uint16_t>(ch_node.value)),
        &steady_clock());
  }
  Clearinghouse clearinghouse(ch_rpc, timers, config_.clearinghouse);
  RecoveryTracker recovery;
  clearinghouse.set_recovery_tracker(&recovery);

  // The replica ring every worker fails over across: primary first.
  std::vector<net::NodeId> replicas{ch_node};
  std::unique_ptr<net::RpcNode> backup_rpc;
  std::unique_ptr<Clearinghouse> backup;
  if (config_.enable_backup) {
    const net::NodeId backup_node{
        static_cast<std::uint32_t>(config_.workers + 1)};
    replicas.push_back(backup_node);
    backup_rpc =
        std::make_unique<net::RpcNode>(network.channel(backup_node), timers);
    backup_rpc->set_jitter_seed(mix64(config_.seed ^ 0xc0de'0001ULL));
    backup = std::make_unique<Clearinghouse>(*backup_rpc, timers,
                                             config_.clearinghouse);
    backup->set_recovery_tracker(&recovery);
  }

  std::mutex result_mutex;
  std::condition_variable result_cv;
  std::optional<Value> result_value;
  const auto record_result = [&](const Value& v) {
    std::lock_guard<std::mutex> lock(result_mutex);
    if (!result_value) result_value = v;
    result_cv.notify_all();
  };
  clearinghouse.set_on_result(record_result);
  clearinghouse.start();
  if (backup != nullptr) {
    backup->set_on_result(record_result);
    backup->start_standby(ch_node);
    clearinghouse.set_standby(backup_rpc->id());
  }

  std::vector<std::unique_ptr<UdpWorker>> workers;
  Xoshiro256 seeder(config_.seed);
  for (int i = 0; i < config_.workers; ++i) {
    workers.push_back(std::make_unique<UdpWorker>(
        network, timers, registry_,
        net::NodeId{static_cast<std::uint32_t>(i + 1)}, replicas, config_,
        seeder.next()));
    workers.back()->set_recovery_tracker(&recovery);
  }
  workers[0]->set_root(root, std::move(args));

  Stopwatch watch;
  for (auto& w : workers) w->start();

  // Scripted control-plane chaos: coarse wall-clock kills, driven from a
  // dedicated thread so the main thread stays parked on the result.  The
  // legacy kill_* knobs and the general node_events schedule (e.g. a
  // ChurnPlan's output) are merged into one sorted timeline.
  std::thread chaos;
  if (config_.kill_primary_after_ns > 0 || config_.kill_worker_after_ns > 0 ||
      !config_.node_events.empty()) {
    chaos = std::thread([&] {
      struct Event {
        std::uint64_t at_ns;
        std::function<void()> fire;
      };
      std::vector<Event> events;
      if (config_.kill_primary_after_ns > 0) {
        events.push_back({config_.kill_primary_after_ns,
                          [&] { clearinghouse.halt(); }});
      }
      const int k = config_.kill_worker_index;
      if (config_.kill_worker_after_ns > 0 && k > 0 &&
          k < static_cast<int>(workers.size())) {
        events.push_back(
            {config_.kill_worker_after_ns, [&, k] { workers[k]->kill(); }});
        if (config_.rejoin_worker_after_ns > config_.kill_worker_after_ns) {
          events.push_back({config_.rejoin_worker_after_ns,
                            [&, k] { workers[k]->rejoin(); }});
        }
      }
      for (const net::NodeEvent& e : config_.node_events) {
        if (e.worker == net::kCoordinatorWorker) {
          if (e.kind == net::NodeFaultKind::kCrash) {
            events.push_back({e.at_ns, [&] { clearinghouse.halt(); }});
          }
          continue;
        }
        // Worker 0 carries the root and is immune, as everywhere else.
        if (e.worker <= 0 || e.worker >= static_cast<int>(workers.size())) {
          continue;
        }
        const int w = e.worker;
        switch (e.kind) {
          case net::NodeFaultKind::kCrash:
            events.push_back({e.at_ns, [&, w] { workers[w]->kill(); }});
            break;
          case net::NodeFaultKind::kReclaim:
            // Owner return: graceful departure through the acked
            // migration-ledger handshake (churn parity with simdist).
            events.push_back({e.at_ns, [&, w] { workers[w]->evict(); }});
            break;
          case net::NodeFaultKind::kRestart:
            events.push_back({e.at_ns, [&, w] { workers[w]->rejoin(); }});
            break;
          case net::NodeFaultKind::kPartition:
          case net::NodeFaultKind::kHeal:
            break;  // no scriptable cut on real sockets
        }
      }
      std::stable_sort(
          events.begin(), events.end(),
          [](const Event& a, const Event& b) { return a.at_ns < b.at_ns; });
      const auto t0 = std::chrono::steady_clock::now();
      for (Event& e : events) {
        std::this_thread::sleep_until(t0 + std::chrono::nanoseconds(e.at_ns));
        {
          std::lock_guard<std::mutex> lock(result_mutex);
          if (result_value.has_value()) return;  // job already over
        }
        e.fire();
      }
    });
  }

  bool finished;
  {
    std::unique_lock<std::mutex> lock(result_mutex);
    finished = result_cv.wait_for(
        lock, std::chrono::duration<double>(config_.timeout_seconds),
        [&] { return result_value.has_value(); });
  }
  const double elapsed = watch.elapsed_seconds();

  if (chaos.joinable()) chaos.join();
  // Wind everything down (the shutdown broadcast already went out if the job
  // finished; make it idempotent either way).
  for (auto& w : workers) w->request_stop();
  for (auto& w : workers) w->join();
  clearinghouse.stop();
  if (backup != nullptr) backup->stop();

  if (!finished) {
    throw std::runtime_error("udp runtime: job timed out after " +
                             std::to_string(config_.timeout_seconds) + " s");
  }

  UdpJobResult result;
  {
    std::lock_guard<std::mutex> lock(result_mutex);
    result.value = std::move(*result_value);
  }
  result.elapsed_seconds = elapsed;
  StatsSnapshot snap = collect_stats(
      workers, [](const auto& w) { return w->stats_snapshot(); });
  result.aggregate = std::move(snap.aggregate);
  result.per_worker = std::move(snap.per_worker);
  for (auto& w : workers) {
    result.messages_sent += w->channel_stats().messages_sent;
  }
  result.recovery = recovery.snapshot();
  return result;
}

UdpJobResult UdpJob::run(const std::string& root, std::vector<Value> args) {
  return run(registry_.id_of(root), std::move(args));
}

}  // namespace phish::rt
