#include "runtime/udp/udp_runtime.hpp"

#include <algorithm>
#include <chrono>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace phish::rt {
namespace {

const obs::SteadyClock& steady_clock() {
  static const obs::SteadyClock clock;
  return clock;
}

}  // namespace

UdpWorker::UdpWorker(net::UdpNetwork& network, net::TimerService& timers,
                     const TaskRegistry& registry, net::NodeId me,
                     net::NodeId clearinghouse, const UdpJobConfig& config,
                     std::uint64_t seed)
    : network_(network),
      timers_(timers),
      registry_(registry),
      me_(me),
      clearinghouse_(clearinghouse),
      config_(config),
      channel_(network.channel(me)),
      faulty_(config.fault_plan ? std::make_unique<net::FaultyChannel>(
                                      channel_, *config.fault_plan)
                                : nullptr),
      rpc_(faulty_ ? static_cast<net::Channel&>(*faulty_)
                   : static_cast<net::Channel&>(channel_),
           timers),
      core_(me, registry,
            [this] {
              WorkerCore::Hooks hooks;
              hooks.send_remote = [this](const ContRef& cont, Value value) {
                const Bytes payload =
                    proto::ArgumentMsg{cont, std::move(value)}.encode();
                if (cont.home == clearinghouse_) {
                  rpc_.call(cont.home, proto::kRpcResult, payload,
                            [](net::RpcResult) {}, config_.rpc_policy);
                } else {
                  rpc_.send_oneway(cont.home, proto::kArgument, payload);
                }
              };
              hooks.emit_io = [this](const std::string& text) {
                rpc_.send_oneway(clearinghouse_, proto::kIo,
                                 proto::IoMsg{me_, text}.encode());
              };
              return hooks;
            }(),
            config.exec_order, config.steal_order),
      rng_(mix64(seed ^ me.value)) {
  if (config.tracer != nullptr) {
    obs::TraceShard* shard =
        config.tracer->shard(static_cast<std::uint16_t>(me.value));
    core_.set_trace(shard, &steady_clock());
    rpc_.set_trace(shard, &steady_clock());
  }
  rpc_.set_oneway_handler(
      [this](net::Message&& m) { handle_message(std::move(m)); });
  rpc_.serve(proto::kRpcSteal, [this](net::NodeId, const Bytes& args) {
    auto request = proto::StealRequest::decode(args);
    proto::StealReply reply;
    if (request && !stop_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mutex_);
      reply.task = core_.try_steal(request->thief);
    }
    return reply.encode();
  });
}

UdpWorker::~UdpWorker() {
  request_stop();
  join();
}

void UdpWorker::set_root(TaskId task, std::vector<Value> args) {
  root_ = std::make_pair(task, std::move(args));
}

void UdpWorker::start() {
  thread_ = std::thread([this] { thread_main(); });
}

void UdpWorker::request_stop() {
  stop_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
}

void UdpWorker::join() {
  if (thread_.joinable()) thread_.join();
}

WorkerStats UdpWorker::stats_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return core_.stats();
}

void UdpWorker::thread_main() {
  if (!do_register()) {
    PHISH_LOG(kWarn) << net::to_string(me_) << ": registration failed; worker "
                     << "exiting without joining the job";
    return;
  }
  rpc_.send_oneway(clearinghouse_, proto::kHeartbeat, {});
  if (root_) {
    std::lock_guard<std::mutex> lock(mutex_);
    core_.spawn(root_->first, std::move(root_->second),
                clearinghouse_continuation(clearinghouse_), 0);
    root_.reset();
  }
  run_loop();
  send_stats_and_unregister();
}

bool UdpWorker::do_register() {
  // Registration is synchronous from the worker's point of view: nothing to
  // do until the Clearinghouse knows us.
  std::mutex m;
  std::condition_variable cv;
  bool done = false, ok = false;
  rpc_.call(
      clearinghouse_, proto::kRpcRegister, {},
      [&](net::RpcResult result) {
        std::lock_guard<std::mutex> lock(m);
        done = true;
        if (result.ok) {
          auto membership = proto::Membership::decode(result.reply);
          if (membership) {
            std::lock_guard<std::mutex> self_lock(mutex_);
            peers_.clear();
            for (net::NodeId p : membership->participants) {
              if (p != me_) peers_.push_back(p);
            }
            ok = true;
          }
        }
        cv.notify_all();
      },
      config_.rpc_policy);
  // RpcNode guarantees the completion fires exactly once (reply, retry
  // exhaustion, or destruction), so waiting without a timeout is safe — and
  // necessary: the callback captures these stack variables by reference.
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
  return ok;
}

void UdpWorker::run_loop() {
  int consecutive_failed_steals = 0;
  std::uint64_t last_heartbeat = timers_.now_ns();
  while (!stop_.load(std::memory_order_acquire)) {
    // Heartbeats are sent from the worker's own loop (not a timer thread):
    // both busy and idle iterations come around far more often than the
    // period, and there is no callback lifetime to manage.
    const std::uint64_t now = timers_.now_ns();
    if (now - last_heartbeat >= config_.heartbeat_period_ns) {
      rpc_.send_oneway(clearinghouse_, proto::kHeartbeat, {});
      last_heartbeat = now;
    }
    bool did_work = false;
    {
      // Bounded batch per lock hold, as in the threads runtime, so the
      // receiver thread can serve steals and deliver arguments in between.
      constexpr int kBatch = 8;
      std::lock_guard<std::mutex> lock(mutex_);
      for (int i = 0; i < kBatch; ++i) {
        auto task = core_.pop_for_execution();
        if (!task) break;
        core_.execute(*task);
        did_work = true;
        if (stop_.load(std::memory_order_acquire)) return;
      }
    }
    if (did_work) {
      consecutive_failed_steals = 0;
      continue;
    }
    if (attempt_steal()) {
      consecutive_failed_steals = 0;
      continue;
    }
    // Periodically refresh the membership view while failing, so a
    // participant that joined after our registration becomes visible.
    if (consecutive_failed_steals > 0 && consecutive_failed_steals % 8 == 0) {
      refresh_membership();
    }
    if (++consecutive_failed_steals >= config_.max_failed_steals) {
      // Parallelism has shrunk: migrate leftovers and exit (the macro
      // scheduler would reassign this machine).
      departed_for_shrink_.store(true, std::memory_order_release);
      std::vector<Closure> cargo;
      std::optional<net::NodeId> successor;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        cargo = core_.drain_for_migration();
        successor = pick_peer();
      }
      if (successor) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          forward_to_ = *successor;  // stub: forward in-flight arguments
        }
        if (!cargo.empty()) {
          proto::MigrateMsg msg;
          msg.from = me_;
          msg.closures = std::move(cargo);
          rpc_.send_oneway(*successor, proto::kMigrate, msg.encode());
        }
      }
      return;
    }
    // Nothing local, nothing stolen: nap until a message or retry time.
    std::unique_lock<std::mutex> lock(mutex_);
    wake_cv_.wait_for(lock, std::chrono::nanoseconds(config_.steal_retry_ns));
  }
}

bool UdpWorker::attempt_steal() {
  std::optional<net::NodeId> victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    core_.note_steal_request_sent();
    victim = pick_peer();
  }
  if (!victim) {
    // Nobody to steal from in our (possibly stale) view: refresh it.
    refresh_membership();
    std::lock_guard<std::mutex> lock(mutex_);
    core_.note_steal_failed();
    return false;
  }
  const std::uint64_t steal_sent_at = monotonic_ns();
  // Split-phase in spirit, but a thief has nothing else to do, so wait for
  // the reply (bounded by the RPC retry budget).
  std::mutex m;
  std::condition_variable cv;
  bool done = false, got = false;
  rpc_.call(
      *victim, proto::kRpcSteal, proto::StealRequest{me_}.encode(),
      [&](net::RpcResult result) {
        if (result.ok) {
          auto reply = proto::StealReply::decode(result.reply);
          if (reply && reply->task) {
            std::lock_guard<std::mutex> self_lock(mutex_);
            core_.install_stolen(std::move(*reply->task));
            got = true;
          }
        }
        std::lock_guard<std::mutex> lock(m);
        done = true;
        cv.notify_all();
      },
      config_.rpc_policy);
  // See do_register: the completion is guaranteed, and it captures locals.
  std::unique_lock<std::mutex> lock(m);
  cv.wait(lock, [&] { return done; });
  if (!got) {
    std::lock_guard<std::mutex> self_lock(mutex_);
    core_.note_steal_failed();
  } else {
    steal_latency_.observe(monotonic_ns() - steal_sent_at);
  }
  return got;
}

void UdpWorker::handle_message(net::Message&& message) {
  switch (message.type) {
    case proto::kArgument: {
      auto arg = proto::ArgumentMsg::decode(message.payload);
      if (!arg) return;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (forward_to_.valid()) {
          // We departed and our closures moved: pass the argument along
          // (the UdpWorker object outlives its thread, so the stub works
          // until the whole job tears down).
          rpc_.send_oneway(forward_to_, proto::kArgument, message.payload);
          return;
        }
        core_.deliver_remote(arg->cont.target, arg->cont.slot,
                             std::move(arg->value));
      }
      wake_cv_.notify_all();
      break;
    }
    case proto::kShutdown:
      request_stop();
      break;
    case proto::kDead: {
      auto dead = proto::DeadMsg::decode(message.payload);
      if (!dead) return;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        peers_.erase(std::remove(peers_.begin(), peers_.end(), dead->who),
                     peers_.end());
        core_.handle_participant_death(dead->who);
      }
      wake_cv_.notify_all();
      break;
    }
    case proto::kMigrate: {
      auto migrate = proto::MigrateMsg::decode(message.payload);
      if (!migrate) return;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (forward_to_.valid()) {
          rpc_.send_oneway(forward_to_, proto::kMigrate, message.payload);
          return;
        }
        for (Closure& c : migrate->closures) {
          core_.install_migrated(std::move(c));
        }
      }
      wake_cv_.notify_all();
      break;
    }
    default:
      PHISH_LOG(kDebug) << net::to_string(me_)
                        << ": unexpected message type " << message.type;
  }
}

void UdpWorker::send_stats_and_unregister() {
  proto::StatsMsg stats;
  stats.who = me_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.stats = core_.stats();
  }
  stats.end_ns = timers_.now_ns();
  rpc_.send_oneway(clearinghouse_, proto::kStatsReport, stats.encode());
  rpc_.call(clearinghouse_, proto::kRpcUnregister, {}, [](net::RpcResult) {},
            config_.rpc_policy);
}

void UdpWorker::refresh_membership() {
  // Fire-and-forget update; the completion runs on a transport thread and
  // must not capture stack locals.
  rpc_.call(
      clearinghouse_, proto::kRpcUpdate, {},
      [this](net::RpcResult result) {
        if (!result.ok || stop_.load(std::memory_order_acquire)) return;
        auto membership = proto::Membership::decode(result.reply);
        if (!membership) return;
        std::lock_guard<std::mutex> lock(mutex_);
        peers_.clear();
        for (net::NodeId p : membership->participants) {
          if (p != me_) peers_.push_back(p);
        }
      },
      config_.rpc_policy);
}

std::optional<net::NodeId> UdpWorker::pick_peer() {
  if (peers_.empty()) return std::nullopt;
  return peers_[rng_.below(peers_.size())];
}

// ---- UdpJob. ----

UdpJob::UdpJob(const TaskRegistry& registry, UdpJobConfig config)
    : registry_(registry), config_(config) {
  if (config_.workers < 1) {
    throw std::invalid_argument("udp runtime: need at least one worker");
  }
}

UdpJobResult UdpJob::run(TaskId root, std::vector<Value> args) {
  net::UdpNetwork network(config_.net);
  net::ThreadTimerService timers;

  const net::NodeId ch_node{0};
  net::RpcNode ch_rpc(network.channel(ch_node), timers);
  if (config_.tracer != nullptr) {
    ch_rpc.set_trace(
        config_.tracer->shard(static_cast<std::uint16_t>(ch_node.value)),
        &steady_clock());
  }
  Clearinghouse clearinghouse(ch_rpc, timers, config_.clearinghouse);

  std::mutex result_mutex;
  std::condition_variable result_cv;
  std::optional<Value> result_value;
  clearinghouse.set_on_result([&](const Value& v) {
    std::lock_guard<std::mutex> lock(result_mutex);
    result_value = v;
    result_cv.notify_all();
  });
  clearinghouse.start();

  std::vector<std::unique_ptr<UdpWorker>> workers;
  Xoshiro256 seeder(config_.seed);
  for (int i = 0; i < config_.workers; ++i) {
    workers.push_back(std::make_unique<UdpWorker>(
        network, timers, registry_,
        net::NodeId{static_cast<std::uint32_t>(i + 1)}, ch_node, config_,
        seeder.next()));
  }
  workers[0]->set_root(root, std::move(args));

  Stopwatch watch;
  for (auto& w : workers) w->start();

  bool finished;
  {
    std::unique_lock<std::mutex> lock(result_mutex);
    finished = result_cv.wait_for(
        lock, std::chrono::duration<double>(config_.timeout_seconds),
        [&] { return result_value.has_value(); });
  }
  const double elapsed = watch.elapsed_seconds();

  // Wind everything down (the shutdown broadcast already went out if the job
  // finished; make it idempotent either way).
  for (auto& w : workers) w->request_stop();
  for (auto& w : workers) w->join();
  clearinghouse.stop();

  if (!finished) {
    throw std::runtime_error("udp runtime: job timed out after " +
                             std::to_string(config_.timeout_seconds) + " s");
  }

  UdpJobResult result;
  {
    std::lock_guard<std::mutex> lock(result_mutex);
    result.value = std::move(*result_value);
  }
  result.elapsed_seconds = elapsed;
  StatsSnapshot snap = collect_stats(
      workers, [](const auto& w) { return w->stats_snapshot(); });
  result.aggregate = std::move(snap.aggregate);
  result.per_worker = std::move(snap.per_worker);
  for (auto& w : workers) {
    result.messages_sent += w->channel_stats().messages_sent;
  }
  return result;
}

UdpJobResult UdpJob::run(const std::string& root, std::vector<Value> args) {
  return run(registry_.id_of(root), std::move(args));
}

}  // namespace phish::rt
