// MacroCluster: a simulated Phish network under macro-level scheduling.
//
// Reproduces the deployment of the paper's Figure 2: one PhishJobQ, a
// PhishJobManager on every workstation (each with its own owner trace and
// idleness policy), and jobs that are submitted over time.  Submitting a job
// stands up its Clearinghouse and its first worker — mirroring "this simple
// command starts up the Clearinghouse and the first worker on the local
// workstation ... and automatically submits the job to the PhishJobQ.  Thus,
// as other workstations become idle, they automatically begin working on
// the job."
//
// The space-sharing experiments (ablation A4) and the adaptive-parallelism
// demonstrations run on this harness.  The multi-tenant job service
// (PhishJobD, DESIGN.md §11) drives it too: jobs may carry a tenant and a
// priority class, may be submitted dynamically while the simulation runs,
// and under JobAssignPolicy::kFairShare a high-priority submission preempts
// a workstation from low-priority work over kRpcPreempt.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/clearinghouse.hpp"
#include "core/jobq.hpp"
#include "runtime/simdist/job_manager.hpp"

namespace phish::rt {

struct MacroConfig {
  net::SimNetParams net;
  SimWorkerParams worker;
  JobManagerParams manager;
  ClearinghouseConfig clearinghouse;
  JobAssignPolicy assign_policy = JobAssignPolicy::kRoundRobin;
  /// Tenant weights/quotas applied to the JobQ (kFairShare).
  std::map<std::string, TenantConfig> tenants;
  /// Workstations evicted per triggering high-priority submit.
  std::uint32_t preempt_batch = 1;
  std::uint64_t seed = 0x5eed'0000'0030ULL;
  sim::SimTime max_sim_time = 24 * 3'600 * sim::kSecond;
};

struct JobRecord {
  std::uint64_t job_id = 0;
  std::string name;
  std::string tenant = kDefaultTenant;
  std::uint8_t priority = kPriorityNormal;
  sim::SimTime submitted_at = 0;
  sim::SimTime first_assigned_at = 0;  // 0 = never joined by a workstation
  sim::SimTime completed_at = 0;
  bool completed = false;
  Value result;
  /// Workstations that ever ran a worker for this job (from JobQ stats).
  std::uint64_t assignments = 0;

  double turnaround_seconds() const {
    return sim::to_seconds(completed_at - submitted_at);
  }
};

class MacroCluster {
 public:
  MacroCluster(const TaskRegistry& registry, MacroConfig config);

  /// Add a workstation with the given owner behaviour; returns its index.
  int add_workstation(OwnerTrace trace,
                      std::unique_ptr<IdlenessPolicy> policy = nullptr);

  /// Submit root_task(args...) at simulated time `at`.  The job enters the
  /// JobQ pool and its Clearinghouse + first worker start at `at`.  Returns
  /// the job id.  Must be called before run() (harness-style setup); use
  /// submit_job_dynamic for submissions while the simulation runs.
  std::uint64_t submit_job(std::string name, const std::string& root_task,
                           std::vector<Value> args, sim::SimTime at,
                           std::string tenant = kDefaultTenant,
                           std::uint8_t priority = kPriorityNormal);

  /// Submit at the current simulated time from inside a running simulation
  /// (the PhishJobD backend and open-loop load generators use this).
  /// `job_id` 0 lets the JobQ assign one; nonzero ids must be unique.
  std::uint64_t submit_job_dynamic(std::string name,
                                   const std::string& root_task,
                                   std::vector<Value> args,
                                   std::string tenant = kDefaultTenant,
                                   std::uint8_t priority = kPriorityNormal,
                                   std::uint64_t job_id = 0);

  /// Run until all submitted jobs complete (throws on max_sim_time).
  std::vector<JobRecord> run();

  /// Run until the given simulated time, regardless of completion state.
  std::vector<JobRecord> run_until(sim::SimTime deadline);

  /// Fires (inside the simulation) when a job completes, before run()
  /// returns — PhishJobD's completion feed.
  void set_on_job_complete(std::function<void(const JobRecord&)> fn) {
    on_job_complete_ = std::move(fn);
  }
  /// Fires on every JobQ assignment (job_id, workstation manager node).
  void set_on_assign(std::function<void(std::uint64_t, net::NodeId)> fn) {
    on_assign_user_ = std::move(fn);
  }

  PhishJobQ& jobq() { return *jobq_; }
  PhishJobManager& manager(int index) { return *managers_.at(index); }
  int workstations() const { return static_cast<int>(managers_.size()); }
  sim::Simulator& simulator() { return sim_; }

  /// Churn hook: take workstation `index` dark (any running worker crashes,
  /// its manager stops requesting jobs) or bring it back online.  A job's
  /// Clearinghouse and first worker live on non-managed nodes, so a job
  /// always survives losing every managed workstation.
  void set_workstation_offline(int index, bool offline) {
    managers_.at(index)->set_offline(offline);
  }
  /// Workstations currently online — the live-capacity feed for the job
  /// service's degradation watermark.
  int live_workstations() const {
    int live = 0;
    for (const auto& m : managers_) {
      if (!m->offline()) ++live;
    }
    return live;
  }

  /// Sum of WorkerStats over every participant the cluster ever ran: each
  /// job's first worker plus every workstation worker incarnation.  The
  /// availability bench splits tasks_executed into useful vs redone work.
  WorkerStats aggregate_worker_stats() const {
    WorkerStats total;
    for (const auto& job : jobs_) {
      if (job->first_worker) total.merge(job->first_worker->stats());
    }
    for (const auto& m : managers_) {
      for (const auto& w : m->workers()) total.merge(w->stats());
    }
    return total;
  }

 private:
  struct Job {
    JobRecord record;
    std::unique_ptr<net::RpcNode> ch_rpc;
    std::unique_ptr<Clearinghouse> clearinghouse;
    std::unique_ptr<SimWorker> first_worker;
    std::string root_task;
    std::vector<Value> args;
  };

  net::NodeId alloc_node() {
    return net::NodeId{next_node_++};
  }
  std::uint64_t enqueue_job(std::string name, const std::string& root_task,
                            std::vector<Value> args, sim::SimTime at,
                            std::string tenant, std::uint8_t priority,
                            std::uint64_t job_id);
  void launch_job(Job& job);
  std::vector<JobRecord> collect();

  const TaskRegistry& registry_;
  MacroConfig config_;
  sim::Simulator sim_;
  net::SimNetwork network_;
  net::SimTimerService timers_;
  std::uint32_t next_node_ = 0;
  std::unique_ptr<net::RpcNode> jobq_rpc_;
  std::unique_ptr<PhishJobQ> jobq_;
  std::vector<std::unique_ptr<PhishJobManager>> managers_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::uint64_t next_job_id_ = 1;
  std::function<void(const JobRecord&)> on_job_complete_;
  std::function<void(std::uint64_t, net::NodeId)> on_assign_user_;
  Xoshiro256 seeder_;
  bool started_ = false;
};

}  // namespace phish::rt
