// A Phish worker as a discrete-event-simulation actor.
//
// The worker drives the same WorkerCore as the other runtimes, but time is
// simulated: each executed task advances the worker's clock by a scheduling
// overhead plus the work the task reported via Context::charge, and every
// message charges the sender/receiver the configured software overhead — the
// cost structure the paper identifies as dominant on workstation networks.
//
// Behaviour per the paper:
//   * registers with the Clearinghouse on start, unregisters on exit,
//     heartbeats periodically, and refreshes its membership view on a timer
//     ("once every 2 minutes to obtain an update");
//   * executes ready tasks LIFO; when out of work becomes a thief, picking a
//     victim uniformly at random and stealing FIFO via a steal RPC;
//   * after `max_failed_steals` consecutive failed steals concludes the
//     job's parallelism has shrunk, migrates its remaining (waiting)
//     closures to a peer, and terminates, returning its workstation to the
//     macro scheduler;
//   * on an owner-reclaim request does the same immediately ("the process's
//     data migrates before termination to another process of the same
//     parallel job");
//   * on a death notice redoes the tasks its dead thieves stole (via the
//     WorkerCore steal ledger);
//   * after departing, leaves a forwarding stub so in-flight arguments reach
//     the successor that received its closures.
#pragma once

#include <functional>
#include <limits>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/ch_client.hpp"
#include "core/clearinghouse.hpp"
#include "core/recovery.hpp"
#include "core/worker_core.hpp"
#include "net/rpc.hpp"
#include "net/sim_net.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace phish::rt {

/// How a thief chooses its victim (ablation A3).  The paper: "the thief
/// chooses uniformly at random a victim participant"; the alternatives show
/// why that choice matters.
enum class VictimPolicy : std::uint8_t {
  kUniformRandom,  // the paper's policy
  kRoundRobin,     // cycle deterministically through the membership
  kFixedFirst,     // always the first participant (pathological hot-spot)
  /// Heterogeneous-network extension (paper §6: "preserve locality with
  /// respect to those network cuts that have the least bandwidth"): steal
  /// from victims in the thief's own network cluster first, crossing the
  /// cut only after `cluster_escalate_after` consecutive local failures.
  kClusterLocal,
};

struct SimWorkerParams {
  /// Scheduling overhead charged per task executed (task packaging,
  /// queue manipulation, network polling — the serial-slowdown sources).
  sim::SimTime task_overhead = 5 * sim::kMicrosecond;
  /// Simulated time per unit of application work (Context::charge).
  sim::SimTime charge_unit = 2 * sim::kMicrosecond;
  /// Pause between failed steal attempts.
  sim::SimTime steal_retry_delay = 2 * sim::kMillisecond;
  /// Consecutive failed steals before the thief concludes parallelism has
  /// shrunk and terminates.  Default: effectively never (measurement runs).
  int max_failed_steals = std::numeric_limits<int>::max();
  /// Liveness heartbeat to the Clearinghouse.  0 disables (the paper's
  /// prototype had no heartbeats; crash recovery is our extension).
  sim::SimTime heartbeat_period = 1 * sim::kSecond;
  /// Membership refresh period (paper: 2 minutes; scaled down by default so
  /// short simulated jobs still see refreshes).  0 disables.
  sim::SimTime update_period = 10 * sim::kSecond;
  /// Retransmission policy for steal/registration RPCs.
  net::RetryPolicy rpc_policy{200 * sim::kMillisecond, 5, 2.0};
  /// Registration backoff: first retry delay, doubling per failure up to the
  /// cap, with seeded jitter.  Keeps a mass rejoin (rack power-up) from
  /// hammering the coordinator in lockstep.
  sim::SimTime register_backoff = 1 * sim::kSecond;
  sim::SimTime register_backoff_max = 16 * sim::kSecond;
  /// Relative CPU speed (2.0 = twice as fast); scales all compute costs.
  double cpu_speed = 1.0;
  /// Victim selection (ablation A3 / topology extension).
  VictimPolicy victim_policy = VictimPolicy::kUniformRandom;
  /// kClusterLocal: consecutive failed local steals before trying a victim
  /// across the cluster cut.
  int cluster_escalate_after = 4;
  /// Most tasks one steal RPC may carry back (steal-half, capped).  Default
  /// 1 = the paper's steal-one; larger batches amortize the RPC round trip
  /// when victims run deep queues.
  int steal_batch = 1;
};

class SimWorker {
 public:
  enum class State {
    kCreated,
    kRegistering,
    kActive,
    kDeparting,  // durability handshake in flight: ledger registration, acked
                 // cargo handoff, holder confirmation.  Still heartbeating;
                 // refuses steals; a crash here is survivable (the ledger or
                 // the victims' redo covers the cargo).
    kDeparted,   // left (shrunk parallelism / owner reclaim); stub forwards
    kFinished,   // job completed normally
    kDead,       // crashed (fault-injection)
  };

  enum class DepartReason { kParallelismShrank, kOwnerReclaimed, kPreempted };

  /// `clearinghouse` is the replica ring (primary first, then any warm
  /// standby); all coordinator traffic fails over across it.
  SimWorker(sim::Simulator& simulator, net::SimNetwork& network,
            net::TimerService& timers, const TaskRegistry& registry,
            net::NodeId me, std::vector<net::NodeId> clearinghouse,
            SimWorkerParams params, std::uint64_t seed,
            ExecOrder exec_order = ExecOrder::kLifo,
            StealOrder steal_order = StealOrder::kFifo);

  SimWorker(const SimWorker&) = delete;
  SimWorker& operator=(const SimWorker&) = delete;

  /// Give this worker the job's root task; it is spawned once registration
  /// completes (only one participant of a job should carry a root).
  void set_root(TaskId task, std::vector<Value> args);

  /// Checkpoint restore: install a WorkerCore state (export_state from the
  /// same node id) once registration completes.  Mutually exclusive with
  /// set_root.
  void set_restore_state(Bytes state) { restore_state_ = std::move(state); }

  /// True when this worker holds nothing that a checkpoint would miss:
  /// no buffered sends awaiting their task-cost flush and no steal RPC
  /// outstanding.  (The network's own in-flight count is checked by the
  /// checkpoint service.)
  bool checkpoint_quiescent() const noexcept {
    return outbox_.empty() && !steal_in_flight_;
  }

  /// Serialize the closure state (checkpointing; quiescent instants only).
  /// Not const: lazily spawned closures are materialized (named) so the
  /// snapshot is globally addressable.
  Bytes export_core_state() { return core_.export_state(); }

  /// Begin: register with the Clearinghouse.
  void start();

  /// Simulate the owner reclaiming the workstation (macro scheduler / owner
  /// trace): migrate state and terminate.
  void reclaim_by_owner();

  /// Priority preemption (PhishJobD): same migrate-then-terminate path as an
  /// owner reclaim — the paper's worker-death case (d) machinery — but
  /// attributed to the scheduler, so the macro level can tell evictions for
  /// high-priority work apart from owners returning.
  void preempt_by_scheduler();

  /// Simulate a crash: the machine vanishes without any cleanup.
  void crash();

  /// Bring a crashed worker back as a fresh incarnation: heal its network
  /// cut, discard the dead life's closures (survivors redo them), and
  /// re-register into the running job at the current epoch.
  void rejoin();

  std::uint32_t incarnation() const noexcept { return incarnation_; }

  /// MTTR instrumentation: note_steal fires on every successful steal (the
  /// tracker ignores it outside a recovery window).
  void set_recovery_tracker(RecoveryTracker* tracker) { tracker_ = tracker; }

  // ---- Observers. ----
  State state() const noexcept { return state_; }
  bool terminated() const noexcept {
    return state_ == State::kDeparted || state_ == State::kFinished ||
           state_ == State::kDead;
  }
  net::NodeId id() const noexcept { return me_; }
  const WorkerStats& stats() const noexcept { return core_.stats(); }
  const net::ChannelStats& channel_stats() const {
    return network_.channel(me_).stats();
  }
  sim::SimTime start_time() const noexcept { return start_time_; }
  sim::SimTime end_time() const noexcept { return end_time_; }
  /// Wall-clock lifetime of this participant, the paper's T_P(i).
  sim::SimTime lifetime() const noexcept { return end_time_ - start_time_; }
  std::optional<DepartReason> depart_reason() const noexcept {
    return depart_reason_;
  }

  /// Application output (forwarded to the Clearinghouse's I/O log).
  void emit_io(const std::string& text);

  /// Fires once when the worker terminates for any reason (finished,
  /// departed, crashed).  The macro scheduler uses this to put the
  /// workstation back under PhishJobManager control.
  void set_on_terminated(std::function<void(State)> fn) {
    on_terminated_ = std::move(fn);
  }

  /// Attach a trace sink (virtual-clock domain).  The core's own kExecute
  /// spans are suppressed: virtual time does not advance inside execute(),
  /// so this worker emits [now, now + cost] spans itself once the task's
  /// simulated cost is known.
  void set_trace(obs::TraceShard* shard, const obs::Clock* clock) {
    trace_shard_ = (shard != nullptr && clock != nullptr) ? shard : nullptr;
    core_.set_trace(shard, clock, /*emit_execute_spans=*/false);
    rpc_.set_trace(shard, clock);
  }

 private:
  void on_registered(const proto::Membership& membership);
  /// Apply a delta (or embedded full snapshot) to the peer list and advance
  /// the known epoch.
  void apply_membership_update(const proto::MembershipUpdate& update);
  /// Common post-registration activation (timers, root, restore, first step).
  void activate();
  void schedule_step(sim::SimTime delay);
  void step();
  void attempt_steal();
  void on_steal_reply(net::NodeId victim, net::RpcResult result);
  void handle_oneway(net::Message&& message);
  Bytes handle_control(const Bytes& args);
  void apply_death(net::NodeId dead);
  Bytes serve_steal(net::NodeId src, const Bytes& args);
  Bytes serve_migrate(net::NodeId src, const Bytes& args);
  void evict(DepartReason reason);
  void depart(DepartReason reason);
  // ---- Migration durability handshake (state kDeparting). ----
  /// Drain the core and steal ledger; if anything remains, register it in
  /// the Clearinghouse's migration ledger and hand it off.  A death notice
  /// mid-handshake re-fills the core with redo snapshots, so confirm_holder
  /// loops back here until a round drains nothing.
  void begin_migration_round();
  void try_handoff(std::uint64_t mid, std::vector<Closure> cargo,
                   std::vector<proto::MigrantLedgerEntry> ledger,
                   std::vector<net::NodeId> candidates);
  void confirm_holder(std::uint64_t mid, net::NodeId holder);
  /// Handshake fallback: leave WITHOUT unregistering, so the failure
  /// detector declares us dead and the standard redo (victims' ledgers, or
  /// the Clearinghouse's, whichever got far enough) recovers the cargo.
  void abandon_depart(const char* why);
  void finalize_depart(bool cargo_lost);
  /// Log a post-drain argument fill (ttl already decremented, re-encoded)
  /// and forward the unsent tail of the log to the current successor.
  void log_and_forward_fill(proto::ArgumentMsg arg);
  void flush_fill_log();
  void finish();
  /// `unregister` false leaves the registration in place on purpose: a
  /// departure that dropped closures must be *detected as a death* so the
  /// redo machinery fires; a clean goodbye would bury the loss.
  void send_stats_and_unregister(bool unregister = true);
  void refresh_membership();
  sim::SimTime scaled(sim::SimTime cpu_time) const {
    return static_cast<sim::SimTime>(static_cast<double>(cpu_time) /
                                     params_.cpu_speed);
  }
  std::optional<net::NodeId> pick_peer();
  std::optional<net::NodeId> pick_victim();

  sim::Simulator& sim_;
  net::SimNetwork& network_;
  net::TimerService& timers_;
  net::NodeId me_;
  net::NodeId clearinghouse_;  // original primary; home of the root cont
  SimWorkerParams params_;
  Xoshiro256 rng_;

  net::RpcNode rpc_;
  ClearinghouseClient client_;
  WorkerCore core_;
  std::uint32_t incarnation_ = 1;
  RecoveryTracker* tracker_ = nullptr;

  State state_ = State::kCreated;
  std::optional<DepartReason> depart_reason_;
  std::optional<std::pair<TaskId, std::vector<Value>>> root_;
  std::optional<Bytes> restore_state_;
  std::vector<net::NodeId> peers_;  // membership minus self
  /// Highest membership epoch applied; presented to the Clearinghouse so
  /// register/update replies can be deltas instead of full snapshots.
  /// 0 = never registered (first contact always gets the full set).
  std::uint64_t known_epoch_ = 0;
  /// Current registration retry delay (0 = no failure yet).
  sim::SimTime register_backoff_ = 0;
  std::size_t round_robin_cursor_ = 0;
  int consecutive_failed_steals_ = 0;
  bool steal_in_flight_ = false;
  // Eviction (owner reclaim or scheduler preemption) arrived while a steal
  // RPC was outstanding: departure is deferred until the reply resolves,
  // else a closure riding a retransmitted reply is lost with no redo (the
  // thief departed, it didn't die).
  std::optional<DepartReason> pending_evict_;
  net::NodeId forward_to_;  // successor after departure
  // A restart arrived while the durability handshake was in flight: finish
  // departing first, then come back as the fresh incarnation.
  bool pending_rejoin_ = false;
  /// Migration-id sequence (high word = our node id, low word = this).
  std::uint32_t next_mig_seq_ = 0;
  /// Migration ids already installed: dedupes a Clearinghouse redelivery
  /// racing the origin's own (retransmitted) handoff.  Cleared on rejoin —
  /// the new life starts empty, so a redelivery must land again.
  std::unordered_set<std::uint64_t> seen_migrations_;
  /// Every node a death notice ever named, across its whole history (never
  /// cleared): an adopted steal-ledger entry whose thief is here must be
  /// redone immediately — the notice that would trigger it already fired.
  std::unordered_set<std::uint32_t> ever_died_;
  /// Argument fills received after the drain (re-encoded with ttl-1), in
  /// arrival order.  Flushed to the successor as it is confirmed; replayed
  /// in full on kReroute so a redelivered holder sees every fill the lost
  /// one did.  Retained across rejoin (the stub obligation outlives us),
  /// but only while outstanding_migrations_ is non-empty: once every
  /// migration we registered has been retired (kMigrationRetired), no
  /// reroute can replay it, so it is released instead of growing for the
  /// stub's whole lifetime.
  std::vector<Bytes> fill_log_;
  std::size_t flushed_fills_ = 0;
  /// Migration ids we registered in the coordinator's ledger whose entries
  /// have not been retired yet (kMigrationRetired erases them).
  std::unordered_set<std::uint64_t> outstanding_migrations_;

  // Step scheduling.
  bool step_scheduled_ = false;
  sim::EventId step_event_{};
  sim::SimTime next_step_time_ = 0;
  sim::SimTime cpu_debt_ = 0;  // message-handling CPU to charge at next step
  bool executing_ = false;     // inside core_.execute()
  std::vector<std::function<void()>> outbox_;  // sends buffered mid-task

  sim::SimTime start_time_ = 0;
  sim::SimTime end_time_ = 0;
  std::function<void(State)> on_terminated_;
  obs::TraceShard* trace_shard_ = nullptr;
  sim::SimTime steal_sent_at_ = 0;  // virtual-time steal latency
  obs::Histogram& steal_latency_ =
      obs::Registry::global().histogram("steal.latency_ns");

  sim::PeriodicTimer heartbeat_timer_;
  sim::PeriodicTimer update_timer_;
};

}  // namespace phish::rt
