#include "runtime/simdist/macro_service.hpp"

namespace phish::rt {

void MacroServiceBackend::bind(jobsvc::JobService& service) {
  service_ = &service;
  cluster_.set_on_assign([this](std::uint64_t job_id, net::NodeId) {
    if (service_ != nullptr) service_->note_first_task(job_id);
  });
  cluster_.set_on_job_complete([this](const JobRecord& record) {
    if (service_ != nullptr) {
      service_->note_done(record.job_id, record.result);
    }
  });
}

void MacroServiceBackend::launch(const jobsvc::JobStatus& job,
                                 const std::vector<Value>& args) {
  // Service job ids become JobQ job ids verbatim, so the assignment and
  // completion feeds need no translation table.  Forward any service-side
  // tenant scheduling policy into the JobQ before the job can be assigned.
  if (service_ != nullptr) {
    if (const auto policy = service_->tenant_policy(job.tenant)) {
      cluster_.jobq().configure_tenant(
          job.tenant, TenantConfig{policy->weight, policy->max_workstations});
    }
  }
  cluster_.submit_job_dynamic(job.name, job.root_task, args, job.tenant,
                              job.priority, job.job_id);
}

}  // namespace phish::rt
