#include "runtime/simdist/sim_worker.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace phish::rt {

SimWorker::SimWorker(sim::Simulator& simulator, net::SimNetwork& network,
                     net::TimerService& timers, const TaskRegistry& registry,
                     net::NodeId me, std::vector<net::NodeId> clearinghouse,
                     SimWorkerParams params, std::uint64_t seed,
                     ExecOrder exec_order, StealOrder steal_order)
    : sim_(simulator),
      network_(network),
      timers_(timers),
      me_(me),
      clearinghouse_(clearinghouse.front()),
      params_(params),
      rng_(mix64(seed ^ me.value)),
      rpc_(network.channel(me), timers),
      client_(rpc_, std::move(clearinghouse)),
      core_(me, registry,
            [this] {
              WorkerCore::Hooks hooks;
              hooks.send_remote = [this](const ContRef& cont, Value value) {
                Bytes payload =
                    proto::ArgumentMsg{cont, std::move(value)}.encode();
                cpu_debt_ += network_.send_cpu_cost(payload.size());
                auto action = [this, home = cont.home,
                               p = std::move(payload)]() {
                  if (client_.is_replica(home)) {
                    // The job result must survive loss and coordinator
                    // failover: deliver via RPC through the replica ring,
                    // which retransmits until acknowledged.
                    client_.call(proto::kRpcResult, p, [](net::RpcResult) {},
                                 params_.rpc_policy);
                  } else {
                    rpc_.send_oneway(home, proto::kArgument, p);
                  }
                };
                // A send issued mid-task leaves the machine only when the
                // task's simulated execution finishes; the outbox is flushed
                // at now + task cost (execute-then-advance would otherwise
                // deliver results "before" the work that produced them).
                if (executing_) {
                  outbox_.push_back(std::move(action));
                } else {
                  action();
                }
              };
              hooks.forward_local_miss = [this](const ContRef& cont,
                                                Value&& value) {
                // A locally-homed fill whose target closure left with a
                // previous life's migrated cargo (owner reclaim, then this
                // incarnation rejoined) must chase it through the same
                // forwarding stub remote arrivals use; mid-drain it buffers
                // in the fill log until the successor confirms.
                if (state_ != State::kDeparting && !forward_to_.valid()) {
                  return false;
                }
                proto::ArgumentMsg arg{cont, std::move(value)};
                auto action = [this, arg = std::move(arg)]() mutable {
                  log_and_forward_fill(std::move(arg));
                };
                if (executing_) {
                  outbox_.push_back(std::move(action));
                } else {
                  action();
                }
                return true;
              };
              hooks.emit_io = [this](const std::string& text) {
                // Application output rides the same buffered path as
                // argument sends (it leaves when the task's cost elapses).
                auto action = [this, text] { emit_io(text); };
                if (executing_) {
                  outbox_.push_back(std::move(action));
                } else {
                  action();
                }
              };
              return hooks;
            }(),
            exec_order, steal_order),
      heartbeat_timer_(simulator, params.heartbeat_period,
                       [this] {
                         // Every replica hears heartbeats, so a promoted
                         // standby starts with a warm liveness map.
                         client_.send_oneway_all(proto::kHeartbeat, {});
                       }),
      update_timer_(simulator, params.update_period,
                    [this] { refresh_membership(); }) {
  rpc_.set_jitter_seed(mix64(seed ^ 0x6a77'7e12'0badULL ^ me.value));
  rpc_.set_oneway_handler(
      [this](net::Message&& m) { handle_oneway(std::move(m)); });
  rpc_.serve(proto::kRpcSteal, [this](net::NodeId src, const Bytes& args) {
    return serve_steal(src, args);
  });
  rpc_.serve(proto::kRpcControl, [this](net::NodeId, const Bytes& args) {
    return handle_control(args);
  });
  rpc_.serve(proto::kRpcMigrate, [this](net::NodeId src, const Bytes& args) {
    return serve_migrate(src, args);
  });
}

void SimWorker::set_root(TaskId task, std::vector<Value> args) {
  root_ = std::make_pair(task, std::move(args));
}

void SimWorker::start() {
  if (state_ != State::kCreated) return;
  state_ = State::kRegistering;
  start_time_ = sim_.now();
  client_.call(
      proto::kRpcRegister,
      proto::RegisterMsg{incarnation_, known_epoch_}.encode(),
      [this, inc = incarnation_,
       since = known_epoch_](net::RpcResult result) {
        if (incarnation_ != inc) return;  // callback from a past life
        if (state_ != State::kRegistering) return;
        if (!result.ok) {
          // Exponential backoff with seeded jitter: a rack coming back to
          // life must not re-register in lockstep (register storm).
          register_backoff_ =
              register_backoff_ == 0
                  ? params_.register_backoff
                  : std::min(register_backoff_ * 2,
                             params_.register_backoff_max);
          const auto jitter = static_cast<sim::SimTime>(rng_.below(
              static_cast<std::uint64_t>(register_backoff_ / 2) + 1));
          PHISH_LOG(kWarn) << net::to_string(me_)
                           << ": registration failed; retrying in "
                           << (register_backoff_ + jitter) / sim::kMillisecond
                           << " ms";
          state_ = State::kCreated;
          sim_.schedule(register_backoff_ + jitter, [this] { start(); });
          return;
        }
        register_backoff_ = 0;
        // The reply format follows what we presented: a nonzero known epoch
        // opted into a delta, first contact gets the legacy full snapshot.
        if (since > 0) {
          auto update = proto::MembershipUpdate::decode(result.reply);
          if (!update) return;
          apply_membership_update(*update);
          state_ = State::kActive;
          activate();
        } else {
          auto membership = proto::Membership::decode(result.reply);
          if (membership) on_registered(*membership);
        }
      },
      params_.rpc_policy);
}

void SimWorker::on_registered(const proto::Membership& membership) {
  state_ = State::kActive;
  known_epoch_ = membership.epoch;
  peers_.clear();
  for (net::NodeId p : membership.participants) {
    if (p != me_) peers_.push_back(p);
  }
  activate();
}

void SimWorker::apply_membership_update(const proto::MembershipUpdate& update) {
  known_epoch_ = update.epoch;
  if (update.full) {
    peers_.clear();
    for (net::NodeId p : update.participants) {
      if (p != me_) peers_.push_back(p);
    }
    return;
  }
  for (net::NodeId gone : update.left) {
    peers_.erase(std::remove(peers_.begin(), peers_.end(), gone),
                 peers_.end());
  }
  for (net::NodeId p : update.joined) {
    if (p != me_ &&
        std::find(peers_.begin(), peers_.end(), p) == peers_.end()) {
      peers_.push_back(p);
    }
  }
}

void SimWorker::activate() {
  // A zero period disables the timer (e.g. measurement runs that model the
  // paper's Phish, which had no heartbeats).
  if (params_.heartbeat_period > 0) heartbeat_timer_.start(1);
  if (params_.update_period > 0) update_timer_.start();
  if (root_) {
    core_.spawn(root_->first, std::move(root_->second),
                clearinghouse_continuation(clearinghouse_), 0);
    root_.reset();
  }
  if (restore_state_) {
    core_.import_state(*restore_state_);
    restore_state_.reset();
  }
  schedule_step(0);
}

void SimWorker::schedule_step(sim::SimTime delay) {
  const sim::SimTime when = sim_.now() + delay;
  if (step_scheduled_) {
    if (when >= next_step_time_) return;  // an earlier step is already set
    sim_.cancel(step_event_);
  }
  step_scheduled_ = true;
  next_step_time_ = when;
  step_event_ = sim_.schedule(delay, [this] {
    step_scheduled_ = false;
    step();
  });
}

void SimWorker::step() {
  if (state_ != State::kActive) return;
  sim::SimTime cost = scaled(cpu_debt_);
  cpu_debt_ = 0;

  if (auto task = core_.pop_for_execution()) {
    executing_ = true;
    core_.execute(*task);  // sends inside are buffered; costs join cpu_debt_
    executing_ = false;
    cost += scaled(params_.task_overhead +
                   core_.last_charge() * params_.charge_unit + cpu_debt_);
    cpu_debt_ = 0;
    consecutive_failed_steals_ = 0;
    if (trace_shard_ != nullptr && trace_shard_->enabled()) {
      // Virtual-time span: the task occupies [now, now + cost] of simulated
      // time (the core's wall-clock span would be zero-length here).
      obs::TraceEvent e = obs::make_event(
          obs::EventType::kExecute, static_cast<std::uint16_t>(me_.value),
          sim_.now());
      e.t_end = sim_.now() + cost;
      e.closure_origin = task->id.origin.value;
      e.closure_seq = task->id.seq;
      e.arg = core_.ready_count();
      trace_shard_->emit(e);
    }
    if (!outbox_.empty()) {
      // Messages produced by this task leave when its execution completes.
      sim_.schedule(cost, [this, batch = std::move(outbox_)] {
        if (state_ == State::kDead) return;  // crashed before the flush
        for (const auto& send : batch) send();
      });
      outbox_.clear();
    }
    schedule_step(cost);
    return;
  }
  if (steal_in_flight_) return;  // reply callback will reschedule
  attempt_steal();
}

void SimWorker::attempt_steal() {
  if (state_ != State::kActive || steal_in_flight_) return;
  std::optional<net::NodeId> victim = pick_victim();
  if (!victim) {
    // Nobody to steal from yet; refresh membership and retry.
    ++consecutive_failed_steals_;
    core_.note_steal_request_sent();
    core_.note_steal_failed();
    if (consecutive_failed_steals_ >= params_.max_failed_steals) {
      depart(DepartReason::kParallelismShrank);
      return;
    }
    refresh_membership();
    schedule_step(params_.steal_retry_delay);
    return;
  }
  steal_in_flight_ = true;
  steal_sent_at_ = sim_.now();
  core_.note_steal_request_sent();
  const std::uint16_t max_tasks = static_cast<std::uint16_t>(
      params_.steal_batch < 1 ? 1 : params_.steal_batch);
  const Bytes payload = proto::StealRequest{me_, max_tasks}.encode();
  cpu_debt_ += network_.send_cpu_cost(payload.size());
  rpc_.call(
      *victim, proto::kRpcSteal, payload,
      [this, v = *victim](net::RpcResult result) {
        on_steal_reply(v, std::move(result));
      },
      params_.rpc_policy);
}

void SimWorker::on_steal_reply(net::NodeId victim, net::RpcResult result) {
  steal_in_flight_ = false;
  if (state_ != State::kActive) return;
  cpu_debt_ += network_.recv_cpu_cost();

  bool got_task = false;
  if (result.ok) {
    auto reply = proto::StealReply::decode(result.reply);
    if (reply && !reply->tasks.empty()) {
      for (Closure& c : reply->tasks) core_.install_stolen(std::move(c));
      steal_latency_.observe(sim_.now() - steal_sent_at_);
      if (tracker_ != nullptr) tracker_->note_steal(timers_.now_ns());
      got_task = true;
    }
  } else {
    // Victim unreachable — it may be gone; refresh our view.
    refresh_membership();
    (void)victim;
  }

  if (pending_evict_) {
    // The deferred eviction (owner reclaim or preemption) fires now; any
    // closure installed above migrates out through the departure path.
    const DepartReason reason = *pending_evict_;
    pending_evict_.reset();
    depart(reason);
    return;
  }
  if (got_task) {
    consecutive_failed_steals_ = 0;
    schedule_step(0);
    return;
  }
  core_.note_steal_failed();
  if (++consecutive_failed_steals_ >= params_.max_failed_steals) {
    depart(DepartReason::kParallelismShrank);
    return;
  }
  // A stale membership view can hide the participants that actually have
  // work (e.g. one that registered after our snapshot); refresh it every few
  // consecutive failures rather than waiting out the full update period.
  if (consecutive_failed_steals_ % 8 == 0) refresh_membership();
  schedule_step(params_.steal_retry_delay);
}

Bytes SimWorker::serve_steal(net::NodeId, const Bytes& args) {
  auto request = proto::StealRequest::decode(args);
  proto::StealReply reply;
  if (request && state_ == State::kActive) {
    reply.tasks = core_.try_steal_batch(request->thief, request->max_tasks);
  }
  const Bytes encoded = reply.encode();
  // Victim pays for receiving the request and sending the reply.
  cpu_debt_ += network_.recv_cpu_cost() + network_.send_cpu_cost(encoded.size());
  return encoded;
}

void SimWorker::handle_oneway(net::Message&& message) {
  switch (message.type) {
    case proto::kArgument: {
      auto arg = proto::ArgumentMsg::decode(message.payload);
      if (!arg) return;
      if (state_ == State::kDeparted) {
        // Forwarding stub: our closures moved.  Log the fill (a later
        // kReroute must be able to replay it at a redelivered holder) and
        // pass it along.
        if (forward_to_.valid()) log_and_forward_fill(std::move(*arg));
        return;
      }
      if (terminated()) return;
      cpu_debt_ += network_.recv_cpu_cost();
      // Only a departing worker or a residual stub may need the value again
      // (to forward); everyone else moves it straight into the closure.
      const bool may_forward =
          state_ == State::kDeparting || forward_to_.valid();
      const auto outcome =
          may_forward ? core_.deliver_remote(arg->cont.target, arg->cont.slot,
                                             arg->value)
                      : core_.deliver_remote(arg->cont.target, arg->cont.slot,
                                             std::move(arg->value));
      if (outcome == WorkerCore::Deliver::kBecameReady &&
          state_ == State::kActive) {
        schedule_step(0);
      }
      if (outcome == WorkerCore::Deliver::kUnknown) {
        if (state_ == State::kDeparting) {
          // Post-drain fill: the target closure is in the departing cargo.
          // Buffer it; it flushes once the successor confirms.
          log_and_forward_fill(std::move(*arg));
        } else if (forward_to_.valid()) {
          // Residual stub after rejoin: the closure left with the previous
          // life's cargo; keep forwarding.
          log_and_forward_fill(std::move(*arg));
        }
      }
      break;
    }
    case proto::kShutdown: {
      if (state_ == State::kActive || state_ == State::kRegistering) finish();
      break;
    }
    case proto::kMigrate: {
      if (state_ == State::kDeparted && forward_to_.valid()) {
        // We left too; pass the cargo to our own successor.
        rpc_.send_oneway(forward_to_, proto::kMigrate, message.payload);
        return;
      }
      auto migrate = proto::MigrateMsg::decode(message.payload);
      if (!migrate || state_ != State::kActive) return;
      cpu_debt_ += network_.recv_cpu_cost();
      for (Closure& c : migrate->closures) {
        core_.install_migrated(std::move(c));
      }
      schedule_step(0);
      break;
    }
    default:
      PHISH_LOG(kDebug) << net::to_string(me_) << ": unexpected message type "
                        << message.type;
  }
}

Bytes SimWorker::handle_control(const Bytes& args) {
  // Acked control plane (death notices, new-primary announcements).  The
  // RPC reply is the ack; an empty body is all the caller needs.
  auto msg = proto::ControlMsg::decode(args);
  if (!msg) return {};
  switch (msg->kind) {
    case proto::ControlMsg::kDeadNotice:
      apply_death(msg->who);
      break;
    case proto::ControlMsg::kNewPrimary:
      client_.adopt(msg->who, msg->view);
      break;
    case proto::ControlMsg::kReroute:
      // The Clearinghouse redelivered our migrated cargo to `who`: re-target
      // the forwarding stub and replay every fill logged since the drain —
      // the redelivered snapshot predates them (duplicates are idempotent).
      if (msg->who.valid() && msg->who != me_) {
        forward_to_ = msg->who;
        flushed_fills_ = 0;
        flush_fill_log();
      }
      break;
    case proto::ControlMsg::kMigrationRetired:
      // Ledger entry msg->view is gone (holder finished the cargo or
      // re-snapshotted it with all fills applied): once no migration of
      // ours remains outstanding, no kReroute can ever replay the fill
      // log, so release it instead of retaining it forever.
      outstanding_migrations_.erase(msg->view);
      if (outstanding_migrations_.empty()) {
        fill_log_.clear();
        flushed_fills_ = 0;
      }
      break;
    default:
      break;
  }
  return {};
}

void SimWorker::apply_death(net::NodeId dead) {
  ever_died_.insert(dead.value);
  if (terminated() || dead == me_) return;
  peers_.erase(std::remove(peers_.begin(), peers_.end(), dead), peers_.end());
  const std::size_t redone = core_.handle_participant_death(dead);
  if (redone > 0 && state_ == State::kActive) schedule_step(0);
  // During kDeparting the redo snapshots just landed in a drained core; the
  // handshake's next confirm loops back through begin_migration_round, which
  // packages them into a fresh migration round.
}

void SimWorker::depart(DepartReason reason) {
  if (state_ == State::kDeparting || terminated()) return;
  depart_reason_ = reason;
  core_.trace_instant(obs::EventType::kReclaim, ClosureId{},
                      reason == DepartReason::kOwnerReclaimed   ? 1
                      : reason == DepartReason::kPreempted      ? 2
                                                                : 0);
  // Heartbeats keep running through the handshake: if we crash mid-departure
  // the failure detector must still fire, and if we finish cleanly the
  // unregister retires us before any timeout.
  state_ = State::kDeparting;
  begin_migration_round();
}

void SimWorker::begin_migration_round() {
  if (state_ != State::kDeparting) return;
  // Drain everything a crash of this worker (or of the successor) would
  // lose: remaining closures AND the steal ledger — the successor inherits
  // the victim role for our thieves' outstanding work.
  std::vector<Closure> cargo = core_.drain_for_migration();
  std::vector<proto::MigrantLedgerEntry> ledger = core_.export_steal_ledger();
  if (cargo.empty() && ledger.empty()) {
    finalize_depart(/*cargo_lost=*/false);
    return;
  }
  const std::uint64_t mid =
      (static_cast<std::uint64_t>(me_.value) << 32) | next_mig_seq_++;
  // Step 1: register the cargo snapshot with the Clearinghouse BEFORE any
  // handoff.  From here on, a crash of ours or the successor's is
  // recoverable: the coordinator redelivers from the ledger.
  proto::MigrationLedgerMsg reg;
  reg.migration_id = mid;
  reg.from = me_;
  reg.holder = me_;
  reg.closures = cargo;
  reg.ledger = ledger;
  const Bytes payload = reg.encode();
  cpu_debt_ += network_.send_cpu_cost(payload.size());
  client_.call(
      proto::kRpcMigrateLedger, payload,
      [this, inc = incarnation_, mid, cargo = std::move(cargo),
       ledger = std::move(ledger)](net::RpcResult result) mutable {
        if (incarnation_ != inc || state_ != State::kDeparting) return;
        bool ok = false;
        if (result.ok) {
          Reader r(result.reply);
          ok = r.boolean() && r.ok();
        }
        if (!ok) {
          abandon_depart("migration ledger unreachable");
          return;
        }
        // The ledger entry exists from here until the coordinator retires
        // it (even if the handoff below is abandoned): retain the fill log
        // for a possible kReroute replay until the retirement notice.
        outstanding_migrations_.insert(mid);
        try_handoff(mid, std::move(cargo), std::move(ledger), peers_);
      },
      params_.rpc_policy);
}

void SimWorker::try_handoff(std::uint64_t mid, std::vector<Closure> cargo,
                            std::vector<proto::MigrantLedgerEntry> ledger,
                            std::vector<net::NodeId> candidates) {
  if (state_ != State::kDeparting) return;
  if (candidates.empty()) {
    // Nobody accepted.  The ledger is registered with us as holder, so our
    // (suppressed-unregister) death hands the cargo to the coordinator's
    // redelivery path instead of losing it.
    abandon_depart("no successor accepted the cargo");
    return;
  }
  const std::size_t pick = rng_.below(candidates.size());
  const net::NodeId successor = candidates[pick];
  candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
  proto::MigrateMsg msg;
  msg.from = me_;
  msg.closures = cargo;
  msg.migration_id = mid;
  msg.redelivery = false;
  msg.ledger = ledger;
  const Bytes payload = msg.encode();
  cpu_debt_ += network_.send_cpu_cost(payload.size());
  // Step 2: acked handoff.  kMigrate used to be a fire-and-forget oneway —
  // the unsurvivable window the ledger closes; now the cargo is only
  // considered placed once the successor's reply says it installed it.
  rpc_.call(
      successor, proto::kRpcMigrate, payload,
      [this, inc = incarnation_, mid, successor, cargo = std::move(cargo),
       ledger = std::move(ledger),
       candidates = std::move(candidates)](net::RpcResult result) mutable {
        if (incarnation_ != inc || state_ != State::kDeparting) return;
        bool accepted = false;
        if (result.ok) {
          Reader r(result.reply);
          accepted = r.boolean() && r.ok();
        }
        if (!accepted) {
          // Unreachable, departing, or dead: try the next candidate.
          try_handoff(mid, std::move(cargo), std::move(ledger),
                      std::move(candidates));
          return;
        }
        forward_to_ = successor;
        flush_fill_log();
        confirm_holder(mid, successor);
      },
      params_.rpc_policy);
}

void SimWorker::confirm_holder(std::uint64_t mid, net::NodeId holder) {
  if (state_ != State::kDeparting) return;
  // Step 3: atomically transfer redo ownership — after this ack the
  // coordinator watches the successor, not us, for this cargo.
  proto::MigrationLedgerMsg upd;
  upd.migration_id = mid;
  upd.from = me_;
  upd.holder = holder;
  client_.call(
      proto::kRpcMigrateLedger, upd.encode(),
      [this, inc = incarnation_](net::RpcResult result) {
        if (incarnation_ != inc || state_ != State::kDeparting) return;
        bool ok = false;
        if (result.ok) {
          Reader r(result.reply);
          ok = r.boolean() && r.ok();
        }
        if (!ok) {
          // The successor holds the cargo but the coordinator still lists
          // us: die noisily (no unregister) so it redelivers; the duplicate
          // execution is idempotent at the joins.
          abandon_depart("holder confirmation unreachable");
          return;
        }
        // A death notice that arrived mid-handshake re-enqueued redo
        // snapshots into the drained core: run another round for them.
        begin_migration_round();
      },
      params_.rpc_policy);
}

void SimWorker::abandon_depart(const char* why) {
  PHISH_LOG(kWarn) << net::to_string(me_) << ": departing but " << why
                   << "; skipping unregister so the failure detector "
                      "triggers the redo path";
  finalize_depart(/*cargo_lost=*/true);
}

void SimWorker::finalize_depart(bool cargo_lost) {
  state_ = State::kDeparted;
  end_time_ = sim_.now();
  heartbeat_timer_.stop();
  update_timer_.stop();
  send_stats_and_unregister(/*unregister=*/!cargo_lost);
  if (on_terminated_) on_terminated_(state_);
  if (pending_rejoin_) {
    pending_rejoin_ = false;
    rejoin();
  }
}

void SimWorker::log_and_forward_fill(proto::ArgumentMsg arg) {
  if (arg.ttl == 0) return;  // forwarding-cycle guard: drop, let redo cover
  --arg.ttl;
  if (forward_to_.valid() && outstanding_migrations_.empty()) {
    // Every ledger entry we originated is retired, so no kReroute can ever
    // ask for a replay: forward without retaining.  (With no successor yet
    // the fill must still be buffered below, retirement or not.)
    rpc_.send_oneway(forward_to_, proto::kArgument, arg.encode());
    return;
  }
  fill_log_.push_back(arg.encode());
  flush_fill_log();
}

void SimWorker::flush_fill_log() {
  if (!forward_to_.valid()) return;
  for (std::size_t i = flushed_fills_; i < fill_log_.size(); ++i) {
    rpc_.send_oneway(forward_to_, proto::kArgument, fill_log_[i]);
  }
  flushed_fills_ = fill_log_.size();
}

Bytes SimWorker::serve_migrate(net::NodeId, const Bytes& args) {
  Writer reply;
  auto m = proto::MigrateMsg::decode(args);
  if (!m || state_ != State::kActive) {
    // Departing/dead/stub workers refuse: the sender (origin or
    // coordinator) picks someone else.
    reply.boolean(false);
    return reply.take();
  }
  cpu_debt_ += network_.recv_cpu_cost();
  if (m->migration_id != 0 &&
      !seen_migrations_.insert(m->migration_id).second) {
    // Duplicate delivery (retransmitted handoff racing a coordinator
    // redelivery): already installed, just re-ack.
    reply.boolean(true);
    return reply.take();
  }
  for (Closure& c : m->closures) {
    if (m->redelivery) {
      core_.install_migration_redo(std::move(c));
    } else {
      core_.install_migrated(std::move(c));
    }
  }
  for (proto::MigrantLedgerEntry& e : m->ledger) {
    // Inherit the victim role: if the thief already died (we saw the
    // notice; the origin's redo never ran), redo now instead of ledgering.
    core_.adopt_migrant_ledger(e.thief, std::move(e.snapshot),
                               ever_died_.count(e.thief.value) != 0);
  }
  if (m->migration_id != 0) {
    core_.trace_instant(obs::EventType::kMigrateRereg, ClosureId{},
                        static_cast<std::uint32_t>(m->closures.size() +
                                                   m->ledger.size()));
  }
  schedule_step(0);
  reply.boolean(true);
  return reply.take();
}

void SimWorker::finish() {
  state_ = State::kFinished;
  end_time_ = sim_.now();
  heartbeat_timer_.stop();
  update_timer_.stop();
  core_.clear_steal_ledger();
  send_stats_and_unregister();
  if (on_terminated_) on_terminated_(state_);
}

void SimWorker::send_stats_and_unregister(bool unregister) {
  proto::StatsMsg stats;
  stats.who = me_;
  stats.stats = core_.stats();
  stats.start_ns = start_time_;
  stats.end_ns = end_time_;
  client_.send_oneway(proto::kStatsReport, stats.encode());
  if (!unregister) return;  // depart-with-lost-cargo: be "dead", not gone
  client_.call(proto::kRpcUnregister, {}, [](net::RpcResult) {},
               params_.rpc_policy);
}

void SimWorker::refresh_membership() {
  if (terminated()) return;
  // Present the epoch we already hold: steady-state refreshes come back as
  // (usually empty) deltas instead of full snapshots.
  client_.call(
      proto::kRpcUpdate, proto::UpdateRequest{known_epoch_}.encode(),
      [this, inc = incarnation_,
       since = known_epoch_](net::RpcResult result) {
        if (incarnation_ != inc) return;  // callback from a past life
        if (!result.ok || terminated()) return;
        if (since > 0) {
          auto update = proto::MembershipUpdate::decode(result.reply);
          if (update) apply_membership_update(*update);
          return;
        }
        auto membership = proto::Membership::decode(result.reply);
        if (!membership) return;
        known_epoch_ = membership->epoch;
        peers_.clear();
        for (net::NodeId p : membership->participants) {
          if (p != me_) peers_.push_back(p);
        }
      },
      params_.rpc_policy);
}

std::optional<net::NodeId> SimWorker::pick_peer() {
  if (peers_.empty()) return std::nullopt;
  return peers_[rng_.below(peers_.size())];
}

std::optional<net::NodeId> SimWorker::pick_victim() {
  if (peers_.empty()) return std::nullopt;
  switch (params_.victim_policy) {
    case VictimPolicy::kUniformRandom:
      return peers_[rng_.below(peers_.size())];
    case VictimPolicy::kRoundRobin:
      return peers_[round_robin_cursor_++ % peers_.size()];
    case VictimPolicy::kFixedFirst:
      return peers_.front();
    case VictimPolicy::kClusterLocal: {
      // Random victim within our cluster until repeated failures suggest the
      // local cluster is out of work; then random among everyone.
      if (consecutive_failed_steals_ < params_.cluster_escalate_after) {
        const int my_cluster = network_.cluster_of(me_);
        std::vector<net::NodeId> local;
        for (net::NodeId p : peers_) {
          if (network_.cluster_of(p) == my_cluster) local.push_back(p);
        }
        if (!local.empty()) return local[rng_.below(local.size())];
      }
      return peers_[rng_.below(peers_.size())];
    }
  }
  return peers_.front();
}

void SimWorker::evict(DepartReason reason) {
  if (state_ == State::kDeparting || terminated()) return;
  // An in-flight steal may yet deliver a closure (possibly on a
  // retransmitted reply).  The victim's ledger only redoes work for thieves
  // that die, so departing now would strand it; wait for the reply and let
  // the closure migrate out with the rest.
  if (steal_in_flight_) {
    pending_evict_ = reason;
    return;
  }
  depart(reason);
}

void SimWorker::reclaim_by_owner() { evict(DepartReason::kOwnerReclaimed); }

void SimWorker::preempt_by_scheduler() { evict(DepartReason::kPreempted); }

void SimWorker::crash() {
  if (terminated()) return;
  core_.trace_instant(obs::EventType::kCrash, ClosureId{}, 0);
  state_ = State::kDead;
  end_time_ = sim_.now();
  heartbeat_timer_.stop();
  update_timer_.stop();
  if (step_scheduled_) {
    sim_.cancel(step_event_);
    step_scheduled_ = false;
  }
  network_.partition(me_);
  if (on_terminated_) on_terminated_(state_);
}

void SimWorker::rejoin() {
  if (state_ == State::kDeparting) {
    // The restart raced the durability handshake: finish departing (the
    // cargo's redo ownership must land somewhere) and come back after.
    pending_rejoin_ = true;
    return;
  }
  if (state_ != State::kDead && state_ != State::kDeparted) return;
  network_.partition(me_, false);  // the replacement machine comes online
  ++incarnation_;
  // Survivors redo everything the dead life had stolen; the new life starts
  // empty but keeps its id allocator (late messages addressed to the old
  // incarnation must not land in new closures).  peers_ and known_epoch_
  // survive as the base the registration delta is applied against.
  // forward_to_ and the fill log survive too: the stub obligation for the
  // previous life's migrated closures outlives it (arguments addressed here
  // keep arriving, and a kReroute may still ask for a replay).  Locally
  // unknown fills forward; the ArgumentMsg ttl bounds any stub cycle.
  core_.reset_for_rejoin();
  seen_migrations_.clear();
  register_backoff_ = 0;
  steal_in_flight_ = false;
  pending_evict_.reset();
  consecutive_failed_steals_ = 0;
  cpu_debt_ = 0;
  outbox_.clear();
  depart_reason_.reset();
  state_ = State::kCreated;
  start();
}

void SimWorker::emit_io(const std::string& text) {
  client_.send_oneway(proto::kIo, proto::IoMsg{me_, text}.encode());
}

}  // namespace phish::rt
