#include "runtime/simdist/owner_trace.hpp"

#include <algorithm>

namespace phish::rt {

OwnerTrace OwnerTrace::always_idle() { return OwnerTrace{}; }

OwnerTrace OwnerTrace::always_busy() {
  OwnerTrace t;
  t.busy_forever_ = true;
  return t;
}

OwnerTrace OwnerTrace::intervals(std::vector<Interval> busy) {
  std::sort(busy.begin(), busy.end());
  OwnerTrace t;
  for (const Interval& iv : busy) {
    if (iv.second <= iv.first) continue;  // empty
    if (!t.busy_.empty() && iv.first <= t.busy_.back().second) {
      t.busy_.back().second = std::max(t.busy_.back().second, iv.second);
    } else {
      t.busy_.push_back(iv);
    }
  }
  return t;
}

OwnerTrace OwnerTrace::poisson_sessions(std::uint64_t seed,
                                        sim::SimTime mean_gap,
                                        sim::SimTime mean_session,
                                        sim::SimTime horizon) {
  Xoshiro256 rng(seed);
  std::vector<Interval> busy;
  sim::SimTime t = 0;
  while (t < horizon) {
    t += static_cast<sim::SimTime>(
        rng.exponential(static_cast<double>(mean_gap)));
    if (t >= horizon) break;
    const auto len = static_cast<sim::SimTime>(
        rng.exponential(static_cast<double>(mean_session)));
    busy.emplace_back(t, std::min(t + std::max<sim::SimTime>(len, 1), horizon));
    t += len;
  }
  return intervals(std::move(busy));
}

OwnerTrace OwnerTrace::nine_to_five(sim::SimTime day_length,
                                    sim::SimTime work_start,
                                    sim::SimTime work_end, int days) {
  std::vector<Interval> busy;
  for (int d = 0; d < days; ++d) {
    const sim::SimTime base = static_cast<sim::SimTime>(d) * day_length;
    busy.emplace_back(base + work_start, base + work_end);
  }
  return intervals(std::move(busy));
}

bool OwnerTrace::busy_at(sim::SimTime t) const {
  if (busy_forever_) return true;
  // First interval with start > t; the candidate is its predecessor.
  auto it = std::upper_bound(
      busy_.begin(), busy_.end(), t,
      [](sim::SimTime v, const Interval& iv) { return v < iv.first; });
  if (it == busy_.begin()) return false;
  --it;
  return t < it->second;
}

std::optional<sim::SimTime> OwnerTrace::next_transition_after(
    sim::SimTime t) const {
  if (busy_forever_) return std::nullopt;
  for (const Interval& iv : busy_) {
    if (iv.first > t) return iv.first;
    if (iv.second > t) return iv.second;
  }
  return std::nullopt;
}

sim::SimTime OwnerTrace::busy_time(sim::SimTime horizon) const {
  if (busy_forever_) return horizon;
  sim::SimTime total = 0;
  for (const Interval& iv : busy_) {
    if (iv.first >= horizon) break;
    total += std::min(iv.second, horizon) - iv.first;
  }
  return total;
}

}  // namespace phish::rt
