#include "runtime/simdist/macro_cluster.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace phish::rt {

MacroCluster::MacroCluster(const TaskRegistry& registry, MacroConfig config)
    : registry_(registry),
      config_(config),
      network_(sim_, config.net),
      timers_(sim_),
      seeder_(config.seed) {
  const net::NodeId jobq_node = alloc_node();
  jobq_rpc_ = std::make_unique<net::RpcNode>(network_.channel(jobq_node),
                                             timers_);
  jobq_ = std::make_unique<PhishJobQ>(*jobq_rpc_, config_.assign_policy);
  jobq_->start();
}

int MacroCluster::add_workstation(OwnerTrace trace,
                                  std::unique_ptr<IdlenessPolicy> policy) {
  if (started_) {
    throw std::logic_error("MacroCluster: add workstations before run()");
  }
  if (!policy) policy = std::make_unique<NobodyLoggedIn>();
  const net::NodeId node = alloc_node();
  managers_.push_back(std::make_unique<PhishJobManager>(
      sim_, network_, timers_, registry_, node, jobq_rpc_->id(),
      std::move(trace), std::move(policy), config_.manager, config_.worker,
      [this] { return alloc_node(); }, seeder_.next()));
  return static_cast<int>(managers_.size()) - 1;
}

std::uint64_t MacroCluster::submit_job(std::string name,
                                       const std::string& root_task,
                                       std::vector<Value> args,
                                       sim::SimTime at) {
  if (started_) {
    throw std::logic_error("MacroCluster: submit jobs before run()");
  }
  auto job = std::make_unique<Job>();
  job->record.name = std::move(name);
  job->record.submitted_at = at;
  job->root_task = root_task;
  job->args = std::move(args);

  // Stand up the Clearinghouse now (its node id must be in the JobSpec);
  // start it and the first worker at submission time.
  const net::NodeId ch_node = alloc_node();
  job->ch_rpc = std::make_unique<net::RpcNode>(network_.channel(ch_node),
                                               timers_);
  job->clearinghouse = std::make_unique<Clearinghouse>(
      *job->ch_rpc, timers_, config_.clearinghouse);

  JobSpec spec;
  spec.name = job->record.name;
  spec.root_task = root_task;
  spec.clearinghouse = ch_node;
  job->record.job_id = jobq_->submit(spec);

  Job* raw = job.get();
  sim_.schedule_at(at, [this, raw] { launch_job(*raw); });
  jobs_.push_back(std::move(job));
  return jobs_.back()->record.job_id;
}

void MacroCluster::launch_job(Job& job) {
  job.clearinghouse->start();
  const std::uint64_t job_id = job.record.job_id;
  job.clearinghouse->set_on_result([this, &job, job_id](const Value& value) {
    job.record.completed = true;
    job.record.completed_at = sim_.now();
    job.record.result = value;
    // In the prototype the submitting program notifies the JobQ; here the
    // harness plays that role with a direct call (same machine, same
    // process in the paper's default deployment).
    jobq_->complete(job_id);
  });
  // First worker on the submitting workstation, carrying the root task.
  job.first_worker = std::make_unique<SimWorker>(
      sim_, network_, timers_, registry_, alloc_node(),
      std::vector<net::NodeId>{job.ch_rpc->id()}, config_.worker,
      seeder_.next());
  job.first_worker->set_root(registry_.id_of(job.root_task), job.args);
  job.first_worker->start();
}

std::vector<JobRecord> MacroCluster::run() {
  if (!started_) {
    started_ = true;
    for (auto& m : managers_) m->start();
  }
  constexpr sim::SimTime kSlice = sim::kSecond;
  for (;;) {
    sim_.run_until(sim_.now() + kSlice);
    if (sim_.now() > config_.max_sim_time) {
      throw std::runtime_error("MacroCluster: jobs did not complete in time");
    }
    bool all_done = true;
    for (const auto& job : jobs_) {
      if (!job->record.completed) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
  }
  // Let shutdowns and unregisters drain.
  sim_.run_until(sim_.now() + 5 * sim::kSecond);
  return collect();
}

std::vector<JobRecord> MacroCluster::run_until(sim::SimTime deadline) {
  if (!started_) {
    started_ = true;
    for (auto& m : managers_) m->start();
  }
  sim_.run_until(deadline);
  return collect();
}

std::vector<JobRecord> MacroCluster::collect() {
  const auto by_job = jobq_->assignments_by_job();
  std::vector<JobRecord> records;
  for (const auto& job : jobs_) {
    JobRecord r = job->record;
    auto it = by_job.find(r.job_id);
    r.assignments = it == by_job.end() ? 0 : it->second;
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace phish::rt
