#include "runtime/simdist/macro_cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace phish::rt {

MacroCluster::MacroCluster(const TaskRegistry& registry, MacroConfig config)
    : registry_(registry),
      config_(config),
      network_(sim_, config.net),
      timers_(sim_),
      seeder_(config.seed) {
  const net::NodeId jobq_node = alloc_node();
  jobq_rpc_ = std::make_unique<net::RpcNode>(network_.channel(jobq_node),
                                             timers_);
  jobq_ = std::make_unique<PhishJobQ>(*jobq_rpc_, config_.assign_policy);
  jobq_->start();
  for (const auto& [tenant, tenant_config] : config_.tenants) {
    jobq_->configure_tenant(tenant, tenant_config);
  }
  jobq_->set_preempt_batch(config_.preempt_batch);
  // Record when the first workstation joins each job (PhishJobD's
  // submit-to-first-task latency) and forward to any user hook.
  jobq_->set_on_assign([this](std::uint64_t job_id, net::NodeId who) {
    for (auto& job : jobs_) {
      if (job->record.job_id == job_id) {
        if (job->record.first_assigned_at == 0) {
          job->record.first_assigned_at = sim_.now();
        }
        break;
      }
    }
    if (on_assign_user_) on_assign_user_(job_id, who);
  });
  // Preemption transport: the JobQ names a victim workstation; ask its
  // manager (over RPC, retried like any control message) to evict the
  // worker through the migration path.
  jobq_->set_preempt_fn([this](const PreemptRequest& req) {
    jobq_rpc_->call(req.workstation, proto::kRpcPreempt,
                    proto::PreemptMsg{req.victim_job, req.for_job}.encode(),
                    [](net::RpcResult) {}, config_.manager.rpc_policy);
  });
}

int MacroCluster::add_workstation(OwnerTrace trace,
                                  std::unique_ptr<IdlenessPolicy> policy) {
  if (started_) {
    throw std::logic_error("MacroCluster: add workstations before run()");
  }
  if (!policy) policy = std::make_unique<NobodyLoggedIn>();
  const net::NodeId node = alloc_node();
  managers_.push_back(std::make_unique<PhishJobManager>(
      sim_, network_, timers_, registry_, node, jobq_rpc_->id(),
      std::move(trace), std::move(policy), config_.manager, config_.worker,
      [this] { return alloc_node(); }, seeder_.next()));
  return static_cast<int>(managers_.size()) - 1;
}

std::uint64_t MacroCluster::submit_job(std::string name,
                                       const std::string& root_task,
                                       std::vector<Value> args,
                                       sim::SimTime at, std::string tenant,
                                       std::uint8_t priority) {
  if (started_) {
    throw std::logic_error(
        "MacroCluster: submit jobs before run() (or use submit_job_dynamic)");
  }
  return enqueue_job(std::move(name), root_task, std::move(args), at,
                     std::move(tenant), priority, /*job_id=*/0);
}

std::uint64_t MacroCluster::submit_job_dynamic(std::string name,
                                               const std::string& root_task,
                                               std::vector<Value> args,
                                               std::string tenant,
                                               std::uint8_t priority,
                                               std::uint64_t job_id) {
  return enqueue_job(std::move(name), root_task, std::move(args), sim_.now(),
                     std::move(tenant), priority, job_id);
}

std::uint64_t MacroCluster::enqueue_job(std::string name,
                                        const std::string& root_task,
                                        std::vector<Value> args,
                                        sim::SimTime at, std::string tenant,
                                        std::uint8_t priority,
                                        std::uint64_t job_id) {
  if (priority >= kPriorityClasses) {
    throw std::invalid_argument("MacroCluster: bad priority class");
  }
  if (job_id == 0) job_id = next_job_id_;
  next_job_id_ = std::max(next_job_id_, job_id) + 1;

  auto job = std::make_unique<Job>();
  job->record.job_id = job_id;
  job->record.name = std::move(name);
  job->record.tenant = tenant.empty() ? kDefaultTenant : std::move(tenant);
  job->record.priority = priority;
  job->record.submitted_at = at;
  job->root_task = root_task;
  job->args = std::move(args);

  // Stand up the Clearinghouse object now (its node id must be in the
  // JobSpec); it starts — and the job enters the JobQ pool — at `at`.
  const net::NodeId ch_node = alloc_node();
  job->ch_rpc = std::make_unique<net::RpcNode>(network_.channel(ch_node),
                                               timers_);
  job->clearinghouse = std::make_unique<Clearinghouse>(
      *job->ch_rpc, timers_, config_.clearinghouse);

  Job* raw = job.get();
  sim_.schedule_at(std::max(at, sim_.now()), [this, raw] {
    launch_job(*raw);
  });
  jobs_.push_back(std::move(job));
  return job_id;
}

void MacroCluster::launch_job(Job& job) {
  job.clearinghouse->start();
  const std::uint64_t job_id = job.record.job_id;
  job.clearinghouse->set_on_result([this, &job, job_id](const Value& value) {
    job.record.completed = true;
    job.record.completed_at = sim_.now();
    job.record.result = value;
    // In the prototype the submitting program notifies the JobQ; here the
    // harness plays that role with a direct call (same machine, same
    // process in the paper's default deployment).
    jobq_->complete(job_id);
    if (on_job_complete_) {
      JobRecord record = job.record;
      const auto by_job = jobq_->assignments_by_job();
      const auto it = by_job.find(job_id);
      record.assignments = it == by_job.end() ? 0 : it->second;
      on_job_complete_(record);
    }
  });
  // Enter the JobQ pool.  "This simple command ... automatically submits the
  // job to the PhishJobQ" — submission time is when idle workstations can
  // first see the job, and (kFairShare) when preemption may trigger.
  JobSpec spec;
  spec.job_id = job_id;
  spec.name = job.record.name;
  spec.root_task = job.root_task;
  spec.clearinghouse = job.ch_rpc->id();
  spec.tenant = job.record.tenant;
  spec.priority = job.record.priority;
  jobq_->submit(std::move(spec));
  // First worker on the submitting workstation, carrying the root task.
  job.first_worker = std::make_unique<SimWorker>(
      sim_, network_, timers_, registry_, alloc_node(),
      std::vector<net::NodeId>{job.ch_rpc->id()}, config_.worker,
      seeder_.next());
  job.first_worker->set_root(registry_.id_of(job.root_task), job.args);
  job.first_worker->start();
}

std::vector<JobRecord> MacroCluster::run() {
  if (!started_) {
    started_ = true;
    for (auto& m : managers_) m->start();
  }
  constexpr sim::SimTime kSlice = sim::kSecond;
  for (;;) {
    sim_.run_until(sim_.now() + kSlice);
    if (sim_.now() > config_.max_sim_time) {
      throw std::runtime_error("MacroCluster: jobs did not complete in time");
    }
    bool all_done = true;
    for (const auto& job : jobs_) {
      if (!job->record.completed) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
  }
  // Let shutdowns and unregisters drain.
  sim_.run_until(sim_.now() + 5 * sim::kSecond);
  return collect();
}

std::vector<JobRecord> MacroCluster::run_until(sim::SimTime deadline) {
  if (!started_) {
    started_ = true;
    for (auto& m : managers_) m->start();
  }
  sim_.run_until(deadline);
  return collect();
}

std::vector<JobRecord> MacroCluster::collect() {
  const auto by_job = jobq_->assignments_by_job();
  std::vector<JobRecord> records;
  for (const auto& job : jobs_) {
    JobRecord r = job->record;
    auto it = by_job.find(r.job_id);
    r.assignments = it == by_job.end() ? 0 : it->second;
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace phish::rt
