// SimCluster: a simulated network of workstations running one Phish job.
//
// This is the harness behind Figures 4 and 5 and Table 2: it stands up a
// Clearinghouse and P workers on a SimNetwork, starts the workers at
// (nearly) the same time — the paper: "we attempted to start each
// participating computer at as close to the same time as possible" — runs
// the simulator until the job completes and every participant has wound
// down, and reports per-participant lifetimes T_P(i), the aggregated
// scheduling statistics, and message counts.
//
// Fault injection (crash_at) and owner reclaims (reclaim_at) drive the
// fault-tolerance and adaptive-parallelism experiments.
#pragma once

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/clearinghouse.hpp"
#include "core/recovery.hpp"
#include "net/fault.hpp"
#include "obs/clock.hpp"
#include "obs/tracer.hpp"
#include "runtime/simdist/sim_worker.hpp"

namespace phish::rt {

struct SimJobConfig {
  int participants = 4;
  net::SimNetParams net;
  SimWorkerParams worker;
  ClearinghouseConfig clearinghouse;
  std::uint64_t seed = 0x5eed'0000'0020ULL;
  /// Worker i starts at i * start_stagger + jitter in [0, start_jitter].
  sim::SimTime start_stagger = 0;
  sim::SimTime start_jitter = 20 * sim::kMillisecond;
  /// Scheduling policies (ablations).
  ExecOrder exec_order = ExecOrder::kLifo;
  StealOrder steal_order = StealOrder::kFifo;
  /// Per-worker network cluster assignment (heterogeneous-network
  /// extension); empty = everyone in cluster 0.  The Clearinghouse sits in
  /// cluster 0.
  std::vector<int> worker_clusters;
  /// Give up if the job has not completed by this much simulated time.
  sim::SimTime max_sim_time = 3'600 * sim::kSecond;
  /// Run a warm-standby Clearinghouse replica (node P+1): the primary pushes
  /// epoch-numbered state deltas to it, and it promotes itself when the
  /// primary misses its lease.  Off by default so failure-free measurement
  /// runs carry no replication traffic.
  bool enable_backup = false;
  /// Optional event tracer (virtual-clock domain).  Worker i writes to
  /// tracer->shard(i + 1); the Clearinghouse's RPC traffic goes to shard 0.
  obs::Tracer* tracer = nullptr;
};

/// A consistent snapshot of a running job (paper §6: "support for
/// checkpointing").  Taken at a network-quiescent simulated instant, so the
/// per-worker closure states are jointly complete: every task in the job is
/// in exactly one ready list or waiting table, with no dataflow in flight.
struct JobCheckpoint {
  sim::SimTime taken_at = 0;
  std::vector<Bytes> worker_states;  // indexed by worker

  Bytes encode() const;
  static std::optional<JobCheckpoint> decode(const Bytes& bytes);
};

struct SimJobResult {
  Value value;
  /// Simulated seconds from first worker start to result at Clearinghouse.
  double makespan_seconds = 0.0;
  /// Per-participant lifetime T_P(i) in seconds, in worker order.
  std::vector<double> participant_seconds;
  /// Average of participant_seconds (the paper's Figure 4 quantity).
  double average_participant_seconds = 0.0;
  WorkerStats aggregate;
  std::vector<WorkerStats> per_worker;
  /// Messages sent, summed over workers (Table 2's "Messages sent").
  std::uint64_t messages_sent = 0;
  /// Messages that crossed a cluster cut (topology extension).
  std::uint64_t inter_cluster_messages = 0;
  std::uint64_t events_fired = 0;
  std::vector<proto::IoMsg> io_log;
};

class SimCluster {
 public:
  SimCluster(const TaskRegistry& registry, SimJobConfig config);

  /// Schedule a crash of worker `index` at simulated time `when`.
  void crash_at(int index, sim::SimTime when);
  /// Schedule an owner reclaim of worker `index` at simulated time `when`.
  void reclaim_at(int index, sim::SimTime when);
  /// Schedule a rejoin of a (by-then crashed) worker: fresh incarnation,
  /// re-registers into the running job and starts stealing.
  void rejoin_at(int index, sim::SimTime when);
  /// Schedule a crash of the primary Clearinghouse (requires enable_backup
  /// for the job to survive it).
  void crash_primary_at(sim::SimTime when);
  /// Install a whole fault schedule before run(): the plan's link rules are
  /// injected natively into the simulated network (virtual-time drop /
  /// duplicate / reorder / delay) and its node events are scheduled —
  /// kCrash -> SimWorker::crash, kReclaim -> reclaim_by_owner, kPartition /
  /// kHeal / kRestart -> network partition toggles.
  void apply_fault_plan(const net::FaultPlan& plan);

  /// Run root(args...) to completion and collect the results.
  /// Throws std::runtime_error if the job does not finish in max_sim_time.
  SimJobResult run(TaskId root, std::vector<Value> args);

  /// Resume a job from a checkpoint taken on a cluster with the same
  /// participant count (the fresh cluster's workers adopt the checkpointed
  /// closure states after registering).
  SimJobResult resume(const JobCheckpoint& checkpoint);

  /// Ask the checkpoint service to snapshot the job at (the first
  /// network-quiescent instant after) `when`.  Call before run().  The
  /// snapshot, if one was taken before the job finished, is available from
  /// checkpoint() afterwards.
  void request_checkpoint_at(sim::SimTime when);
  const std::optional<JobCheckpoint>& checkpoint() const {
    return checkpoint_;
  }

  // Access for white-box tests.
  sim::Simulator& simulator() { return sim_; }
  net::SimNetwork& network() { return network_; }
  Clearinghouse& clearinghouse() { return *clearinghouse_; }
  /// The warm standby, or nullptr when enable_backup is off.
  Clearinghouse* backup() { return backup_.get(); }
  /// Whichever replica is currently acting as coordinator.
  Clearinghouse& acting_clearinghouse();
  RecoveryTracker& recovery() { return recovery_; }
  SimWorker& worker(int index) { return *workers_.at(index); }
  int participants() const { return config_.participants; }

 private:
  SimJobResult drive();
  void try_checkpoint();

  const TaskRegistry& registry_;
  SimJobConfig config_;
  std::optional<JobCheckpoint> checkpoint_;
  sim::Simulator sim_;
  obs::VirtualClock<sim::Simulator> virtual_clock_{sim_};
  net::SimNetwork network_;
  std::unique_ptr<net::FaultInjector> fault_injector_;
  net::SimTimerService timers_;
  std::unique_ptr<net::RpcNode> ch_rpc_;
  std::unique_ptr<Clearinghouse> clearinghouse_;
  std::unique_ptr<net::RpcNode> backup_rpc_;
  std::unique_ptr<Clearinghouse> backup_;
  RecoveryTracker recovery_;
  std::vector<std::unique_ptr<SimWorker>> workers_;
  bool ran_ = false;
};

/// One-call convenience used by the benches.
SimJobResult run_sim_job(const TaskRegistry& registry, TaskId root,
                         std::vector<Value> args, SimJobConfig config);

}  // namespace phish::rt
