// The PhishJobManager: the per-workstation macro-scheduler daemon.
//
// "The PhishJobManager, a background daemon, resides on every workstation
// that is part of the Phish network and tries to obtain a job from the
// PhishJobQ when the workstation becomes idle."  The prototype's polling
// cadence, reproduced here as defaults:
//   * while the owner is logged in, check for logout every 5 minutes;
//   * while idle with an empty job pool, request a job every 30 seconds;
//   * while a worker runs, check for the owner's return every 2 seconds —
//     and if the owner is back, terminate the worker (which first migrates
//     its tasks to another participant).
//
// Owner sovereignty: the idleness decision is delegated to an IdlenessPolicy
// over the workstation's OwnerTrace.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/jobq.hpp"
#include "runtime/simdist/owner_trace.hpp"
#include "runtime/simdist/sim_worker.hpp"

namespace phish::rt {

struct JobManagerParams {
  sim::SimTime logout_poll = 300 * sim::kSecond;  // paper: 5 minutes
  sim::SimTime job_poll = 30 * sim::kSecond;      // paper: 30 seconds
  sim::SimTime owner_poll = 2 * sim::kSecond;     // paper: 2 seconds
  net::RetryPolicy rpc_policy{200 * sim::kMillisecond, 5, 2.0};
};

class PhishJobManager {
 public:
  enum class State {
    kOwnerBusy,     // owner at the machine; poll for logout
    kWaitingReply,  // job request in flight
    kIdleNoJob,     // idle, pool was empty; poll for a job
    kRunningWorker, // worker process active; poll for the owner's return
  };

  struct Stats {
    std::uint64_t job_requests = 0;
    std::uint64_t jobs_received = 0;
    std::uint64_t empty_replies = 0;
    std::uint64_t workers_started = 0;
    std::uint64_t workers_reclaimed = 0;
    std::uint64_t workers_preempted = 0;  // evicted for higher-priority work
    std::uint64_t workers_self_terminated = 0;
    std::uint64_t workers_lost_offline = 0;  // machine churn killed a worker
    sim::SimTime harvested_time = 0;  // total time a worker was running
  };

  PhishJobManager(sim::Simulator& simulator, net::SimNetwork& network,
                  net::TimerService& timers, const TaskRegistry& registry,
                  net::NodeId me, net::NodeId jobq, OwnerTrace trace,
                  std::unique_ptr<IdlenessPolicy> policy,
                  JobManagerParams params, SimWorkerParams worker_params,
                  std::function<net::NodeId()> alloc_node,
                  std::uint64_t seed);

  void start();

  /// Machine-level churn hook (the churn engine / availability bench): take
  /// the whole workstation dark — any running worker crashes with no
  /// migrate-out courtesy and the manager stops polling — or bring it back
  /// online, at which point it resumes requesting jobs.  Distinct from an
  /// owner return (reclaim_by_owner), which departs gracefully.
  void set_offline(bool offline);
  bool offline() const noexcept { return offline_; }

  State state() const noexcept { return state_; }
  const Stats& stats() const noexcept { return stats_; }
  net::NodeId id() const noexcept { return me_; }
  /// Worker currently running on this workstation (nullptr when none).
  SimWorker* current_worker() {
    return workers_.empty() || workers_.back()->terminated()
               ? nullptr
               : workers_.back().get();
  }
  /// Every worker incarnation this workstation ever ran (terminated workers
  /// stay alive as forwarding stubs).
  const std::vector<std::unique_ptr<SimWorker>>& workers() const {
    return workers_;
  }
  /// Current job being worked on, if any.
  std::optional<std::uint64_t> current_job() const { return current_job_; }

 private:
  void poll();
  void schedule_poll(sim::SimTime delay);
  void request_job();
  void start_worker(const JobSpec& spec);
  void on_worker_terminated(SimWorker::State how);
  Bytes serve_preempt(const Bytes& args);
  void release_job(std::uint64_t job_id);
  bool idle_now() const { return policy_->idle(trace_, sim_.now()); }

  sim::Simulator& sim_;
  net::SimNetwork& network_;
  net::TimerService& timers_;
  const TaskRegistry& registry_;
  net::NodeId me_;
  net::NodeId jobq_;
  OwnerTrace trace_;
  std::unique_ptr<IdlenessPolicy> policy_;
  JobManagerParams params_;
  SimWorkerParams worker_params_;
  std::function<net::NodeId()> alloc_node_;
  std::uint64_t seed_;

  net::RpcNode rpc_;
  State state_ = State::kOwnerBusy;
  bool offline_ = false;
  Stats stats_;
  std::vector<std::unique_ptr<SimWorker>> workers_;
  std::optional<std::uint64_t> current_job_;
  sim::SimTime worker_started_at_ = 0;
  std::uint64_t worker_counter_ = 0;
};

}  // namespace phish::rt
