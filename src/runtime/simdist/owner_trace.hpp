// Owner activity traces: when is a workstation's owner using it?
//
// The paper's idleness policies are owner-defined ("some owners may decide
// that their machines are idle only when nobody is logged in; other owners
// may make their machines available so long as the CPU load is below some
// threshold").  The macro experiments drive PhishJobManagers with synthetic
// login/logout traces generated here; the IdlenessPolicy then interprets the
// trace.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace phish::rt {

/// Disjoint, sorted busy intervals [start, end).
class OwnerTrace {
 public:
  using Interval = std::pair<sim::SimTime, sim::SimTime>;

  /// Owner never touches the machine (the paper's measurement setting:
  /// "when doing this experiment, we used idle workstations").
  static OwnerTrace always_idle();

  /// Owner sits at the machine forever.
  static OwnerTrace always_busy();

  /// Explicit intervals; they are sorted and merged.
  static OwnerTrace intervals(std::vector<Interval> busy);

  /// Random sessions: idle gaps ~ Exp(mean_gap), sessions ~ Exp(mean_session),
  /// generated deterministically out to `horizon`.
  static OwnerTrace poisson_sessions(std::uint64_t seed, sim::SimTime mean_gap,
                                     sim::SimTime mean_session,
                                     sim::SimTime horizon);

  /// Office pattern: busy [work_start, work_end) each simulated "day".
  static OwnerTrace nine_to_five(sim::SimTime day_length,
                                 sim::SimTime work_start,
                                 sim::SimTime work_end, int days);

  bool busy_at(sim::SimTime t) const;

  /// First state-change time strictly after t, or nullopt if the trace is
  /// constant from t on.
  std::optional<sim::SimTime> next_transition_after(sim::SimTime t) const;

  /// Total busy time within [0, horizon).
  sim::SimTime busy_time(sim::SimTime horizon) const;

  const std::vector<Interval>& busy_intervals() const { return busy_; }

 private:
  std::vector<Interval> busy_;
  bool busy_forever_ = false;  // always_busy
};

/// Owner-sovereignty policy: decides "idle" vs "busy" from the trace.  The
/// paper's prototype uses NobodyLoggedIn; LoadBelowThreshold models the
/// "CPU load below some threshold" policy with a synthetic load signal
/// derived from the trace (busy => load 1.0, else background load).
class IdlenessPolicy {
 public:
  virtual ~IdlenessPolicy() = default;
  virtual bool idle(const OwnerTrace& trace, sim::SimTime now) const = 0;
  virtual const char* name() const = 0;
};

class NobodyLoggedIn final : public IdlenessPolicy {
 public:
  bool idle(const OwnerTrace& trace, sim::SimTime now) const override {
    return !trace.busy_at(now);
  }
  const char* name() const override { return "nobody-logged-in"; }
};

class LoadBelowThreshold final : public IdlenessPolicy {
 public:
  LoadBelowThreshold(double threshold, double background_load,
                     std::uint64_t seed)
      : threshold_(threshold), background_load_(background_load),
        seed_(seed) {}

  bool idle(const OwnerTrace& trace, sim::SimTime now) const override {
    if (trace.busy_at(now)) return false;  // owner present: load is 1.0
    // Background load: deterministic pseudo-random in [0, 2*background).
    Xoshiro256 rng(mix64(seed_ ^ (now / sim::kSecond)));
    const double load = rng.uniform() * 2.0 * background_load_;
    return load < threshold_;
  }
  const char* name() const override { return "load-below-threshold"; }

 private:
  double threshold_;
  double background_load_;
  std::uint64_t seed_;
};

}  // namespace phish::rt
