#include "runtime/simdist/job_manager.hpp"

#include "util/log.hpp"

namespace phish::rt {

PhishJobManager::PhishJobManager(
    sim::Simulator& simulator, net::SimNetwork& network,
    net::TimerService& timers, const TaskRegistry& registry, net::NodeId me,
    net::NodeId jobq, OwnerTrace trace, std::unique_ptr<IdlenessPolicy> policy,
    JobManagerParams params, SimWorkerParams worker_params,
    std::function<net::NodeId()> alloc_node, std::uint64_t seed)
    : sim_(simulator),
      network_(network),
      timers_(timers),
      registry_(registry),
      me_(me),
      jobq_(jobq),
      trace_(std::move(trace)),
      policy_(std::move(policy)),
      params_(params),
      worker_params_(worker_params),
      alloc_node_(std::move(alloc_node)),
      seed_(seed),
      rpc_(network.channel(me), timers) {}

void PhishJobManager::start() {
  // The JobQ may ask us to evict our worker for higher-priority work.
  rpc_.serve(proto::kRpcPreempt, [this](net::NodeId, const Bytes& args) {
    return serve_preempt(args);
  });
  // Decide the initial state from the trace and begin polling immediately.
  schedule_poll(0);
}

Bytes PhishJobManager::serve_preempt(const Bytes& args) {
  const auto msg = proto::PreemptMsg::decode(args);
  Writer w;
  SimWorker* worker = current_worker();
  // Only honour an eviction aimed at the job we are actually running — a
  // retransmitted preempt for a worker that already moved on must not kill
  // the successor.
  if (!msg || state_ != State::kRunningWorker || worker == nullptr ||
      !current_job_ || *current_job_ != msg->victim_job) {
    w.boolean(false);
    return w.take();
  }
  // Evict outside the RPC dispatch stack: the worker migrates its closures
  // to a surviving participant first (case (d)), then terminates, and
  // on_worker_terminated releases the grant and asks for the next job —
  // which fair share will make the high-priority one.
  sim_.schedule(0, [this, victim = msg->victim_job] {
    SimWorker* w = current_worker();
    if (state_ != State::kRunningWorker || w == nullptr || !current_job_ ||
        *current_job_ != victim) {
      return;
    }
    ++stats_.workers_preempted;
    w->preempt_by_scheduler();
  });
  w.boolean(true);
  return w.take();
}

void PhishJobManager::release_job(std::uint64_t job_id) {
  rpc_.call(jobq_, proto::kRpcReleaseJob,
            proto::ReleaseJobMsg{job_id}.encode(), [](net::RpcResult) {},
            params_.rpc_policy);
}

void PhishJobManager::schedule_poll(sim::SimTime delay) {
  sim_.schedule(delay, [this] { poll(); });
}

void PhishJobManager::set_offline(bool offline) {
  if (offline == offline_) return;
  offline_ = offline;
  if (offline_) {
    SimWorker* worker = current_worker();
    if (state_ == State::kRunningWorker && worker != nullptr) {
      // Machine churn: no migrate-out, no goodbye — the worker just dies.
      // on_worker_terminated still releases the grant; that RPC stands in
      // for the JobQ's own lease timeout noticing the dead workstation.
      ++stats_.workers_lost_offline;
      worker->crash();
    }
    return;  // poll() is gated on offline_; nothing else to stop
  }
  // Back online: restart the polling loop.  An in-flight job request keeps
  // its reply callback (kWaitingReply); everything else re-decides from the
  // owner trace.
  if (state_ != State::kWaitingReply) state_ = State::kOwnerBusy;
  schedule_poll(0);
}

void PhishJobManager::poll() {
  if (offline_) return;  // resumed explicitly by set_offline(false)
  switch (state_) {
    case State::kOwnerBusy:
      if (idle_now()) {
        request_job();
      } else {
        schedule_poll(params_.logout_poll);
      }
      break;
    case State::kIdleNoJob:
      if (!idle_now()) {
        state_ = State::kOwnerBusy;
        schedule_poll(params_.logout_poll);
      } else {
        request_job();
      }
      break;
    case State::kRunningWorker: {
      SimWorker* worker = current_worker();
      if (worker == nullptr) break;  // terminated; callback handles next step
      if (!idle_now()) {
        // "If the PhishJobManager discovers that the workstation is no
        // longer idle, it terminates the worker process."
        ++stats_.workers_reclaimed;
        worker->reclaim_by_owner();  // fires on_worker_terminated
      } else {
        schedule_poll(params_.owner_poll);
      }
      break;
    }
    case State::kWaitingReply:
      break;  // reply callback drives the next transition
  }
}

void PhishJobManager::request_job() {
  state_ = State::kWaitingReply;
  ++stats_.job_requests;
  rpc_.call(
      jobq_, proto::kRpcRequestJob, {},
      [this](net::RpcResult result) {
        if (state_ != State::kWaitingReply) return;
        if (offline_) {
          // The machine went dark with a request in flight.  Hand any grant
          // straight back so the assignment ledger stays balanced — the job
          // must not count this dead workstation as serving it.
          if (result.ok) {
            const auto assignment = JobAssignment::decode(result.reply);
            if (assignment && assignment->job) {
              release_job(assignment->job->job_id);
            }
          }
          state_ = State::kOwnerBusy;
          return;
        }
        if (!result.ok) {
          // JobQ unreachable; treat like an empty pool and retry.
          ++stats_.empty_replies;
          state_ = State::kIdleNoJob;
          schedule_poll(params_.job_poll);
          return;
        }
        auto assignment = JobAssignment::decode(result.reply);
        if (!assignment || !assignment->job) {
          ++stats_.empty_replies;
          state_ = State::kIdleNoJob;
          schedule_poll(params_.job_poll);
          return;
        }
        ++stats_.jobs_received;
        start_worker(*assignment->job);
      },
      params_.rpc_policy);
}

void PhishJobManager::start_worker(const JobSpec& spec) {
  if (!registry_.has(spec.root_task)) {
    PHISH_LOG(kError) << "jobmanager " << net::to_string(me_)
                      << ": unknown application '" << spec.root_task << "'";
    state_ = State::kIdleNoJob;
    schedule_poll(params_.job_poll);
    return;
  }
  const net::NodeId worker_node = alloc_node_();
  auto worker = std::make_unique<SimWorker>(
      sim_, network_, timers_, registry_, worker_node,
      std::vector<net::NodeId>{spec.clearinghouse}, worker_params_,
      mix64(seed_ ^ ++worker_counter_));
  worker->set_on_terminated([this](SimWorker::State how) {
    on_worker_terminated(how);
  });
  ++stats_.workers_started;
  current_job_ = spec.job_id;
  worker_started_at_ = sim_.now();
  state_ = State::kRunningWorker;
  workers_.push_back(std::move(worker));
  workers_.back()->start();
  schedule_poll(params_.owner_poll);
}

void PhishJobManager::on_worker_terminated(SimWorker::State how) {
  if (state_ != State::kRunningWorker) return;
  stats_.harvested_time += sim_.now() - worker_started_at_;
  const auto reason = workers_.back()->depart_reason();
  if (how != SimWorker::State::kDeparted ||
      (reason != SimWorker::DepartReason::kOwnerReclaimed &&
       reason != SimWorker::DepartReason::kPreempted)) {
    ++stats_.workers_self_terminated;
  }
  // Settle the fair-share ledger: this workstation no longer serves the job.
  if (current_job_) release_job(*current_job_);
  current_job_.reset();
  // Defer the next decision out of the worker's call stack.
  if (idle_now()) {
    state_ = State::kIdleNoJob;
    schedule_poll(1);  // the workstation is free: ask for another job now
  } else {
    state_ = State::kOwnerBusy;
    schedule_poll(1);
  }
}

}  // namespace phish::rt
