#include "runtime/simdist/sim_cluster.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace phish::rt {

namespace {
/// The Clearinghouse occupies node 0; workers occupy nodes 1..P.
constexpr net::NodeId kClearinghouseNode{0};

net::NodeId worker_node(int index) {
  return net::NodeId{static_cast<std::uint32_t>(index + 1)};
}
}  // namespace

SimCluster::SimCluster(const TaskRegistry& registry, SimJobConfig config)
    : registry_(registry),
      config_(config),
      network_(sim_, config.net),
      timers_(sim_) {
  if (config_.participants < 1) {
    throw std::invalid_argument("SimCluster: need at least one participant");
  }
  ch_rpc_ = std::make_unique<net::RpcNode>(network_.channel(kClearinghouseNode),
                                           timers_);
  ch_rpc_->set_jitter_seed(mix64(config_.seed ^ 0xc0de'0000ULL));
  if (config_.tracer != nullptr) {
    ch_rpc_->set_trace(
        config_.tracer->shard(
            static_cast<std::uint16_t>(kClearinghouseNode.value)),
        &virtual_clock_);
  }
  clearinghouse_ = std::make_unique<Clearinghouse>(*ch_rpc_, timers_,
                                                   config_.clearinghouse);
  clearinghouse_->set_recovery_tracker(&recovery_);
  // The replica ring every worker fails over across: primary first.
  std::vector<net::NodeId> replicas{kClearinghouseNode};
  if (config_.enable_backup) {
    const net::NodeId backup_node{
        static_cast<std::uint32_t>(config_.participants + 1)};
    replicas.push_back(backup_node);
    backup_rpc_ =
        std::make_unique<net::RpcNode>(network_.channel(backup_node), timers_);
    backup_rpc_->set_jitter_seed(mix64(config_.seed ^ 0xc0de'0001ULL));
    backup_ = std::make_unique<Clearinghouse>(*backup_rpc_, timers_,
                                              config_.clearinghouse);
    backup_->set_recovery_tracker(&recovery_);
  }
  Xoshiro256 seeder(config_.seed);
  for (int i = 0; i < config_.participants; ++i) {
    if (static_cast<std::size_t>(i) < config_.worker_clusters.size()) {
      network_.set_cluster(worker_node(i), config_.worker_clusters[i]);
    }
    workers_.push_back(std::make_unique<SimWorker>(
        sim_, network_, timers_, registry_, worker_node(i), replicas,
        config_.worker, seeder.fork(i + 1).next(),
        config_.exec_order, config_.steal_order));
    workers_.back()->set_recovery_tracker(&recovery_);
    if (config_.tracer != nullptr) {
      workers_.back()->set_trace(
          config_.tracer->shard(
              static_cast<std::uint16_t>(worker_node(i).value)),
          &virtual_clock_);
    }
  }
}

void SimCluster::crash_at(int index, sim::SimTime when) {
  sim_.schedule_at(when, [this, index] { workers_.at(index)->crash(); });
}

void SimCluster::reclaim_at(int index, sim::SimTime when) {
  sim_.schedule_at(when, [this, index] {
    workers_.at(index)->reclaim_by_owner();
  });
}

void SimCluster::rejoin_at(int index, sim::SimTime when) {
  sim_.schedule_at(when, [this, index] { workers_.at(index)->rejoin(); });
}

void SimCluster::crash_primary_at(sim::SimTime when) {
  sim_.schedule_at(when, [this] { clearinghouse_->halt(); });
}

Clearinghouse& SimCluster::acting_clearinghouse() {
  if (backup_ != nullptr && backup_->acting_primary() &&
      !clearinghouse_->acting_primary()) {
    return *backup_;
  }
  return *clearinghouse_;
}

void SimCluster::apply_fault_plan(const net::FaultPlan& plan) {
  if (!plan.links.empty()) {
    fault_injector_ = std::make_unique<net::FaultInjector>(plan);
    network_.set_fault_injector(fault_injector_.get());
  }
  for (const net::NodeEvent& e : plan.events) {
    if (e.worker == net::kCoordinatorWorker) {
      // The coordinator cannot migrate or rejoin; only crash (halt) and
      // transient cuts make sense for it.
      switch (e.kind) {
        case net::NodeFaultKind::kCrash:
        case net::NodeFaultKind::kReclaim:
          crash_primary_at(e.at_ns);
          break;
        case net::NodeFaultKind::kPartition:
          sim_.schedule_at(e.at_ns,
                           [this] { network_.partition(kClearinghouseNode); });
          break;
        case net::NodeFaultKind::kHeal:
        case net::NodeFaultKind::kRestart:
          sim_.schedule_at(e.at_ns, [this] {
            network_.partition(kClearinghouseNode, false);
          });
          break;
      }
      continue;
    }
    if (e.worker < 0 || e.worker >= config_.participants) {
      throw std::invalid_argument("apply_fault_plan: worker index " +
                                  std::to_string(e.worker) + " out of range");
    }
    switch (e.kind) {
      case net::NodeFaultKind::kCrash:
        crash_at(e.worker, e.at_ns);
        break;
      case net::NodeFaultKind::kReclaim:
        reclaim_at(e.worker, e.at_ns);
        break;
      case net::NodeFaultKind::kPartition:
        sim_.schedule_at(e.at_ns, [this, w = e.worker] {
          network_.partition(worker_node(w));
        });
        break;
      case net::NodeFaultKind::kHeal:
        sim_.schedule_at(e.at_ns, [this, w = e.worker] {
          // A crashed worker stays dead; only a network cut heals.
          if (workers_.at(w)->state() != SimWorker::State::kDead) {
            network_.partition(worker_node(w), false);
          }
        });
        break;
      case net::NodeFaultKind::kRestart:
        sim_.schedule_at(e.at_ns, [this, w = e.worker] {
          // A crashed worker comes back as a fresh incarnation, and so does
          // a departed one (churn: the owner left and the workstation is
          // idle again) — including one still mid-handshake, which defers
          // the rejoin until the departure completes; a merely partitioned
          // one just gets its cut healed.
          const auto s = workers_.at(w)->state();
          if (s == SimWorker::State::kDead ||
              s == SimWorker::State::kDeparted ||
              s == SimWorker::State::kDeparting) {
            workers_.at(w)->rejoin();
          } else {
            network_.partition(worker_node(w), false);
          }
        });
        break;
    }
  }
}

Bytes JobCheckpoint::encode() const {
  Writer w;
  w.u64(taken_at);
  w.u32(static_cast<std::uint32_t>(worker_states.size()));
  for (const Bytes& state : worker_states) {
    w.blob(state.data(), state.size());
  }
  return w.take();
}

std::optional<JobCheckpoint> JobCheckpoint::decode(const Bytes& bytes) {
  Reader r(bytes);
  JobCheckpoint c;
  c.taken_at = r.u64();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > (1u << 16)) return std::nullopt;
  for (std::uint32_t i = 0; i < n; ++i) c.worker_states.push_back(r.blob());
  if (!r.done()) return std::nullopt;
  return c;
}

SimJobResult SimCluster::run(TaskId root, std::vector<Value> args) {
  if (ran_) throw std::logic_error("SimCluster::run may only be called once");
  ran_ = true;
  workers_[0]->set_root(root, std::move(args));
  return drive();
}

SimJobResult SimCluster::resume(const JobCheckpoint& checkpoint) {
  if (ran_) throw std::logic_error("SimCluster::run may only be called once");
  if (checkpoint.worker_states.size() !=
      static_cast<std::size_t>(config_.participants)) {
    throw std::invalid_argument(
        "SimCluster::resume: checkpoint has " +
        std::to_string(checkpoint.worker_states.size()) +
        " worker states but this cluster has " +
        std::to_string(config_.participants) + " participants");
  }
  ran_ = true;
  for (int i = 0; i < config_.participants; ++i) {
    workers_[i]->set_restore_state(
        checkpoint.worker_states[static_cast<std::size_t>(i)]);
  }
  return drive();
}

void SimCluster::request_checkpoint_at(sim::SimTime when) {
  sim_.schedule_at(when, [this] { try_checkpoint(); });
}

void SimCluster::try_checkpoint() {
  if (checkpoint_.has_value()) return;           // already have one
  if (clearinghouse_->result().has_value()) return;  // job over: pointless
  bool quiescent = network_.messages_in_flight() == 0;
  for (const auto& w : workers_) {
    if (w->terminated() || w->state() != SimWorker::State::kActive ||
        !w->checkpoint_quiescent()) {
      quiescent = false;
      break;
    }
  }
  if (!quiescent) {
    // Dataflow (or a worker's buffered sends) is in flight: a snapshot now
    // would miss it.  Try again shortly; quiescent instants are frequent
    // because sends flush at task boundaries.
    sim_.schedule(sim::kMillisecond, [this] { try_checkpoint(); });
    return;
  }
  JobCheckpoint checkpoint;
  checkpoint.taken_at = sim_.now();
  for (const auto& w : workers_) {
    checkpoint.worker_states.push_back(w->export_core_state());
  }
  checkpoint_ = std::move(checkpoint);
  PHISH_LOG(kInfo) << "checkpoint taken at t="
                   << sim::to_seconds(sim_.now()) << "s";
}

SimJobResult SimCluster::drive() {
  clearinghouse_->start();
  if (backup_ != nullptr) {
    backup_->start_standby(kClearinghouseNode);
    clearinghouse_->set_standby(backup_rpc_->id());
  }
  sim::SimTime result_time = 0;
  const auto record_result = [this, &result_time](const Value&) {
    if (result_time == 0) result_time = sim_.now();
  };
  clearinghouse_->set_on_result(record_result);
  if (backup_ != nullptr) backup_->set_on_result(record_result);
  const auto job_result = [this]() -> std::optional<Value> {
    auto v = clearinghouse_->result();
    if (!v && backup_ != nullptr) v = backup_->result();
    return v;
  };

  Xoshiro256 start_rng(mix64(config_.seed ^ 0x57a7ULL));
  sim::SimTime first_start = ~sim::SimTime{0};
  for (int i = 0; i < config_.participants; ++i) {
    // Worker 0 carries the root and starts first: it models the submitting
    // workstation, whose worker exists before any other joins the job.
    const sim::SimTime when =
        static_cast<sim::SimTime>(i) * config_.start_stagger +
        (i > 0 && config_.start_jitter > 0
             ? 1 + start_rng.below(config_.start_jitter)
             : 0);
    first_start = std::min(first_start, when);
    sim_.schedule_at(when, [this, i] { workers_[i]->start(); });
  }

  // Drive the simulation until the job completes and every worker has wound
  // down (or the time budget expires).
  constexpr sim::SimTime kSlice = 100 * sim::kMillisecond;
  for (;;) {
    sim_.run_until(sim_.now() + kSlice);
    if (sim_.now() > config_.max_sim_time) {
      throw std::runtime_error(
          "SimCluster: job did not complete within max_sim_time (simulated " +
          std::to_string(sim::to_seconds(sim_.now())) + " s)");
    }
    if (!job_result().has_value()) continue;
    bool all_done = true;
    for (const auto& w : workers_) {
      if (!w->terminated()) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    // Give shutdown broadcasts a grace period, then force any stragglers
    // (e.g. a worker that registered after the result arrived).
    if (sim_.now() > result_time + 5 * sim::kSecond) {
      for (auto& w : workers_) {
        if (!w->terminated()) w->reclaim_by_owner();
      }
    }
  }
  clearinghouse_->stop();
  if (backup_ != nullptr) backup_->stop();
  // Drain residual traffic (stats reports, unregisters), then detach the
  // callbacks that capture this frame's result_time.
  sim_.run_until(sim_.now() + sim::kSecond);
  clearinghouse_->set_on_result({});
  if (backup_ != nullptr) backup_->set_on_result({});

  SimJobResult result;
  const auto value = job_result();
  if (!value) throw std::runtime_error("SimCluster: no result recorded");
  result.value = *value;
  result.makespan_seconds = sim::to_seconds(result_time - first_start);
  StatsSnapshot snap =
      collect_stats(workers_, [](const auto& w) { return w->stats(); });
  result.aggregate = std::move(snap.aggregate);
  result.per_worker = std::move(snap.per_worker);
  for (const auto& w : workers_) {
    result.participant_seconds.push_back(sim::to_seconds(w->lifetime()));
    result.messages_sent += w->channel_stats().messages_sent;
  }
  double total = 0.0;
  for (double t : result.participant_seconds) total += t;
  result.average_participant_seconds =
      total / static_cast<double>(result.participant_seconds.size());
  result.inter_cluster_messages = network_.inter_cluster_messages();
  result.events_fired = sim_.events_fired();
  result.io_log = acting_clearinghouse().io_log();
  return result;
}

SimJobResult run_sim_job(const TaskRegistry& registry, TaskId root,
                         std::vector<Value> args, SimJobConfig config) {
  SimCluster cluster(registry, config);
  return cluster.run(root, std::move(args));
}

}  // namespace phish::rt
