// MacroServiceBackend: PhishJobD running against the simulated network.
//
// Bridges the job service (admission, tenants, HTTP) to a MacroCluster
// (PhishJobQ + per-workstation managers + migration): launched jobs become
// dynamic macro submissions carrying their tenant and priority, the JobQ's
// assignment feed becomes note_first_task, and job completion becomes
// note_done.  Everything runs in virtual time, so the service must be built
// over obs::VirtualClock of the same simulator — that makes the load bench's
// latency histograms deterministic.
//
// Wiring order (the service and backend reference each other):
//   MacroCluster cluster(...);            // kFairShare, tenants configured
//   MacroServiceBackend backend(cluster);
//   JobService service(clock, backend, cfg);
//   backend.bind(service);                // installs the cluster hooks
#pragma once

#include "jobsvc/service.hpp"
#include "runtime/simdist/macro_cluster.hpp"

namespace phish::rt {

class MacroServiceBackend final : public jobsvc::JobBackend {
 public:
  explicit MacroServiceBackend(MacroCluster& cluster) : cluster_(cluster) {}

  /// Install the completion/assignment hooks.  Forwards the service's
  /// tenant policies (weight, max_workstations) into the JobQ.
  void bind(jobsvc::JobService& service);

  void launch(const jobsvc::JobStatus& job,
              const std::vector<Value>& args) override;
  // cancel_active: inherited default (false).  A running simdist job has
  // live workers on many workstations; tearing it down mid-flight is the
  // Clearinghouse-shutdown protocol, which the service does not yet drive.

 private:
  MacroCluster& cluster_;
  jobsvc::JobService* service_ = nullptr;
};

}  // namespace phish::rt
