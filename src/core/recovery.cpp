#include "core/recovery.hpp"

#include "obs/metrics.hpp"

namespace phish {

void RecoveryTracker::note_detect(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++s_.detects;
  detect_ns_ = now_ns;
  obs::Registry::global().counter("recovery.failover.detects").inc();
}

void RecoveryTracker::note_promote(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++s_.promotions;
  promote_ns_ = now_ns;
  if (detect_ns_ == 0) detect_ns_ = now_ns;  // promoted without a lease miss
  s_.awaiting_first_steal = true;
  obs::Registry::global().counter("recovery.failover.promotions").inc();
  if (now_ns >= detect_ns_) {
    obs::Registry::global()
        .histogram("recovery.detect_to_promote_ns")
        .observe(now_ns - detect_ns_);
  }
}

void RecoveryTracker::note_steal(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!s_.awaiting_first_steal) return;
  s_.awaiting_first_steal = false;
  ++s_.mttr_count;
  s_.last_mttr_ns = now_ns >= detect_ns_ ? now_ns - detect_ns_ : 0;
  obs::Registry::global()
      .histogram("recovery.mttr_ns")
      .observe(s_.last_mttr_ns);
}

void RecoveryTracker::note_rejoin() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++s_.rejoins;
  obs::Registry::global().counter("recovery.rejoins").inc();
}

RecoveryTracker::Snapshot RecoveryTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return s_;
}

}  // namespace phish
