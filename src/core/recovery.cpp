#include "core/recovery.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace phish {

void RecoveryTracker::note_detect(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++s_.detects;
  detect_ns_ = now_ns;
  obs::Registry::global().counter("recovery.failover.detects").inc();
}

void RecoveryTracker::note_promote(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++s_.promotions;
  promote_ns_ = now_ns;
  if (detect_ns_ == 0) detect_ns_ = now_ns;  // promoted without a lease miss
  s_.awaiting_first_steal = true;
  obs::Registry::global().counter("recovery.failover.promotions").inc();
  if (now_ns >= detect_ns_) {
    obs::Registry::global()
        .histogram("recovery.detect_to_promote_ns")
        .observe(now_ns - detect_ns_);
  }
}

void RecoveryTracker::note_steal(std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!s_.awaiting_first_steal) return;
  s_.awaiting_first_steal = false;
  ++s_.mttr_count;
  s_.last_mttr_ns = now_ns >= detect_ns_ ? now_ns - detect_ns_ : 0;
  obs::Registry::global()
      .histogram("recovery.mttr_ns")
      .observe(s_.last_mttr_ns);
}

void RecoveryTracker::note_rejoin() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++s_.rejoins;
  obs::Registry::global().counter("recovery.rejoins").inc();
}

void RecoveryTracker::note_migration_redo(std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  s_.migration_redo += n;
  obs::Registry::global().counter("recovery.migration_redo").inc(n);
}

void RecoveryTracker::note_down(std::uint64_t node_key, std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = down_since_.try_emplace(node_key, now_ns);
  if (!inserted) {
    // Double-death of the same incarnation (e.g. heartbeat expiry racing an
    // implicit death on register): the outage began at FIRST detection.
    ++s_.duplicate_deaths;
    return;
  }
  ++s_.node_downs;
  obs::Registry::global().counter("recovery.node_downs").inc();
}

void RecoveryTracker::note_up(std::uint64_t node_key, std::uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = down_since_.find(node_key);
  if (it == down_since_.end()) {
    // The higher incarnation raced the failure detector: the node was never
    // declared dead, so there is no outage window to close.
    ++s_.rejoins_before_death;
    return;
  }
  const std::uint64_t mttr = now_ns >= it->second ? now_ns - it->second : 0;
  down_since_.erase(it);
  ++s_.node_ups;
  node_mttr_ns_.push_back(mttr);
  obs::Registry::global().counter("recovery.node_ups").inc();
  obs::Registry::global().histogram("recovery.node_mttr_ns").observe(mttr);
}

RecoveryTracker::Snapshot RecoveryTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s = s_;
  s.open_outages = down_since_.size();
  return s;
}

std::vector<std::uint64_t> RecoveryTracker::node_mttr_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return node_mttr_ns_;
}

std::uint64_t RecoveryTracker::percentile_ns(
    std::vector<std::uint64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  if (q <= 0.0) return samples.front();
  if (q >= 1.0) return samples.back();
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

}  // namespace phish
