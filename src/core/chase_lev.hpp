// Chase–Lev work-stealing deque (SPAA 2005), the lock-free successor of the
// locked ready list the paper's scheduler uses.
//
// The owner pushes and pops at the bottom without synchronization beyond
// fences; thieves steal from the top with a CAS.  Exactly the LIFO-owner /
// FIFO-thief discipline of Figure 1, minus the lock.  Ablation A5 compares
// this against the mutex-protected ReadyDeque to quantify what the 1994
// design left on the table (answer on a workstation network: nothing that
// matters — the network dominates — but in shared memory it shows).
//
// Storage: a non-pointer T is boxed (heap-allocated) per push; a pointer T
// is stored directly in the slots, so pushing pooled Closure* costs no
// allocation — the configuration the pooled hot path uses.  The deque grows
// by doubling; shrinking is not implemented (matches common practice).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

namespace phish {

template <typename T>
class ChaseLevDeque {
  static constexpr bool kDirect = std::is_pointer_v<T>;
  // Slot payload: T itself when T is a pointer, a heap box otherwise.
  using Boxed = std::conditional_t<kDirect, std::remove_pointer_t<T>, T>;

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : array_(new Array(round_up(initial_capacity))) {}

  ~ChaseLevDeque() {
    // Drain anything left (single-threaded at destruction).  Boxed payloads
    // are freed; direct pointers belong to the caller's pool and are only
    // dropped from the deque.
    while (pop()) {
    }
    Array* a = array_.load(std::memory_order_relaxed);
    delete a;
    for (Array* old : retired_) delete old;
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: push at the bottom.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    if constexpr (kDirect) {
      a->put(b, value);
    } else {
      a->put(b, new Boxed(std::move(value)));
    }
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only: pop from the bottom (LIFO).
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);

    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    Boxed* item = a->get(b);
    if (t == b) {
      // Last element: race against thieves with a CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        // Lost to a thief.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return unbox(item);
  }

  /// Any thread: steal from the top (FIFO).
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;  // empty
    Array* a = array_.load(std::memory_order_consume);
    Boxed* item = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost the race
    }
    return unbox(item);
  }

  /// Any thread: steal up to `max` items in one call, capped at half of the
  /// (approximate) current size — steal-half — but at least one attempt.
  /// Each item is still taken with its own CAS, so the usual Chase–Lev
  /// guarantees hold per item; the batch is not atomic as a whole, which is
  /// fine for work stealing (a half-batch is just a smaller steal).
  /// Returns the number of items appended to `out`.
  std::size_t steal_batch(std::vector<T>& out, std::size_t max) {
    if (max == 0) return 0;
    std::size_t want = size_approx() / 2;
    if (want < 1) want = 1;
    if (want > max) want = max;
    std::size_t got = 0;
    for (; got < want; ++got) {
      auto item = steal();
      if (!item) break;
      out.push_back(std::move(*item));
    }
    return got;
  }

  /// Owner only, and only when externally synchronized against thieves
  /// (quiescent snapshot/export): element `i` counting from the bottom
  /// (i == 0 is the next owner pop).  Direct-pointer storage only.
  T peek_from_bottom(std::size_t i) const {
    static_assert(kDirect, "peek_from_bottom requires pointer payloads");
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    Array* a = array_.load(std::memory_order_relaxed);
    return a->get(b - 1 - static_cast<std::int64_t>(i));
  }

  /// Approximate size (racy; exact when quiescent).
  std::size_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  struct Array {
    explicit Array(std::size_t n) : capacity(n), mask(n - 1), slots(n) {}
    std::size_t capacity;
    std::size_t mask;
    std::vector<std::atomic<Boxed*>> slots;

    // The textbook C11 deque keeps slot accesses relaxed and publishes the
    // pointee through the release fence in push().  We use release/acquire
    // on the slot itself instead: it is what carries the happens-before
    // edge from the owner's writes into the pointed-to closure to the
    // thief's copy of it.  On x86 and ARM64 both compile to the same plain
    // load/store as relaxed would, and — unlike the fence, which TSan does
    // not model — this keeps the whole steal protocol provable by the
    // TSan-built steal-churn stress test.
    Boxed* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_acquire);
    }
    void put(std::int64_t i, Boxed* p) {
      slots[static_cast<std::size_t>(i) & mask].store(
          p, std::memory_order_release);
    }
  };

  static T unbox(Boxed* item) {
    if constexpr (kDirect) {
      return item;
    } else {
      T out = std::move(*item);
      delete item;
      return out;
    }
  }

  static std::size_t round_up(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Array(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    array_.store(bigger, std::memory_order_release);
    // Old arrays are retired, not freed: a concurrent thief may still be
    // reading through the stale pointer.  Reclaimed in the destructor.
    retired_.push_back(old);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_;
  std::vector<Array*> retired_;  // owner-only
};

}  // namespace phish
