// Expand/reduce sugar over the continuation-passing task model.
//
// The 1994 system hid the closure plumbing behind a C preprocessor ("Phish
// applications are coded using a simple extension to the C programming
// language and a simple preprocessor that outputs native C embellished with
// calls to the Phish scheduling library").  This header plays that role for
// C++: a dynamic divide-and-conquer computation is two plain functions —
//
//   * expand: given a task's arguments, either produce a leaf result or a
//     list of child argument-vectors;
//   * reduce: combine the children's results (delivered in spawn order).
//
// register_expand_reduce() turns them into the registry's task + join pair,
// with all continuation and slot management generated.  Everything the
// scheduler offers (stealing, migration, checkpointing, redo) applies
// unchanged, because the generated tasks are ordinary closures.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/task_registry.hpp"
#include "core/worker_core.hpp"

namespace phish::dsl {

/// What expand() decides about one task.
struct Expansion {
  /// Set => this task is a leaf; the value is sent to the continuation and
  /// `children` is ignored.
  std::optional<Value> leaf;
  /// Else: spawn one child per entry (entry = that child's argument vector).
  /// Must be non-empty when `leaf` is not set, and at most 65535 entries
  /// (the join's slot space).
  std::vector<std::vector<Value>> children;

  static Expansion make_leaf(Value value) {
    Expansion e;
    e.leaf = std::move(value);
    return e;
  }
  static Expansion make_children(std::vector<std::vector<Value>> children) {
    Expansion e;
    e.children = std::move(children);
    return e;
  }
};

/// Decide leaf-vs-split for one task.  `cx` is available for charge()/print().
using ExpandFn =
    std::function<Expansion(Context& cx, const std::vector<Value>& args)>;

/// Combine children's results, delivered in spawn order.
using ReduceFn =
    std::function<Value(Context& cx, std::vector<Value>& child_results)>;

/// Register the task pair; returns the root task's id.  The root takes the
/// same argument vector expand() expects.
TaskId register_expand_reduce(TaskRegistry& registry, const std::string& name,
                              ExpandFn expand, ReduceFn reduce);

}  // namespace phish::dsl
