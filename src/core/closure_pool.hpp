// Per-worker closure pool: freelist reuse over chunked arenas.
//
// Every spawn/complete cycle of the micro-scheduler creates and destroys one
// Closure.  The paper's slowdown budget (Table 1) assumes that cycle costs a
// handful of machine operations; a general-purpose heap allocation per
// closure is what pushed our reproduction's fib slowdown into the hundreds.
// The pool makes the cycle allocation-free in steady state: closures are
// carved from geometrically growing chunks, released closures go on a
// freelist, and a reused closure keeps the heap capacity of its ArgSlots, so
// even wide joins stop allocating once the working set is warm.  The paper's
// LIFO discipline keeps "max tasks in use" small and P-independent
// (Table 2), so the warm working set is a few dozen closures.
//
// Threading: a pool belongs to one WorkerCore and is guarded by whatever
// external synchronization guards that core (WorkerCore is documented as
// externally synchronized; victims serve steals under their own lock).
//
// `pooled(false)` switches to plain new/delete per closure — the seed's
// allocation behavior — so the differential tests can run both paths through
// identical scheduler code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/closure.hpp"

namespace phish {

class ClosurePool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;        // total acquire() calls
    std::uint64_t freelist_reuses = 0; // acquires served from the freelist
    std::uint64_t chunks = 0;          // arena chunks allocated
    std::uint64_t capacity = 0;        // closures across all chunks
    std::uint64_t live = 0;            // acquired and not yet released
  };

  explicit ClosurePool(bool pooled = true,
                       std::size_t first_chunk_size = kDefaultFirstChunk)
      : pooled_(pooled), next_chunk_size_(first_chunk_size) {}

  ClosurePool(const ClosurePool&) = delete;
  ClosurePool& operator=(const ClosurePool&) = delete;

  ~ClosurePool() {
    if (!pooled_) {
      // Heap mode: anything not released is a leak the sanitizers flag at
      // the owner's level; the pool itself holds nothing.
      return;
    }
    // Chunks own every closure, live or free; their dtors run here.
  }

  /// A pristine closure (id invalid, no args).  Never fails; grows by
  /// doubling when the freelist and the current chunk are exhausted.
  ///
  /// The freelist hit is the steady-state path (every spawn after warm-up)
  /// and every caller immediately stores through the returned pointer, so
  /// the load chain that produces it must be short and inline: with the
  /// grow/heap paths outlined, this body is small enough that the compiler
  /// inlines it into every spawn site instead of emitting a call whose
  /// prologue sits on the pointer's dependency chain.
  Closure* acquire() {
    ++stats_.acquires;
    ++stats_.live;
    if (__builtin_expect(pooled_ && !freelist_.empty(), 1)) {
      ++stats_.freelist_reuses;
      Closure* c = freelist_.back();
      freelist_.pop_back();
      return c;
    }
    return acquire_slow_();
  }

  /// Return a closure.  Clears it (freeing any blob payloads) and keeps it
  /// for reuse; in heap mode, deletes it.
  void release(Closure* c) {
    --stats_.live;
    if (!pooled_) {
      delete c;
      return;
    }
    c->recycle();
    freelist_.push_back(c);
  }

  bool pooled() const noexcept { return pooled_; }
  const Stats& stats() const noexcept { return stats_; }

  /// Visit every slot ever carved (live or free; free slots have an invalid
  /// id).  Pooled mode only — heap mode owns nothing.  Used by the owner at
  /// cold moments (migration, export, rejoin) to find closures that skipped
  /// eager bookkeeping; never concurrent with acquire/release.
  template <typename F>
  void for_each_slot(F&& f) {
    for (std::size_t k = 0; k < chunks_.size(); ++k) {
      Closure* base = chunks_[k].get();
      const std::size_t n = chunk_sizes_[k];
      for (std::size_t i = 0; i < n; ++i) f(&base[i]);
    }
  }

  static constexpr std::size_t kDefaultFirstChunk = 64;
  static constexpr std::size_t kMaxChunkSize = 1u << 16;

 private:
  /// Heap mode and arena growth, kept out of the inlined fast path.
  __attribute__((noinline)) Closure* acquire_slow_() {
    if (!pooled_) return new Closure();
    if (chunks_.empty() || carved_ == current_chunk_size_) {
      chunks_.push_back(std::make_unique<Closure[]>(next_chunk_size_));
      chunk_sizes_.push_back(next_chunk_size_);
      current_chunk_size_ = next_chunk_size_;
      carved_ = 0;
      ++stats_.chunks;
      stats_.capacity += next_chunk_size_;
      freelist_.reserve(static_cast<std::size_t>(stats_.capacity));
      if (next_chunk_size_ < kMaxChunkSize) next_chunk_size_ *= 2;
    }
    return &chunks_.back()[carved_++];
  }

  bool pooled_;
  std::vector<std::unique_ptr<Closure[]>> chunks_;
  std::vector<std::size_t> chunk_sizes_;
  std::size_t current_chunk_size_ = 0;
  std::size_t carved_ = 0;
  std::size_t next_chunk_size_;
  std::vector<Closure*> freelist_;
  Stats stats_;
};

}  // namespace phish
