// The PhishJobQ: the macro-level scheduler's job pool (paper Section 3,
// Figure 2).
//
// "The PhishJobQ, an RPC server, resides on one computer and manages the
// pool of parallel jobs.  When a Phish application begins execution, it is
// submitted to the PhishJobQ.  When an idle workstation requests a job, the
// PhishJobQ assigns one of its parallel jobs to the idle workstation.  Our
// current implementation of the PhishJobQ uses a non-preemptive round-robin
// scheduling algorithm to assign jobs."
//
// Note the crucial semantics: assignment does NOT remove the job from the
// pool ("the scheduler keeps that job in its pool so that the job can also
// be assigned to other idle workstations") — that is what makes multiple
// workstations join one job.  A job leaves the pool only when it completes
// (kRpcJobDone) or is withdrawn.
//
// Assignment policies beyond round-robin are pluggable (the paper: "future
// implementations will provide opportunities for using and studying more
// sophisticated job assignment algorithms").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "net/rpc.hpp"

namespace phish {

/// What a workstation needs to join a job: which application to run (by
/// registered root-task name) and where the job's Clearinghouse lives.
struct JobSpec {
  std::uint64_t job_id = 0;
  std::string name;         // human-readable ("ray my-scene")
  std::string root_task;    // registry name of the root task
  net::NodeId clearinghouse;

  Bytes encode() const {
    Writer w;
    w.u64(job_id);
    w.str(name);
    w.str(root_task);
    w.u32(clearinghouse.value);
    return w.take();
  }
  static std::optional<JobSpec> decode(const Bytes& b) {
    Reader r(b);
    JobSpec s;
    s.job_id = r.u64();
    s.name = r.str();
    s.root_task = r.str();
    s.clearinghouse = net::NodeId{r.u32()};
    if (!r.done()) return std::nullopt;
    return s;
  }
};

/// Reply to kRpcRequestJob.
struct JobAssignment {
  std::optional<JobSpec> job;

  Bytes encode() const {
    Writer w;
    w.boolean(job.has_value());
    if (job) w.raw(job->encode());
    return w.take();
  }
  static std::optional<JobAssignment> decode(const Bytes& b) {
    Reader r(b);
    JobAssignment a;
    if (!r.boolean()) {
      if (!r.done()) return std::nullopt;
      return a;
    }
    // Re-decode the remainder as a JobSpec.
    Bytes rest;
    rest.reserve(r.remaining());
    while (r.remaining() > 0) rest.push_back(r.u8());
    a.job = JobSpec::decode(rest);
    if (!a.job) return std::nullopt;
    return a;
  }
};

/// Pluggable assignment policy.
enum class JobAssignPolicy {
  kRoundRobin,   // the paper's policy
  kFirstJob,     // always the oldest job (baseline for A4-style studies)
  kLeastServed,  // job with the fewest assignments so far
};

struct JobQStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t requests = 0;
  std::uint64_t assignments = 0;
  std::uint64_t empty_replies = 0;
};

class PhishJobQ {
 public:
  explicit PhishJobQ(net::RpcNode& rpc,
                     JobAssignPolicy policy = JobAssignPolicy::kRoundRobin);

  /// Install the RPC handlers (submit / request / done).
  void start();

  // ---- Local API (the submitting process and the harnesses use these; the
  // RPC handlers call into them too). ----

  /// Add a job to the pool; returns its id.
  std::uint64_t submit(JobSpec spec);
  /// Hand out a job per the assignment policy; nullopt if the pool is empty.
  std::optional<JobSpec> request(net::NodeId who);
  /// Remove a finished job.  Returns false if unknown.
  bool complete(std::uint64_t job_id);

  std::size_t pool_size() const;
  JobQStats stats() const;
  /// Assignment count per job id (how many workstations each job received).
  std::map<std::uint64_t, std::uint64_t> assignments_by_job() const;

  /// Fires when a job is assigned (job_id, workstation) — used by tests and
  /// the macro experiment harness.
  void set_on_assign(std::function<void(std::uint64_t, net::NodeId)> fn);

 private:
  struct PooledJob {
    JobSpec spec;
    std::uint64_t assignments = 0;
  };

  net::RpcNode& rpc_;
  JobAssignPolicy policy_;

  mutable std::mutex mutex_;
  std::vector<PooledJob> pool_;   // insertion order preserved
  std::size_t rr_index_ = 0;
  std::uint64_t next_job_id_ = 1;
  JobQStats stats_;
  std::map<std::uint64_t, std::uint64_t> assignments_by_job_;
  std::function<void(std::uint64_t, net::NodeId)> on_assign_;
};

}  // namespace phish
