// The PhishJobQ: the macro-level scheduler's job pool (paper Section 3,
// Figure 2).
//
// "The PhishJobQ, an RPC server, resides on one computer and manages the
// pool of parallel jobs.  When a Phish application begins execution, it is
// submitted to the PhishJobQ.  When an idle workstation requests a job, the
// PhishJobQ assigns one of its parallel jobs to the idle workstation.  Our
// current implementation of the PhishJobQ uses a non-preemptive round-robin
// scheduling algorithm to assign jobs."
//
// Note the crucial semantics: assignment does NOT remove the job from the
// pool ("the scheduler keeps that job in its pool so that the job can also
// be assigned to other idle workstations") — that is what makes multiple
// workstations join one job.  A job leaves the pool only when it completes
// (kRpcJobDone) or is withdrawn.
//
// The paper promised that "future implementations will provide opportunities
// for using and studying more sophisticated job assignment algorithms"; the
// kFairShare policy is that future implementation (DESIGN.md §11):
//
//   * every job belongs to a tenant with a configurable weight, and the
//     workstation grant ledger (request/release) tracks which workstation
//     currently runs a worker for which job;
//   * assignment first restricts to the highest priority class with an
//     eligible job, then picks the tenant with the smallest held/weight
//     ratio (weighted fair share), then rotates round-robin within that
//     tenant's jobs;
//   * submitting a job of a higher priority class than some running job
//     triggers preemption: the JobQ picks a victim workstation held by the
//     lowest-priority job (most-over-share tenant first) and asks its
//     manager to evict the worker via the migration path (paper case (d)),
//     freeing the workstation to request — and fair-share-receive — the
//     high-priority job.
//
// The paper's policies (round-robin, first-job, least-served) remain
// available and untouched for the A4-style studies.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "net/rpc.hpp"

namespace phish {

// Priority classes (kFairShare only; the paper's policies ignore them).
constexpr std::uint8_t kPriorityLow = 0;
constexpr std::uint8_t kPriorityNormal = 1;
constexpr std::uint8_t kPriorityHigh = 2;
constexpr std::uint8_t kPriorityClasses = 3;

/// Default tenant for jobs submitted without one (legacy paths).
inline constexpr const char* kDefaultTenant = "default";

/// What a workstation needs to join a job: which application to run (by
/// registered root-task name) and where the job's Clearinghouse lives, plus
/// the accounting identity (tenant, priority) the fair-share policy uses.
struct JobSpec {
  std::uint64_t job_id = 0;
  std::string name;         // human-readable ("ray my-scene")
  std::string root_task;    // registry name of the root task
  net::NodeId clearinghouse;
  std::string tenant = kDefaultTenant;
  std::uint8_t priority = kPriorityNormal;

  Bytes encode() const {
    Writer w;
    w.u64(job_id);
    w.str(name);
    w.str(root_task);
    w.u32(clearinghouse.value);
    w.str(tenant);
    w.u8(priority);
    return w.take();
  }
  static std::optional<JobSpec> decode(const Bytes& b) {
    Reader r(b);
    JobSpec s;
    s.job_id = r.u64();
    s.name = r.str();
    s.root_task = r.str();
    s.clearinghouse = net::NodeId{r.u32()};
    if (r.done()) return s;  // legacy spec without tenant/priority
    s.tenant = r.str();
    s.priority = r.u8();
    if (!r.done() || s.priority >= kPriorityClasses || s.tenant.empty()) {
      return std::nullopt;
    }
    return s;
  }
};

/// Reply to kRpcRequestJob.
struct JobAssignment {
  std::optional<JobSpec> job;

  Bytes encode() const {
    Writer w;
    w.boolean(job.has_value());
    if (job) w.raw(job->encode());
    return w.take();
  }
  static std::optional<JobAssignment> decode(const Bytes& b) {
    Reader r(b);
    JobAssignment a;
    if (!r.boolean()) {
      if (!r.done()) return std::nullopt;
      return a;
    }
    // Re-decode the remainder as a JobSpec (bulk slice, not byte-at-a-time).
    a.job = JobSpec::decode(r.rest());
    if (!a.job) return std::nullopt;
    return a;
  }
};

/// Pluggable assignment policy.
enum class JobAssignPolicy {
  kRoundRobin,   // the paper's policy
  kFirstJob,     // always the oldest job (baseline for A4-style studies)
  kLeastServed,  // job with the fewest assignments so far
  kFairShare,    // weighted fair share over tenants + priority classes
};

/// Per-tenant scheduling configuration (kFairShare).
struct TenantConfig {
  /// Fair-share weight: tenants receive workstations in proportion to it.
  double weight = 1.0;
  /// Hard cap on workstations concurrently held by this tenant's jobs.
  std::uint32_t max_workstations =
      std::numeric_limits<std::uint32_t>::max();
};

struct JobQStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t requests = 0;
  std::uint64_t assignments = 0;
  std::uint64_t empty_replies = 0;
  std::uint64_t releases = 0;     // workstation grants returned
  std::uint64_t preemptions = 0;  // eviction requests issued
};

/// Eviction request the JobQ hands to its preempt hook; the owner of the
/// transport (MacroCluster, PhishJobD) turns it into a kRpcPreempt call.
struct PreemptRequest {
  net::NodeId workstation;
  std::uint64_t victim_job = 0;
  std::uint64_t for_job = 0;
};

class PhishJobQ {
 public:
  explicit PhishJobQ(net::RpcNode& rpc,
                     JobAssignPolicy policy = JobAssignPolicy::kRoundRobin);

  /// Install the RPC handlers (submit / request / done / release).
  void start();

  // ---- Local API (the submitting process and the harnesses use these; the
  // RPC handlers call into them too). ----

  /// Register or update a tenant's weight/quota (kFairShare).  Unknown
  /// tenants named by a JobSpec are implicitly created with defaults.
  void configure_tenant(const std::string& tenant, TenantConfig config);

  /// Add a job to the pool; returns its id.  Under kFairShare this may fire
  /// the preempt hook when the job outranks running work.
  std::uint64_t submit(JobSpec spec);
  /// Hand out a job per the assignment policy; nullopt if the pool is empty
  /// (or every tenant is at quota).  Records a workstation grant for `who`
  /// under kFairShare (any prior grant of `who` is released first — one
  /// worker per workstation).
  std::optional<JobSpec> request(net::NodeId who);
  /// Return `who`'s workstation grant (its worker terminated).  Returns
  /// false if no grant was held.
  bool release(net::NodeId who);
  /// Remove a finished job.  Returns false if unknown.
  bool complete(std::uint64_t job_id);

  std::size_t pool_size() const;
  JobQStats stats() const;
  /// Assignment count per job id (how many workstations each job received).
  std::map<std::uint64_t, std::uint64_t> assignments_by_job() const;
  /// Workstations currently held per job / per tenant (grant ledger).
  std::map<std::uint64_t, std::uint64_t> held_by_job() const;
  std::map<std::string, std::uint64_t> held_by_tenant() const;

  /// Fires when a job is assigned (job_id, workstation) — used by tests, the
  /// macro experiment harness, and PhishJobD's first-task latency probe.
  void set_on_assign(std::function<void(std::uint64_t, net::NodeId)> fn);

  /// Preemption transport: invoked (outside the pool lock) once per victim
  /// workstation the fair-share policy decides to evict.
  void set_preempt_fn(std::function<void(const PreemptRequest&)> fn);

  /// Workstations evicted per triggering high-priority submit (default 1).
  void set_preempt_batch(std::uint32_t n) { preempt_batch_ = n == 0 ? 1 : n; }

 private:
  struct PooledJob {
    JobSpec spec;
    std::uint64_t assignments = 0;
  };
  struct Tenant {
    TenantConfig config;
  };

  // All *_locked helpers assume mutex_ is held.
  std::optional<std::size_t> pick_fair_share_locked();
  std::vector<PreemptRequest> plan_preemption_locked(const PooledJob& job);
  void release_locked(net::NodeId who);
  std::uint64_t tenant_held_locked(const std::string& tenant) const;
  std::uint8_t job_priority_locked(std::uint64_t job_id) const;
  double tenant_weight_locked(const std::string& tenant) const;

  net::RpcNode& rpc_;
  JobAssignPolicy policy_;

  mutable std::mutex mutex_;
  std::vector<PooledJob> pool_;   // insertion order preserved
  std::size_t rr_index_ = 0;
  std::uint64_t next_job_id_ = 1;
  JobQStats stats_;
  std::map<std::uint64_t, std::uint64_t> assignments_by_job_;
  std::map<std::string, Tenant> tenants_;
  std::map<net::NodeId, std::uint64_t> grants_;       // workstation -> job
  std::map<std::uint64_t, std::uint64_t> held_by_job_;
  std::uint32_t preempt_batch_ = 1;
  std::function<void(std::uint64_t, net::NodeId)> on_assign_;
  std::function<void(const PreemptRequest&)> preempt_fn_;
};

}  // namespace phish
