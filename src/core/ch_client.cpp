#include "core/ch_client.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace phish {

ClearinghouseClient::ClearinghouseClient(net::RpcNode& rpc,
                                         std::vector<net::NodeId> replicas)
    : rpc_(rpc), replicas_(std::move(replicas)) {
  if (replicas_.empty()) {
    throw std::invalid_argument("ClearinghouseClient: empty replica ring");
  }
}

net::NodeId ClearinghouseClient::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replicas_[index_];
}

std::uint64_t ClearinghouseClient::view() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return view_;
}

bool ClearinghouseClient::is_replica(net::NodeId n) const {
  return std::find(replicas_.begin(), replicas_.end(), n) != replicas_.end();
}

bool ClearinghouseClient::adopt(net::NodeId primary, std::uint64_t view) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (view <= view_) return false;  // stale announcement (demoted primary)
  const auto it = std::find(replicas_.begin(), replicas_.end(), primary);
  if (it == replicas_.end()) return false;
  view_ = view;
  const auto next = static_cast<std::size_t>(it - replicas_.begin());
  const bool changed = next != index_;
  index_ = next;
  return changed;
}

void ClearinghouseClient::call(std::uint16_t method, Bytes args,
                               net::RpcNode::Completion on_done,
                               net::RetryPolicy policy) {
  call_attempt(method, std::move(args), std::move(on_done), policy,
               static_cast<int>(replicas_.size()) * 2);
}

void ClearinghouseClient::call_attempt(std::uint16_t method, Bytes args,
                                       net::RpcNode::Completion on_done,
                                       net::RetryPolicy policy,
                                       int tries_left) {
  const net::NodeId dst = current();
  // Copy the args: a retry after failover needs them again.
  rpc_.call(
      dst, method, args,
      [this, method, args, on_done = std::move(on_done), policy, tries_left,
       dst](net::RpcResult result) mutable {
        if (result.ok || tries_left <= 1) {
          if (on_done) on_done(std::move(result));
          return;
        }
        advance_past(dst);
        call_attempt(method, std::move(args), std::move(on_done), policy,
                     tries_left - 1);
      },
      policy);
}

void ClearinghouseClient::advance_past(net::NodeId failed) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Only rotate if the ring still points at the replica that failed us;
  // a concurrent adopt() or another call's failover has fresher knowledge.
  if (replicas_[index_] == failed) index_ = (index_ + 1) % replicas_.size();
}

void ClearinghouseClient::send_oneway(std::uint16_t type, Bytes payload) {
  rpc_.send_oneway(current(), type, std::move(payload));
}

void ClearinghouseClient::send_oneway_all(std::uint16_t type,
                                          const Bytes& payload) {
  for (net::NodeId r : replicas_) {
    rpc_.send_oneway(r, type, payload);
  }
}

}  // namespace phish
