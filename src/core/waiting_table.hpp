// Waiting-closure table: ClosureId -> Closure*, open addressing.
//
// Every join in the task graph passes through this table once (inserted when
// created, erased when its last argument arrives), so on fine grains it is
// as hot as the ready list.  std::unordered_map pays a node allocation per
// insert; this flat table probes linearly over a power-of-two slot array and
// allocates only when it grows, which together with the closure pool makes
// the create-join/fill/ready cycle allocation-free in steady state.
//
// The table does not own the closures; the WorkerCore's pool does.  Deletion
// uses backward-shift compaction, so lookups never need tombstones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/closure.hpp"

namespace phish {

class WaitingTable {
 public:
  WaitingTable() : slots_(kInitialSlots) {}

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Insert a closure under its id.  The id must not already be present
  /// (ids are unique by construction; create_waiting never reuses one).
  void insert(Closure* c) {
    if ((count_ + 1) * 10 >= slots_.size() * 7) grow_();
    std::size_t i = ideal_(c->id);
    while (slots_[i] != nullptr) i = (i + 1) & mask_();
    place_(i, c);
    ++count_;
  }

  Closure* find(const ClosureId& id) const noexcept {
    std::size_t i = ideal_(id);
    while (slots_[i] != nullptr) {
      if (slots_[i]->id == id) return slots_[i];
      i = (i + 1) & mask_();
    }
    return nullptr;
  }

  /// Remove and return the closure with this id, or nullptr.
  Closure* erase(const ClosureId& id) noexcept {
    std::size_t i = ideal_(id);
    while (slots_[i] != nullptr) {
      if (slots_[i]->id == id) {
        Closure* c = slots_[i];
        erase_at_(i);
        --count_;
        return c;
      }
      i = (i + 1) & mask_();
    }
    return nullptr;
  }

  /// Remove a closure we already hold a pointer to, without re-probing:
  /// every resident closure carries its bucket index in `wait_slot`
  /// (maintained by insert/grow/backward-shift).  The bucket check makes a
  /// call on a non-resident closure a harmless no-op rather than corruption.
  void erase_entry(Closure* c) noexcept {
    const std::size_t i = c->wait_slot;
    if (i >= slots_.size() || slots_[i] != c) return;
    erase_at_(i);
    --count_;
  }

  /// Visit every waiting closure (order unspecified).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (Closure* c : slots_) {
      if (c != nullptr) fn(c);
    }
  }

  /// Drop every entry (closures stay owned by the pool / caller).
  void clear() noexcept {
    for (Closure*& c : slots_) c = nullptr;
    count_ = 0;
  }

 private:
  static constexpr std::size_t kInitialSlots = 16;  // power of two

  std::size_t mask_() const noexcept { return slots_.size() - 1; }
  std::size_t ideal_(const ClosureId& id) const noexcept {
    return std::hash<ClosureId>{}(id)&mask_();
  }

  void erase_at_(std::size_t i) noexcept {
    // Backward-shift: pull later probe-chain members into the hole so every
    // remaining entry stays reachable from its ideal slot.
    slots_[i] = nullptr;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_();
      if (slots_[j] == nullptr) return;
      const std::size_t k = ideal_(slots_[j]->id);
      const bool movable = (j > i) ? (k <= i || k > j) : (k <= i && k > j);
      if (movable) {
        place_(i, slots_[j]);
        slots_[j] = nullptr;
        i = j;
      }
    }
  }

  void place_(std::size_t i, Closure* c) noexcept {
    slots_[i] = c;
    c->wait_slot = static_cast<std::uint32_t>(i);
  }

  void grow_() {
    std::vector<Closure*> old = std::move(slots_);
    slots_.assign(old.size() * 2, nullptr);
    for (Closure* c : old) {
      if (c == nullptr) continue;
      std::size_t i = ideal_(c->id);
      while (slots_[i] != nullptr) i = (i + 1) & mask_();
      place_(i, c);
    }
  }

  std::vector<Closure*> slots_;
  std::size_t count_ = 0;
};

}  // namespace phish
