// The Clearinghouse (paper Section 3, Figure 3).
//
// "The Clearinghouse is a special program (independent of the particular
// application) that is responsible for keeping track of all worker processes
// participating in the job and providing various services to the workers."
//
// Services implemented here:
//   * registration / unregistration and epoch-numbered membership snapshots
//     (workers fetch these periodically to learn about other participants);
//   * receipt of the job's final result (the root continuation points here)
//     and the shutdown broadcast that ends the job;
//   * buffered application I/O ("a user need only watch the Clearinghouse to
//     see job output");
//   * heartbeat-based crash detection with death broadcasts, driving the
//     redo-based fault tolerance ("enough redundant state is maintained so
//     that lost work can be redone in the event of a machine crash");
//   * collection of final per-worker statistics (Table 2's raw data).
//
// The class is transport-agnostic: it speaks through an RpcNode and a
// TimerService, so the same code serves the simulated network and real UDP
// sockets.  Thread-safe (the UDP runtime calls in from receiver and timer
// threads); callbacks are invoked without internal locks held.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "net/rpc.hpp"

namespace phish {

struct ClearinghouseConfig {
  /// A participant missing heartbeats for this long is declared dead.
  std::uint64_t heartbeat_timeout_ns = 10'000'000'000ULL;  // 10 s
  /// How often the failure detector scans.
  std::uint64_t failure_check_period_ns = 2'000'000'000ULL;  // 2 s
  /// Disable crash detection entirely (e.g. measurement runs with no
  /// failures, where timeouts would only add noise).
  bool detect_failures = true;
  /// Warm standby: the primary pushes a state delta this often; the delta
  /// stream doubles as the primary's lease renewal.
  std::uint64_t replicate_period_ns = 250'000'000ULL;  // 250 ms
  /// Standby: promote once no delta has arrived for this long.
  std::uint64_t lease_timeout_ns = 1'000'000'000ULL;  // 1 s
  std::uint64_t lease_check_period_ns = 250'000'000ULL;
  /// Retransmission policies for replication deltas and for reliable
  /// control notices (death notices, new-primary announcements).
  net::RetryPolicy replicate_policy{};
  net::RetryPolicy control_policy{};
  /// Cap on the io/stats tail entries shipped per delta (bounds frame size;
  /// the ack watermarks carry the rest on later ticks).
  std::size_t max_delta_tail = 256;
  /// Bounded per-epoch membership change log backing delta replies
  /// (MembershipUpdate).  A worker whose known epoch fell off the log gets
  /// a full snapshot instead — correctness never depends on log depth.
  std::size_t membership_log_limit = 256;
};

/// Root continuation for a job whose Clearinghouse lives at `ch`.
inline ContRef clearinghouse_continuation(net::NodeId ch) {
  return ContRef{ClosureId{ch, 0}, 0, ch};
}

class RecoveryTracker;

class Clearinghouse {
 public:
  /// Replica role.  kDemoted is a former primary that learned (via a
  /// view-fenced delta ack) that the standby promoted past it; it goes
  /// silent so exactly one replica acts as primary.
  enum class Role : std::uint8_t { kPrimary, kStandby, kDemoted, kHalted };

  Clearinghouse(net::RpcNode& rpc, net::TimerService& timers,
                ClearinghouseConfig config = {});
  ~Clearinghouse();

  Clearinghouse(const Clearinghouse&) = delete;
  Clearinghouse& operator=(const Clearinghouse&) = delete;

  /// Install RPC handlers and start the failure detector (primary role).
  void start();
  /// Warm standby: apply deltas from `primary`, record worker heartbeats,
  /// and promote when the primary misses its lease.
  void start_standby(net::NodeId primary);
  /// Primary side: begin pushing state deltas to `standby`.
  void set_standby(net::NodeId standby);
  /// Stop timers (handlers stay installed; the job is over anyway).
  void stop();
  /// Simulate a coordinator crash: stop timers and drop all traffic, both
  /// directions, at the RPC layer.  Irreversible for this object.
  void halt();
  /// Standby -> primary.  Normally driven by the lease watchdog; public so
  /// tests can force the transition.
  void promote();

  net::NodeId id() const { return rpc_.id(); }
  Role role() const;
  std::uint64_t view() const;
  /// True for a replica currently acting as the coordinator.
  bool acting_primary() const { return role() == Role::kPrimary; }

  void set_recovery_tracker(RecoveryTracker* tracker) { tracker_ = tracker; }
  /// Fires after this standby finishes promoting itself.
  void set_on_promoted(std::function<void()> fn);

  /// Fires when the job's result arrives (after the shutdown broadcast).
  void set_on_result(std::function<void(const Value&)> fn);
  /// Fires when a participant is declared dead, after the death broadcast.
  void set_on_death(std::function<void(net::NodeId)> fn);
  /// Fires when membership changes (register/unregister/death).
  void set_on_membership_change(std::function<void(std::size_t)> fn);

  // ---- Observers. ----
  proto::Membership membership() const;
  std::optional<Value> result() const;
  bool job_done() const { return result().has_value(); }
  std::vector<proto::StatsMsg> stats_reports() const;
  std::vector<proto::IoMsg> io_log() const;
  std::vector<net::NodeId> declared_dead() const;
  /// Join time (timer-clock ns) of each participant ever registered.
  std::map<net::NodeId, std::uint64_t> join_times() const;
  /// Migration durability ledger entries currently retained (tests).
  std::size_t migration_ledger_size() const;

 private:
  /// One ledgered migration: the wire record (from/holder/cargo/steal-ledger
  /// export) plus primary-side redelivery bookkeeping.  Entries are retained
  /// until the holder gracefully retires them (its own superseding migration
  /// or an empty-handed unregister) or the job ends — mirroring the worker
  /// steal ledger's never-released idiom.
  struct MigrationEntry {
    proto::MigrationLedgerMsg record;
    /// Incarnation of `record.holder` when the holder was last set (0 when
    /// unknown, e.g. after a standby promotion rebuilt the ledger from a
    /// delta): a holder that re-registers with a higher incarnation lost
    /// the cargo even though it is back in the membership list.
    std::uint32_t holder_inc = 0;
    bool redelivery_in_flight = false;
  };
  /// A redelivery decided under the lock, sent outside it.
  struct PendingRedelivery {
    net::NodeId target;
    std::uint64_t migration_id = 0;
    std::size_t cargo_count = 0;
    Bytes payload;
  };

  void install_primary_handlers();
  Bytes handle_register(net::NodeId src, const Bytes& args);
  Bytes handle_unregister(net::NodeId src);
  Bytes handle_update(const Bytes& args);
  Bytes handle_delta(net::NodeId src, const Bytes& args);
  Bytes handle_migration_ledger(net::NodeId src, const Bytes& args);
  /// Drop ledger entries originated by `dead` (its victims' standard
  /// death-redo re-executes everything it ever held, and redelivered
  /// waiting joins whose fills route through a crashed origin could never
  /// complete).  Call at death declaration, holding mutex_.
  void drop_migrations_from_locked(net::NodeId dead);
  /// Find entries whose holder is gone (left membership, or re-registered
  /// as a fresh incarnation) and stage redelivery of their cargo to the
  /// lowest-id live participant.  Callers hold mutex_ and must pass the
  /// result to send_redeliveries() after unlocking.
  std::vector<PendingRedelivery> scan_migrations_locked();
  void send_redeliveries(std::vector<PendingRedelivery> sends);
  /// A retired ledger entry staged under the lock: notify the origin
  /// (`first`) that migration `second` can never be rerouted again, so its
  /// forwarding stub may drop the fill log it retained for a replay.
  /// Best-effort (acked but loss only delays reclamation); send unlocked.
  void send_retirements(
      const std::vector<std::pair<net::NodeId, std::uint64_t>>& retires);
  void handle_oneway(net::Message&& message);
  void accept_result(net::NodeId src, Value value);
  void check_failures();
  void replicate_tick();
  void lease_tick();
  /// Reliable death notice to each target (acked kRpcControl; satellite of
  /// the old lossy kDead oneway).
  void broadcast_death(net::NodeId dead, const std::vector<net::NodeId>& to,
                       std::uint64_t view);
  proto::Membership membership_locked() const;  // callers hold mutex_
  /// Record one membership change (join or leave) at the current epoch in
  /// the bounded change log.  Call after bumping epoch_, holding mutex_.
  void log_change_locked(net::NodeId node, bool joined);
  /// Delta since `since_epoch` when the change log covers the window; full
  /// snapshot (full = true) otherwise.  Callers hold mutex_.
  proto::MembershipUpdate membership_update_locked(
      std::uint64_t since_epoch) const;

  net::RpcNode& rpc_;
  net::TimerService& timers_;
  ClearinghouseConfig config_;

  mutable std::mutex mutex_;
  Role role_ = Role::kPrimary;
  std::uint64_t view_ = 1;  // bumps on every promotion, fences stale primaries
  net::NodeId peer_{};      // standby (when primary) / primary (when standby)
  std::uint64_t epoch_ = 1;
  std::vector<net::NodeId> participants_;
  std::map<net::NodeId, std::uint32_t> incarnations_;
  std::map<net::NodeId, std::uint64_t> last_heartbeat_;
  std::map<net::NodeId, std::uint64_t> join_times_;
  std::vector<net::NodeId> dead_;
  /// One entry per epoch bump: who changed and in which direction.  Bounded
  /// by config_.membership_log_limit; deltas that would reach past the
  /// oldest retained entry fall back to a full snapshot.
  struct EpochChange {
    std::uint64_t epoch;
    net::NodeId node;
    bool joined;
  };
  std::deque<EpochChange> change_log_;
  /// Migration durability ledger, keyed by migration id.
  std::map<std::uint64_t, MigrationEntry> migration_ledger_;
  std::optional<Value> result_;
  std::vector<proto::StatsMsg> stats_reports_;
  std::vector<proto::IoMsg> io_log_;
  net::TimerToken failure_timer_{};
  net::TimerToken replicate_timer_{};
  net::TimerToken lease_timer_{};
  // Primary-side replication cursor.
  std::uint64_t delta_seq_ = 0;
  std::size_t io_acked_ = 0;
  std::size_t stats_acked_ = 0;
  bool delta_in_flight_ = false;
  // Standby-side lease.
  std::uint64_t applied_seq_ = 0;
  std::uint64_t last_delta_ns_ = 0;
  bool running_ = false;
  RecoveryTracker* tracker_ = nullptr;

  std::function<void(const Value&)> on_result_;
  std::function<void(net::NodeId)> on_death_;
  std::function<void(std::size_t)> on_membership_change_;
  std::function<void()> on_promoted_;
};

}  // namespace phish
