// The Clearinghouse (paper Section 3, Figure 3).
//
// "The Clearinghouse is a special program (independent of the particular
// application) that is responsible for keeping track of all worker processes
// participating in the job and providing various services to the workers."
//
// Services implemented here:
//   * registration / unregistration and epoch-numbered membership snapshots
//     (workers fetch these periodically to learn about other participants);
//   * receipt of the job's final result (the root continuation points here)
//     and the shutdown broadcast that ends the job;
//   * buffered application I/O ("a user need only watch the Clearinghouse to
//     see job output");
//   * heartbeat-based crash detection with death broadcasts, driving the
//     redo-based fault tolerance ("enough redundant state is maintained so
//     that lost work can be redone in the event of a machine crash");
//   * collection of final per-worker statistics (Table 2's raw data).
//
// The class is transport-agnostic: it speaks through an RpcNode and a
// TimerService, so the same code serves the simulated network and real UDP
// sockets.  Thread-safe (the UDP runtime calls in from receiver and timer
// threads); callbacks are invoked without internal locks held.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "net/rpc.hpp"

namespace phish {

struct ClearinghouseConfig {
  /// A participant missing heartbeats for this long is declared dead.
  std::uint64_t heartbeat_timeout_ns = 10'000'000'000ULL;  // 10 s
  /// How often the failure detector scans.
  std::uint64_t failure_check_period_ns = 2'000'000'000ULL;  // 2 s
  /// Disable crash detection entirely (e.g. measurement runs with no
  /// failures, where timeouts would only add noise).
  bool detect_failures = true;
};

/// Root continuation for a job whose Clearinghouse lives at `ch`.
inline ContRef clearinghouse_continuation(net::NodeId ch) {
  return ContRef{ClosureId{ch, 0}, 0, ch};
}

class Clearinghouse {
 public:
  Clearinghouse(net::RpcNode& rpc, net::TimerService& timers,
                ClearinghouseConfig config = {});
  ~Clearinghouse();

  Clearinghouse(const Clearinghouse&) = delete;
  Clearinghouse& operator=(const Clearinghouse&) = delete;

  /// Install RPC handlers and start the failure detector.
  void start();
  /// Stop timers (handlers stay installed; the job is over anyway).
  void stop();

  net::NodeId id() const { return rpc_.id(); }

  /// Fires when the job's result arrives (after the shutdown broadcast).
  void set_on_result(std::function<void(const Value&)> fn);
  /// Fires when a participant is declared dead, after the death broadcast.
  void set_on_death(std::function<void(net::NodeId)> fn);
  /// Fires when membership changes (register/unregister/death).
  void set_on_membership_change(std::function<void(std::size_t)> fn);

  // ---- Observers. ----
  proto::Membership membership() const;
  std::optional<Value> result() const;
  bool job_done() const { return result().has_value(); }
  std::vector<proto::StatsMsg> stats_reports() const;
  std::vector<proto::IoMsg> io_log() const;
  std::vector<net::NodeId> declared_dead() const;
  /// Join time (timer-clock ns) of each participant ever registered.
  std::map<net::NodeId, std::uint64_t> join_times() const;

 private:
  Bytes handle_register(net::NodeId src);
  Bytes handle_unregister(net::NodeId src);
  Bytes handle_update();
  void handle_oneway(net::Message&& message);
  void accept_result(net::NodeId src, Value value);
  void check_failures();
  proto::Membership membership_locked() const;  // callers hold mutex_

  net::RpcNode& rpc_;
  net::TimerService& timers_;
  ClearinghouseConfig config_;

  mutable std::mutex mutex_;
  std::uint64_t epoch_ = 1;
  std::vector<net::NodeId> participants_;
  std::map<net::NodeId, std::uint64_t> last_heartbeat_;
  std::map<net::NodeId, std::uint64_t> join_times_;
  std::vector<net::NodeId> dead_;
  std::optional<Value> result_;
  std::vector<proto::StatsMsg> stats_reports_;
  std::vector<proto::IoMsg> io_log_;
  net::TimerToken failure_timer_{};
  bool running_ = false;

  std::function<void(const Value&)> on_result_;
  std::function<void(net::NodeId)> on_death_;
  std::function<void(std::size_t)> on_membership_change_;
};

}  // namespace phish
