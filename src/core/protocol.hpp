// Wire protocol of a running Phish job.
//
// One numbering shared by every transport (simulated, loopback, UDP):
//   * one-way datagrams for dataflow (argument sends), control broadcasts
//     (shutdown, death notices), migration, heartbeats, buffered I/O, and
//     stats reports;
//   * RPC methods for interactions that need a reply (registration,
//     membership updates, steal requests, and the macro scheduler's job
//     traffic).
//
// Everything here is plain encode/decode; behaviour lives in the
// Clearinghouse, the workers, and the JobQ.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/closure.hpp"
#include "core/worker_stats.hpp"
#include "net/address.hpp"

namespace phish::proto {

// ---- One-way message types (must stay below net::kRpcTypeBase). ----
constexpr std::uint16_t kArgument = 1;     // ArgumentMsg: dataflow send
constexpr std::uint16_t kShutdown = 2;     // (empty) job finished, stop
constexpr std::uint16_t kHeartbeat = 3;    // (empty) worker liveness
constexpr std::uint16_t kDead = 4;         // DeadMsg: participant crashed
constexpr std::uint16_t kMigrate = 5;      // MigrateMsg: closures moving in
constexpr std::uint16_t kStatsReport = 6;  // StatsMsg: final per-worker stats
constexpr std::uint16_t kIo = 7;           // IoMsg: application output line

// ---- RPC method ids. ----
constexpr std::uint16_t kRpcRegister = 1;    // worker -> clearinghouse
constexpr std::uint16_t kRpcUnregister = 2;  // worker -> clearinghouse
constexpr std::uint16_t kRpcUpdate = 3;      // worker -> clearinghouse
constexpr std::uint16_t kRpcSteal = 4;       // thief -> victim
// Job result delivery is an RPC (not a one-way datagram) so it survives
// message loss: the sender retransmits until the Clearinghouse acknowledges.
constexpr std::uint16_t kRpcResult = 5;      // worker -> clearinghouse

// Macro level (PhishJobQ).
constexpr std::uint16_t kRpcSubmitJob = 10;   // user -> jobq
constexpr std::uint16_t kRpcRequestJob = 11;  // jobmanager -> jobq
constexpr std::uint16_t kRpcJobDone = 12;     // clearinghouse -> jobq

// ---- Payloads. ----

struct ArgumentMsg {
  ContRef cont;
  Value value;

  Bytes encode() const {
    Writer w;
    cont.encode(w);
    value.encode(w);
    return w.take();
  }
  static std::optional<ArgumentMsg> decode(const Bytes& b) {
    Reader r(b);
    ArgumentMsg m;
    m.cont = ContRef::decode(r);
    m.value = Value::decode(r);
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct DeadMsg {
  net::NodeId who;

  Bytes encode() const {
    Writer w;
    w.u32(who.value);
    return w.take();
  }
  static std::optional<DeadMsg> decode(const Bytes& b) {
    Reader r(b);
    DeadMsg m;
    m.who = net::NodeId{r.u32()};
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct MigrateMsg {
  net::NodeId from;
  std::vector<Closure> closures;

  Bytes encode() const {
    Writer w;
    w.u32(from.value);
    w.u32(static_cast<std::uint32_t>(closures.size()));
    for (const Closure& c : closures) c.encode(w);
    return w.take();
  }
  static std::optional<MigrateMsg> decode(const Bytes& b) {
    Reader r(b);
    MigrateMsg m;
    m.from = net::NodeId{r.u32()};
    const std::uint32_t n = r.u32();
    if (!r.ok() || n > (1u << 24)) return std::nullopt;
    m.closures.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) m.closures.push_back(Closure::decode(r));
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct StatsMsg {
  net::NodeId who;
  WorkerStats stats;
  std::uint64_t start_ns = 0;  // when the participant joined
  std::uint64_t end_ns = 0;    // when it finished/left

  Bytes encode() const {
    Writer w;
    w.u32(who.value);
    stats.encode(w);
    w.u64(start_ns);
    w.u64(end_ns);
    return w.take();
  }
  static std::optional<StatsMsg> decode(const Bytes& b) {
    Reader r(b);
    StatsMsg m;
    m.who = net::NodeId{r.u32()};
    m.stats = WorkerStats::decode(r);
    m.start_ns = r.u64();
    m.end_ns = r.u64();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct IoMsg {
  net::NodeId who;
  std::string text;

  Bytes encode() const {
    Writer w;
    w.u32(who.value);
    w.str(text);
    return w.take();
  }
  static std::optional<IoMsg> decode(const Bytes& b) {
    Reader r(b);
    IoMsg m;
    m.who = net::NodeId{r.u32()};
    m.text = r.str();
    if (!r.done()) return std::nullopt;
    return m;
  }
};

/// Membership snapshot returned by register/update RPCs.
struct Membership {
  std::uint64_t epoch = 0;
  std::vector<net::NodeId> participants;

  Bytes encode() const {
    Writer w;
    w.u64(epoch);
    w.u32(static_cast<std::uint32_t>(participants.size()));
    for (net::NodeId p : participants) w.u32(p.value);
    return w.take();
  }
  static std::optional<Membership> decode(const Bytes& b) {
    Reader r(b);
    Membership m;
    m.epoch = r.u64();
    const std::uint32_t n = r.u32();
    if (!r.ok() || n > (1u << 20)) return std::nullopt;
    m.participants.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      m.participants.push_back(net::NodeId{r.u32()});
    }
    if (!r.done()) return std::nullopt;
    return m;
  }
};

/// Steal RPC: request carries the thief's id; the reply carries at most one
/// closure.
struct StealRequest {
  net::NodeId thief;

  Bytes encode() const {
    Writer w;
    w.u32(thief.value);
    return w.take();
  }
  static std::optional<StealRequest> decode(const Bytes& b) {
    Reader r(b);
    StealRequest m;
    m.thief = net::NodeId{r.u32()};
    if (!r.done()) return std::nullopt;
    return m;
  }
};

struct StealReply {
  std::optional<Closure> task;

  Bytes encode() const {
    Writer w;
    w.boolean(task.has_value());
    if (task) task->encode(w);
    return w.take();
  }
  static std::optional<StealReply> decode(const Bytes& b) {
    Reader r(b);
    StealReply m;
    if (r.boolean()) m.task = Closure::decode(r);
    if (!r.done()) return std::nullopt;
    return m;
  }
};

}  // namespace phish::proto
